#include "core/retry_thinner.hpp"

#include "obs/observer.hpp"

namespace {
// obs::Cls mirrors http::ClientClass value for value.
speakup::obs::Cls obs_cls(speakup::http::ClientClass c) {
  return static_cast<speakup::obs::Cls>(c);
}
}  // namespace

namespace speakup::core {

using http::ClientClass;
using http::Message;
using http::MessageStream;
using http::MessageType;

RetryThinner::RetryThinner(transport::Host& host, const Config& cfg, util::RngStream server_rng)
    : host_(&host),
      cfg_(cfg),
      server_(host.loop(), cfg.capacity_rps, std::move(server_rng)),
      pool_(host.loop()) {
  server_.set_on_complete([this](const server::ServiceRequest& r) { on_server_complete(r); });
  host.listen(cfg_.request_port, [this](transport::TcpConnection& c) { on_accept(c); });
}

void RetryThinner::on_accept(transport::TcpConnection& conn) {
  MessageStream& s = pool_.adopt(conn);
  MessageStream::Callbacks cbs;
  cbs.on_message = [this, &s](const Message& m) { on_message(s, m); };
  cbs.on_reset = [this, &s] { on_reset(s); };
  s.set_callbacks(std::move(cbs));
}

void RetryThinner::on_message(MessageStream& s, const Message& m) {
  if (m.type != MessageType::kRequest) return;
  ++retries_received_;
  auto it = states_.find(m.request_id);
  if (it == states_.end()) {
    ++stats_.requests_received;
    auto st = std::make_unique<RequestState>();
    st->id = m.request_id;
    st->cls = m.cls;
    st->difficulty = m.difficulty;
    st->session = &s;
    by_stream_[&s] = st->id;
    it = states_.emplace(m.request_id, std::move(st)).first;
  }
  RequestState& st = *it->second;
  if (st.serving) return;  // stray retry for an admitted request
  ++st.retries;
  if (!server_.busy()) {
    admit(st);
  } else {
    if (auto* o = host_->loop().observer()) o->on_rejection();
    // The synchronous please-retry signal. Clients do not actually wait
    // for it (they pipeline), but it keeps the window full.
    s.send(Message{.type = MessageType::kRetry, .request_id = st.id});
  }
}

void RetryThinner::admit(RequestState& st) {
  st.serving = true;
  const auto price = static_cast<double>(st.retries);
  if (auto* o = host_->loop().observer()) {
    o->on_admission(obs_cls(st.cls), price, /*direct=*/st.retries <= 1);
  }
  if (st.cls == ClientClass::kGood) {
    ++stats_.served_good;
    stats_.retries_good.add(price);
  } else if (st.cls == ClientClass::kBad) {
    ++stats_.served_bad;
    stats_.retries_bad.add(price);
  } else {
    ++stats_.served_other;
  }
  server_.submit(server::ServiceRequest{st.id, st.cls, st.difficulty});
}

void RetryThinner::on_server_complete(const server::ServiceRequest& done) {
  const auto it = states_.find(done.request_id);
  if (it != states_.end()) {
    RequestState& st = *it->second;
    if (st.session != nullptr) {
      st.session->send(Message{.type = MessageType::kResponse,
                               .request_id = st.id,
                               .body = cfg_.response_body,
                               .cls = st.cls});
      by_stream_.erase(st.session);
    }
    states_.erase(it);
  }
  // No auction: the next retry to arrive at the now-free server is admitted,
  // which realizes the random-drop proportional allocation of §3.2.
}

void RetryThinner::on_reset(MessageStream& s) {
  const auto it = by_stream_.find(&s);
  if (it != by_stream_.end()) {
    const auto sit = states_.find(it->second);
    if (sit != states_.end()) {
      sit->second->session = nullptr;  // stream is going away
      if (!sit->second->serving) states_.erase(sit);
    }
    by_stream_.erase(it);
  }
  pool_.retire(&s);
}

}  // namespace speakup::core
