// The server interface required by the heterogeneous-request extension (§5):
// SUSPEND, RESUME and ABORT. The paper notes many transaction managers and
// application servers export such an interface; we emulate one.
//
// Work is measured in seconds of server attention. A request of difficulty d
// needs d * base quanta, where base is drawn from U[0.9/c, 1.1/c] — the
// thinner never learns d (worst case: only attackers know difficulty).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "http/message.hpp"
#include "server/emulated_server.hpp"
#include "sim/event_loop.hpp"
#include "sim/timer.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace speakup::server {

class InterruptibleServer {
 public:
  InterruptibleServer(sim::EventLoop& loop, double capacity_rps, util::RngStream rng)
      : loop_(&loop),
        capacity_rps_(capacity_rps),
        rng_(std::move(rng)),
        completion_timer_(loop, [this] { on_work_slice_done(); }) {
    util::require(capacity_rps > 0, "server capacity must be positive");
  }

  InterruptibleServer(const InterruptibleServer&) = delete;
  InterruptibleServer& operator=(const InterruptibleServer&) = delete;

  void set_on_complete(std::function<void(const ServiceRequest&)> cb) {
    on_complete_ = std::move(cb);
  }

  [[nodiscard]] bool busy() const { return active_.has_value(); }
  [[nodiscard]] std::optional<std::uint64_t> active_request() const {
    return active_ ? std::optional<std::uint64_t>(active_->req.request_id) : std::nullopt;
  }

  /// Admits a new request; the server must be idle.
  void submit(const ServiceRequest& req) {
    SPEAKUP_ASSERT(!busy());
    Job job;
    job.req = req;
    // Total work: difficulty quanta, each U[0.9/c, 1.1/c] seconds.
    double total = 0.0;
    for (int i = 0; i < req.difficulty; ++i) {
      total += rng_.uniform(0.9 / capacity_rps_, 1.1 / capacity_rps_);
    }
    job.remaining = Duration::seconds(total);
    start(std::move(job));
  }

  /// SUSPENDs the active request, saving its remaining work.
  void suspend() {
    SPEAKUP_ASSERT(busy());
    account_progress();
    completion_timer_.cancel();
    suspended_[active_->req.request_id] = *active_;
    active_.reset();
  }

  /// RESUMEs a previously suspended request; the server must be idle.
  void resume(std::uint64_t request_id) {
    SPEAKUP_ASSERT(!busy());
    const auto it = suspended_.find(request_id);
    SPEAKUP_ASSERT(it != suspended_.end());
    Job job = it->second;
    suspended_.erase(it);
    start(std::move(job));
  }

  /// ABORTs a suspended request, discarding its progress.
  void abort_suspended(std::uint64_t request_id) {
    const auto erased = suspended_.erase(request_id);
    SPEAKUP_ASSERT(erased == 1);
  }

  [[nodiscard]] bool is_suspended(std::uint64_t request_id) const {
    return suspended_.find(request_id) != suspended_.end();
  }
  [[nodiscard]] std::size_t suspended_count() const { return suspended_.size(); }

  // --- accounting (server time consumed, by class) ---
  [[nodiscard]] Duration good_busy_time() const { return good_busy_time_; }
  [[nodiscard]] Duration bad_busy_time() const { return bad_busy_time_; }
  [[nodiscard]] std::int64_t completed() const { return completed_; }

 private:
  struct Job {
    ServiceRequest req;
    Duration remaining = Duration::zero();
  };

  void start(Job job) {
    active_ = job;
    active_started_ = loop_->now();
    completion_timer_.restart(job.remaining);
  }

  /// Charges the class account for work done since the job (re)started.
  void account_progress() {
    SPEAKUP_ASSERT(active_.has_value());
    const Duration done = loop_->now() - active_started_;
    const Duration charged = std::min(done, active_->remaining);
    active_->remaining -= charged;
    if (active_->req.cls == http::ClientClass::kGood) {
      good_busy_time_ += charged;
    } else if (active_->req.cls == http::ClientClass::kBad) {
      bad_busy_time_ += charged;
    }
  }

  void on_work_slice_done() {
    SPEAKUP_ASSERT(busy());
    account_progress();
    SPEAKUP_ASSERT(active_->remaining == Duration::zero());
    const ServiceRequest done = active_->req;
    active_.reset();
    ++completed_;
    if (on_complete_) on_complete_(done);
  }

  sim::EventLoop* loop_;
  double capacity_rps_;
  util::RngStream rng_;
  std::function<void(const ServiceRequest&)> on_complete_;
  std::optional<Job> active_;
  SimTime active_started_;
  std::map<std::uint64_t, Job> suspended_;
  sim::Timer completion_timer_;
  Duration good_busy_time_ = Duration::zero();
  Duration bad_busy_time_ = Duration::zero();
  std::int64_t completed_ = 0;
};

}  // namespace speakup::server
