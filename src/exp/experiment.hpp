// Builds a ScenarioConfig into a simulated testbed, runs it, and harvests
// the numbers the paper's figures report.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/client_pool.hpp"
#include "client/client_stats.hpp"
#include "client/file_transfer.hpp"
#include "client/payment_proxy.hpp"
#include "client/workload_client.hpp"
#include "core/auction_thinner.hpp"
#include "core/front_end.hpp"
#include "core/no_defense.hpp"
#include "core/quantum_thinner.hpp"
#include "core/retry_thinner.hpp"
#include "core/thinner_stats.hpp"
#include "exp/scenario.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "stats/sample_set.hpp"
#include "transport/host.hpp"

namespace speakup::exp {

struct GroupResult {
  std::string label;
  int count = 0;
  http::ClientClass cls = http::ClientClass::kGood;
  std::string strategy;                       // the group's workload strategy
  client::ClientStats totals;                 // merged over the group's clients
  std::vector<std::int64_t> served_per_client;
  double allocation = 0.0;                    // share of all served requests
};

/// Per-strategy rollup: GroupResults merged across every group running the
/// same workload strategy (adversary-library breakdowns).
struct StrategyResult {
  std::string strategy;
  int clients = 0;
  client::ClientStats totals;
  double allocation = 0.0;  // share of all served requests
};

struct ExperimentResult {
  // Aggregates (by served request counts, as in Figures 2, 3, 6, 7, 8).
  std::int64_t served_total = 0;
  std::int64_t served_good = 0;
  std::int64_t served_bad = 0;
  double allocation_good = 0.0;
  double allocation_bad = 0.0;
  /// §5 metric: share of server *time* (heterogeneous requests make counts
  /// and time differ).
  double server_time_good = 0.0;
  double server_time_bad = 0.0;
  /// The paper's "fraction of good requests served" (Figure 3).
  double fraction_good_served = 0.0;
  double server_busy_fraction = 0.0;

  core::ThinnerStats thinner;
  std::vector<GroupResult> groups;

  /// Groups merged by workload strategy, in first-appearance order.
  [[nodiscard]] std::vector<StrategyResult> strategy_totals() const;

  /// The tournament's attacker-cost score: bytes the bad-class populations
  /// transmitted at the front end — payment-channel bytes plus a request
  /// header per request and retry sent. Derived entirely from fields the
  /// fingerprint already covers, so it adds no new determinism surface.
  [[nodiscard]] std::int64_t attacker_bytes() const;

  // §7.7 bystander.
  stats::SampleSet collateral_latencies;
  int collateral_failures = 0;

  // §9 payment proxy (zero when the scenario has none).
  std::int64_t proxy_relayed_requests = 0;
  std::int64_t proxy_payments_started = 0;

  // Run metadata.
  std::string defense;  // front-end registry name the run used
  Duration sim_duration = Duration::zero();
  std::uint64_t events_executed = 0;
  double wall_seconds = 0.0;  // host time; the one nondeterministic field

  /// FNV-1a digest of every deterministic field — two runs of the same
  /// scenario and seed must produce equal fingerprints no matter which
  /// thread (or process) ran them. wall_seconds is excluded.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

class Experiment {
 public:
  explicit Experiment(ScenarioConfig cfg);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs the scenario to completion and returns the harvested results.
  /// Callable once.
  ExperimentResult run();

  // Component access for tests.
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }

  /// The defense this experiment runs, whatever its concrete type.
  [[nodiscard]] core::FrontEnd* front_end() { return front_end_.get(); }

  // Typed views for tests that poke defense internals: each is just a
  // dynamic_cast of front_end(), null when the scenario runs another mode.
  [[nodiscard]] core::AuctionThinner* auction_thinner() {
    return dynamic_cast<core::AuctionThinner*>(front_end_.get());
  }
  [[nodiscard]] core::RetryThinner* retry_thinner() {
    return dynamic_cast<core::RetryThinner*>(front_end_.get());
  }
  [[nodiscard]] core::NoDefenseFrontEnd* no_defense() {
    return dynamic_cast<core::NoDefenseFrontEnd*>(front_end_.get());
  }
  [[nodiscard]] core::QuantumAuctionThinner* quantum_thinner() {
    return dynamic_cast<core::QuantumAuctionThinner*>(front_end_.get());
  }

  /// Object-engine clients only (pooled groups have no per-client objects).
  [[nodiscard]] const std::vector<std::unique_ptr<client::WorkloadClient>>& clients() const {
    return clients_;
  }
  /// ClientPools of the pooled-engine groups, in group order.
  [[nodiscard]] const std::vector<std::unique_ptr<client::ClientPool>>& client_pools() const {
    return pools_;
  }
  [[nodiscard]] client::PaymentProxy* payment_proxy() { return proxy_.get(); }

 private:
  /// How one client group runs: either a ClientPool or a contiguous range
  /// of clients_. Start order and harvest order walk these in group order,
  /// which is exactly the object engine's global client order.
  struct GroupRuntime {
    client::ClientPool* pool = nullptr;
    std::size_t first_client = 0;  // index into clients_ (object engine)
    std::size_t n_clients = 0;
  };

  void build();

  ScenarioConfig cfg_;
  sim::EventLoop loop_;
  std::unique_ptr<net::Network> net_;
  transport::Host* thinner_host_ = nullptr;
  std::unique_ptr<core::FrontEnd> front_end_;
  std::vector<std::unique_ptr<client::WorkloadClient>> clients_;
  std::vector<std::unique_ptr<client::ClientPool>> pools_;
  std::vector<GroupRuntime> group_rt_;  // parallel to cfg_.groups
  std::unique_ptr<client::PaymentProxy> proxy_;
  std::unique_ptr<client::StaticFileServer> file_server_;
  std::unique_ptr<client::FileTransferClient> downloader_;
  bool ran_ = false;
};

/// Convenience: build + run in one call.
[[nodiscard]] ExperimentResult run_scenario(const ScenarioConfig& cfg);

}  // namespace speakup::exp
