// Ablation A5: empirical validation of Theorem 3.1.
//
// The theorem: with regular service intervals, a client that continuously
// delivers an eps fraction of the thinner's inbound bandwidth wins at least
// eps/(2-eps) >= eps/2 of the auctions, *no matter how* the adversary times
// or divides its bytes. We run the auction game against adversary timing
// strategies (including the proof's reactive worst case) and service-time
// jitter, and print the measured fraction next to the bounds.
#include <cstdio>
#include <functional>
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace {

using speakup::util::RngStream;

/// One auction per service interval. `jitter` perturbs each interval's
/// budget by U[1-delta, 1+delta] (service-time fluctuation: a longer
/// interval lets everyone pay more before the next auction).
template <typename AdversaryFn>
double run_auction_game(double eps, double delta, int ticks, RngStream& rng,
                        AdversaryFn adversary) {
  double victim_bid = 0.0;
  std::map<int, double> adversary_bids;
  int victim_wins = 0;
  for (int t = 0; t < ticks; ++t) {
    const double interval = delta > 0 ? rng.uniform(1.0 - delta, 1.0 + delta) : 1.0;
    victim_bid += eps * interval;
    adversary(t, adversary_bids, victim_bid, (1.0 - eps) * interval);
    double best = 0.0;
    int best_id = -1;
    for (const auto& [id, bid] : adversary_bids) {
      if (bid > best) {
        best = bid;
        best_id = id;
      }
    }
    if (victim_bid > best) {
      ++victim_wins;
      victim_bid = 0.0;
    } else if (best_id >= 0) {
      adversary_bids[best_id] = 0.0;
    }
  }
  return static_cast<double>(victim_wins) / ticks;
}

}  // namespace

int main() {
  using namespace speakup;
  bench::print_banner("Ablation A5", "Theorem 3.1: service fraction vs eps/2 bound");
  bench::print_paper_note(
      "every adversary strategy leaves the eps-bandwidth client at least "
      "~eps/2 of the service; the reactive outbidder approaches the bound");

  const int kTicks = bench::full_mode() ? 500'000 : 100'000;
  RngStream rng(55, "abl5");

  using Adversary =
      std::function<void(int, std::map<int, double>&, double victim, double budget)>;
  const struct {
    const char* name;
    Adversary fn;
  } strategies[] = {
      {"single-saver",
       [](int, std::map<int, double>& b, double, double budget) { b[0] += budget; }},
      {"10-way-split",
       [](int, std::map<int, double>& b, double, double budget) {
         for (int i = 0; i < 10; ++i) b[i] += budget / 10;
       }},
      {"reactive-outbidder",
       [](int, std::map<int, double>& b, double victim, double budget) {
         b[1] += budget;  // bank
         const double need = victim - b[0];
         if (need > 0 && b[1] >= need) {
           b[0] += need;
           b[1] -= need;
         }
       }},
      {"bursty-hoard",
       [](int t, std::map<int, double>& b, double, double budget) {
         b[1] += budget;
         if (t % 50 == 0) {  // dump the hoard into the active bid
           b[0] += b[1];
           b[1] = 0;
         }
       }},
  };

  stats::Table table({"eps", "delta", "strategy", "measured", "eps/(2-eps)",
                      "jitter-bound"});
  for (const double eps : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    for (const double delta : {0.0, 0.1}) {
      for (const auto& s : strategies) {
        const double won = run_auction_game(eps, delta, kTicks, rng, s.fn);
        table.row()
            .add(eps, 2)
            .add(delta, 1)
            .add(s.name)
            .add(won, 4)
            .add(core::theory::theorem31_service_fraction(eps), 4)
            .add(core::theory::theorem31_service_fraction_jitter(eps, delta), 4);
      }
    }
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
