#include "net/network.hpp"

#include <deque>

namespace speakup::net {

Switch& Network::add_switch(std::string name) { return add_node<Switch>(std::move(name)); }

Link& Network::connect(const Node& a, const Node& b, const LinkSpec& ab, const LinkSpec& ba) {
  SPEAKUP_ASSERT(a.id() != b.id());
  SPEAKUP_ASSERT(link_between(a.id(), b.id()) == nullptr);  // single link per pair
  auto link = std::make_unique<Link>(*this, a.id(), b.id(), ab, ba);
  Link& ref = *link;
  const std::size_t idx = links_.size();
  links_.push_back(std::move(link));
  if (adjacency_.size() < nodes_.size()) adjacency_.resize(nodes_.size());
  adjacency_[static_cast<std::size_t>(a.id())].emplace_back(b.id(), idx);
  adjacency_[static_cast<std::size_t>(b.id())].emplace_back(a.id(), idx);
  routes_valid_ = false;
  return ref;
}

// Leaf-compressed shortest-path build. A degree-1 node (a client host, the
// thinner, any stub) can never relay traffic, so its routing decision is
// fixed: everything leaves over its single link. Only "core" nodes (degree
// >= 2) need next-hop tables, and a BFS restricted to the core picks the
// same parents the old full-graph BFS did — leaves discovered mid-BFS add
// no new frontier, so the relative order of core nodes in the frontier is
// unchanged, and with it every tie-break. With 10^5 access leaves and a
// handful of switches this is O(N + C^2) instead of the old O(N^2) matrix.
void Network::build_routes() {
  const std::size_t n = nodes_.size();
  adjacency_.resize(n);

  gateway_.assign(n, kInvalidNode);
  gateway_link_.assign(n, kNoLink);
  core_index_.assign(n, -1);
  core_nodes_.clear();
  for (std::size_t v = 0; v < n; ++v) {
    if (adjacency_[v].size() == 1) {
      gateway_[v] = adjacency_[v][0].first;
      gateway_link_[v] = adjacency_[v][0].second;
    } else if (adjacency_[v].size() >= 2) {
      core_index_[v] = static_cast<std::int32_t>(core_nodes_.size());
      core_nodes_.push_back(static_cast<NodeId>(v));
    }
  }

  // Connected components over the full graph: the reachability check that
  // the dense matrix used to encode as kInvalidNode entries.
  component_.assign(n, -1);
  std::int32_t comp = 0;
  std::deque<NodeId> frontier;
  for (std::size_t start = 0; start < n; ++start) {
    if (component_[start] != -1) continue;
    component_[start] = comp;
    frontier.push_back(static_cast<NodeId>(start));
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, link_idx] : adjacency_[static_cast<std::size_t>(u)]) {
        (void)link_idx;
        if (component_[static_cast<std::size_t>(v)] == -1) {
          component_[static_cast<std::size_t>(v)] = comp;
          frontier.push_back(v);
        }
      }
    }
    ++comp;
  }

  // BFS from every core destination over the core-induced subgraph:
  // core_next_hop_[v][dst] = parent-of-v on path to dst, with the link
  // recorded so forwarding never scans an adjacency list.
  const std::size_t c = core_nodes_.size();
  core_next_hop_.assign(c * c, kInvalidNode);
  core_next_link_.assign(c * c, kNoLink);
  std::vector<bool> seen(c);
  for (std::size_t dst_ci = 0; dst_ci < c; ++dst_ci) {
    seen.assign(c, false);
    seen[dst_ci] = true;
    frontier.push_back(core_nodes_[dst_ci]);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, link_idx] : adjacency_[static_cast<std::size_t>(u)]) {
        const std::int32_t v_ci = core_index_[static_cast<std::size_t>(v)];
        if (v_ci < 0 || seen[static_cast<std::size_t>(v_ci)]) continue;
        seen[static_cast<std::size_t>(v_ci)] = true;
        core_next_hop_[static_cast<std::size_t>(v_ci) * c + dst_ci] = u;
        core_next_link_[static_cast<std::size_t>(v_ci) * c + dst_ci] = link_idx;
        frontier.push_back(v);
      }
    }
  }
  routes_valid_ = true;
}

void Network::forward(NodeId from, Packet p) {
  if (!routes_valid_) build_routes();
  SPEAKUP_ASSERT(p.dst != kInvalidNode);
  const auto from_i = static_cast<std::size_t>(from);
  const auto dst_i = static_cast<std::size_t>(p.dst);
  if (from == p.dst || component_[from_i] != component_[dst_i]) {
    ++unroutable_drops_;
    return;
  }
  // A leaf has exactly one way out (the component check above already
  // guaranteed the destination is reachable through it).
  if (gateway_[from_i] != kInvalidNode) {
    links_[gateway_link_[from_i]]->send(from, std::move(p));
    return;
  }
  // From core: route toward the destination itself, or — when the
  // destination is a leaf — toward its gateway, with a direct final hop.
  NodeId target = p.dst;
  if (gateway_[dst_i] != kInvalidNode) {
    if (gateway_[dst_i] == from) {
      links_[gateway_link_[dst_i]]->send(from, std::move(p));
      return;
    }
    target = gateway_[dst_i];
  }
  const std::int32_t from_ci = core_index_[from_i];
  const std::int32_t target_ci = core_index_[static_cast<std::size_t>(target)];
  SPEAKUP_ASSERT(from_ci >= 0 && target_ci >= 0);
  const std::size_t cell = static_cast<std::size_t>(from_ci) * core_nodes_.size() +
                           static_cast<std::size_t>(target_ci);
  SPEAKUP_ASSERT(core_next_link_[cell] != kNoLink);
  links_[core_next_link_[cell]]->send(from, std::move(p));
}

void Network::deliver(NodeId to, Packet p) { node(to).on_packet(std::move(p)); }

Link* Network::link_between(NodeId a, NodeId b) const {
  if (static_cast<std::size_t>(a) >= adjacency_.size()) return nullptr;
  for (const auto& [nbr, idx] : adjacency_[static_cast<std::size_t>(a)]) {
    if (nbr == b) return links_[idx].get();
  }
  return nullptr;
}

}  // namespace speakup::net
