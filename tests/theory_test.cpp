// Tests for the paper's closed-form results (§2.1, §3.1, §3.3, §3.4),
// including a discrete-event validation of Theorem 3.1 against adversaries
// that time their bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/theory.hpp"
#include "util/rng.hpp"

namespace speakup::core::theory {
namespace {

TEST(Theory, IdealAllocationMatchesSection31) {
  // G = B -> half the server.
  EXPECT_DOUBLE_EQ(ideal_good_allocation(50.0, 50.0), 0.5);
  // G = B/9 -> a tenth.
  EXPECT_DOUBLE_EQ(ideal_good_allocation(10.0, 90.0), 0.1);
  EXPECT_DOUBLE_EQ(ideal_good_allocation(0.0, 90.0), 0.0);
  EXPECT_DOUBLE_EQ(ideal_good_allocation(0.0, 0.0), 0.0);
}

TEST(Theory, IdealServiceRateCapsAtDemand) {
  // Plenty of capacity: the good clients get all of g.
  EXPECT_DOUBLE_EQ(ideal_good_service_rate(50, 50, 50, 200), 50.0);
  // Overload: they get their bandwidth share of c.
  EXPECT_DOUBLE_EQ(ideal_good_service_rate(50, 50, 50, 50), 25.0);
}

TEST(Theory, ProvisioningRequirement) {
  // §3.1: B = G -> c_id = 2g.
  EXPECT_DOUBLE_EQ(ideal_provisioning(50.0, 50.0, 50.0), 100.0);
  // Spare capacity 90% example from §2.1: B/G = 9 -> c_id = 10g.
  EXPECT_DOUBLE_EQ(ideal_provisioning(10.0, 10.0, 90.0), 100.0);
}

TEST(Theory, ProvisioningSatisfiesGoalExactly) {
  // At c = c_id the ideal service rate equals the good demand g.
  const double g = 37.0;
  const double G = 120.0;
  const double B = 300.0;
  const double cid = ideal_provisioning(g, G, B);
  EXPECT_NEAR(ideal_good_service_rate(g, G, B, cid), g, 1e-9);
  // Just below c_id, demand is not met.
  EXPECT_LT(ideal_good_service_rate(g, G, B, cid * 0.99), g);
}

TEST(Theory, AveragePrice) {
  // §3.3: (G+B)/c bytes per request.
  EXPECT_DOUBLE_EQ(average_price_bytes(6.25e6, 6.25e6, 100.0), 125'000.0);
  EXPECT_DOUBLE_EQ(average_price_bytes(6.25e6, 6.25e6, 50.0), 250'000.0);
}

TEST(Theory, Theorem31Bounds) {
  // eps/(2-eps) >= eps/2 always, equality only at eps in {0, 1}.
  for (const double eps : {0.01, 0.1, 0.25, 0.5, 0.9}) {
    EXPECT_GE(theorem31_service_fraction(eps), theorem31_service_fraction_loose(eps));
  }
  EXPECT_DOUBLE_EQ(theorem31_service_fraction(1.0), 1.0);
  EXPECT_DOUBLE_EQ(theorem31_service_fraction_loose(0.5), 0.25);
  // Jitter version degrades gracefully: delta=0 recovers eps/2, delta=0.5
  // voids the guarantee.
  EXPECT_DOUBLE_EQ(theorem31_service_fraction_jitter(0.4, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(theorem31_service_fraction_jitter(0.4, 0.5), 0.0);
}

TEST(Theory, NoDefenseAllocation) {
  EXPECT_NEAR(no_defense_good_allocation(50.0, 1000.0), 0.0476, 0.0001);
}

// ---------------------------------------------------------------------------
// Discrete validation of Theorem 3.1: a victim client delivers an eps
// fraction of the total bandwidth; the adversary times its bytes according
// to various strategies; service is perfectly regular (one auction per
// tick). The victim must win at least eps/(2-eps) of the auctions minus
// discretization slack.
// ---------------------------------------------------------------------------

/// One auction per tick; bids accumulate; winner's bid resets to zero.
/// Returns the fraction of auctions the victim won.
/// `adversary` decides, each tick, how to distribute its per-tick budget
/// across its (unbounded) set of virtual clients.
template <typename AdversaryFn>
double run_auction_game(double eps, int ticks, AdversaryFn adversary) {
  // Victim deposits eps per tick; adversary deposits (1-eps) per tick in
  // total, split however it likes.
  double victim_bid = 0.0;
  std::map<int, double> adversary_bids;
  int victim_wins = 0;
  for (int t = 0; t < ticks; ++t) {
    victim_bid += eps;
    adversary(t, adversary_bids, victim_bid);
    // Auction: victim vs best adversary bid. Adversary wins ties (worst
    // case for the victim).
    double best = 0.0;
    int best_id = -1;
    for (const auto& [id, bid] : adversary_bids) {
      if (bid > best) {
        best = bid;
        best_id = id;
      }
    }
    if (victim_bid > best) {
      ++victim_wins;
      victim_bid = 0.0;
    } else if (best_id >= 0) {
      adversary_bids[best_id] = 0.0;
    }
  }
  return static_cast<double>(victim_wins) / ticks;
}

struct Theorem31Case {
  const char* name;
  double eps;
};

class Theorem31Test : public ::testing::TestWithParam<Theorem31Case> {};

TEST_P(Theorem31Test, SingleSaverAdversary) {
  // Adversary concentrates everything in one bid.
  const double eps = GetParam().eps;
  const double won = run_auction_game(eps, 20000, [&](int, std::map<int, double>& bids, double) {
    bids[0] += 1.0 - eps;
  });
  EXPECT_GE(won, theorem31_service_fraction(eps) * 0.95);
}

TEST_P(Theorem31Test, ManyEqualAdversaries) {
  // Adversary splits across 10 equal clients.
  const double eps = GetParam().eps;
  const double won = run_auction_game(eps, 20000, [&](int, std::map<int, double>& bids, double) {
    for (int i = 0; i < 10; ++i) bids[i] += (1.0 - eps) / 10.0;
  });
  EXPECT_GE(won, theorem31_service_fraction(eps) * 0.95);
}

TEST_P(Theorem31Test, ReactiveOutbidder) {
  // The proof's worst case: the adversary watches the victim's bid and
  // spends just enough to beat it, banking the rest.
  const double eps = GetParam().eps;
  const double won =
      run_auction_game(eps, 20000, [&](int, std::map<int, double>& bids, double victim) {
        double& active = bids[0];
        double& bank = bids[1];
        bank += 1.0 - eps;
        // Move exactly enough from the bank to outbid the victim.
        const double need = victim - active;
        if (need > 0 && bank >= need) {
          active += need;
          bank -= need;
        }
      });
  // This strategy approaches the eps/2-ish floor; it must not go below it.
  EXPECT_GE(won, theorem31_service_fraction_loose(eps) * 0.9);
}

TEST_P(Theorem31Test, RandomizedAdversary) {
  const double eps = GetParam().eps;
  util::RngStream rng(99, "thm31");
  const double won =
      run_auction_game(eps, 20000, [&](int, std::map<int, double>& bids, double) {
        const int k = static_cast<int>(rng.uniform_int(0, 4));
        bids[k] += 1.0 - eps;
      });
  EXPECT_GE(won, theorem31_service_fraction(eps) * 0.95);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem31Test,
                         ::testing::Values(Theorem31Case{"eps05", 0.05},
                                           Theorem31Case{"eps10", 0.10},
                                           Theorem31Case{"eps25", 0.25},
                                           Theorem31Case{"eps50", 0.50}),
                         [](const ::testing::TestParamInfo<Theorem31Case>& i) {
                           return i.param.name;
                         });

}  // namespace
}  // namespace speakup::core::theory
