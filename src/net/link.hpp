// Full-duplex point-to-point link.
//
// Each direction has its own serialization rate, propagation delay and
// drop-tail queue, modeled store-and-forward: a packet is dequeued, occupies
// the transmitter for wire_size/rate, then arrives after the propagation
// delay (propagation does not block the next transmission).
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/event_loop.hpp"
#include "util/units.hpp"

namespace speakup::net {

class Network;

struct LinkSpec {
  Bandwidth rate;
  Duration delay;                      // one-way propagation
  Bytes queue_capacity = 96'000;       // ~64 full-size packets
};

class Link {
 public:
  Link(Network& net, NodeId a, NodeId b, const LinkSpec& ab, const LinkSpec& ba);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sends `p` from endpoint `from` toward the other endpoint.
  void send(NodeId from, Packet p);

  [[nodiscard]] NodeId endpoint_a() const { return a_; }
  [[nodiscard]] NodeId endpoint_b() const { return b_; }
  [[nodiscard]] NodeId other(NodeId n) const { return n == a_ ? b_ : a_; }

  /// Statistics for the direction whose *source* is `from`.
  [[nodiscard]] const DropTailQueue& queue_from(NodeId from) const {
    return dir_for(from).queue;
  }
  [[nodiscard]] Bytes bytes_delivered_from(NodeId from) const {
    return dir_for(from).delivered_bytes;
  }

 private:
  struct Direction {
    Direction(const LinkSpec& spec, NodeId to)
        : rate(spec.rate), delay(spec.delay), queue(spec.queue_capacity), dst(to) {}
    Bandwidth rate;
    Duration delay;
    DropTailQueue queue;
    NodeId dst;
    bool transmitting = false;
    Bytes delivered_bytes = 0;
  };

  void transmit(Direction& d, Packet p);
  Direction& dir_for(NodeId from) { return from == a_ ? ab_ : ba_; }
  [[nodiscard]] const Direction& dir_for(NodeId from) const { return from == a_ ? ab_ : ba_; }

  Network* net_;
  NodeId a_;
  NodeId b_;
  Direction ab_;
  Direction ba_;
};

}  // namespace speakup::net
