// Deterministic discrete-event loop.
//
// The loop owns a virtual clock and orders events by (fire-time, sequence).
// Ties on fire-time are broken by insertion order, which — with
// per-component RNG streams (util/rng.hpp) — makes whole experiments
// bit-reproducible.
//
// Hot-path design (this is the innermost loop of every experiment):
//   - Callbacks live in a slab (vector) of pooled records recycled through
//     a free list; EventIds address records by (slot, generation), so
//     neither schedule nor cancel ever touches the allocator once the slab
//     and queues have reached their steady-state size.
//   - The callback type is sim::EventFn — a 64-byte in-place closure that
//     refuses oversized captures at compile time (see event_fn.hpp).
//   - Pending events live in one of two stores. Deadlines between ~1 ms
//     (the wheel's deliberate level-0 cutoff — see TimerWheel::insert) and
//     ~275 s out sit in a hierarchical timer wheel (timer_wheel.hpp): O(1)
//     schedule, O(1) eager cancel — the protocol-timeout pattern (every
//     TCP ack re-arms the RTO) never touches the heap. Everything else
//     (imminent or far-future) sits in a 4-ary implicit heap of 24-byte
//     POD entries — shallower and more cache-friendly than the binary
//     heap it replaced. The wheel never fires
//     anything: due slots are drained into the heap, where entries re-sort
//     by their original (time, seq) key, so firing order is bit-identical
//     to a single-heap loop by construction.
//   - Heap cancellation is O(1): bump the record's generation and free the
//     slot; the heap entry remains as a tombstone. Tombstones are shed when
//     they reach the top, and the heap is compacted whenever tombstones
//     exceed half its size. Wheel cancellation unlinks eagerly and leaves
//     no tombstone at all.
//
// speakup-lint: hot-path (allocation-free steady state; growth sites must
// be amortized and allowlisted in tools/lint_allowlist.txt)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/timer_wheel.hpp"
#include "util/assert.hpp"
#include "util/audit.hpp"
#include "util/units.hpp"

namespace speakup::obs {
class Observer;  // observability hub (obs/observer.hpp); loop stores a raw ptr
}  // namespace speakup::obs

namespace speakup::sim {

class EventLoop;

/// Handle to a scheduled event; lets the owner cancel it. Default-constructed
/// handles are inert. Copies address the same underlying event (a generation
/// check makes stale copies harmless). Plain trivially-copyable value — no
/// reference counting. Must not be queried after its EventLoop is destroyed.
class EventId {
 public:
  EventId() = default;
  [[nodiscard]] bool valid() const { return loop_ != nullptr; }
  [[nodiscard]] inline bool pending() const;

 private:
  friend class EventLoop;
  EventId(EventLoop* loop, std::uint32_t slot, std::uint32_t gen)
      : loop_(loop), slot_(slot), gen_(gen) {}
  EventLoop* loop_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// The representable horizon: the last instant an event can fire at.
  static constexpr SimTime max_time() { return SimTime::from_ns(INT64_MAX); }

  /// Schedules `fn` to run `delay` from now. Returns a cancellation handle.
  /// A delay that would overflow the clock saturates to max_time() (so
  /// Duration::infinite() and friends behave as "at the end of time", not
  /// as a wrapped-negative assertion failure).
  EventId schedule(Duration delay, EventFn fn) {
    return schedule_at(saturated_deadline(delay), std::move(fn));
  }

  /// Schedules `fn` at an absolute time. Rejects times in the past or past
  /// the representable horizon with a diagnostic (a negative `when` is
  /// almost always an overflowed Duration arithmetic upstream).
  EventId schedule_at(SimTime when, EventFn fn) {
    if (when < now_) {
      util::require(false, "EventLoop::schedule_at: time " + std::to_string(when.ns()) +
                               "ns is before now " + std::to_string(now_.ns()) +
                               "ns (negative times usually mean Duration overflow)");
    }
    const std::uint32_t slot = acquire_slot();
    Record& rec = slab_[slot];
    rec.fn = std::move(fn);
    rec.armed = true;
    file_entry(when, slot);
    ++pending_;
    return EventId{this, slot, rec.gen};
  }

  /// Reserves the next position in the global tie-break order without
  /// scheduling anything. A caller that *would have* scheduled an event here
  /// — but wants to coalesce many logical deadlines into one armed event
  /// (client::ClientPool batches one arrival deadline per cohort) — takes a
  /// seq now and later files it with schedule_keyed. Seq consumption is
  /// therefore identical to the unbatched code, which is what keeps batched
  /// runs bit-identical to per-object runs.
  [[nodiscard]] std::uint64_t reserve_seq() { return next_seq_++; }

  /// Schedules `fn` at an absolute time under a previously reserved seq
  /// (reserve_seq). The entry sorts exactly where an event scheduled at
  /// reservation position would have sorted; no new seq is consumed. The
  /// same reserved key may be re-filed after a cancel (re-arming a cohort
  /// deadline): keys need only be unique among simultaneously filed entries,
  /// which reservation order guarantees.
  EventId schedule_keyed(SimTime when, std::uint64_t seq, EventFn fn) {
    util::require(when >= now_, "EventLoop::schedule_keyed: time is before now");
    SPEAKUP_ASSERT(seq < next_seq_);  // must come from reserve_seq
    const std::uint32_t slot = acquire_slot();
    Record& rec = slab_[slot];
    rec.fn = std::move(fn);
    rec.armed = true;
    file_entry(when, seq, slot);
    ++pending_;
    return EventId{this, slot, rec.gen};
  }

  /// Moves a still-pending event to a new deadline, keeping its callback.
  /// Exactly equivalent to cancel(id) + schedule(delay, <same callback>) —
  /// same generation bump, same (time, seq) ordering key, same slot-reuse
  /// pattern — but skips destroying and re-creating the callback and the
  /// free-list round-trip, which is what makes per-ack RTO re-arming cheap.
  /// Precondition: the event is pending (restart-style callers check).
  /// Invalidates `id` and every copy; returns the replacement handle.
  EventId reschedule(EventId id, Duration delay) {
    SPEAKUP_ASSERT(id.loop_ == this && slot_pending(id.slot_, id.gen_));
    const SimTime when = saturated_deadline(delay);
    Record& rec = slab_[id.slot_];
    ++rec.gen;  // old handles (and any old heap entry) are now stale
    bool tombstoned = false;
    if (rec.wheel_node != TimerWheel::kNil) {
      wheel_.remove(rec.wheel_node);
    } else {
      ++tombstones_;
      tombstoned = true;
    }
    file_entry(when, id.slot_);
    // Compact only after the record is re-filed: maybe_compact runs a full
    // audit in SPEAKUP_AUDIT builds, and between the gen bump and file_entry
    // the armed record is resident in neither store.
    if (tombstoned) maybe_compact();
    return EventId{this, id.slot_, rec.gen};
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  /// O(1) either way: a wheel-resident event is unlinked eagerly; a
  /// heap-resident one leaves a tombstone behind (see maybe_compact).
  void cancel(EventId& id) {
    if (id.loop_ == this && slot_pending(id.slot_, id.gen_)) {
      Record& rec = slab_[id.slot_];
      rec.armed = false;
      rec.fn.reset();  // release captured state promptly
      ++rec.gen;
      --pending_;
      if (rec.wheel_node != TimerWheel::kNil) {
        wheel_.remove(rec.wheel_node);
        rec.wheel_node = TimerWheel::kNil;
        release_slot(id.slot_);
      } else {
        release_slot(id.slot_);
        ++tombstones_;
        maybe_compact();
      }
    }
    id.loop_ = nullptr;
  }

  /// Runs events until the queue empties or the clock passes `end`; the
  /// clock then reads `end` (time passes even when nothing happens).
  /// Events scheduled exactly at `end` do run.
  void run_until(SimTime end) {
    while (step(end.ns())) {
    }
    if (now_ < end) now_ = end;
  }

  /// Runs until no events remain, leaving the clock at the last event (use
  /// with care: self-rescheduling processes make this unbounded). Drains
  /// genuinely everything — there is no silent internal horizon.
  void run() {
    while (step(max_time().ns())) {
    }
  }

  /// Number of scheduled-but-not-yet-fired events.
  [[nodiscard]] std::size_t pending_events() const { return pending_; }

  /// Total events executed so far (for performance reporting).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Heap entries currently held, including tombstones (introspection for
  /// tests of the compaction policy). Wheel-resident events are not
  /// included — see wheel_size().
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

  /// Events currently filed in the timer wheel (introspection for tests;
  /// cancelled wheel events are unlinked eagerly, so this counts live
  /// events only).
  [[nodiscard]] std::size_t wheel_size() const { return wheel_.size(); }

  // --- observability ---------------------------------------------------------
  // The loop is the one object every simulated component can already reach,
  // so it carries the (untyped) pointer to the run's obs::Observer. Probe
  // sites read it per call: `if (auto* o = loop().observer()) o->on_x(...)`.
  // With no observer attached the sole cost is a pointer load.

  void set_observer(obs::Observer* o) { observer_ = o; }
  [[nodiscard]] obs::Observer* observer() const { return observer_; }

  /// Interval-sampling hook: called from step() when the clock reaches
  /// `next_sample_ns`; receives the context and the current time and
  /// returns the next deadline. Deliberately NOT a scheduled event — the
  /// hook adds nothing to the queues, so `executed_events()` (and with it
  /// every scenario fingerprint) is identical whether sampling is on or
  /// off. Disabled cost: one compare against INT64_MAX per step.
  using SampleHook = std::int64_t (*)(void* ctx, std::int64_t now_ns);

  void set_sample_hook(SampleHook hook, void* ctx, std::int64_t first_deadline_ns) {
    sample_hook_ = hook;
    sample_ctx_ = ctx;
    next_sample_ns_ = first_deadline_ns;
  }

  void clear_sample_hook() {
    sample_hook_ = nullptr;
    sample_ctx_ = nullptr;
    next_sample_ns_ = INT64_MAX;
  }

#if SPEAKUP_AUDIT_ENABLED
  /// Full structural audit (SPEAKUP_AUDIT builds only): 4-ary heap property,
  /// tombstone accounting, slab/free-list consistency, heap-vs-wheel
  /// residency cross-checks, and the wheel's own audit. Runs automatically
  /// every kAuditPeriod fired events and after each compaction; tests may
  /// call it at any quiescent point (not from inside a callback — a firing
  /// event's slot is released before its callback runs).
  void audit() const {
    // 4-ary heap property over the (when, seq) total order.
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      SPEAKUP_AUDIT_CHECK(!earlier(heap_[i], heap_[(i - 1) >> 2]),
                          "EventLoop: 4-ary heap property violated");
    }
    // Tombstone accounting, and no event resident in both stores.
    std::size_t live_heap = 0;
    for (const HeapEntry& e : heap_) {
      SPEAKUP_AUDIT_CHECK(e.slot < slab_.size(), "EventLoop: heap entry slot out of range");
      if (live(e)) {
        ++live_heap;
        SPEAKUP_AUDIT_CHECK(slab_[e.slot].wheel_node == TimerWheel::kNil,
                            "EventLoop: live heap entry must not also be wheel-resident");
      }
    }
    SPEAKUP_AUDIT_CHECK(heap_.size() - live_heap == tombstones_,
                        "EventLoop: tombstones_ must count the dead heap entries");
    // Slab: armed records are exactly the pending events, and an armed
    // record's wheel handle (when present) points to a linked node filed
    // under this (slot, generation).
    std::size_t armed = 0;
    for (std::uint32_t s = 0; s < slab_.size(); ++s) {
      const Record& rec = slab_[s];
      if (!rec.armed) continue;
      ++armed;
      if (rec.wheel_node != TimerWheel::kNil) {
        SPEAKUP_AUDIT_CHECK(wheel_.audit_node(rec.wheel_node, s, rec.gen),
                            "EventLoop: armed record's wheel node must link back to it");
      }
    }
    SPEAKUP_AUDIT_CHECK(armed == pending_, "EventLoop: pending_ must count the armed records");
    SPEAKUP_AUDIT_CHECK(live_heap + wheel_.size() == pending_,
                        "EventLoop: every pending event lives in exactly one store");
    // Free list: in range, unarmed, acyclic, and together with the armed
    // records it covers the whole slab.
    std::size_t free_len = 0;
    for (std::uint32_t s = free_head_; s != kNilSlot; s = slab_[s].next_free) {
      SPEAKUP_AUDIT_CHECK(s < slab_.size(), "EventLoop: free-list slot out of range");
      SPEAKUP_AUDIT_CHECK(!slab_[s].armed, "EventLoop: free-list slot must be unarmed");
      ++free_len;
      SPEAKUP_AUDIT_CHECK(free_len <= slab_.size(), "EventLoop: free-list cycle");
    }
    SPEAKUP_AUDIT_CHECK(armed + free_len == slab_.size(),
                        "EventLoop: every slab slot is either armed or on the free list");
    wheel_.audit();
  }

  /// Deliberate corruption hooks for tests/audit_test.cpp: prove the audit
  /// actually detects faults, not just that clean runs stay quiet.
  void corrupt_heap_for_test() {
    if (!heap_.empty()) heap_.back().when_ns = -1;
  }
  void corrupt_wheel_for_test() { wheel_.corrupt_bitmap_for_test(); }
#endif

 private:
  friend class EventId;

  static constexpr std::uint32_t kNilSlot = UINT32_MAX;
  /// Below this size the heap is left alone: compacting a few dozen entries
  /// buys nothing and would thrash on small workloads.
  static constexpr std::size_t kCompactMin = 64;

  struct Record {
    EventFn fn;
    std::uint32_t gen = 0;
    bool armed = false;
    std::uint32_t next_free = kNilSlot;
    /// Wheel node handle while the event waits in the wheel; kNil once it
    /// is heap-resident (imminent, far-future, or drained).
    std::uint32_t wheel_node = TimerWheel::kNil;
  };

  struct HeapEntry {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// The total order (when, seq): unique per entry, so every heap shape —
  /// and the compaction rebuild — pops in exactly the same sequence.
  /// Written with non-short-circuit operators so the comparison compiles
  /// to straight-line code (cmov, no data-dependent branches): the min-of-
  /// four-children scan in the sift loops is mispredict-bound otherwise.
  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return (a.when_ns < b.when_ns) |
           ((a.when_ns == b.when_ns) & (a.seq < b.seq));
  }

  // --- 4-ary implicit heap over heap_ --------------------------------------
  // Shallower than a binary heap (log4 vs log2 levels) and each node's four
  // children share a cache line, so sift paths touch roughly half the lines.

  void heap_push(const HeapEntry& e) {
    heap_.push_back(e);
    place_up(heap_.size() - 1, e);
  }

  /// Pop uses the classic hole-descent: walk the hole from the root to a
  /// leaf always promoting the earliest child (no compare against the
  /// displaced element on the way down), then bubble the displaced back()
  /// element up from the leaf. The displaced element came from leaf depth,
  /// so the bubble-up almost always stops immediately — this is the same
  /// strategy libstdc++'s __adjust_heap uses, adapted to four children.
  void heap_pop_front() {
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    place_up(i, e);
  }

  /// Moves `e` (destined for position i) up toward the root to its final
  /// position. Precondition: heap_[i] is a hole (or e itself).
  void place_up(std::size_t i, const HeapEntry& e) {
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Standard Floyd heapify over the 4-ary layout (used after compaction):
  /// sift each internal node down, deepest first.
  void sift_down(std::size_t i) {
    const HeapEntry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  void heap_rebuild() {
    for (std::size_t i = heap_.size() / 4 + 1; i-- > 0;) sift_down(i);
  }

  /// now + delay, saturated to max_time() on overflow.
  [[nodiscard]] SimTime saturated_deadline(Duration delay) const {
    SPEAKUP_ASSERT(delay >= Duration::zero());
    const std::int64_t headroom = max_time().ns() - now_.ns();
    return delay.ns() > headroom ? max_time() : now_ + delay;
  }

  /// Files `slot`'s (deadline, fresh seq) key into the wheel when the
  /// deadline qualifies, else the heap. The single place the store-choice
  /// policy lives — schedule_at and reschedule must not diverge.
  void file_entry(SimTime when, std::uint32_t slot) {
    file_entry(when, next_seq_++, slot);
  }

  /// Keyed variant: files under a caller-supplied (reserved) seq. Store
  /// choice cannot affect firing order — the wheel only ever drains into
  /// the heap, where entries re-sort by (when, seq).
  void file_entry(SimTime when, std::uint64_t seq, std::uint32_t slot) {
    Record& rec = slab_[slot];
    const std::uint32_t node =
        wheel_.insert(TimerWheel::Entry{when.ns(), seq, slot, rec.gen});
    rec.wheel_node = node;
    if (node == TimerWheel::kNil) {
      heap_push(HeapEntry{when.ns(), seq, slot, rec.gen});
    }
  }

  [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slab_.size() && slab_[slot].gen == gen && slab_[slot].armed;
  }
  [[nodiscard]] bool live(const HeapEntry& e) const {
    return slab_[e.slot].gen == e.gen && slab_[e.slot].armed;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slab_[slot].next_free;
      return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
  }

  void release_slot(std::uint32_t slot) {
    slab_[slot].next_free = free_head_;
    free_head_ = slot;
  }

  /// Moves every wheel slot that could precede the heap's next live entry
  /// (or `end_ns`) into the heap, where the entries re-sort by (when, seq).
  /// After this returns, the heap front — if due — is globally earliest.
  void promote_due_wheel_slots(std::int64_t end_ns) {
    while (!heap_.empty() && !live(heap_.front())) {  // shed tombstones
      heap_pop_front();
      --tombstones_;
    }
    if (wheel_.empty()) return;
    const std::int64_t heap_top = heap_.empty() ? INT64_MAX : heap_.front().when_ns;
    const std::int64_t threshold = heap_top < end_ns ? heap_top : end_ns;
    // Hint first: a cheap field read rules out a poll on almost every
    // step. The hint is never too high, so trusting it cannot fire a
    // heap event ahead of an earlier wheel entry.
    if (wheel_.lower_bound_hint_ns() > threshold) return;
    // poll drains every slot at or before the threshold, so afterwards no
    // wheel entry can precede the (possibly new) heap front: drained
    // entries are pushed live, and the heap top can only move earlier.
    wheel_.poll(threshold, [this](const TimerWheel::Entry& e) {
      slab_[e.slot].wheel_node = TimerWheel::kNil;
      heap_push(HeapEntry{e.when_ns, e.seq, e.slot, e.gen});
    });
  }

  /// Fires the next due event (<= end_ns); returns false if none.
  bool step(std::int64_t end_ns) {
    promote_due_wheel_slots(end_ns);
    if (heap_.empty() || heap_.front().when_ns > end_ns) return false;
    const HeapEntry top = heap_.front();
    heap_pop_front();
    Record& rec = slab_[top.slot];
    SPEAKUP_ASSERT(top.when_ns >= now_.ns());
    now_ = SimTime::from_ns(top.when_ns);
    // Retire the record before invoking: the callback may schedule (reusing
    // this very slot), cancel, or destroy its own captures.
    EventFn fn = std::move(rec.fn);
    rec.armed = false;
    ++rec.gen;
    release_slot(top.slot);
    --pending_;
    ++executed_;
    // Sample before firing: this is the first event at or past the
    // boundary, so the registry sees state exactly as of the boundary.
    // The null check lives inside the branch so the hot path stays one
    // compare; with no hook the INT64_MAX sentinel is still reachable by
    // an event scheduled at max_time() itself.
    if (top.when_ns >= next_sample_ns_ && sample_hook_ != nullptr) {
      next_sample_ns_ = sample_hook_(sample_ctx_, top.when_ns);
    }
    fn();
    SPEAKUP_AUDIT_ONLY(if (--audit_countdown_ == 0) {
      audit_countdown_ = kAuditPeriod;
      audit();
    })
    return true;
  }

  /// Rebuilds the heap without tombstones once they outnumber live entries.
  /// The comparator is a total order over unique (time, seq) pairs, so the
  /// rebuilt heap pops in exactly the same order as the lazy one.
  void maybe_compact() {
    if (heap_.size() < kCompactMin || tombstones_ * 2 <= heap_.size()) return;
    std::size_t kept = 0;
    for (const HeapEntry& e : heap_) {
      if (live(e)) heap_[kept++] = e;
    }
    heap_.resize(kept);
    heap_rebuild();
    tombstones_ = 0;
    SPEAKUP_AUDIT_ONLY(audit();)
  }

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<HeapEntry> heap_;
  TimerWheel wheel_;
  std::vector<Record> slab_;
  std::uint32_t free_head_ = kNilSlot;
  obs::Observer* observer_ = nullptr;
  SampleHook sample_hook_ = nullptr;
  void* sample_ctx_ = nullptr;
  std::int64_t next_sample_ns_ = INT64_MAX;
#if SPEAKUP_AUDIT_ENABLED
  /// Amortization: a full audit is O(slab + heap + wheel), so it runs once
  /// per this many fired events (plus after every compaction).
  static constexpr std::uint64_t kAuditPeriod = 1024;
  std::uint64_t audit_countdown_ = kAuditPeriod;
#endif
};

inline bool EventId::pending() const {
  return loop_ != nullptr && loop_->slot_pending(slot_, gen_);
}

}  // namespace speakup::sim
