// Hierarchical timer wheel: the EventLoop's near-deadline store.
//
// Motivation: RTO-dominated workloads arm, cancel, and re-arm timers on
// every acknowledged flight. In a binary heap each of those re-arms is an
// O(log n) push plus a tombstone that later costs a pop and participates in
// compaction. In the wheel both schedule and cancel are O(1): an entry is
// linked into a doubly-linked slot list chosen by its deadline, and a
// cancelled entry is unlinked and recycled immediately — a timer that never
// fires (the overwhelmingly common case) never touches the heap at all.
//
// Structure: kLevels levels of 64 slots. A level-0 slot covers one tick
// (2^kTickBits ns ≈ 16.4 µs); each higher level covers 64× the span of the
// one below, so the whole wheel spans 64^4 ticks ≈ 275 s. Deadlines past
// the span — and deadlines below tick resolution — stay in the caller's
// overflow heap, which also remains the final ordering stage: the wheel
// never fires anything itself. The EventLoop *drains* due slots into its
// heap, where entries re-sort by their original (time, sequence) key, so
// the wheel is invisible to firing order — runs are bit-identical to a
// pure-heap loop by construction.
//
// The level of an entry is the bit-group of the highest bit in which its
// deadline tick differs from the wheel clock (`cur_tick_`), tokio-style.
// That choice makes every occupied slot lie strictly ahead of the cursor in
// the current rotation, which keeps `next_lower_bound_ns` a one-ctz-per-
// level scan with no wrap ambiguity.
//
// Nodes live in a slab recycled through a free list: steady-state insert /
// remove / drain perform zero heap allocations.
//
// speakup-lint: hot-path (allocation-free steady state; growth sites must
// be amortized and allowlisted in tools/lint_allowlist.txt)
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/audit.hpp"

namespace speakup::sim {

class TimerWheel {
 public:
  static constexpr std::uint32_t kNil = UINT32_MAX;

  TimerWheel() {
    for (auto& level : heads_) {
      for (auto& head : level) head = kNil;
    }
  }
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kSlotBits;  // 64
  static constexpr int kTickBits = 14;                   // 16.384 µs per tick

  /// What the caller stores per pending event (mirrors its heap entry).
  struct Entry {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::uint32_t slot;  // the EventLoop's slab slot
    std::uint32_t gen;
  };

  /// Files `e` under the slot covering its deadline. Returns a node handle
  /// for remove(), or kNil when the deadline is out of the wheel's range —
  /// already inside the drained-past prefix, too near, or beyond the span —
  /// in which case the caller keeps the entry in its overflow heap.
  ///
  /// Deadlines that would land in level 0 (within ~1 ms) are deliberately
  /// rejected too: they are almost always packet-pipeline events that fire
  /// unconditionally in a moment, and routing them through the wheel would
  /// cost an insert + drain round-trip on top of the heap push they need
  /// anyway. Level 0 only receives entries cascading down from coarser
  /// levels. The wheel therefore holds exactly the protocol-timer
  /// population — RTOs, request timeouts, payment windows — which is the
  /// population that gets cancelled and re-armed constantly.
  std::uint32_t insert(const Entry& e) {
    const std::int64_t when_tick = e.when_ns >> kTickBits;
    if (when_tick <= cur_tick_) return kNil;
    const auto diff =
        static_cast<std::uint64_t>(when_tick) ^ static_cast<std::uint64_t>(cur_tick_);
    const int level = (63 - std::countl_zero(diff)) / kSlotBits;
    if (level == 0 || level >= kLevels) return kNil;  // too near / beyond the span
    const auto slot = static_cast<std::uint32_t>(
        (when_tick >> (level * kSlotBits)) & (kSlotsPerLevel - 1));
    const std::uint32_t node = acquire_node();
    Node& n = pool_[node];
    n.entry = e;
    n.level = static_cast<std::uint8_t>(level);
    n.slot = static_cast<std::uint8_t>(slot);
    link(node, level, slot);
    const std::int64_t start_ns = slot_start_tick(level, slot) << kTickBits;
    lb_hint_ns_ = size_ == 0 ? start_ns : (start_ns < lb_hint_ns_ ? start_ns : lb_hint_ns_);
    ++size_;
    return node;
  }

  /// O(1) unlink + recycle of a pending node (cancellation).
  void remove(std::uint32_t node) {
    SPEAKUP_ASSERT(node < pool_.size() && pool_[node].linked);
    unlink(node);
    release_node(node);
    --size_;
    if (size_ == 0) lb_hint_ns_ = INT64_MAX;
  }

  /// A valid lower bound on the earliest wheel deadline, readable without
  /// a bitmap scan. May be loose (too low) after removals and drains —
  /// never too high — so the caller uses it as a cheap "nothing can be
  /// due" filter and calls poll() only when the hint says otherwise.
  [[nodiscard]] std::int64_t lower_bound_hint_ns() const { return lb_hint_ns_; }

  /// Drains slots until no remaining slot could hold an entry firing at or
  /// before the caller's next event, then tightens the hint and returns
  /// the remaining lower bound (INT64_MAX when empty). `threshold_ns`
  /// starts as the caller's current frontier (heap top / run deadline) and
  /// tightens to the earliest emitted entry as the drain proceeds — an
  /// emitted entry IS the caller's new frontier, and stopping there keeps
  /// a momentarily-empty heap from swallowing the whole wheel. Draining a
  /// slot: entries still ahead of the wheel clock cascade into finer
  /// levels, and entries due within the current tick are handed to
  /// `sink(entry)` for the caller's heap, where they re-sort by their
  /// original (when, seq) key. Entries therefore reach the heap at most
  /// one tick (~16 µs) before they fire, which keeps the heap holding
  /// only the imminent frontier — the wheel's second structural win
  /// besides O(1) cancel.
  template <typename Sink>
  std::int64_t poll(std::int64_t threshold_ns, Sink&& sink) {
    for (;;) {
      int best_level = -1;
      std::int64_t best_start = INT64_MAX;
      for (int level = 0; level < kLevels; ++level) {
        if (bitmap_[level] == 0) continue;
        const int slot = std::countr_zero(bitmap_[level]);
        const std::int64_t start = slot_start_tick(level, slot);
        if (start < best_start) {
          best_start = start;
          best_level = level;
        }
      }
      const std::int64_t lb_ns =
          best_start == INT64_MAX ? INT64_MAX : best_start << kTickBits;
      lb_hint_ns_ = lb_ns;
      // The empty check matters even against threshold INT64_MAX.
      if (best_level < 0 || lb_ns > threshold_ns) return lb_ns;
      const int slot = std::countr_zero(bitmap_[best_level]);
      // Detach the whole list, then advance the clock: a level-0 slot is
      // one tick wide and fully consumed, so the clock moves past it; a
      // coarser slot moves the clock to its start and its entries re-file
      // relative to the new clock.
      std::uint32_t node = heads_[best_level][slot];
      heads_[best_level][slot] = kNil;
      bitmap_[best_level] &= ~(std::uint64_t{1} << slot);
      cur_tick_ = best_level == 0 ? best_start + 1 : best_start;
      while (node != kNil) {
        const std::uint32_t next = pool_[node].next;
        Node& n = pool_[node];
        n.linked = false;
        const std::int64_t when_tick = n.entry.when_ns >> kTickBits;
        if (when_tick > cur_tick_) {  // still ahead: re-file at a finer level
          const auto diff = static_cast<std::uint64_t>(when_tick) ^
                            static_cast<std::uint64_t>(cur_tick_);
          const int level = (63 - std::countl_zero(diff)) / kSlotBits;
          SPEAKUP_ASSERT(level < best_level);  // cascades strictly downward
          const auto s = static_cast<std::uint32_t>(
              (when_tick >> (level * kSlotBits)) & (kSlotsPerLevel - 1));
          n.level = static_cast<std::uint8_t>(level);
          n.slot = static_cast<std::uint8_t>(s);
          link(node, level, s);
        } else {  // due within the drained tick
          if (n.entry.when_ns < threshold_ns) threshold_ns = n.entry.when_ns;
          sink(n.entry);
          release_node(node);
          --size_;
        }
        node = next;
      }
    }
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

#if SPEAKUP_AUDIT_ENABLED
  /// Cross-check for EventLoop::audit(): `node` must be a linked node whose
  /// entry addresses slab slot `slab_slot` at generation `gen`.
  [[nodiscard]] bool audit_node(std::uint32_t node, std::uint32_t slab_slot,
                                std::uint32_t gen) const {
    return node < pool_.size() && pool_[node].linked &&
           pool_[node].entry.slot == slab_slot && pool_[node].entry.gen == gen;
  }

  /// Full structural audit (SPEAKUP_AUDIT builds only): occupancy bitmap vs
  /// slot lists, doubly-linked-list symmetry, per-node level/slot placement,
  /// deadline-ahead-of-clock, node count vs size_, hint soundness.
  void audit() const {
    std::size_t counted = 0;
    std::int64_t min_start_ns = INT64_MAX;
    for (int level = 0; level < kLevels; ++level) {
      for (int slot = 0; slot < kSlotsPerLevel; ++slot) {
        const bool bit = ((bitmap_[level] >> slot) & 1) != 0;
        const std::uint32_t head = heads_[level][slot];
        SPEAKUP_AUDIT_CHECK(bit == (head != kNil),
                            "TimerWheel: occupancy bitmap must agree with the slot lists");
        std::uint32_t prev = kNil;
        for (std::uint32_t n = head; n != kNil; n = pool_[n].next) {
          SPEAKUP_AUDIT_CHECK(n < pool_.size(), "TimerWheel: node handle out of range");
          const Node& nd = pool_[n];
          SPEAKUP_AUDIT_CHECK(nd.linked, "TimerWheel: listed node must be marked linked");
          SPEAKUP_AUDIT_CHECK(nd.level == level && nd.slot == slot,
                              "TimerWheel: node's recorded level/slot must match its list");
          SPEAKUP_AUDIT_CHECK(nd.prev == prev, "TimerWheel: prev/next links must be symmetric");
          // >= not >: insert() requires a strictly-future tick, but a
          // coarse-slot drain sets cur_tick_ to the slot's START, and a
          // level-0 slot holding exactly that tick may stay resident when
          // poll() returns early on its threshold.
          SPEAKUP_AUDIT_CHECK((nd.entry.when_ns >> kTickBits) >= cur_tick_,
                              "TimerWheel: resident deadline must not be behind the wheel clock");
          ++counted;
          SPEAKUP_AUDIT_CHECK(counted <= size_,
                              "TimerWheel: slot list cycle (more linked nodes than size_)");
          prev = n;
        }
        if (head != kNil) {
          const std::int64_t start_ns = slot_start_tick(level, slot) << kTickBits;
          if (start_ns < min_start_ns) min_start_ns = start_ns;
        }
      }
    }
    SPEAKUP_AUDIT_CHECK(counted == size_, "TimerWheel: size_ must count the linked nodes");
    SPEAKUP_AUDIT_CHECK(lb_hint_ns_ <= min_start_ns,
                        "TimerWheel: lower-bound hint must never exceed the true bound");
  }

  /// Deliberate corruption for tests/audit_test.cpp: raises an occupancy
  /// bit with no list behind it — the signature of a lost unlink.
  void corrupt_bitmap_for_test() { bitmap_[kLevels - 1] |= 1; }
#endif

 private:
  struct Node {
    Entry entry;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
    bool linked = false;
  };

  [[nodiscard]] std::int64_t slot_start_tick(int level, int slot) const {
    // Occupied slots are strictly ahead of the cursor in the current
    // rotation (see the level-selection comment above), so the slot's
    // start is the cursor's high bits with this level's group replaced.
    const int group_bits = (level + 1) * kSlotBits;
    const std::int64_t base =
        cur_tick_ & ~((std::int64_t{1} << group_bits) - 1);
    return base | (static_cast<std::int64_t>(slot) << (level * kSlotBits));
  }

  void link(std::uint32_t node, int level, std::uint32_t slot) {
    Node& n = pool_[node];
    n.prev = kNil;
    n.next = heads_[level][slot];
    if (n.next != kNil) pool_[n.next].prev = node;
    heads_[level][slot] = node;
    n.linked = true;
    bitmap_[level] |= std::uint64_t{1} << slot;
  }

  void unlink(std::uint32_t node) {
    Node& n = pool_[node];
    if (n.prev != kNil) {
      pool_[n.prev].next = n.next;
    } else {
      heads_[n.level][n.slot] = n.next;
      if (n.next == kNil) bitmap_[n.level] &= ~(std::uint64_t{1} << n.slot);
    }
    if (n.next != kNil) pool_[n.next].prev = n.prev;
    n.linked = false;
  }

  std::uint32_t acquire_node() {
    if (free_head_ != kNil) {
      const std::uint32_t node = free_head_;
      free_head_ = pool_[node].next;
      return node;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void release_node(std::uint32_t node) {
    pool_[node].next = free_head_;
    free_head_ = node;
  }

  std::int64_t cur_tick_ = 0;  // everything before this tick has drained
  std::int64_t lb_hint_ns_ = INT64_MAX;
  std::size_t size_ = 0;
  std::uint64_t bitmap_[kLevels] = {};
  std::uint32_t heads_[kLevels][kSlotsPerLevel];  // kNil-filled in the ctor
  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
};

}  // namespace speakup::sim
