#include "exp/scenario_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "client/strategy.hpp"
#include "core/front_end_factory.hpp"
#include "util/json.hpp"

namespace speakup::exp {

namespace json = util::json;

namespace {

[[noreturn]] void fail(const std::string& ctx, const std::string& what) {
  throw ScenarioError(ctx + ": " + what);
}

[[noreturn]] void wrong_type(const std::string& ctx, const char* wanted,
                             const json::Value& v) {
  fail(ctx, std::string("expected ") + wanted + ", got " + json::type_name(v.type()));
}

double num_of(const json::Value& v, const std::string& ctx) {
  if (!v.is_number()) wrong_type(ctx, "number", v);
  return v.as_number();
}

double positive_num(const json::Value& v, const std::string& ctx) {
  const double d = num_of(v, ctx);
  if (d <= 0) fail(ctx, "must be > 0 (got " + json::number_to_string(d) + ")");
  return d;
}

double nonneg_num(const json::Value& v, const std::string& ctx) {
  const double d = num_of(v, ctx);
  if (d < 0) fail(ctx, "must be >= 0 (got " + json::number_to_string(d) + ")");
  return d;
}

std::int64_t int_of(const json::Value& v, const std::string& ctx) {
  if (!v.is_number()) wrong_type(ctx, "integer", v);
  try {
    return v.as_int();
  } catch (const json::Error&) {
    fail(ctx, "must be an integer (got " + json::number_to_string(v.as_number()) + ")");
  }
}

std::int64_t nonneg_int(const json::Value& v, const std::string& ctx) {
  const std::int64_t i = int_of(v, ctx);
  if (i < 0) fail(ctx, "must be >= 0 (got " + std::to_string(i) + ")");
  return i;
}

std::int64_t positive_int(const json::Value& v, const std::string& ctx) {
  const std::int64_t i = int_of(v, ctx);
  if (i <= 0) fail(ctx, "must be > 0 (got " + std::to_string(i) + ")");
  return i;
}

const std::string& str_of(const json::Value& v, const std::string& ctx) {
  if (!v.is_string()) wrong_type(ctx, "string", v);
  return v.as_string();
}

bool bool_of(const json::Value& v, const std::string& ctx) {
  if (!v.is_bool()) wrong_type(ctx, "bool", v);
  return v.as_bool();
}

const json::Value::Object& obj_of(const json::Value& v, const std::string& ctx) {
  if (!v.is_object()) wrong_type(ctx, "object", v);
  return v.as_object();
}

const json::Value::Array& arr_of(const json::Value& v, const std::string& ctx) {
  if (!v.is_array()) wrong_type(ctx, "array", v);
  return v.as_array();
}

bool is_scalar(const json::Value& v) {
  return v.is_string() || v.is_number() || v.is_bool();
}

std::string scalar_to_string(const json::Value& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_number()) return json::number_to_string(v.as_number());
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  return v.dump();
}

// ---------------------------------------------------------------------------
// Dotted-path access into a scenario JSON object ("lan.good",
// "bottleneck.rate_mbps", "groups.1.workload.window") — the address space of
// grid axes and label placeholders. An all-digit segment indexes into an
// array, so grids can sweep per-group knobs.
// ---------------------------------------------------------------------------

std::optional<std::size_t> as_array_index(std::string_view seg) {
  if (seg.empty()) return std::nullopt;
  std::size_t idx = 0;
  for (const char c : seg) {
    if (c < '0' || c > '9') return std::nullopt;
    idx = idx * 10 + static_cast<std::size_t>(c - '0');
  }
  return idx;
}

const json::Value* get_path(const json::Value& root, std::string_view path) {
  const json::Value* cur = &root;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string_view seg =
        path.substr(start, dot == std::string_view::npos ? dot : dot - start);
    if (cur->is_array()) {
      const auto idx = as_array_index(seg);
      cur = idx.has_value() && *idx < cur->as_array().size() ? &cur->as_array()[*idx]
                                                            : nullptr;
    } else {
      cur = cur->find(seg);
    }
    if (cur == nullptr || dot == std::string_view::npos) return cur;
    start = dot + 1;
  }
}

void set_path(json::Value& root, std::string_view path, const json::Value& v,
              const std::string& ctx) {
  json::Value* cur = &root;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string seg(
        path.substr(start, dot == std::string_view::npos ? dot : dot - start));
    if (seg.empty()) fail(ctx, "bad grid axis path \"" + std::string(path) + "\"");
    if (cur->is_array()) {
      // Array elements must already exist: a grid can overwrite a group's
      // knob but cannot invent a group.
      const auto idx = as_array_index(seg);
      if (!idx.has_value() || *idx >= cur->as_array().size()) {
        fail(ctx, "grid axis \"" + std::string(path) + "\": \"" + seg +
                      "\" does not index the array (size " +
                      std::to_string(cur->as_array().size()) + ")");
      }
      json::Value* child = &cur->as_array()[*idx];
      if (dot == std::string_view::npos) {
        *child = v;
        return;
      }
      cur = child;
      start = dot + 1;
      continue;
    }
    if (dot == std::string_view::npos) {
      cur->set(seg, v);
      return;
    }
    json::Value* child = cur->find(seg);
    if (child == nullptr) {
      cur->set(seg, json::Value(json::Value::Object{}));
      child = cur->find(seg);
    }
    if (!child->is_object() && !child->is_array()) {
      fail(ctx, "grid axis \"" + std::string(path) + "\": \"" + seg +
                    "\" is not an object or array");
    }
    cur = child;
    start = dot + 1;
  }
}

/// Deep merge: `over` wins; nested objects merge key-wise.
json::Value merge(const json::Value& base, const json::Value& over) {
  if (!base.is_object() || !over.is_object()) return over;
  json::Value out = base;
  for (const auto& [k, v] : over.as_object()) {
    const json::Value* b = out.find(k);
    out.set(k, (b != nullptr && b->is_object() && v.is_object()) ? merge(*b, v) : v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON -> ScenarioConfig.
// ---------------------------------------------------------------------------

client::WorkloadParams workload_preset(const std::string& name, const std::string& ctx) {
  if (name == "good") return client::good_client_params();
  if (name == "bad") return client::bad_client_params();
  fail(ctx, "unknown workload preset \"" + name + "\" (expected \"good\" or \"bad\")");
}

http::ClientClass client_class(const std::string& name, const std::string& ctx) {
  if (name == "good") return http::ClientClass::kGood;
  if (name == "bad") return http::ClientClass::kBad;
  if (name == "neutral") return http::ClientClass::kNeutral;
  fail(ctx, "unknown client class \"" + name +
                "\" (expected \"good\", \"bad\", or \"neutral\")");
}

client::WorkloadParams workload_from_json(const json::Value& v, const std::string& ctx) {
  if (v.is_string()) return workload_preset(v.as_string(), ctx);
  obj_of(v, ctx);
  // The preset (default "good") seeds every field; explicit keys override.
  client::WorkloadParams p = client::good_client_params();
  if (const json::Value* preset = v.find("preset")) {
    p = workload_preset(str_of(*preset, ctx + ".preset"), ctx + ".preset");
  }
  for (const auto& [key, val] : v.as_object()) {
    const std::string kctx = ctx + "." + key;
    if (key == "preset") {
      // handled above
    } else if (key == "lambda") {
      p.lambda = positive_num(val, kctx);
    } else if (key == "window") {
      p.window = static_cast<int>(positive_int(val, kctx));
    } else if (key == "class") {
      p.cls = client_class(str_of(val, kctx), kctx);
    } else if (key == "difficulty") {
      p.difficulty = static_cast<int>(positive_int(val, kctx));
    } else if (key == "post_size_bytes") {
      p.post_size = nonneg_int(val, kctx);
    } else if (key == "request_timeout_s") {
      p.request_timeout = Duration::seconds(positive_num(val, kctx));
    } else if (key == "backlog_timeout_s") {
      p.backlog_timeout = Duration::seconds(positive_num(val, kctx));
    } else if (key == "retry_pipeline") {
      p.retry_pipeline = static_cast<int>(positive_int(val, kctx));
    } else if (key == "strategy") {
      const std::string& name = str_of(val, kctx);
      try {
        p.strategy = resolve_strategy_name(name);
      } catch (const std::invalid_argument& e) {
        fail(kctx, e.what());
      }
    } else if (key == "strategy_params") {
      p.strategy_knobs.clear();
      for (const auto& [pk, pv] : obj_of(val, kctx)) {
        p.strategy_knobs.emplace_back(pk, num_of(pv, kctx + "." + pk));
      }
    } else {
      fail(ctx, "unknown key \"" + key + "\"");
    }
  }
  // Construct the strategy once, discarded: an unknown knob (or a bad knob
  // value) fails at parse time with the strategy's own message, the same
  // contract resolve_defense_name gives the "defense" key.
  try {
    (void)client::StrategyFactory::instance().create(p.strategy,
                                                     client::strategy_params(p));
  } catch (const std::invalid_argument& e) {
    fail(ctx, e.what());
  }
  return p;
}

ClientGroupSpec group_from_json(const json::Value& v, const std::string& ctx) {
  obj_of(v, ctx);
  ClientGroupSpec g;
  bool have_count = false;
  for (const auto& [key, val] : v.as_object()) {
    const std::string kctx = ctx + "." + key;
    if (key == "label") {
      g.label = str_of(val, kctx);
    } else if (key == "count") {
      g.count = static_cast<int>(nonneg_int(val, kctx));
      have_count = true;
    } else if (key == "workload") {
      g.workload = workload_from_json(val, kctx);
    } else if (key == "access_bw_mbps") {
      g.access_bw = Bandwidth::mbps(positive_num(val, kctx));
    } else if (key == "access_delay_us") {
      g.access_delay = Duration::micros(nonneg_int(val, kctx));
    } else if (key == "access_queue_bytes") {
      g.access_queue = positive_int(val, kctx);
    } else if (key == "behind_bottleneck") {
      g.behind_bottleneck = bool_of(val, kctx);
    } else if (key == "via_proxy") {
      g.via_proxy = bool_of(val, kctx);
    } else if (key == "engine") {
      g.engine = str_of(val, kctx);
      if (g.engine != "object" && g.engine != "pooled") {
        fail(kctx, "engine must be \"object\" or \"pooled\", got \"" + g.engine + "\"");
      }
    } else {
      fail(ctx, "unknown key \"" + key + "\"");
    }
  }
  if (g.label.empty()) fail(ctx, "group needs a non-empty \"label\"");
  if (!have_count) fail(ctx, "group needs a \"count\"");
  return g;
}

void lan_from_json(ScenarioConfig& cfg, const json::Value& v, const std::string& ctx) {
  obj_of(v, ctx);
  std::int64_t good = 0, bad = 0, total = -1;
  bool have_bad = false;
  for (const auto& [key, val] : v.as_object()) {
    const std::string kctx = ctx + "." + key;
    if (key == "good") {
      good = nonneg_int(val, kctx);
    } else if (key == "bad") {
      bad = nonneg_int(val, kctx);
      have_bad = true;
    } else if (key == "total") {
      total = positive_int(val, kctx);
    } else {
      fail(ctx, "unknown key \"" + key + "\"");
    }
  }
  if (total >= 0) {
    if (have_bad) fail(ctx, "give either \"bad\" or \"total\", not both");
    if (good > total) {
      fail(ctx, "\"good\" (" + std::to_string(good) + ") exceeds \"total\" (" +
                    std::to_string(total) + ")");
    }
    bad = total - good;
  }
  const ScenarioConfig populated =
      lan_scenario(static_cast<int>(good), static_cast<int>(bad), cfg.capacity_rps,
                   cfg.mode, cfg.seed);
  cfg.groups = populated.groups;
}

void link_spec_from_json(const json::Value& v, const std::string& ctx,
                         const char* rate_key, Bandwidth& rate, Duration& delay,
                         Bytes& queue) {
  obj_of(v, ctx);
  for (const auto& [key, val] : v.as_object()) {
    const std::string kctx = ctx + "." + key;
    if (key == rate_key) {
      rate = Bandwidth::mbps(positive_num(val, kctx));
    } else if (key == "delay_us") {
      delay = Duration::micros(nonneg_int(val, kctx));
    } else if (key == "queue_bytes") {
      queue = positive_int(val, kctx);
    } else {
      fail(ctx, "unknown key \"" + key + "\"");
    }
  }
}

void collateral_from_json(CollateralSpec& c, const json::Value& v, const std::string& ctx) {
  obj_of(v, ctx);
  for (const auto& [key, val] : v.as_object()) {
    const std::string kctx = ctx + "." + key;
    if (key == "file_size_bytes") {
      c.file_size = positive_int(val, kctx);
    } else if (key == "downloads") {
      c.downloads = static_cast<int>(positive_int(val, kctx));
    } else if (key == "access_bw_mbps") {
      c.access_bw = Bandwidth::mbps(positive_num(val, kctx));
    } else if (key == "access_delay_us") {
      c.access_delay = Duration::micros(nonneg_int(val, kctx));
    } else if (key == "behind_bottleneck") {
      c.behind_bottleneck = bool_of(val, kctx);
    } else if (key == "start_delay_s") {
      c.start_delay = Duration::seconds(nonneg_num(val, kctx));
    } else {
      fail(ctx, "unknown key \"" + key + "\"");
    }
  }
}

ScenarioConfig config_from_json(const json::Value& v, const std::string& ctx) {
  obj_of(v, ctx);
  ScenarioConfig cfg;
  const json::Value* lan = nullptr;
  bool have_groups = false;
  for (const auto& [key, val] : v.as_object()) {
    const std::string kctx = ctx + "." + key;
    if (key == "defense") {
      const std::string& name = str_of(val, kctx);
      try {
        (void)resolve_defense_name(name);
      } catch (const std::invalid_argument& e) {
        fail(kctx, e.what());
      }
      if (const auto mode = parse_defense_mode(name)) {
        cfg.mode = *mode;
        cfg.defense.clear();
      } else {
        cfg.defense = name;
      }
    } else if (key == "capacity_rps") {
      cfg.capacity_rps = positive_num(val, kctx);
    } else if (key == "duration_s") {
      cfg.duration = Duration::seconds(positive_num(val, kctx));
    } else if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(nonneg_int(val, kctx));
    } else if (key == "payment_window_s") {
      cfg.payment_window = Duration::seconds(positive_num(val, kctx));
    } else if (key == "quantum_s") {
      cfg.quantum = Duration::seconds(nonneg_num(val, kctx));
    } else if (key == "suspension_limit_s") {
      cfg.suspension_limit = Duration::seconds(positive_num(val, kctx));
    } else if (key == "response_body_bytes") {
      cfg.response_body = positive_int(val, kctx);
    } else if (key == "elastic_max_scale") {
      cfg.elastic_max_scale = num_of(val, kctx);
      if (cfg.elastic_max_scale < 1.0) fail(kctx, "must be >= 1");
    } else if (key == "elastic_interval_s") {
      cfg.elastic_interval = Duration::seconds(positive_num(val, kctx));
    } else if (key == "elastic_threshold") {
      cfg.elastic_threshold = num_of(val, kctx);
      if (cfg.elastic_threshold <= 0.0 || cfg.elastic_threshold > 1.0) {
        fail(kctx, "must be in (0, 1]");
      }
    } else if (key == "puzzle_cost_s") {
      cfg.puzzle_cost = Duration::seconds(positive_num(val, kctx));
    } else if (key == "thinner") {
      link_spec_from_json(val, kctx, "bw_mbps", cfg.thinner_bw, cfg.thinner_delay,
                          cfg.thinner_queue);
    } else if (key == "lan") {
      lan = &val;  // expanded below, once defense/capacity/seed are known
    } else if (key == "groups") {
      have_groups = true;
      int gi = 0;
      for (const json::Value& gv : arr_of(val, kctx)) {
        cfg.groups.push_back(
            group_from_json(gv, kctx + "[" + std::to_string(gi) + "]"));
        ++gi;
      }
    } else if (key == "bottleneck") {
      BottleneckSpec b;
      link_spec_from_json(val, kctx, "rate_mbps", b.rate, b.delay, b.queue);
      cfg.bottleneck = b;
    } else if (key == "collateral") {
      CollateralSpec c;
      collateral_from_json(c, val, kctx);
      cfg.collateral = c;
    } else if (key == "proxy") {
      ProxySpec p;
      link_spec_from_json(val, kctx, "uplink_mbps", p.uplink, p.delay, p.queue);
      cfg.proxy = p;
    } else {
      fail(ctx, "unknown key \"" + key + "\"");
    }
  }
  if (lan != nullptr) {
    if (have_groups) fail(ctx, "\"lan\" and \"groups\" are mutually exclusive");
    lan_from_json(cfg, *lan, ctx + ".lan");
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// Label templates: "{defense}/g{lan.good}" resolved against the expanded
// scenario JSON (so grid-assigned values are visible).
// ---------------------------------------------------------------------------

std::string substitute_label(const std::string& tmpl, const json::Value& cfg,
                             const std::string& ctx) {
  std::string out;
  std::size_t i = 0;
  while (i < tmpl.size()) {
    const char c = tmpl[i];
    if (c != '{') {
      out.push_back(c);
      ++i;
      continue;
    }
    const std::size_t close = tmpl.find('}', i);
    if (close == std::string::npos) {
      fail(ctx + ".label", "unterminated '{' in template \"" + tmpl + "\"");
    }
    const std::string path = tmpl.substr(i + 1, close - i - 1);
    const json::Value* v = get_path(cfg, path);
    if (v == nullptr || !is_scalar(*v)) {
      fail(ctx + ".label", "placeholder {" + path + "} does not name a scalar "
                               "value in this scenario");
    }
    out += scalar_to_string(*v);
    i = close + 1;
  }
  return out;
}

struct GridAxis {
  std::string path;
  const json::Value::Array* values = nullptr;
};

std::vector<GridAxis> grid_axes(const json::Value& grid, const std::string& ctx) {
  std::vector<GridAxis> axes;
  for (const auto& [path, vals] : obj_of(grid, ctx)) {
    const std::string actx = ctx + "[\"" + path + "\"]";
    const json::Value::Array& arr = arr_of(vals, actx);
    if (arr.empty()) fail(actx, "grid axis must list at least one value");
    for (const json::Value& v : arr) {
      if (!is_scalar(v)) fail(actx, "grid axis values must be scalars");
    }
    axes.push_back(GridAxis{path, &arr});
  }
  return axes;
}

}  // namespace

std::string resolve_strategy_name(std::string_view name) {
  if (client::StrategyFactory::instance().contains(name)) return std::string(name);
  std::ostringstream os;
  os << "unknown strategy '" << name << "'; registered strategies:";
  for (const std::string& n : client::StrategyFactory::instance().names()) os << " " << n;
  throw std::invalid_argument(os.str());
}

std::string resolve_defense_name(std::string_view name) {
  if (parse_defense_mode(name).has_value() ||
      core::FrontEndFactory::instance().contains(name)) {
    return std::string(name);
  }
  std::ostringstream os;
  os << "unknown defense '" << name << "'; registered defenses:";
  for (const std::string& n : core::FrontEndFactory::instance().names()) os << " " << n;
  throw std::invalid_argument(os.str());
}

ScenarioFile parse_scenario_file(std::string_view json_text) {
  json::Value doc;
  try {
    doc = json::parse(json_text);
  } catch (const json::Error& e) {
    throw ScenarioError(e.what());
  }
  if (!doc.is_object()) wrong_type("top level", "object", doc);

  ScenarioFile out;
  json::Value defaults{json::Value::Object{}};
  const json::Value* scenarios = nullptr;
  for (const auto& [key, val] : doc.as_object()) {
    if (key == "description") {
      out.description = str_of(val, "description");
    } else if (key == "defaults") {
      for (const auto& [dk, unused] : obj_of(val, "defaults")) {
        (void)unused;
        if (dk == "label" || dk == "grid" || dk == "seeds") {
          fail("defaults", "\"" + dk + "\" is not allowed in defaults (it is "
                               "per-scenario)");
        }
      }
      defaults = val;
    } else if (key == "scenarios") {
      scenarios = &val;
    } else {
      fail("top level", "unknown key \"" + key + "\"");
    }
  }
  if (scenarios == nullptr) fail("top level", "missing \"scenarios\" array");
  const json::Value::Array& entries = arr_of(*scenarios, "scenarios");
  if (entries.empty()) fail("scenarios", "must list at least one scenario");

  std::size_t index = 0;
  for (std::size_t si = 0; si < entries.size(); ++si) {
    const std::string ctx = "scenarios[" + std::to_string(si) + "]";
    obj_of(entries[si], ctx);

    // Split the entry into expansion directives and config keys.
    std::string label_template;
    const json::Value* grid = nullptr;
    std::int64_t n_seeds = 1;
    json::Value config_json{json::Value::Object{}};
    for (const auto& [key, val] : entries[si].as_object()) {
      if (key == "label") {
        label_template = str_of(val, ctx + ".label");
      } else if (key == "grid") {
        grid = &val;
      } else if (key == "seeds") {
        n_seeds = positive_int(val, ctx + ".seeds");
      } else {
        config_json.set(key, val);
      }
    }
    // "lan" and "groups" are alternatives, not mergeable: an entry that
    // writes one replaces the other inherited from defaults (writing both
    // in the same entry is still the mutual-exclusion error below).
    const bool entry_has_lan = config_json.find("lan") != nullptr;
    const bool entry_has_groups = config_json.find("groups") != nullptr;
    config_json = merge(defaults, config_json);
    if (entry_has_groups && !entry_has_lan) config_json.erase("lan");
    if (entry_has_lan && !entry_has_groups) config_json.erase("groups");

    std::vector<GridAxis> axes;
    if (grid != nullptr) axes = grid_axes(*grid, ctx + ".grid");

    // Odometer over the cross product: the first axis is outermost, the
    // last cycles fastest; no grid means one combination.
    std::vector<std::size_t> pos(axes.size(), 0);
    while (true) {
      json::Value combo = config_json;
      for (std::size_t a = 0; a < axes.size(); ++a) {
        set_path(combo, axes[a].path, (*axes[a].values)[pos[a]], ctx + ".grid");
      }
      const json::Value* seed_v = combo.find("seed");
      const std::uint64_t base_seed =
          seed_v != nullptr
              ? static_cast<std::uint64_t>(nonneg_int(*seed_v, ctx + ".seed"))
              : ScenarioConfig{}.seed;
      for (std::int64_t k = 0; k < n_seeds; ++k) {
        json::Value expanded = combo;
        const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(k);
        expanded.set("seed", static_cast<double>(seed));
        LabeledScenario s;
        s.index = index++;
        s.config = config_from_json(expanded, ctx);
        if (!label_template.empty()) {
          s.label = substitute_label(label_template, expanded, ctx);
        } else {
          s.label = s.config.defense_name();
          for (std::size_t a = 0; a < axes.size(); ++a) {
            const std::size_t dot = axes[a].path.rfind('.');
            const std::string seg =
                dot == std::string::npos ? axes[a].path : axes[a].path.substr(dot + 1);
            s.label += "/" + seg + "=" + scalar_to_string((*axes[a].values)[pos[a]]);
          }
        }
        if (n_seeds > 1 && label_template.find("{seed}") == std::string::npos) {
          s.label += "/seed" + std::to_string(seed);
        }
        out.scenarios.push_back(std::move(s));
      }
      // Advance the odometer; a full wrap means the product is exhausted.
      bool wrapped = true;
      for (std::size_t a = axes.size(); a-- > 0;) {
        if (++pos[a] < axes[a].values->size()) {
          wrapped = false;
          break;
        }
        pos[a] = 0;
      }
      if (wrapped) break;
    }
  }

  for (std::size_t i = 0; i < out.scenarios.size(); ++i) {
    for (std::size_t j = i + 1; j < out.scenarios.size(); ++j) {
      if (out.scenarios[i].label == out.scenarios[j].label) {
        fail("scenarios", "duplicate label \"" + out.scenarios[i].label +
                              "\" — give the colliding entries distinct \"label\" "
                              "templates");
      }
    }
  }
  return out;
}

ScenarioFile load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioError(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_scenario_file(buf.str());
  } catch (const ScenarioError& e) {
    throw ScenarioError(path + ": " + e.what());
  }
}

CapacityBenchSpec load_capacity_bench_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioError(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  util::json::Value doc;
  try {
    doc = util::json::parse(buf.str());
  } catch (const std::exception& e) {
    throw ScenarioError(path + ": " + e.what());
  }
  const auto fail = [&](const std::string& what) {
    throw ScenarioError(path + ": " + what);
  };
  if (!doc.is_object()) fail("top level must be a JSON object");
  const util::json::Value* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != "capacity_bench") {
    fail("capacity_bench spec needs \"kind\": \"capacity_bench\"");
  }
  CapacityBenchSpec spec;
  if (const util::json::Value* d = doc.find("description")) {
    spec.description = d->as_string();
  }
  const util::json::Value* clients = doc.find("clients");
  if (clients == nullptr || !clients->is_number() || clients->as_int() < 2) {
    fail("capacity_bench spec needs \"clients\" >= 2 (one occupies the server, "
         "the rest pay)");
  }
  spec.clients = static_cast<int>(clients->as_int());
  const util::json::Value* sizes = doc.find("packet_bytes");
  if (sizes == nullptr || !sizes->is_array() || sizes->as_array().empty()) {
    fail("capacity_bench spec needs a non-empty \"packet_bytes\" array");
  }
  for (const util::json::Value& v : sizes->as_array()) {
    const int bytes = static_cast<int>(v.as_int());
    // A wire packet must fit headers (40 bytes) plus at least 1 payload byte.
    if (bytes <= 40) fail("packet_bytes entries must exceed the 40-byte header");
    spec.packet_bytes.push_back(bytes);
  }
  return spec;
}

std::vector<LabeledScenario> ScenarioFile::shard(int index, int count) const {
  if (count < 1 || index < 0 || index >= count) {
    throw ScenarioError("shard " + std::to_string(index) + "/" + std::to_string(count) +
                        " is invalid (need 0 <= index < count)");
  }
  std::vector<LabeledScenario> out;
  for (const LabeledScenario& s : scenarios) {
    if (s.index % static_cast<std::size_t>(count) == static_cast<std::size_t>(index)) {
      out.push_back(s);
    }
  }
  return out;
}

void ScenarioFile::queue_on(Runner& runner) const { queue_on(runner, scenarios); }

void ScenarioFile::queue_on(Runner& runner, const std::vector<LabeledScenario>& slice) {
  for (const LabeledScenario& s : slice) runner.add(s.config, s.label);
}

}  // namespace speakup::exp
