// Tests for the bucketed time series (§7.1's 5-second-interval reporting).
#include <gtest/gtest.h>

#include "stats/time_series.hpp"

namespace speakup::stats {
namespace {

TEST(TimeSeries, RejectsNonPositiveBucket) {
  EXPECT_THROW(TimeSeries{Duration::zero()}, std::invalid_argument);
}

TEST(TimeSeries, AccumulatesIntoCorrectBuckets) {
  TimeSeries ts(Duration::seconds(5.0));
  ts.add(SimTime::zero() + Duration::seconds(1.0), 10.0);
  ts.add(SimTime::zero() + Duration::seconds(4.9), 5.0);
  ts.add(SimTime::zero() + Duration::seconds(5.0), 7.0);  // next bucket
  EXPECT_EQ(ts.bucket_count(), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(0), 15.0);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(1), 7.0);
  EXPECT_DOUBLE_EQ(ts.total(), 22.0);
}

TEST(TimeSeries, GapsReadAsZero) {
  TimeSeries ts(Duration::seconds(1.0));
  ts.add(SimTime::zero() + Duration::seconds(0.5), 1.0);
  ts.add(SimTime::zero() + Duration::seconds(3.5), 1.0);
  EXPECT_EQ(ts.bucket_count(), 4u);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(1), 0.0);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(2), 0.0);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(9), 0.0);  // beyond the end
}

TEST(TimeSeries, RatesDivideByWidth) {
  TimeSeries ts(Duration::seconds(5.0));
  ts.add(SimTime::zero() + Duration::seconds(2.0), 100.0);
  EXPECT_DOUBLE_EQ(ts.bucket_rate(0), 20.0);  // 100 over 5 s
}

TEST(TimeSeries, RateSummarySkipsWarmupAndPartialTail) {
  TimeSeries ts(Duration::seconds(1.0));
  // Buckets: 0 (warmup, huge), 1..4 (steady 10/s), 5 (partial).
  ts.add(SimTime::zero() + Duration::seconds(0.5), 1000.0);
  for (int b = 1; b <= 4; ++b) {
    ts.add(SimTime::zero() + Duration::seconds(b + 0.5), 10.0);
  }
  ts.add(SimTime::zero() + Duration::seconds(5.1), 2.0);
  const OnlineStats s = ts.rate_summary(/*skip_leading=*/1);
  EXPECT_EQ(s.count(), 4);  // buckets 1..4; bucket 5 (tail) excluded
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(TimeSeries, RateSummaryOfShortSeriesIsEmpty) {
  TimeSeries ts(Duration::seconds(1.0));
  ts.add(SimTime::zero(), 5.0);
  EXPECT_EQ(ts.rate_summary().count(), 0);
}

TEST(TimeSeries, OutOfOrderTimestampsAccepted) {
  TimeSeries ts(Duration::seconds(1.0));
  ts.add(SimTime::zero() + Duration::seconds(3.0), 1.0);
  ts.add(SimTime::zero() + Duration::seconds(1.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(1), 2.0);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(3), 1.0);
}

}  // namespace
}  // namespace speakup::stats
