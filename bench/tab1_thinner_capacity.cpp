// Table 1 row 3 / §7.1: thinner capacity.
//
// The paper measures how fast its unoptimized thinner sinks payment bytes
// on a 3 GHz Xeon: 1451 Mbit/s with 1500-byte packets, 379 Mbit/s with
// 120-byte packets. The analog here is the rate at which our thinner —
// running atop the whole simulated stack (links, TCP, framing, auction
// accounting) — sinks *simulated* payment bytes per second of host wall
// time. As in the paper, smaller packets cost more per byte because the
// per-packet work dominates.
//
// The measured grid — client count and wire packet sizes — comes from
// scenarios/tab1_capacity.json; the benchmarks are registered at runtime
// from that file.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/auction_thinner.hpp"
#include "exp/scenario_io.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace {

using namespace speakup;

struct CapacityRig {
  explicit CapacityRig(Bytes mss, int clients) : net(loop) {
    auto& sw = net.add_switch("sw");
    thinner_host = &net.add_node<transport::Host>("thinner");
    transport::TcpConfig cfg;
    cfg.mss = mss;
    thinner_host->set_tcp_config(cfg);
    net.connect(*thinner_host, sw,
                net::LinkSpec{Bandwidth::gbps(100.0), Duration::micros(100), 64'000'000});
    core::AuctionThinner::Config tc;
    tc.capacity_rps = 0.001;  // the server never finishes: everyone pays
    thinner = std::make_unique<core::AuctionThinner>(*thinner_host, tc,
                                                     util::RngStream(1, "srv"));
    // A first request occupies the server; the rest contend and pay.
    for (int i = 0; i < clients; ++i) {
      auto& h = net.add_node<transport::Host>("payer" + std::to_string(i));
      h.set_tcp_config(cfg);
      net.connect(h, sw,
                  net::LinkSpec{Bandwidth::mbps(200.0), Duration::micros(200), 1'000'000});
      hosts.push_back(&h);
    }
    net.build_routes();
    for (std::size_t i = 0; i < hosts.size(); ++i) start_client(*hosts[i], i);
    // Warm up: establish connections, fill pipes.
    loop.run_until(SimTime::zero() + Duration::seconds(1.0));
  }

  void start_client(transport::Host& h, std::size_t idx) {
    // Request channel.
    auto& req = h.connect(thinner_host->id(), 80);
    auto req_stream = std::make_unique<http::MessageStream>(req);
    req_stream->send(http::Message{.type = http::MessageType::kRequest,
                                   .request_id = idx + 1,
                                   .cls = http::ClientClass::kGood});
    streams.push_back(std::move(req_stream));
    // Payment channel streaming an effectively-endless POST.
    auto& pay = h.connect(thinner_host->id(), 81);
    auto pay_stream = std::make_unique<http::MessageStream>(pay);
    pay_stream->send(http::Message{.type = http::MessageType::kPayOpen,
                                   .request_id = idx + 1,
                                   .cls = http::ClientClass::kGood});
    pay_stream->send(http::Message{.type = http::MessageType::kPostData,
                                   .request_id = idx + 1,
                                   .body = megabytes(100'000)});
    streams.push_back(std::move(pay_stream));
  }

  sim::EventLoop loop;
  net::Network net;
  transport::Host* thinner_host = nullptr;
  std::unique_ptr<core::AuctionThinner> thinner;
  std::vector<transport::Host*> hosts;
  std::vector<std::unique_ptr<http::MessageStream>> streams;
};

/// Arg(0): wire packet size (payload = size - 40). The checked-in grid
/// matches the paper's 1500-byte and 120-byte measurements.
void BM_ThinnerSinkRate(benchmark::State& state, int clients) {
  const Bytes mss = state.range(0) - net::kHeaderBytes;
  CapacityRig rig(mss, clients);
  Bytes sunk_before = rig.thinner->stats().payment_bytes_total;
  double sim_seconds = 1.0;
  for (auto _ : state) {
    sim_seconds += 0.05;
    rig.loop.run_until(SimTime::zero() + Duration::seconds(sim_seconds));
  }
  const Bytes sunk = rig.thinner->stats().payment_bytes_total - sunk_before;
  state.SetBytesProcessed(sunk);
  state.counters["sim_Mbit/s_of_wallclock"] = benchmark::Counter(
      static_cast<double>(sunk) * 8.0 / 1e6, benchmark::Counter::kIsRate);
  state.counters["payment_GB_sunk"] = static_cast<double>(sunk) / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  exp::CapacityBenchSpec spec;
  try {
    spec = exp::load_capacity_bench_file(bench::scenario_path("tab1_capacity.json"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  auto* b = benchmark::RegisterBenchmark(
      "BM_ThinnerSinkRate",
      [clients = spec.clients](benchmark::State& state) {
        BM_ThinnerSinkRate(state, clients);
      });
  for (const int bytes : spec.packet_bytes) b->Arg(bytes);
  b->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
