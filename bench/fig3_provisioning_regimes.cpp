// Figure 3: server allocation to good and bad clients, and the fraction of
// good requests served, without ("OFF") and with ("ON") speak-up, for
// c = 50, 100, 200 requests/s. G = B = 50 Mbit/s (25 good + 25 bad clients,
// 2 Mbit/s each); c_id = 100.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 3",
                      "allocation and fraction of good requests served vs capacity");
  bench::print_paper_note(
      "for c = 50 and 100 the ON allocation is roughly proportional to aggregate "
      "bandwidths (~0.5/0.5); for c = 200 all good requests are served");

  const double kCapacities[] = {50.0, 100.0, 200.0};
  const exp::DefenseMode kModes[] = {exp::DefenseMode::kNone, exp::DefenseMode::kAuction};

  exp::Runner runner;
  for (const double c : kCapacities) {
    for (const exp::DefenseMode mode : kModes) {
      exp::ScenarioConfig cfg = exp::lan_scenario(25, 25, c, mode, /*seed=*/22);
      cfg.duration = bench::experiment_duration();
      runner.add(cfg, std::string(to_string(mode)) + "/c" + std::to_string(int(c)));
    }
  }
  bench::run_all(runner);

  stats::Table table({"capacity", "defense", "alloc(good)", "alloc(bad)",
                      "frac-good-served", "ideal-alloc(good)"});
  for (const double c : kCapacities) {
    for (const exp::DefenseMode mode : kModes) {
      const exp::ExperimentResult& r =
          runner.result(std::string(to_string(mode)) + "/c" + std::to_string(int(c)));
      table.row()
          .add(static_cast<std::int64_t>(c))
          .add(mode == exp::DefenseMode::kNone ? "OFF" : "ON")
          .add(r.allocation_good, 3)
          .add(r.allocation_bad, 3)
          .add(r.fraction_good_served, 3)
          .add(core::theory::ideal_good_allocation(1.0, 1.0), 3);
    }
  }
  table.print(std::cout);
  return 0;
}
