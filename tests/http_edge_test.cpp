// Edge cases for message framing: tiny/huge bodies, interleaving, abort
// mid-message, send-after-death, and a randomized framing property test.
#include <gtest/gtest.h>

#include <vector>

#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::http {
namespace {

struct Wire {
  explicit Wire(const net::LinkSpec& spec = {Bandwidth::mbps(10.0), Duration::millis(1),
                                             96'000})
      : net(loop), pool(loop) {
    a = &net.add_node<transport::Host>("a");
    b = &net.add_node<transport::Host>("b");
    net.connect(*a, *b, spec);
    net.build_routes();
  }

  MessageStream& open(MessageStream::Callbacks server_cbs) {
    b->listen(80, [this, server_cbs](transport::TcpConnection& c) {
      MessageStream& s = pool.adopt(c);
      s.set_callbacks(server_cbs);
      server = &s;
    });
    transport::TcpConnection& c = a->connect(b->id(), 80);
    client = &pool.adopt(c);
    return *client;
  }

  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }

  sim::EventLoop loop;
  net::Network net;
  SessionPool pool;
  transport::Host* a = nullptr;
  transport::Host* b = nullptr;
  MessageStream* client = nullptr;
  MessageStream* server = nullptr;
};

TEST(HttpEdge, HeaderOnlyMessagesBackToBack) {
  Wire w;
  std::vector<MessageType> got;
  MessageStream::Callbacks cbs;
  cbs.on_message = [&](const Message& m) { got.push_back(m.type); };
  MessageStream& c = w.open(cbs);
  for (int i = 0; i < 50; ++i) {
    c.send(Message{.type = i % 2 == 0 ? MessageType::kRetry : MessageType::kBusy});
  }
  w.run_for(3.0);
  ASSERT_EQ(got.size(), 50u);
  EXPECT_EQ(got[0], MessageType::kRetry);
  EXPECT_EQ(got[1], MessageType::kBusy);
}

TEST(HttpEdge, SmallMessageAfterHugeBodyPreservesFraming) {
  Wire w;
  std::vector<Message> got;
  Bytes body_bytes = 0;
  MessageStream::Callbacks cbs;
  cbs.on_message = [&](const Message& m) { got.push_back(m); };
  cbs.on_body_progress = [&](const Message&, Bytes n) { body_bytes += n; };
  MessageStream& c = w.open(cbs);
  c.send(Message{.type = MessageType::kPostData, .request_id = 1, .body = megabytes(2)});
  c.send(Message{.type = MessageType::kRequest, .request_id = 2});
  w.run_for(10.0);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, MessageType::kPostData);
  EXPECT_EQ(got[1].type, MessageType::kRequest);
  EXPECT_EQ(got[1].request_id, 2u);
  EXPECT_EQ(body_bytes, megabytes(2));
}

TEST(HttpEdge, AbortMidBodyStopsDelivery) {
  Wire w(net::LinkSpec{Bandwidth::mbps(1.0), Duration::millis(1), 96'000});
  Bytes body_bytes = 0;
  bool complete = false;
  bool reset = false;
  MessageStream::Callbacks cbs;
  cbs.on_body_progress = [&](const Message&, Bytes n) { body_bytes += n; };
  cbs.on_message = [&](const Message&) { complete = true; };
  cbs.on_reset = [&] { reset = true; };
  MessageStream& c = w.open(cbs);
  c.send(Message{.type = MessageType::kPostData, .request_id = 1, .body = megabytes(1)});
  w.run_for(1.0);  // ~125 KB delivered of 1 MB
  c.abort();
  w.run_for(5.0);
  EXPECT_FALSE(complete);
  EXPECT_TRUE(reset);
  EXPECT_GT(body_bytes, kilobytes(50));
  EXPECT_LT(body_bytes, kilobytes(400));
}

TEST(HttpEdge, SendAfterAbortIsSilentlyDropped) {
  Wire w;
  MessageStream& c = w.open({});
  w.run_for(0.5);
  c.abort();
  c.send(Message{.type = MessageType::kRequest, .request_id = 1});  // no crash
  w.run_for(0.5);
  EXPECT_FALSE(c.alive());
}

TEST(HttpEdge, MetadataFieldsSurviveTransit) {
  Wire w;
  Message got;
  MessageStream::Callbacks cbs;
  cbs.on_message = [&](const Message& m) { got = m; };
  MessageStream& c = w.open(cbs);
  c.send(Message{.type = MessageType::kRequest,
                 .request_id = 0xDEADBEEFull,
                 .body = 123,
                 .cls = ClientClass::kBad,
                 .difficulty = 7,
                 .aux = 4242});
  w.run_for(1.0);
  EXPECT_EQ(got.request_id, 0xDEADBEEFull);
  EXPECT_EQ(got.body, 123);
  EXPECT_EQ(got.cls, ClientClass::kBad);
  EXPECT_EQ(got.difficulty, 7);
  EXPECT_EQ(got.aux, 4242);
}

TEST(HttpEdge, RandomizedMessageMixPreservesOrderAndSizes) {
  // Property test: any sequence of messages with random body sizes arrives
  // complete, in order, with exact body-byte totals.
  Wire w;
  util::RngStream rng(77, "http-fuzz");
  std::vector<Bytes> sent_bodies;
  std::vector<Bytes> got_bodies;
  Bytes progress_total = 0;
  MessageStream::Callbacks cbs;
  cbs.on_message = [&](const Message& m) { got_bodies.push_back(m.body); };
  cbs.on_body_progress = [&](const Message&, Bytes n) { progress_total += n; };
  MessageStream& c = w.open(cbs);
  Bytes total = 0;
  for (int i = 0; i < 60; ++i) {
    const Bytes body = rng.chance(0.3) ? 0 : rng.uniform_int(1, 20'000);
    sent_bodies.push_back(body);
    total += body;
    c.send(Message{.type = MessageType::kPostData,
                   .request_id = static_cast<std::uint64_t>(i),
                   .body = body});
  }
  w.run_for(10.0);
  ASSERT_EQ(got_bodies.size(), sent_bodies.size());
  EXPECT_EQ(got_bodies, sent_bodies);
  EXPECT_EQ(progress_total, total);
}

TEST(HttpEdge, BidirectionalSimultaneousTraffic) {
  Wire w;
  int server_got = 0;
  int client_got = 0;
  MessageStream::Callbacks scbs;
  scbs.on_message = [&](const Message&) { ++server_got; };
  MessageStream& c = w.open(scbs);
  MessageStream::Callbacks ccbs;
  ccbs.on_message = [&](const Message&) { ++client_got; };
  ccbs.on_established = [&] {
    for (int i = 0; i < 10; ++i) {
      c.send(Message{.type = MessageType::kRequest,
                     .request_id = static_cast<std::uint64_t>(i)});
    }
  };
  c.set_callbacks(std::move(ccbs));
  w.run_for(0.5);
  ASSERT_NE(w.server, nullptr);
  for (int i = 0; i < 10; ++i) {
    w.server->send(Message{.type = MessageType::kPleasePay,
                           .request_id = static_cast<std::uint64_t>(i)});
  }
  w.run_for(2.0);
  EXPECT_EQ(server_got, 10);
  EXPECT_EQ(client_got, 10);
}

}  // namespace
}  // namespace speakup::http
