#include "obs/tracer.hpp"

#include "util/assert.hpp"
#include "util/json.hpp"

namespace speakup::obs {

Tracer::Tracer(std::size_t capacity) : ring_(capacity) {
  util::require(capacity > 0, "Tracer: capacity must be positive");
}

namespace {

/// Event names are string literals under our control, but escape anyway so
/// a stray quote or backslash can never produce an unparsable trace.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u00";
      const char* hex = "0123456789abcdef";
      out.push_back(hex[(c >> 4) & 0xf]);
      out.push_back(hex[c & 0xf]);
    } else {
      out.push_back(c);
    }
  }
}

void append_event(std::string& out, const TraceEvent& e, int pid) {
  out += "{\"name\":\"";
  append_escaped(out, e.name);
  out += "\",\"cat\":\"";
  append_escaped(out, e.cat);
  out += "\",\"ph\":\"";
  out += e.dur_ns < 0 ? 'i' : 'X';
  out += "\",\"ts\":";
  // Trace-event timestamps are microseconds; keep sub-us precision as a
  // decimal fraction so distinct ns-scale events stay distinct.
  out += util::json::number_to_string(static_cast<double>(e.ts_ns) / 1000.0);
  if (e.dur_ns >= 0) {
    out += ",\"dur\":";
    out += util::json::number_to_string(static_cast<double>(e.dur_ns) / 1000.0);
  } else {
    out += ",\"s\":\"t\"";  // instant scope: thread
  }
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(e.tid);
  if (e.arg_name != nullptr) {
    out += ",\"args\":{\"";
    append_escaped(out, e.arg_name);
    out += "\":";
    out += util::json::number_to_string(e.arg);
    out += "}";
  }
  out += "}";
}

}  // namespace

void Tracer::append_chrome_events(std::string& out, int pid, bool& first) const {
  for (std::size_t i = 0; i < count_; ++i) {
    if (!first) out += ",\n";
    first = false;
    append_event(out, event(i), pid);
  }
}

std::string Tracer::chrome_trace_json(int pid) const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  append_chrome_events(out, pid, first);
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace speakup::obs
