// Example: speak-up during a flash crowd (§9).
//
// Speak-up cannot tell a flash crowd — overload from good clients alone —
// from an attack: either way the thinner makes clients bid. §9 argues this
// is acceptable for sites in speak-up's applicability regime. This example
// quantifies the experience: an all-good overload with and without the
// thinner, showing that under speak-up everyone still gets a fair share and
// what the bidding costs them.
#include <algorithm>
#include <cstdio>

#include "exp/runner.hpp"

int main() {
  using namespace speakup;
  std::printf("flash crowd: 40 good clients (Poisson 2 req/s each) hit a server\n"
              "with capacity 40 req/s — overload with no attacker in sight.\n\n");

  const exp::DefenseMode kModes[] = {exp::DefenseMode::kNone, exp::DefenseMode::kAuction};
  exp::Runner runner;
  for (const exp::DefenseMode mode : kModes) {
    exp::ScenarioConfig cfg = exp::lan_scenario(/*good=*/40, /*bad=*/0,
                                                /*capacity=*/40.0, mode, /*seed=*/13);
    cfg.duration = Duration::seconds(60.0);
    runner.add(cfg, to_string(mode));
  }
  runner.run_all();

  for (const exp::DefenseMode mode : kModes) {
    const exp::ExperimentResult& r = runner.result(to_string(mode));
    std::printf("%s:\n", mode == exp::DefenseMode::kNone ? "without speak-up"
                                                         : "with speak-up");
    std::printf("  fraction of requests served: %.2f\n", r.fraction_good_served);
    std::printf("  mean response time of served requests: %.2f s\n",
                r.groups[0].totals.response_time.mean());
    if (mode == exp::DefenseMode::kAuction) {
      std::printf("  mean price paid: %.0f KB (bandwidth spent bidding)\n",
                  r.thinner.price_good.mean() / 1000.0);
      std::printf("  mean time spent uploading dummy bytes: %.2f s\n",
                  r.thinner.payment_time_good.mean());
    }
    // Fairness across the crowd: spread of per-client service.
    const auto& per_client = r.groups[0].served_per_client;
    std::int64_t lo = per_client.empty() ? 0 : per_client.front();
    std::int64_t hi = lo;
    for (const auto s : per_client) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    std::printf("  per-client served requests: min %lld, max %lld\n\n",
                static_cast<long long>(lo), static_cast<long long>(hi));
  }

  std::printf("speak-up serves the crowd evenly (equal bandwidth -> equal share);\n"
              "the cost is the bidding overhead, which is why §9 recommends it only\n"
              "for sites that meet the applicability conditions of §2.\n");
  return 0;
}
