// The speak-up thinner with an explicit payment channel and virtual auction
// (§3.3 of the paper — the variant the authors implemented and evaluated).
//
// Protocol (client side is client/workload_client.hpp):
//   - A client sends its request (kRequest) on a "request channel".
//   - If the server is free and nobody is contending, the request is
//     admitted immediately (price zero).
//   - Otherwise the thinner replies kPleasePay, and the client opens a
//     payment channel (kPayOpen + a stream of 1-MByte kPostData POSTs, as
//     the paper's JavaScript does). The thinner credits every delivered
//     body byte to the request id.
//   - When the server finishes a request, the thinner holds a virtual
//     auction: among contenders whose request has actually arrived, the one
//     that has paid the most bytes wins, its channel is terminated (kWin)
//     and the request is admitted.
//   - A contender that has not won within the payment window (10 s, §7.3)
//     is evicted and its bytes are wasted.
//
// The thinner never identifies clients: all accounting is by request id and
// delivered bytes (spoofing/NAT make identity useless — §2.2, §3.2).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/front_end.hpp"
#include "core/thinner_stats.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "server/emulated_server.hpp"
#include "sim/timer.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {

class AuctionThinner : public FrontEnd {
 public:
  struct Config {
    double capacity_rps = 100.0;
    Bytes response_body = 1000;  // served-response size
    /// §7.3: a payment channel whose *request never arrives* is timed out
    /// after this long and its bytes are wasted. Contenders whose request is
    /// present keep paying until they win or their client walks away.
    Duration payment_window = Duration::seconds(10);
    std::uint32_t request_port = 80;
    std::uint32_t payment_port = 81;
  };

  AuctionThinner(transport::Host& host, const Config& cfg, util::RngStream server_rng);

  // --- FrontEnd ---
  [[nodiscard]] std::string_view name() const override { return "auction"; }
  [[nodiscard]] const ThinnerStats& stats() const override { return stats_; }
  /// Contenders currently being tracked (paying or waiting).
  [[nodiscard]] std::size_t contending() const override { return states_.size(); }
  [[nodiscard]] Duration server_busy_good() const override {
    return server_.good_busy_time();
  }
  [[nodiscard]] Duration server_busy_bad() const override {
    return server_.bad_busy_time();
  }
  [[nodiscard]] Duration server_busy_total() const override { return server_.busy_time(); }

  [[nodiscard]] const server::EmulatedServer& server() const { return server_; }

 private:
  struct RequestState {
    std::uint64_t id = 0;
    http::ClientClass cls = http::ClientClass::kNeutral;
    int difficulty = 1;
    bool has_request = false;  // kRequest arrived (payment may precede it)
    bool serving = false;
    bool started_paying = false;
    Bytes paid = 0;
    SimTime created;
    SimTime first_payment;
    http::MessageStream* request_session = nullptr;
    http::MessageStream* payment_session = nullptr;
    std::unique_ptr<sim::Timer> expiry;
  };

  void on_request_accept(transport::TcpConnection& conn);
  void on_payment_accept(transport::TcpConnection& conn);
  void on_request_message(http::MessageStream& s, const http::Message& m);
  void on_payment_message(http::MessageStream& s, const http::Message& m);
  void on_payment_progress(http::MessageStream& s, const http::Message& m, Bytes newly);
  void on_stream_reset(http::MessageStream& s);
  void on_server_complete(const server::ServiceRequest& done);

  RequestState& get_or_create(std::uint64_t id, http::ClientClass cls);
  RequestState* state_for(http::MessageStream& s);
  void admit(RequestState& st);
  void run_auction();
  void expire(std::uint64_t id);
  /// Removes the state; optionally aborts any sessions still bound to it.
  void destroy_state(std::uint64_t id, bool abort_sessions);

  transport::Host* host_;
  Config cfg_;
  server::EmulatedServer server_;
  http::SessionPool pool_;
  ThinnerStats stats_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RequestState>> states_;
  std::unordered_map<http::MessageStream*, std::uint64_t> by_stream_;
};

}  // namespace speakup::core
