// The counting global operator new / delete behind util::AllocGuard.
//
// Built as the `speakup_counted_new` object library and linked into test
// binaries only — NOT into libspeakup — so linking the simulator never
// changes a host program's allocator. (Object, not archive: nothing
// references these symbols by name, so an archive member would be dropped.) Replacing these
// signatures is sanitizer-safe: ASan intercepts the malloc/free underneath,
// so leak checking and poisoning still work, and the counter is a relaxed
// atomic so the override is race-free under TSan.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "util/alloc_guard.hpp"

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define SPEAKUP_HAVE_BACKTRACE 1
#else
#define SPEAKUP_HAVE_BACKTRACE 0
#endif

namespace {

// Registers "counting is live" at static-init time so AllocGuard::counting()
// is accurate even before the first allocation.
struct CountingMarker {
  CountingMarker() {
    speakup::util::alloc_detail::g_counting_linked.store(true, std::memory_order_relaxed);
  }
};
CountingMarker g_marker;

void* counted_alloc_nothrow(std::size_t size) noexcept {
  using namespace speakup::util::alloc_detail;
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (g_trap_armed.load(std::memory_order_relaxed) &&
      std::getenv("SPEAKUP_TRAP_ALLOC") != nullptr) {
    // Opt-in debugging: dump the offending stack — resolve the +0x offsets
    // with `addr2line -f -C -e <this binary>` — then die loudly.
#if SPEAKUP_HAVE_BACKTRACE
    void* frames[32];
    backtrace_symbols_fd(frames, backtrace(frames, 32), 2);
#else
    std::fputs("speakup: allocation inside an armed AllocGuard trap\n", stderr);
#endif
    std::abort();
  }
  return std::malloc(size);
}

void* counted_alloc(std::size_t size) {
  if (void* p = counted_alloc_nothrow(size)) return p;
  throw std::bad_alloc();
}

}  // namespace

// The nothrow variants MUST be overridden alongside the throwing ones:
// libstdc++'s stable_sort temporary buffer allocates via
// `operator new(n, std::nothrow)` and releases via plain `operator delete`.
// With only the plain forms replaced, ASan pairs its own interposed
// nothrow-new (chunk tagged "operator new") with our free()-based delete
// and reports alloc-dealloc-mismatch — found by the ASan CI job on
// ResultWriter::merge_csv, pinned by util_test's AllocGuard.CountsNothrowNew.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
