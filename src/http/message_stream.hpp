// Message framing over a TcpConnection.
//
// The sender side queues message descriptors and writes the corresponding
// byte counts into the TCP stream; the receiver side watches in-order byte
// arrival and fires callbacks as message boundaries are crossed. Because
// payment POSTs must be credited *as the bytes arrive* (a partial payment
// still counts toward an auction bid — §3.3), the stream reports incremental
// body progress as well as message completion.
//
// A MessageStream attaches itself to its connection's app_handle so the
// peer endpoint's stream can read the descriptor queue — the simulation
// shortcut that lets typed messages ride on counted bytes.
//
// The descriptor queue is a growable ring (the DropTailQueue pattern)
// rather than a deque, and a detached stream can be rebound to a fresh
// connection with rebind(): http::SessionPool parks retired streams and
// reuses them, ring capacity and all, so steady-state stream churn at
// 10^5-client scale performs no heap allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "http/message.hpp"
#include "transport/tcp_connection.hpp"
#include "util/assert.hpp"

namespace speakup::http {

class MessageStream {
 public:
  struct Callbacks {
    std::function<void(const Message&)> on_message;  // fully delivered
    /// Incremental in-order arrival of a message body (after its header).
    std::function<void(const Message&, Bytes newly)> on_body_progress;
    std::function<void()> on_established;
    /// Peer reset / connection failure.
    std::function<void()> on_reset;
    /// Sender side: total stream bytes acked by the peer.
    std::function<void(Bytes total_acked)> on_acked;
  };

  explicit MessageStream(transport::TcpConnection& conn) { attach(conn); }

  MessageStream(const MessageStream&) = delete;
  MessageStream& operator=(const MessageStream&) = delete;

  ~MessageStream() {
    if (conn_ != nullptr) {
      conn_->app_handle() = static_cast<MessageStream*>(nullptr);
      conn_->set_callbacks({});
    }
  }

  void set_callbacks(Callbacks cbs) { cbs_ = std::move(cbs); }

  /// Re-attaches a detached (aborted/reset) stream to a fresh connection,
  /// resetting framing state but keeping the ring's capacity. Only valid
  /// when the previous connection is gone (abort() or on_reset detached us).
  void rebind(transport::TcpConnection& conn) {
    SPEAKUP_ASSERT(conn_ == nullptr);
    cbs_ = {};
    head_ = 0;
    count_ = 0;
    inbound_header_left_ = -1;
    inbound_body_left_ = 0;
    attach(conn);
  }

  /// Queues a message for transmission.
  void send(Message m) {
    if (conn_ == nullptr) return;
    push_back(m);
    conn_->write(m.wire_bytes());
  }

  /// Aborts the underlying connection (RST).
  void abort() {
    if (conn_ != nullptr) {
      transport::TcpConnection* c = conn_;
      conn_ = nullptr;
      c->app_handle() = static_cast<MessageStream*>(nullptr);
      c->set_callbacks({});
      c->abort();
    }
  }

  [[nodiscard]] bool alive() const { return conn_ != nullptr && !conn_->closed(); }
  [[nodiscard]] transport::TcpConnection* connection() const { return conn_; }

 private:
  void attach(transport::TcpConnection& conn) {
    conn_ = &conn;
    conn.app_handle() = this;
    transport::TcpConnection::Callbacks cbs;
    cbs.on_established = [this] {
      if (cbs_.on_established) cbs_.on_established();
    };
    cbs.on_data = [this](Bytes n) { consume(n); };
    cbs.on_acked = [this](Bytes total) {
      if (cbs_.on_acked) cbs_.on_acked(total);
    };
    cbs.on_reset = [this] {
      conn_ = nullptr;
      if (cbs_.on_reset) cbs_.on_reset();
    };
    conn.set_callbacks(std::move(cbs));
  }

  // --- outbox ring (descriptors not yet fully consumed by the peer) -------

  [[nodiscard]] bool outbox_empty() const { return count_ == 0; }
  [[nodiscard]] Message& outbox_front() {
    SPEAKUP_ASSERT(count_ > 0);
    return ring_[head_];
  }

  void push_back(const Message& m) {
    if (count_ == ring_.size()) grow();
    ring_[(head_ + count_) % ring_.size()] = m;
    ++count_;
  }

  void pop_front() {
    SPEAKUP_ASSERT(count_ > 0);
    head_ = (head_ + 1) % ring_.size();
    --count_;
  }

  void grow() {
    const std::size_t old_cap = ring_.size();
    const std::size_t new_cap = old_cap == 0 ? 4 : old_cap * 2;
    std::vector<Message> bigger(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = ring_[(head_ + i) % old_cap];
    }
    ring_.swap(bigger);
    head_ = 0;
  }

  /// Receiver path: `n` new in-order bytes arrived. Walk them through the
  /// peer's descriptor queue, firing progress/completion callbacks.
  void consume(Bytes n) {
    while (n > 0) {
      MessageStream* peer = peer_stream();
      if (peer == nullptr || peer->outbox_empty()) return;  // raced with teardown
      Message& front = peer->outbox_front();
      if (inbound_header_left_ < 0) inbound_header_left_ = kMessageHeaderBytes;
      if (inbound_header_left_ > 0) {
        const Bytes take = std::min(n, inbound_header_left_);
        inbound_header_left_ -= take;
        n -= take;
        if (inbound_header_left_ > 0) return;
        inbound_body_left_ = front.body;
      }
      if (inbound_body_left_ > 0) {
        const Bytes take = std::min(n, inbound_body_left_);
        inbound_body_left_ -= take;
        n -= take;
        if (take > 0 && cbs_.on_body_progress) cbs_.on_body_progress(front, take);
      }
      if (inbound_body_left_ == 0) {
        const Message done = front;
        peer->pop_front();
        inbound_header_left_ = -1;  // next message starts fresh
        if (cbs_.on_message) cbs_.on_message(done);
        // Callback may have aborted us; re-check.
        if (conn_ == nullptr) return;
      }
    }
  }

  [[nodiscard]] MessageStream* peer_stream() const {
    if (conn_ == nullptr) return nullptr;
    transport::TcpConnection* p = conn_->peer();
    if (p == nullptr) return nullptr;
    auto* handle = std::any_cast<MessageStream*>(&p->app_handle());
    return handle == nullptr ? nullptr : *handle;
  }

  transport::TcpConnection* conn_ = nullptr;
  Callbacks cbs_;
  std::vector<Message> ring_;  // outbox storage; [head_, head_ + count_) live
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Bytes inbound_header_left_ = -1;  // -1: waiting for a new message
  Bytes inbound_body_left_ = 0;
};

}  // namespace speakup::http
