// Base class for everything attached to the network graph.
#pragma once

#include <string>

#include "net/packet.hpp"

namespace speakup::net {

class Network;

class Node {
 public:
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  virtual ~Node() = default;

  /// Invoked when a packet arrives at this node off a link.
  virtual void on_packet(Packet p) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() const { return *net_; }

 protected:
  Node(Network& net, NodeId id, std::string name)
      : net_(&net), id_(id), name_(std::move(name)) {}

 private:
  Network* net_;
  NodeId id_;
  std::string name_;
};

}  // namespace speakup::net
