// Full-duplex point-to-point link.
//
// Each direction has its own serialization rate, propagation delay and
// drop-tail queue, modeled store-and-forward: a packet is dequeued, occupies
// the transmitter for wire_size/rate, then arrives after the propagation
// delay (propagation does not block the next transmission).
//
// Hot-path note: each in-flight packet is carried by one pooled record that
// lives through both phases (serialization, then propagation); the event
// callbacks capture only {this, slot}, so pushing a packet through a link
// performs zero heap allocations at steady state (see docs/performance.md).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/event_loop.hpp"
#include "util/units.hpp"

namespace speakup::net {

class Network;

struct LinkSpec {
  Bandwidth rate;
  Duration delay;                      // one-way propagation
  Bytes queue_capacity = 96'000;       // ~64 full-size packets
};

class Link {
 public:
  Link(Network& net, NodeId a, NodeId b, const LinkSpec& ab, const LinkSpec& ba);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sends `p` from endpoint `from` toward the other endpoint.
  void send(NodeId from, Packet p);

  [[nodiscard]] NodeId endpoint_a() const { return a_; }
  [[nodiscard]] NodeId endpoint_b() const { return b_; }
  [[nodiscard]] NodeId other(NodeId n) const { return n == a_ ? b_ : a_; }

  /// Statistics for the direction whose *source* is `from`.
  [[nodiscard]] const DropTailQueue& queue_from(NodeId from) const {
    return dir_for(from).queue;
  }
  [[nodiscard]] Bytes bytes_delivered_from(NodeId from) const {
    return dir_for(from).delivered_bytes;
  }

 private:
  struct Direction {
    Direction(const LinkSpec& spec, NodeId to)
        : rate(spec.rate), delay(spec.delay), queue(spec.queue_capacity), dst(to) {}
    Bandwidth rate;
    Duration delay;
    DropTailQueue queue;
    NodeId dst;
    bool transmitting = false;
    Bytes delivered_bytes = 0;
  };

  /// One pooled record per in-flight packet: the packet plus its direction,
  /// reused across the serialize -> propagate -> deliver phases and then
  /// recycled through a free list.
  struct InFlight {
    Packet pkt;
    Direction* dir = nullptr;
    std::uint32_t next_free = kNilSlot;
  };
  static constexpr std::uint32_t kNilSlot = UINT32_MAX;

  void transmit(Direction& d, Packet p);
  void on_serialized(std::uint32_t slot);
  void on_propagated(std::uint32_t slot);
  std::uint32_t acquire(Packet&& p, Direction& d);
  void release(std::uint32_t slot);
  Direction& dir_for(NodeId from) { return from == a_ ? ab_ : ba_; }
  [[nodiscard]] const Direction& dir_for(NodeId from) const { return from == a_ ? ab_ : ba_; }

  Network* net_;
  NodeId a_;
  NodeId b_;
  Direction ab_;
  Direction ba_;
  std::vector<InFlight> pool_;
  std::uint32_t free_head_ = kNilSlot;
};

}  // namespace speakup::net
