// Tests for message framing over TCP: boundaries, incremental body
// progress, interleaving, churn and teardown.
#include <gtest/gtest.h>

#include <vector>

#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"

namespace speakup::http {
namespace {

struct Harness {
  Harness() : net(loop), pool(loop) {
    a = &net.add_node<transport::Host>("a");
    b = &net.add_node<transport::Host>("b");
    net.connect(*a, *b,
                net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(1), 96'000});
    net.build_routes();
  }

  /// Opens a client stream to b:80 with a server-side stream configured by
  /// `server_cbs_factory` at accept time.
  MessageStream& connect(MessageStream::Callbacks client_cbs,
                         std::function<MessageStream::Callbacks(MessageStream&)> server_fn) {
    b->listen(80, [this, server_fn](transport::TcpConnection& c) {
      MessageStream& s = pool.adopt(c);
      s.set_callbacks(server_fn(s));
    });
    transport::TcpConnection& c = a->connect(b->id(), 80);
    MessageStream& s = pool.adopt(c);
    s.set_callbacks(std::move(client_cbs));
    return s;
  }

  void run(double sec = 30.0) { loop.run_until(SimTime::zero() + Duration::seconds(sec)); }

  sim::EventLoop loop;
  net::Network net;
  SessionPool pool;
  transport::Host* a = nullptr;
  transport::Host* b = nullptr;
};

TEST(Message, WireBytesIncludesHeader) {
  Message m{.type = MessageType::kRequest, .request_id = 7, .body = 500};
  EXPECT_EQ(m.wire_bytes(), kMessageHeaderBytes + 500);
  Message hdr_only{.type = MessageType::kRetry};
  EXPECT_EQ(hdr_only.wire_bytes(), kMessageHeaderBytes);
}

TEST(MessageStream, DeliversSingleMessage) {
  Harness h;
  std::vector<Message> got;
  MessageStream& client = h.connect(
      {},
      [&](MessageStream&) {
        MessageStream::Callbacks cbs;
        cbs.on_message = [&](const Message& m) { got.push_back(m); };
        return cbs;
      });
  MessageStream* cp = &client;
  MessageStream::Callbacks ccbs;
  ccbs.on_established = [cp] {
    cp->send(Message{.type = MessageType::kRequest, .request_id = 42, .cls = ClientClass::kGood});
  };
  client.set_callbacks(std::move(ccbs));
  h.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, MessageType::kRequest);
  EXPECT_EQ(got[0].request_id, 42u);
  EXPECT_EQ(got[0].cls, ClientClass::kGood);
}

TEST(MessageStream, PreservesOrderAcrossManyMessages) {
  Harness h;
  std::vector<std::uint64_t> ids;
  MessageStream& client = h.connect(
      {},
      [&](MessageStream&) {
        MessageStream::Callbacks cbs;
        cbs.on_message = [&](const Message& m) { ids.push_back(m.request_id); };
        return cbs;
      });
  MessageStream* cp = &client;
  MessageStream::Callbacks ccbs;
  ccbs.on_established = [cp] {
    for (std::uint64_t i = 0; i < 20; ++i) {
      cp->send(Message{.type = MessageType::kRequest, .request_id = i});
    }
  };
  client.set_callbacks(std::move(ccbs));
  h.run();
  ASSERT_EQ(ids.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(ids[i], i);
}

TEST(MessageStream, BodyProgressArrivesIncrementally) {
  Harness h;
  std::vector<Bytes> progress;
  Bytes total = 0;
  bool complete = false;
  MessageStream& client = h.connect(
      {},
      [&](MessageStream&) {
        MessageStream::Callbacks cbs;
        cbs.on_body_progress = [&](const Message& m, Bytes n) {
          EXPECT_EQ(m.type, MessageType::kPostData);
          progress.push_back(n);
          total += n;
        };
        cbs.on_message = [&](const Message&) { complete = true; };
        return cbs;
      });
  MessageStream* cp = &client;
  MessageStream::Callbacks ccbs;
  ccbs.on_established = [cp] {
    cp->send(Message{.type = MessageType::kPostData, .request_id = 1, .body = kilobytes(100)});
  };
  client.set_callbacks(std::move(ccbs));
  h.run();
  EXPECT_TRUE(complete);
  EXPECT_EQ(total, kilobytes(100));
  // 100 KB over a 2 Mbit/s link arrives in many MSS-sized chunks.
  EXPECT_GT(progress.size(), 10u);
}

TEST(MessageStream, PartialBodyCountsBeforeCompletion) {
  Harness h;
  Bytes total = 0;
  bool complete = false;
  MessageStream& client = h.connect(
      {},
      [&](MessageStream&) {
        MessageStream::Callbacks cbs;
        cbs.on_body_progress = [&](const Message&, Bytes n) { total += n; };
        cbs.on_message = [&](const Message&) { complete = true; };
        return cbs;
      });
  MessageStream* cp = &client;
  MessageStream::Callbacks ccbs;
  ccbs.on_established = [cp] {
    cp->send(Message{.type = MessageType::kPostData, .request_id = 1, .body = megabytes(1)});
  };
  client.set_callbacks(std::move(ccbs));
  // 1 MB needs ~4.2 s at 2 Mbit/s; run only 2 s.
  h.run(2.0);
  EXPECT_FALSE(complete);
  EXPECT_GT(total, kilobytes(200));  // a partial payment has been credited
  EXPECT_LT(total, megabytes(1));
}

TEST(MessageStream, BidirectionalExchange) {
  Harness h;
  bool server_got = false;
  bool client_got = false;
  MessageStream& client = h.connect(
      {},
      [&](MessageStream& server) {
        MessageStream::Callbacks cbs;
        cbs.on_message = [&, sp = &server](const Message& m) {
          server_got = true;
          sp->send(Message{.type = MessageType::kResponse, .request_id = m.request_id});
        };
        return cbs;
      });
  MessageStream* cp = &client;
  MessageStream::Callbacks ccbs;
  ccbs.on_established = [cp] {
    cp->send(Message{.type = MessageType::kRequest, .request_id = 5});
  };
  ccbs.on_message = [&](const Message& m) {
    EXPECT_EQ(m.type, MessageType::kResponse);
    EXPECT_EQ(m.request_id, 5u);
    client_got = true;
  };
  client.set_callbacks(std::move(ccbs));
  h.run();
  EXPECT_TRUE(server_got);
  EXPECT_TRUE(client_got);
}

TEST(MessageStream, AbortTriggersPeerReset) {
  Harness h;
  bool server_reset = false;
  MessageStream& client = h.connect(
      {},
      [&](MessageStream&) {
        MessageStream::Callbacks cbs;
        cbs.on_reset = [&] { server_reset = true; };
        return cbs;
      });
  MessageStream* cp = &client;
  MessageStream::Callbacks ccbs;
  ccbs.on_established = [cp] { cp->abort(); };
  client.set_callbacks(std::move(ccbs));
  h.run();
  EXPECT_TRUE(server_reset);
  EXPECT_FALSE(client.alive());
}

TEST(MessageStream, MessagesQueuedBeforeEstablishmentFlow) {
  Harness h;
  std::vector<Message> got;
  MessageStream& client = h.connect(
      {},
      [&](MessageStream&) {
        MessageStream::Callbacks cbs;
        cbs.on_message = [&](const Message& m) { got.push_back(m); };
        return cbs;
      });
  // Send immediately, before the handshake completes.
  client.send(Message{.type = MessageType::kRequest, .request_id = 9});
  h.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].request_id, 9u);
}

TEST(SessionPool, RetireIsIdempotentAndDeferred) {
  Harness h;
  MessageStream& client = h.connect({}, [&](MessageStream&) { return MessageStream::Callbacks{}; });
  h.run(1.0);
  EXPECT_EQ(h.pool.live(), 2u);  // client + server streams
  h.pool.retire(&client);
  h.pool.retire(&client);  // second retire: no-op
  h.run(2.0);
  // Only the client stream was retired; the server-side stream saw a reset
  // but stays owned until its owner retires it.
  EXPECT_EQ(h.pool.live(), 1u);
}

TEST(SessionPool, AdoptTracksLiveStreams) {
  Harness h;
  EXPECT_EQ(h.pool.live(), 0u);
  h.connect({}, [&](MessageStream&) { return MessageStream::Callbacks{}; });
  h.run(1.0);
  EXPECT_EQ(h.pool.live(), 2u);
}

}  // namespace
}  // namespace speakup::http
