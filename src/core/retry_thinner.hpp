// The speak-up variant of §3.2: random drops and aggressive retries.
//
// The thinner admits a request when the server is free; otherwise it
// immediately replies kRetry — the synchronous "please retry now" signal.
// Clients react by streaming retries in a congestion-controlled stream
// (they pipeline without waiting for each kRetry; the TCP stream itself
// paces them). Because the thinner admits whichever retry arrives first
// at a free server, admissions are distributed in proportion to delivered
// retry rates — i.e., to bandwidth — which is the §3.2 allocation argument.
// The price (retries per admission, r = 1/p) emerges; it is recorded in
// ThinnerStats::retries_good/bad.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/front_end.hpp"
#include "core/thinner_stats.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "server/emulated_server.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {

class RetryThinner : public FrontEnd {
 public:
  struct Config {
    double capacity_rps = 100.0;
    Bytes response_body = 1000;
    std::uint32_t request_port = 80;
  };

  RetryThinner(transport::Host& host, const Config& cfg, util::RngStream server_rng);

  // --- FrontEnd ---
  [[nodiscard]] std::string_view name() const override { return "retry"; }
  [[nodiscard]] const ThinnerStats& stats() const override { return stats_; }
  [[nodiscard]] std::size_t contending() const override { return states_.size(); }
  [[nodiscard]] Duration server_busy_good() const override {
    return server_.good_busy_time();
  }
  [[nodiscard]] Duration server_busy_bad() const override {
    return server_.bad_busy_time();
  }
  [[nodiscard]] Duration server_busy_total() const override { return server_.busy_time(); }

  [[nodiscard]] const server::EmulatedServer& server() const { return server_; }
  [[nodiscard]] std::int64_t retries_received() const { return retries_received_; }

 private:
  struct RequestState {
    std::uint64_t id = 0;
    http::ClientClass cls = http::ClientClass::kNeutral;
    int difficulty = 1;
    std::int64_t retries = 0;
    bool serving = false;
    http::MessageStream* session = nullptr;
  };

  void on_accept(transport::TcpConnection& conn);
  void on_message(http::MessageStream& s, const http::Message& m);
  void on_reset(http::MessageStream& s);
  void on_server_complete(const server::ServiceRequest& done);
  void admit(RequestState& st);

  transport::Host* host_;
  Config cfg_;
  server::EmulatedServer server_;
  http::SessionPool pool_;
  ThinnerStats stats_;
  std::int64_t retries_received_ = 0;
  std::unordered_map<std::uint64_t, std::unique_ptr<RequestState>> states_;
  std::unordered_map<http::MessageStream*, std::uint64_t> by_stream_;
};

}  // namespace speakup::core
