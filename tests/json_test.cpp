// Tests for the dependency-free JSON layer under the scenario loader and
// result writer: parse/dump round trips, deterministic number formatting,
// and errors that point at the offending line and column.
#include <gtest/gtest.h>

#include <limits>

#include "util/json.hpp"

namespace speakup::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("2.5").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(parse("-1e3").as_number(), -1000.0);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v.find("d")->as_object().empty());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Value::Object& o = v.as_object();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(quote("a\"b\nc"), R"("a\"b\nc")");
}

TEST(Json, DumpRoundTrips) {
  const char* text = R"({"name":"fig2","vals":[1,2.5,true,null],"sub":{"k":"v"}})";
  const Value v = parse(text);
  EXPECT_EQ(v.dump(), text);           // compact, insertion order
  const Value again = parse(v.dump(2));  // pretty output re-parses to equal dump
  EXPECT_EQ(again.dump(), text);
}

TEST(Json, NumberFormattingIsDeterministicAndExact) {
  EXPECT_EQ(number_to_string(100.0), "100");
  EXPECT_EQ(number_to_string(-3.0), "-3");
  EXPECT_EQ(number_to_string(0.5), "0.5");
  // A value needing full precision still round-trips exactly.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(number_to_string(v)), v);
}

TEST(Json, ErrorsNameLineAndColumn) {
  try {
    (void)parse("{\n  \"a\": 1,\n  \"b\" 2\n}");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)parse(""), Error);
  EXPECT_THROW((void)parse("{\"a\": 1} trailing"), Error);
  EXPECT_THROW((void)parse("[1, 2"), Error);
  EXPECT_THROW((void)parse("\"unterminated"), Error);
  EXPECT_THROW((void)parse("tru"), Error);
  EXPECT_THROW((void)parse("1.2.3"), Error);
}

TEST(Json, DuplicateObjectKeysAreRejected) {
  try {
    (void)parse(R"({"seed": 1, "seed": 2})");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos) << e.what();
  }
}

TEST(Json, TypedAccessorsNameTheActualType) {
  try {
    (void)parse("[1]").as_object();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("array"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)parse("2.5").as_int(), Error);
  // Integral but outside int64: a range error, not an unchecked cast.
  EXPECT_THROW((void)parse("1e300").as_int(), Error);
}

TEST(Json, NonFiniteNumbersAreRejected) {
  EXPECT_THROW((void)parse("1e999"), Error);   // strtod overflows to inf
  EXPECT_THROW((void)parse("-1e999"), Error);
  EXPECT_THROW((void)number_to_string(std::numeric_limits<double>::infinity()),
               Error);
  EXPECT_THROW((void)number_to_string(std::numeric_limits<double>::quiet_NaN()),
               Error);
}

TEST(Json, BuilderApi) {
  Value v;
  v.set("a", 1).set("b", "x").set("a", 2);  // overwrite keeps position
  Value arr;
  arr.push_back(true).push_back(Value(nullptr));
  v.set("list", std::move(arr));
  EXPECT_EQ(v.dump(), R"({"a":2,"b":"x","list":[true,null]})");
}

}  // namespace
}  // namespace speakup::util::json
