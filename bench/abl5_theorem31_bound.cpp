// Ablation A5: empirical validation of Theorem 3.1.
//
// The theorem: with regular service intervals, a client that continuously
// delivers an eps fraction of the thinner's inbound bandwidth wins at least
// eps/(2-eps) >= eps/2 of the auctions, *no matter how* the adversary times
// or divides its bytes. We run the auction game against adversary timing
// strategies (including the proof's reactive worst case) and service-time
// jitter, and print the measured fraction next to the bounds.
//
// The swept grid — eps, delta, adversary names, tick counts, RNG seed —
// comes from scenarios/abl5.json; the adversary timing functions live in
// the core::auction_game registry (the JSON refers to them by name).
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/auction_game.hpp"
#include "core/theory.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Ablation A5", "Theorem 3.1: service fraction vs eps/2 bound");
  bench::print_paper_note(
      "every adversary strategy leaves the eps-bandwidth client at least "
      "~eps/2 of the service; the reactive outbidder approaches the bound");

  core::AuctionGameSpec spec;
  try {
    spec = core::load_auction_game_file(bench::scenario_path("abl5.json"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const int ticks = bench::full_mode() ? spec.ticks_full : spec.ticks_quick;
  util::RngStream rng(spec.seed, spec.stream);

  stats::Table table({"eps", "delta", "strategy", "measured", "eps/(2-eps)",
                      "jitter-bound"});
  for (const double eps : spec.eps) {
    for (const double delta : spec.delta) {
      for (const std::string& name : spec.adversaries) {
        const double won =
            core::run_auction_game(eps, delta, ticks, rng, core::adversary_fn(name));
        table.row()
            .add(eps, 2)
            .add(delta, 1)
            .add(name)
            .add(won, 4)
            .add(core::theory::theorem31_service_fraction(eps), 4)
            .add(core::theory::theorem31_service_fraction_jitter(eps, delta), 4);
      }
    }
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
