// Statistics every thinner variant exposes. The experiment harness copies
// these into ExperimentResult at the end of a run.
#pragma once

#include <cstdint>

#include "stats/counter_set.hpp"
#include "stats/sample_set.hpp"
#include "stats/time_series.hpp"
#include "util/units.hpp"

namespace speakup::core {

struct ThinnerStats {
  std::int64_t requests_received = 0;
  std::int64_t served_good = 0;
  std::int64_t served_bad = 0;
  std::int64_t served_other = 0;  // ClientClass::kNeutral (e.g. probes)
  std::int64_t direct_admissions = 0;  // admitted at price 0 while the server was idle
  std::int64_t auctions_held = 0;
  std::int64_t channels_expired = 0;   // evicted after the payment window
  std::int64_t busy_rejections = 0;    // no-defense baseline drops
  Bytes payment_bytes_total = 0;       // all payment bytes sunk
  Bytes payment_bytes_wasted = 0;      // bytes in expired channels
  stats::SampleSet price_good;         // bytes paid per *served* request
  stats::SampleSet price_bad;
  stats::SampleSet payment_time_good;  // seconds from first payment to win
  stats::SampleSet payment_time_bad;
  stats::SampleSet retries_good;       // §3.2 variant: retries per served request
  stats::SampleSet retries_bad;
  /// Payment bytes sunk per 5-second interval (§7.1's reporting unit).
  stats::TimeSeries payment_rate{Duration::seconds(5)};
  stats::CounterSet counters;

  [[nodiscard]] std::int64_t served_total() const {
    return served_good + served_bad + served_other;
  }
  [[nodiscard]] double allocation_good() const {
    const auto t = served_total();
    return t == 0 ? 0.0 : static_cast<double>(served_good) / static_cast<double>(t);
  }
  [[nodiscard]] double allocation_bad() const {
    const auto t = served_total();
    return t == 0 ? 0.0 : static_cast<double>(served_bad) / static_cast<double>(t);
  }
};

}  // namespace speakup::core
