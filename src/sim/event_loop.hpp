// Deterministic discrete-event loop.
//
// The loop owns a virtual clock and a binary heap of (fire-time, sequence)
// entries. Ties on fire-time are broken by insertion order, which — with
// per-component RNG streams (util/rng.hpp) — makes whole experiments
// bit-reproducible.
//
// Hot-path design (this is the innermost loop of every experiment):
//   - Callbacks live in a slab (vector) of pooled records recycled through
//     a free list; EventIds address records by (slot, generation), so
//     neither schedule nor cancel ever touches the allocator once the slab
//     and heap have reached their steady-state size.
//   - The callback type is sim::EventFn — a 64-byte in-place closure that
//     refuses oversized captures at compile time (see event_fn.hpp).
//   - Heap entries are 24-byte PODs; the callable itself never moves while
//     the heap sifts.
//   - Cancellation is O(1): bump the record's generation and free the slot;
//     the heap entry remains as a tombstone. Tombstones are shed when they
//     reach the top, and the heap is compacted whenever tombstones exceed
//     half its size, so cancel-heavy workloads (per-request retry timers)
//     cannot grow it without bound. Compaction preserves the (time, seq)
//     order exactly, so determinism is unaffected.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_fn.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace speakup::sim {

class EventLoop;

/// Handle to a scheduled event; lets the owner cancel it. Default-constructed
/// handles are inert. Copies address the same underlying event (a generation
/// check makes stale copies harmless). Plain trivially-copyable value — no
/// reference counting. Must not be queried after its EventLoop is destroyed.
class EventId {
 public:
  EventId() = default;
  [[nodiscard]] bool valid() const { return loop_ != nullptr; }
  [[nodiscard]] inline bool pending() const;

 private:
  friend class EventLoop;
  EventId(EventLoop* loop, std::uint32_t slot, std::uint32_t gen)
      : loop_(loop), slot_(slot), gen_(gen) {}
  EventLoop* loop_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// The representable horizon: the last instant an event can fire at.
  static constexpr SimTime max_time() { return SimTime::from_ns(INT64_MAX); }

  /// Schedules `fn` to run `delay` from now. Returns a cancellation handle.
  /// A delay that would overflow the clock saturates to max_time() (so
  /// Duration::infinite() and friends behave as "at the end of time", not
  /// as a wrapped-negative assertion failure).
  EventId schedule(Duration delay, EventFn fn) {
    SPEAKUP_ASSERT(delay >= Duration::zero());
    const std::int64_t headroom = max_time().ns() - now_.ns();
    const SimTime when =
        delay.ns() > headroom ? max_time() : now_ + delay;
    return schedule_at(when, std::move(fn));
  }

  /// Schedules `fn` at an absolute time. Rejects times in the past or past
  /// the representable horizon with a diagnostic (a negative `when` is
  /// almost always an overflowed Duration arithmetic upstream).
  EventId schedule_at(SimTime when, EventFn fn) {
    if (when < now_) {
      util::require(false, "EventLoop::schedule_at: time " + std::to_string(when.ns()) +
                               "ns is before now " + std::to_string(now_.ns()) +
                               "ns (negative times usually mean Duration overflow)");
    }
    const std::uint32_t slot = acquire_slot();
    Record& rec = slab_[slot];
    rec.fn = std::move(fn);
    rec.armed = true;
    heap_.push_back(HeapEntry{when.ns(), next_seq_++, slot, rec.gen});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++pending_;
    return EventId{this, slot, rec.gen};
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  /// O(1): the heap entry stays behind as a tombstone (see maybe_compact).
  void cancel(EventId& id) {
    if (id.loop_ == this && slot_pending(id.slot_, id.gen_)) {
      Record& rec = slab_[id.slot_];
      rec.armed = false;
      rec.fn.reset();  // release captured state promptly
      ++rec.gen;
      release_slot(id.slot_);
      --pending_;
      ++tombstones_;
      maybe_compact();
    }
    id.loop_ = nullptr;
  }

  /// Runs events until the queue empties or the clock passes `end`; the
  /// clock then reads `end` (time passes even when nothing happens).
  /// Events scheduled exactly at `end` do run.
  void run_until(SimTime end) {
    while (step(end.ns())) {
    }
    if (now_ < end) now_ = end;
  }

  /// Runs until no events remain, leaving the clock at the last event (use
  /// with care: self-rescheduling processes make this unbounded). Drains
  /// genuinely everything — there is no silent internal horizon.
  void run() {
    while (step(max_time().ns())) {
    }
  }

  /// Number of scheduled-but-not-yet-fired events.
  [[nodiscard]] std::size_t pending_events() const { return pending_; }

  /// Total events executed so far (for performance reporting).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Heap entries currently held, including tombstones (introspection for
  /// tests of the compaction policy).
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

 private:
  friend class EventId;

  static constexpr std::uint32_t kNilSlot = UINT32_MAX;
  /// Below this size the heap is left alone: compacting a few dozen entries
  /// buys nothing and would thrash on small workloads.
  static constexpr std::size_t kCompactMin = 64;

  struct Record {
    EventFn fn;
    std::uint32_t gen = 0;
    bool armed = false;
    std::uint32_t next_free = kNilSlot;
  };

  struct HeapEntry {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when_ns != b.when_ns) return a.when_ns > b.when_ns;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slab_.size() && slab_[slot].gen == gen && slab_[slot].armed;
  }
  [[nodiscard]] bool live(const HeapEntry& e) const {
    return slab_[e.slot].gen == e.gen && slab_[e.slot].armed;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slab_[slot].next_free;
      return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
  }

  void release_slot(std::uint32_t slot) {
    slab_[slot].next_free = free_head_;
    free_head_ = slot;
  }

  /// Fires the next due event (<= end_ns); returns false if none.
  bool step(std::int64_t end_ns) {
    while (!heap_.empty() && !live(heap_.front())) {  // shed tombstones
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      --tombstones_;
    }
    if (heap_.empty() || heap_.front().when_ns > end_ns) return false;
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    Record& rec = slab_[top.slot];
    SPEAKUP_ASSERT(top.when_ns >= now_.ns());
    now_ = SimTime::from_ns(top.when_ns);
    // Retire the record before invoking: the callback may schedule (reusing
    // this very slot), cancel, or destroy its own captures.
    EventFn fn = std::move(rec.fn);
    rec.armed = false;
    ++rec.gen;
    release_slot(top.slot);
    --pending_;
    ++executed_;
    fn();
    return true;
  }

  /// Rebuilds the heap without tombstones once they outnumber live entries.
  /// The comparator is a total order over unique (time, seq) pairs, so the
  /// rebuilt heap pops in exactly the same order as the lazy one.
  void maybe_compact() {
    if (heap_.size() < kCompactMin || tombstones_ * 2 <= heap_.size()) return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const HeapEntry& e) { return !live(e); }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    tombstones_ = 0;
  }

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Record> slab_;
  std::uint32_t free_head_ = kNilSlot;
};

inline bool EventId::pending() const {
  return loop_ != nullptr && loop_->slot_pending(slot_, gen_);
}

}  // namespace speakup::sim
