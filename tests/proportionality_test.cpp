// Parameterized property sweeps of the core claim: the speak-up thinner
// allocates the server in rough proportion to delivered bandwidth, across
// bandwidth mixes, population splits and capacities.
#include <gtest/gtest.h>

#include <string>

#include "core/theory.hpp"
#include "exp/experiment.hpp"

namespace speakup::exp {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: the f-sweep of Figure 2 at reduced scale (16 clients, 25 s).
// Bandwidth-proportionality must hold within a factor tolerance at every f.
// ---------------------------------------------------------------------------

struct FractionCase {
  const char* name;
  int good;
  int bad;
};

class AllocationVsFraction : public ::testing::TestWithParam<FractionCase> {};

TEST_P(AllocationVsFraction, TracksBandwidthShare) {
  const auto& p = GetParam();
  ScenarioConfig cfg =
      lan_scenario(p.good, p.bad, /*capacity=*/32.0, DefenseMode::kAuction, /*seed=*/51);
  cfg.duration = Duration::seconds(25.0);
  const ExperimentResult r = run_scenario(cfg);
  const double f = static_cast<double>(p.good) / (p.good + p.bad);
  const double ideal = core::theory::ideal_good_allocation(f, 1.0 - f);
  // "Rough proportion": within [0.6, 1.3] of ideal across the sweep. The
  // low end reflects good-client quiescence (§7.3).
  EXPECT_GT(r.allocation_good, 0.6 * ideal) << "f=" << f;
  EXPECT_LT(r.allocation_good, 1.3 * ideal + 0.05) << "f=" << f;
}

INSTANTIATE_TEST_SUITE_P(
    FSweep, AllocationVsFraction,
    ::testing::Values(FractionCase{"f25", 4, 12}, FractionCase{"f38", 6, 10},
                      FractionCase{"f50", 8, 8}, FractionCase{"f62", 10, 6},
                      FractionCase{"f75", 12, 4}),
    [](const ::testing::TestParamInfo<FractionCase>& i) { return i.param.name; });

// ---------------------------------------------------------------------------
// Sweep 2: two all-good bandwidth classes; served ratio tracks the
// bandwidth ratio (Figure 6's property).
// ---------------------------------------------------------------------------

struct BwRatioCase {
  const char* name;
  double slow_mbps;
  double fast_mbps;
};

class AllocationVsBandwidth : public ::testing::TestWithParam<BwRatioCase> {};

TEST_P(AllocationVsBandwidth, ServedRatioTracksBandwidthRatio) {
  const auto& p = GetParam();
  ScenarioConfig cfg;
  cfg.mode = DefenseMode::kAuction;
  cfg.capacity_rps = 8.0;
  cfg.seed = 52;
  cfg.duration = Duration::seconds(30.0);
  for (const double mbps : {p.slow_mbps, p.fast_mbps}) {
    ClientGroupSpec g;
    g.label = "bw" + std::to_string(mbps);
    g.count = 6;
    g.workload = client::good_client_params();
    g.access_bw = Bandwidth::mbps(mbps);
    cfg.groups.push_back(g);
  }
  const ExperimentResult r = run_scenario(cfg);
  const double want = p.fast_mbps / p.slow_mbps;
  ASSERT_GT(r.groups[0].totals.served, 0);
  const double got = static_cast<double>(r.groups[1].totals.served) /
                     static_cast<double>(r.groups[0].totals.served);
  EXPECT_GT(got, want * 0.55) << "bandwidth ratio " << want;
  EXPECT_LT(got, want * 2.0) << "bandwidth ratio " << want;
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, AllocationVsBandwidth,
    ::testing::Values(BwRatioCase{"r2", 1.0, 2.0}, BwRatioCase{"r3", 0.5, 1.5},
                      BwRatioCase{"r4", 0.5, 2.0}),
    [](const ::testing::TestParamInfo<BwRatioCase>& i) { return i.param.name; });

// ---------------------------------------------------------------------------
// Sweep 3: capacities around c_id; the §3.1 goal min(g, c*G/(G+B)) bounds
// the good service rate from above, and the defense keeps it within a
// constant factor from below.
// ---------------------------------------------------------------------------

struct CapacityCase {
  const char* name;
  double capacity;
};

class ServiceVsCapacity : public ::testing::TestWithParam<CapacityCase> {};

TEST_P(ServiceVsCapacity, GoodServiceRateNearTheoryGoal) {
  const double c = GetParam().capacity;
  ScenarioConfig cfg = lan_scenario(8, 8, c, DefenseMode::kAuction, /*seed=*/53);
  cfg.duration = Duration::seconds(30.0);
  const ExperimentResult r = run_scenario(cfg);
  const double g_demand = 8 * 2.0;
  const double goal = core::theory::ideal_good_service_rate(g_demand, 1.0, 1.0, c);
  const double measured = static_cast<double>(r.served_good) / cfg.duration.sec();
  EXPECT_LT(measured, goal * 1.15) << "c=" << c;  // can't beat the goal
  EXPECT_GT(measured, goal * 0.55) << "c=" << c;  // and defends most of it
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, ServiceVsCapacity,
    ::testing::Values(CapacityCase{"half_cid", 16.0}, CapacityCase{"at_cid", 32.0},
                      CapacityCase{"twice_cid", 64.0}, CapacityCase{"huge", 160.0}),
    [](const ::testing::TestParamInfo<CapacityCase>& i) { return i.param.name; });

// ---------------------------------------------------------------------------
// Sweep 4: determinism across every defense mode (same seed, same numbers).
// ---------------------------------------------------------------------------

class ModeDeterminism : public ::testing::TestWithParam<DefenseMode> {};

TEST_P(ModeDeterminism, IdenticalSeedsGiveIdenticalRuns) {
  ScenarioConfig cfg = lan_scenario(4, 4, 20.0, GetParam(), /*seed=*/54);
  cfg.duration = Duration::seconds(10.0);
  const ExperimentResult a = run_scenario(cfg);
  const ExperimentResult b = run_scenario(cfg);
  EXPECT_EQ(a.served_total, b.served_total);
  EXPECT_EQ(a.served_good, b.served_good);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.thinner.payment_bytes_total, b.thinner.payment_bytes_total);
}

INSTANTIATE_TEST_SUITE_P(Modes, ModeDeterminism,
                         ::testing::Values(DefenseMode::kNone, DefenseMode::kAuction,
                                           DefenseMode::kRetry,
                                           DefenseMode::kQuantumAuction),
                         [](const ::testing::TestParamInfo<DefenseMode>& i) {
                           return to_string(i.param);
                         });

}  // namespace
}  // namespace speakup::exp
