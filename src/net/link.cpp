#include "net/link.hpp"

#include "net/network.hpp"
#include "obs/observer.hpp"

namespace speakup::net {

Link::Link(Network& net, NodeId a, NodeId b, const LinkSpec& ab, const LinkSpec& ba)
    : net_(&net), a_(a), b_(b), ab_(ab, b), ba_(ba, a) {
  SPEAKUP_ASSERT(a != b);
  SPEAKUP_ASSERT(ab.rate.bits_per_sec() > 0 && ba.rate.bits_per_sec() > 0);
}

void Link::send(NodeId from, Packet p) {
  SPEAKUP_ASSERT(from == a_ || from == b_);
  Direction& d = dir_for(from);
  if (d.transmitting) {
    const Bytes wire = p.wire_size;
    const bool accepted = d.queue.push(std::move(p));  // drop-tail on overflow
    if (auto* o = net_->loop().observer()) {
      if (accepted) {
        o->on_link_enqueue(wire);
      } else {
        o->on_link_drop(wire);
      }
    }
    return;
  }
  // Transmitter idle: serialize immediately without passing through the queue.
  d.transmitting = true;
  transmit(d, std::move(p));
}

void Link::transmit(Direction& d, Packet p) {
  const Duration tx = d.rate.transmission_time(p.wire_size);
  const std::uint32_t slot = acquire(std::move(p), d);
  net_->loop().schedule(tx, [this, slot] { on_serialized(slot); });
}

void Link::on_serialized(std::uint32_t slot) {
  // Serialization finished: the packet propagates (non-blocking)...
  Direction& d = *pool_[slot].dir;
  d.delivered_bytes += pool_[slot].pkt.wire_size;
  net_->loop().schedule(d.delay, [this, slot] { on_propagated(slot); });
  // ...and the transmitter picks up the next queued packet. (This may grow
  // the pool; `d` is a Link member, so the reference stays valid.)
  if (auto next = d.queue.pop()) {
    if (auto* o = net_->loop().observer()) o->on_link_dequeue(next->wire_size);
    transmit(d, std::move(*next));
  } else {
    d.transmitting = false;
  }
}

void Link::on_propagated(std::uint32_t slot) {
  Packet p = std::move(pool_[slot].pkt);
  const NodeId to = pool_[slot].dir->dst;
  // Recycle before delivering: on_packet may synchronously send more
  // traffic through this very link.
  release(slot);
  net_->deliver(to, std::move(p));
}

std::uint32_t Link::acquire(Packet&& p, Direction& d) {
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = pool_[slot].next_free;
  } else {
    pool_.emplace_back();
    slot = static_cast<std::uint32_t>(pool_.size() - 1);
  }
  pool_[slot].pkt = p;
  pool_[slot].dir = &d;
  return slot;
}

void Link::release(std::uint32_t slot) {
  pool_[slot].next_free = free_head_;
  free_head_ = slot;
}

}  // namespace speakup::net
