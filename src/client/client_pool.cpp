// Transliteration of WorkloadClient / PaymentChannelClient control flow
// onto the pool's dense arrays. Every statement here mirrors a statement in
// workload_client.cpp in the same order — in particular every schedule(),
// reserve_seq(), Timer::restart() and SessionPool::retire() call happens at
// the same point in execution, which is what keeps the two engines'
// event sequences (and result fingerprints) bit-identical.
#include "client/client_pool.hpp"

#include <algorithm>

#include "obs/observer.hpp"
#include "util/log.hpp"

namespace speakup::client {

using http::Message;
using http::MessageStream;
using http::MessageType;

ClientPool::ClientPool(sim::EventLoop& loop, net::NodeId thinner,
                       const WorkloadParams& params, std::uint32_t base_index)
    : loop_(&loop),
      thinner_(thinner),
      params_(params),
      base_index_(base_index),
      session_pool_(loop) {
  util::require(params.lambda > 0, "client lambda must be positive");
  util::require(params.window >= 1, "client window must be >= 1");
  request_template_ = Message{.type = MessageType::kRequest,
                              .request_id = 0,
                              .cls = params_.cls,
                              .difficulty = params_.difficulty};
}

ClientPool::~ClientPool() {
  if (armed_ev_.pending()) loop_->cancel(armed_ev_);
  for (std::uint32_t slot = 0; slot < slot_live_.size(); ++slot) {
    if (slot_live_[slot]) request_at(slot)->~Request();
  }
}

void ClientPool::add_member(transport::Host& host, util::RngStream rng) {
  hosts_.push_back(&host);
  rngs_.push_back(std::move(rng));
  strategies_.push_back(
      StrategyFactory::instance().create(params_.strategy, strategy_params(params_)));
  stats_.emplace_back();
  next_seq_.push_back(0);
  paused_.push_back(0);
  // Preallocate the per-member dynamic state (a member's FIRST backlog
  // push or outstanding request can land arbitrarily late in a run, and
  // the steady-state request cycle must never touch the allocator —
  // tests/client_pool_test.cpp pins that with a counted operator new).
  backlogs_.emplace_back();
  backlogs_.back().grow();  // ring capacity 8 up front
  outstanding_.emplace_back();
  outstanding_.back().reserve(static_cast<std::size_t>(params_.window) + 1);
  arr_when_.emplace_back();
  arr_seq_.push_back(0);
  heap_pos_.push_back(kNpos);
}

StrategyView ClientPool::view(std::uint32_t m) const {
  StrategyView v;
  v.now = loop_->now();
  v.stats = &stats_[m];
  v.outstanding = outstanding_[m].size();
  v.backlog = backlogs_[m].count;
  return v;
}

int ClientPool::current_window(std::uint32_t m) {
  return std::max(1, strategies_[m]->window(view(m)));
}

void ClientPool::start_all() {
  for (std::uint32_t m = 0; m < hosts_.size(); ++m) draw_next_arrival(m);
  arm_next();
  SPEAKUP_AUDIT_ONLY(audit();)
}

#if SPEAKUP_AUDIT_ENABLED
void ClientPool::audit() const {
  const std::size_t n = hosts_.size();
  SPEAKUP_AUDIT_CHECK(rngs_.size() == n && strategies_.size() == n && stats_.size() == n &&
                          next_seq_.size() == n && paused_.size() == n &&
                          backlogs_.size() == n && outstanding_.size() == n &&
                          arr_when_.size() == n && arr_seq_.size() == n &&
                          heap_pos_.size() == n,
                      "ClientPool: per-member parallel arrays must stay aligned");
  // Cohort heap: binary min-heap over (arr_when_, arr_seq_), heap_pos_ the
  // exact inverse of heap_, members appearing at most once.
  SPEAKUP_AUDIT_CHECK(heap_.size() <= n, "ClientPool: heap larger than the member count");
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const std::uint32_t m = heap_[i];
    SPEAKUP_AUDIT_CHECK(m < n, "ClientPool: heap member id out of range");
    SPEAKUP_AUDIT_CHECK(heap_pos_[m] == i, "ClientPool: heap_pos_ must invert heap_");
    if (i > 0) {
      SPEAKUP_AUDIT_CHECK(!heap_less(m, heap_[(i - 1) / 2]),
                          "ClientPool: cohort min-heap property violated");
    }
  }
  std::size_t heaped = 0;
  for (std::uint32_t m = 0; m < n; ++m) {
    if (heap_pos_[m] == kNpos) continue;
    ++heaped;
    SPEAKUP_AUDIT_CHECK(heap_pos_[m] < heap_.size() && heap_[heap_pos_[m]] == m,
                        "ClientPool: member's heap_pos_ must point at its heap entry");
  }
  SPEAKUP_AUDIT_CHECK(heaped == heap_.size(),
                      "ClientPool: every heap entry owned by exactly one member");
  // The armed cohort event exists iff an arrival is pending, and it is
  // filed under the heap minimum's reserved key.
  SPEAKUP_AUDIT_CHECK(armed_ev_.pending() == !heap_.empty(),
                      "ClientPool: armed event must track heap emptiness");
  // Request slab: live flags count live_requests_, free list covers exactly
  // the dead slots, and outstanding lists hold live slots of their member.
  std::size_t live = 0;
  for (const std::uint8_t l : slot_live_) live += l;
  SPEAKUP_AUDIT_CHECK(live == live_requests_,
                      "ClientPool: live_requests_ must count the live slots");
  std::vector<std::uint8_t> freed(slot_live_.size(), 0);
  for (const std::uint32_t slot : free_slots_) {
    SPEAKUP_AUDIT_CHECK(slot < slot_live_.size(), "ClientPool: free slot out of range");
    SPEAKUP_AUDIT_CHECK(!slot_live_[slot], "ClientPool: free-listed slot must be dead");
    SPEAKUP_AUDIT_CHECK(!freed[slot], "ClientPool: slot free-listed more than once");
    freed[slot] = 1;
  }
  SPEAKUP_AUDIT_CHECK(free_slots_.size() + live == slot_live_.size(),
                      "ClientPool: every slot is either live or free-listed");
  std::size_t outstanding_total = 0;
  for (std::uint32_t m = 0; m < n; ++m) {
    for (const std::uint32_t slot : outstanding_[m]) {
      ++outstanding_total;
      SPEAKUP_AUDIT_CHECK(slot < slot_live_.size() && slot_live_[slot],
                          "ClientPool: outstanding entry must reference a live slot");
      // request_at is non-const only because of std::launder plumbing; the
      // audit only reads.
      const Request* r = const_cast<ClientPool*>(this)->request_at(slot);
      SPEAKUP_AUDIT_CHECK(r->member == m,
                          "ClientPool: outstanding slot must belong to its member");
    }
  }
  SPEAKUP_AUDIT_CHECK(outstanding_total == live_requests_,
                      "ClientPool: every live request is outstanding for exactly one member");
}

void ClientPool::corrupt_heap_for_test() {
  if (heap_.size() >= 2) std::swap(heap_pos_[heap_[0]], heap_pos_[heap_[1]]);
}
#endif

void ClientPool::draw_next_arrival(std::uint32_t m) {
  const Duration gap = strategies_[m]->next_arrival(rngs_[m], view(m));
  arr_when_[m] = loop_->now() + gap;
  arr_seq_[m] = loop_->reserve_seq();
  heap_insert(m);
}

void ClientPool::arm_next() {
  if (armed_ev_.pending()) loop_->cancel(armed_ev_);
  if (heap_.empty()) return;
  const std::uint32_t m = heap_[0];
  armed_ev_ = loop_->schedule_keyed(arr_when_[m], arr_seq_[m], [this] { fire(); });
}

void ClientPool::fire() {
  const std::uint32_t m = heap_[0];
  heap_pop_min();
  on_arrival(m);
  arm_next();
  SPEAKUP_AUDIT_ONLY(if (--audit_countdown_ == 0) {
    audit_countdown_ = kAuditPeriod;
    audit();
  })
}

void ClientPool::on_arrival(std::uint32_t m) {
  if (paused_[m]) return;  // chain stops, like the object engine's early return
  ++stats_[m].arrivals;
  purge_backlog(m);
  if (outstanding_[m].size() < static_cast<std::size_t>(current_window(m))) {
    start_request(m);
  } else {
    backlogs_[m].push_back(loop_->now());
  }
  draw_next_arrival(m);
}

void ClientPool::start_request(std::uint32_t m) {
  const std::uint64_t id = id_base(m) | next_seq_[m]++;
  const std::uint32_t slot = acquire_request();
  Request& r = *request_at(slot);
  r.id = id;
  r.member = m;
  r.sent = loop_->now();
  r.timer.emplace(*loop_, [this, id] { finish(id, Disposition::kDenied); });
  r.timer->restart(params_.request_timeout);

  transport::TcpConnection& conn = hosts_[m]->connect(thinner_, params_.request_port);
  r.stream = &session_pool_.adopt(conn);
  MessageStream::Callbacks cbs;
  // [this, slot] captures stay inside std::function's inline buffer; they
  // are safe because a retired stream never fires callbacks again, so a
  // recycled slot is unreachable from the old stream.
  cbs.on_established = [this, slot] {
    Request& req = *request_at(slot);
    if (req.stream == nullptr) return;
    Message msg = request_template_;
    msg.request_id = req.id;
    req.stream->send(msg);
    ++req.retries_sent;
  };
  cbs.on_message = [this, slot](const Message& msg) { on_message(*request_at(slot), msg); };
  cbs.on_reset = [this, id](/*thinner evicted us or network failure*/) {
    finish(id, Disposition::kDenied);
  };
  cbs.on_acked = [this, slot](Bytes) {
    Request& req = *request_at(slot);
    if (req.retry_pumping) pump_retries(req);
  };
  r.stream->set_callbacks(std::move(cbs));
  outstanding_[m].push_back(slot);
  ++stats_[m].started;
}

void ClientPool::on_message(Request& r, const Message& m) {
  const std::uint32_t mem = r.member;
  switch (m.type) {
    case MessageType::kPleasePay: {
      if (r.payment.has_value()) break;  // already paying (or defected)
      if (!strategies_[mem]->pay(rngs_[mem], view(mem))) {
        ++stats_[mem].payments_declined;
        if (auto* o = loop_->observer()) o->on_payment_declined(global_index(mem));
        break;  // sit out the auction; the request rides on its timeout
      }
      r.paying = true;
      r.pay_started = loop_->now();
      if (auto* o = loop_->observer()) o->on_payment_started(global_index(mem));
      PaymentChannelClient::Config pc;
      pc.thinner = thinner_;
      pc.payment_port = params_.payment_port;
      pc.post_size = params_.post_size;
      r.payment.emplace(*hosts_[mem], session_pool_, pc, r.id, params_.cls);
      r.payment->start();
      if (const auto patience = strategies_[mem]->payment_patience(rngs_[mem], view(mem))) {
        const std::uint64_t id = r.id;
        r.defect_timer.emplace(*loop_, [this, id] { abandon_payment(id); });
        r.defect_timer->restart(*patience);
      }
      break;
    }
    case MessageType::kRetry:
      // §3.2: stream retries without waiting for individual signals.
      if (!r.retry_pumping) {
        r.retry_pumping = true;
        pump_retries(r);
      }
      break;
    case MessageType::kResponse: {
      ++stats_[mem].served;
      stats_[mem].response_time.add((loop_->now() - r.sent).sec());
      if (r.paying) {
        stats_[mem].payment_time_client.add((loop_->now() - r.pay_started).sec());
      }
      finish(r.id, Disposition::kServed);
      break;
    }
    case MessageType::kBusy:
      finish(r.id, Disposition::kBusyRejected);
      break;
    case MessageType::kAborted:
      finish(r.id, Disposition::kDenied);
      break;
    default:
      break;
  }
}

void ClientPool::abandon_payment(std::uint64_t id) {
  std::uint32_t slot = 0;
  Request* r = find_request(id, &slot);
  if (r == nullptr) return;
  if (!r->payment.has_value() || r->payment->stopped()) return;
  r->payment->stop();  // §7.4 defection: the bid freezes mid-window
  ++stats_[r->member].payments_abandoned;
  if (auto* o = loop_->observer()) o->on_payment_abandoned(global_index(r->member));
}

void ClientPool::pump_retries(Request& r) {
  if (r.stream == nullptr || r.stream->connection() == nullptr) return;
  const transport::TcpConnection& conn = *r.stream->connection();
  const Bytes per_msg = Message{.type = MessageType::kRequest}.wire_bytes();
  const auto acked_msgs = conn.bytes_acked() / per_msg;
  const int pipeline = strategies_[r.member]->retry_pipeline(view(r.member));
  while (r.retries_sent - acked_msgs < pipeline) {
    Message msg = request_template_;
    msg.request_id = r.id;
    r.stream->send(msg);
    ++r.retries_sent;
    ++stats_[r.member].retries_sent;
  }
}

void ClientPool::finish(std::uint64_t id, Disposition d) {
  std::uint32_t slot = 0;
  Request* rp = find_request(id, &slot);
  if (rp == nullptr) return;
  Request& r = *rp;
  const std::uint32_t mem = r.member;
  int disposition = 0;
  switch (d) {
    case Disposition::kServed:
      break;  // counted by the caller
    case Disposition::kDenied:
      ++stats_[mem].denied;
      disposition = 1;
      break;
    case Disposition::kBusyRejected:
      ++stats_[mem].busy_rejected;
      disposition = 2;
      break;
  }
  if (auto* o = loop_->observer()) {
    o->on_request_finish(global_index(mem), r.sent, disposition, r.paying, r.pay_started);
  }
  if (r.payment.has_value()) {
    stats_[mem].payment_bytes_acked += r.payment->bytes_acked();
    r.payment->stop();
  }
  if (r.stream != nullptr) {
    MessageStream* s = r.stream;
    r.stream = nullptr;
    session_pool_.retire(s);
  }
  std::vector<std::uint32_t>& out = outstanding_[mem];
  for (std::uint32_t& e : out) {
    if (e == slot) {
      e = out.back();
      out.pop_back();
      break;
    }
  }
  release_request(slot);
  drain_backlog(mem);
}

void ClientPool::purge_backlog(std::uint32_t m) {
  const SimTime now = loop_->now();
  BacklogRing& bl = backlogs_[m];
  while (bl.count > 0 && now - bl.front() > params_.backlog_timeout) {
    bl.pop_front();
    ++stats_[m].denied;  // §7.1: queued longer than 10 s -> service denial
  }
}

void ClientPool::drain_backlog(std::uint32_t m) {
  purge_backlog(m);
  while (backlogs_[m].count > 0 &&
         outstanding_[m].size() < static_cast<std::size_t>(current_window(m))) {
    backlogs_[m].pop_front();
    start_request(m);
  }
}

std::uint32_t ClientPool::acquire_request() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slot_live_.size());
    if (slot % kChunk == 0) chunks_.push_back(std::make_unique<RawSlot[]>(kChunk));
    slot_live_.push_back(0);
    slot_gen_.push_back(0);
  }
  ::new (static_cast<void*>(chunks_[slot / kChunk][slot % kChunk].bytes)) Request();
  slot_live_[slot] = 1;
  ++live_requests_;
  return slot;
}

void ClientPool::release_request(std::uint32_t slot) {
  request_at(slot)->~Request();  // timer dtors cancel; payment dtor is a no-op
  slot_live_[slot] = 0;
  ++slot_gen_[slot];
  free_slots_.push_back(slot);
  --live_requests_;
}

ClientPool::Request* ClientPool::find_request(std::uint64_t id, std::uint32_t* out_slot) {
  const auto global = static_cast<std::uint32_t>((id >> 32) - 1);
  if (global < base_index_ || global - base_index_ >= outstanding_.size()) return nullptr;
  for (const std::uint32_t slot : outstanding_[global - base_index_]) {
    Request* r = request_at(slot);
    if (r->id == id) {
      *out_slot = slot;
      return r;
    }
  }
  return nullptr;
}

void ClientPool::heap_insert(std::uint32_t m) {
  heap_pos_[m] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(m);
  heap_sift_up(heap_.size() - 1);
}

void ClientPool::heap_pop_min() {
  heap_pos_[heap_[0]] = kNpos;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
}

void ClientPool::heap_sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    heap_pos_[heap_[parent]] = static_cast<std::uint32_t>(parent);
    i = parent;
  }
}

void ClientPool::heap_sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && heap_less(heap_[l], heap_[best])) best = l;
    if (r < n && heap_less(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    heap_pos_[heap_[best]] = static_cast<std::uint32_t>(best);
    i = best;
  }
}

}  // namespace speakup::client
