#include "client/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace speakup::client {

// ---------------------------------------------------------------------------
// StrategyParams.
// ---------------------------------------------------------------------------

double StrategyParams::knob(std::string_view key, double fallback) const {
  for (const auto& [k, v] : knobs) {
    if (k == key) return v;
  }
  return fallback;
}

void StrategyParams::require_knobs(std::string_view strategy,
                                   std::initializer_list<std::string_view> known) const {
  for (const auto& [k, v] : knobs) {
    (void)v;
    if (std::find(known.begin(), known.end(), k) != known.end()) continue;
    std::ostringstream os;
    os << "strategy '" << strategy << "': unknown parameter '" << k << "'";
    if (known.size() == 0) {
      os << " (it takes none)";
    } else {
      os << " (known:";
      for (const std::string_view n : known) os << " " << n;
      os << ")";
    }
    throw std::invalid_argument(os.str());
  }
}

namespace {

[[noreturn]] void bad_knob(std::string_view strategy, const std::string& what) {
  throw std::invalid_argument("strategy '" + std::string(strategy) + "': " + what);
}

// ---------------------------------------------------------------------------
// "poisson" — the §7.1 baseline both presets used before strategies existed.
// Draws exactly one exponential per arrival, so a scenario that never names
// a strategy is bit-identical to the pre-strategy WorkloadClient.
// ---------------------------------------------------------------------------

class PoissonStrategy final : public Strategy {
 public:
  explicit PoissonStrategy(StrategyParams p) : Strategy(std::move(p)) {
    params_.require_knobs(name(), {});
  }

  [[nodiscard]] std::string_view name() const override { return "poisson"; }

  [[nodiscard]] Duration next_arrival(util::RngStream& rng,
                                      const StrategyView& v) override {
    (void)v;
    return Duration::seconds(rng.exponential(params_.lambda));
  }
};

// ---------------------------------------------------------------------------
// "onoff" — shrew-style pulsing: a Poisson(lambda) process that only runs
// during the first `duty` fraction of each `period_s` window (offset by
// `offset_s`). The arrival gap is drawn as on-time and mapped onto the wall
// clock by skipping off-phases, so the pulse edges are exact.
// ---------------------------------------------------------------------------

class OnOffStrategy final : public Strategy {
 public:
  explicit OnOffStrategy(StrategyParams p)
      : Strategy(std::move(p)),
        period_(params_.knob("period_s", 10.0)),
        duty_(params_.knob("duty", 0.5)),
        offset_(params_.knob("offset_s", 0.0)) {
    params_.require_knobs(name(), {"period_s", "duty", "offset_s"});
    if (period_ <= 0) bad_knob(name(), "period_s must be > 0");
    if (duty_ <= 0 || duty_ > 1) bad_knob(name(), "duty must be in (0, 1]");
  }

  [[nodiscard]] std::string_view name() const override { return "onoff"; }

  [[nodiscard]] Duration next_arrival(util::RngStream& rng,
                                      const StrategyView& v) override {
    double need = rng.exponential(params_.lambda);  // on-time to consume
    if (duty_ >= 1.0) return Duration::seconds(need);  // always on: plain Poisson
    const double on_len = period_ * duty_;
    double t = v.now.sec() - offset_;
    while (true) {
      const double k = std::floor(t / period_);
      const double pos = t - k * period_;
      const double avail = on_len - pos;  // <= 0 in the off-phase
      if (avail > 0 && need < avail) {
        t += need;
        break;
      }
      if (avail > 0) need -= avail;
      // Jump to the next period start by absolute assignment. Accumulating
      // `t += avail` instead can stall forever: just below a phase edge,
      // avail underflows beneath one ulp of t and t += avail is a no-op.
      double next = (k + 1.0) * period_;
      if (next <= t) next = std::nextafter(t, std::numeric_limits<double>::infinity());
      t = next;
    }
    return Duration::seconds(t + offset_ - v.now.sec());
  }

 private:
  const double period_;
  const double duty_;
  const double offset_;
};

// ---------------------------------------------------------------------------
// "defector" — §7.4 gaming: behaves like a payer until it has been admitted
// `defect_after_served` times (default 1), then refuses every later
// kPleasePay. `patience_s` > 0 additionally abandons an open payment
// channel mid-window after that long without a win.
// ---------------------------------------------------------------------------

class DefectorStrategy final : public Strategy {
 public:
  explicit DefectorStrategy(StrategyParams p)
      : Strategy(std::move(p)),
        defect_after_served_(params_.knob("defect_after_served", 1.0)),
        patience_(params_.knob("patience_s", 0.0)) {
    params_.require_knobs(name(), {"defect_after_served", "patience_s"});
    if (defect_after_served_ < 1) bad_knob(name(), "defect_after_served must be >= 1");
    if (patience_ < 0) bad_knob(name(), "patience_s must be >= 0");
  }

  [[nodiscard]] std::string_view name() const override { return "defector"; }

  [[nodiscard]] Duration next_arrival(util::RngStream& rng,
                                      const StrategyView& v) override {
    (void)v;
    return Duration::seconds(rng.exponential(params_.lambda));
  }

  [[nodiscard]] bool pay(util::RngStream& rng, const StrategyView& v) override {
    (void)rng;
    return static_cast<double>(v.stats->served) < defect_after_served_;
  }

  [[nodiscard]] std::optional<Duration> payment_patience(util::RngStream& rng,
                                                         const StrategyView& v) override {
    (void)rng;
    (void)v;
    if (patience_ <= 0) return std::nullopt;
    return Duration::seconds(patience_);
  }

 private:
  const double defect_after_served_;
  const double patience_;
};

// ---------------------------------------------------------------------------
// "adaptive-window" — ramps concurrency with the observed denial rate: an
// attacker that widens its window as the defense pushes back. The window
// interpolates from the base `window` (no denials) up to `max_window`
// (every resolved request denied), scaled by `gain`.
// ---------------------------------------------------------------------------

class AdaptiveWindowStrategy final : public Strategy {
 public:
  explicit AdaptiveWindowStrategy(StrategyParams p)
      : Strategy(std::move(p)),
        max_window_(params_.knob("max_window", 3.0 * params_.window)),
        gain_(params_.knob("gain", 1.0)) {
    params_.require_knobs(name(), {"max_window", "gain"});
    if (max_window_ < params_.window) {
      bad_knob(name(), "max_window must be >= the base window");
    }
    if (gain_ < 0) bad_knob(name(), "gain must be >= 0");
  }

  [[nodiscard]] std::string_view name() const override { return "adaptive-window"; }

  [[nodiscard]] Duration next_arrival(util::RngStream& rng,
                                      const StrategyView& v) override {
    (void)v;
    return Duration::seconds(rng.exponential(params_.lambda));
  }

  [[nodiscard]] int window(const StrategyView& v) override {
    const std::int64_t resolved = v.stats->resolved();
    const double denial_rate =
        resolved == 0 ? 0.0
                      : static_cast<double>(v.stats->denied + v.stats->busy_rejected) /
                            static_cast<double>(resolved);
    const double ramp = std::min(1.0, gain_ * denial_rate);
    const double w = params_.window + ramp * (max_window_ - params_.window);
    return static_cast<int>(std::llround(w));
  }

 private:
  const double max_window_;
  const double gain_;
};

// ---------------------------------------------------------------------------
// "flash-crowd" — no malice, just correlation: a Poisson process whose rate
// jumps to lambda * surge_factor during [surge_start_s, surge_start_s +
// surge_duration_s). The gap is drawn by inverting the piecewise-constant
// rate, so the surge edge is exact (a pre-surge draw cannot overshoot the
// surge).
// ---------------------------------------------------------------------------

class FlashCrowdStrategy final : public Strategy {
 public:
  explicit FlashCrowdStrategy(StrategyParams p)
      : Strategy(std::move(p)),
        surge_start_(params_.knob("surge_start_s", 10.0)),
        surge_len_(params_.knob("surge_duration_s", 20.0)),
        factor_(params_.knob("surge_factor", 10.0)) {
    params_.require_knobs(name(), {"surge_start_s", "surge_duration_s", "surge_factor"});
    if (surge_start_ < 0) bad_knob(name(), "surge_start_s must be >= 0");
    if (surge_len_ <= 0) bad_knob(name(), "surge_duration_s must be > 0");
    if (factor_ <= 0) bad_knob(name(), "surge_factor must be > 0");
  }

  [[nodiscard]] std::string_view name() const override { return "flash-crowd"; }

  [[nodiscard]] Duration next_arrival(util::RngStream& rng,
                                      const StrategyView& v) override {
    // `need` is measured in base-rate time; a surge second consumes
    // factor_ of it.
    double need = rng.exponential(params_.lambda);
    double t = v.now.sec();
    const double s0 = surge_start_;
    const double s1 = surge_start_ + surge_len_;
    if (t < s0) {
      const double seg = std::min(need, s0 - t);
      t += seg;
      need -= seg;
    }
    if (need > 0 && t < s1) {
      const double avail = (s1 - t) * factor_;
      if (need <= avail) {
        t += need / factor_;
        need = 0;
      } else {
        need -= avail;
        t = s1;
      }
    }
    t += need;
    return Duration::seconds(t - v.now.sec());
  }

 private:
  const double surge_start_;
  const double surge_len_;
  const double factor_;
};

// ---------------------------------------------------------------------------
// "recon" — coupon-collector reconnaissance (Fleck et al.): the first
// `probes` arrivals are probes sent at rate `probe_lambda` whose kPleasePay
// is refused — the attacker maps the defense's behavior before committing
// any bandwidth. After the probe budget is spent it behaves exactly like
// "poisson" (pays, base rate). With probes = 0 the probe phase never
// exists, so the strategy is bit-for-bit identical to "poisson": one
// exponential draw per arrival, no other RNG consumption.
// ---------------------------------------------------------------------------

class ReconStrategy final : public Strategy {
 public:
  explicit ReconStrategy(StrategyParams p)
      : Strategy(std::move(p)),
        probes_(params_.knob("probes", 8.0)),
        probe_lambda_(params_.knob("probe_lambda", 0.0)) {
    params_.require_knobs(name(), {"probes", "probe_lambda"});
    if (probes_ < 0) bad_knob(name(), "probes must be >= 0");
    if (probe_lambda_ < 0) bad_knob(name(), "probe_lambda must be >= 0 (0 = base lambda)");
  }

  [[nodiscard]] std::string_view name() const override { return "recon"; }

  [[nodiscard]] Duration next_arrival(util::RngStream& rng,
                                      const StrategyView& v) override {
    (void)v;
    const double rate =
        probing() && probe_lambda_ > 0 ? probe_lambda_ : params_.lambda;
    const Duration gap = Duration::seconds(rng.exponential(rate));
    ++arrivals_drawn_;
    return gap;
  }

  [[nodiscard]] bool pay(util::RngStream& rng, const StrategyView& v) override {
    (void)rng;
    (void)v;
    // Probe requests collect behavior without committing bandwidth. The
    // payment decision keys off how many arrivals have been drawn, which is
    // deterministic per seed.
    return arrivals_drawn_ > probes_;
  }

 private:
  /// True while the next arrival to draw is still a probe.
  [[nodiscard]] bool probing() const {
    return static_cast<double>(arrivals_drawn_) < probes_;
  }

  const double probes_;
  const double probe_lambda_;
  std::int64_t arrivals_drawn_ = 0;
};

// ---------------------------------------------------------------------------
// "switcher" — a strategy-switching attacker: plays the cooperative payer
// until the admission rate signals the defense has effectively detected
// (priced out) it, then defects to free-riding. Concretely: once at least
// `min_observations` requests have resolved and the observed fraction
// served drops below `served_threshold`, every later kPleasePay is refused.
// Against "none"/"elastic" it never defects (everything resolves quickly);
// against the auction it stops wasting bandwidth once outbid.
// ---------------------------------------------------------------------------

class SwitcherStrategy final : public Strategy {
 public:
  explicit SwitcherStrategy(StrategyParams p)
      : Strategy(std::move(p)),
        min_obs_(params_.knob("min_observations", 20.0)),
        threshold_(params_.knob("served_threshold", 0.2)) {
    params_.require_knobs(name(), {"min_observations", "served_threshold"});
    if (min_obs_ < 1) bad_knob(name(), "min_observations must be >= 1");
    if (threshold_ < 0 || threshold_ > 1) {
      bad_knob(name(), "served_threshold must be in [0, 1]");
    }
  }

  [[nodiscard]] std::string_view name() const override { return "switcher"; }

  [[nodiscard]] Duration next_arrival(util::RngStream& rng,
                                      const StrategyView& v) override {
    (void)v;
    return Duration::seconds(rng.exponential(params_.lambda));
  }

  [[nodiscard]] bool pay(util::RngStream& rng, const StrategyView& v) override {
    (void)rng;
    if (defected_) return false;
    const std::int64_t resolved = v.stats->resolved();
    if (static_cast<double>(resolved) >= min_obs_ &&
        v.stats->fraction_served() < threshold_) {
      defected_ = true;  // sticky: detection signals don't un-ring
      return false;
    }
    return true;
  }

 private:
  const double min_obs_;
  const double threshold_;
  bool defected_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// StrategyFactory.
// ---------------------------------------------------------------------------

StrategyFactory& StrategyFactory::instance() {
  static StrategyFactory factory;
  return factory;
}

// Like the defenses, the built-ins register here instead of via static
// registrars: archive members nothing references get dropped by the linker.
StrategyFactory::StrategyFactory() {
  builders_.emplace_back("poisson", [](const StrategyParams& p) -> std::unique_ptr<Strategy> {
    return std::make_unique<PoissonStrategy>(p);
  });
  builders_.emplace_back("onoff", [](const StrategyParams& p) -> std::unique_ptr<Strategy> {
    return std::make_unique<OnOffStrategy>(p);
  });
  builders_.emplace_back("defector", [](const StrategyParams& p) -> std::unique_ptr<Strategy> {
    return std::make_unique<DefectorStrategy>(p);
  });
  builders_.emplace_back(
      "adaptive-window", [](const StrategyParams& p) -> std::unique_ptr<Strategy> {
        return std::make_unique<AdaptiveWindowStrategy>(p);
      });
  builders_.emplace_back(
      "flash-crowd", [](const StrategyParams& p) -> std::unique_ptr<Strategy> {
        return std::make_unique<FlashCrowdStrategy>(p);
      });
  builders_.emplace_back("recon", [](const StrategyParams& p) -> std::unique_ptr<Strategy> {
    return std::make_unique<ReconStrategy>(p);
  });
  builders_.emplace_back(
      "switcher", [](const StrategyParams& p) -> std::unique_ptr<Strategy> {
        return std::make_unique<SwitcherStrategy>(p);
      });
}

void StrategyFactory::register_strategy(const std::string& name, Builder builder) {
  util::require(!name.empty(), "strategy name must be non-empty");
  util::require(builder != nullptr, "strategy builder must be callable");
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, unused] : builders_) {
    (void)unused;
    util::require(existing != name, "strategy '" + name + "' is already registered");
  }
  builders_.emplace_back(name, std::move(builder));
}

void StrategyFactory::unregister_strategy(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(builders_, [&](const auto& entry) { return entry.first == name; });
}

bool StrategyFactory::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(builders_.begin(), builders_.end(),
                     [&](const auto& entry) { return entry.first == name; });
}

std::vector<std::string> StrategyFactory::names() const {
  std::vector<std::string> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.reserve(builders_.size());
    for (const auto& [name, unused] : builders_) {
      (void)unused;
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Strategy> StrategyFactory::create(std::string_view name,
                                                  const StrategyParams& params) const {
  Builder builder;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find_if(builders_.begin(), builders_.end(),
                                 [&](const auto& entry) { return entry.first == name; });
    if (it == builders_.end()) {
      std::ostringstream os;
      os << "unknown strategy '" << name << "' (registered:";
      for (const auto& [n, unused] : builders_) {
        (void)unused;
        os << " " << n;
      }
      os << ")";
      throw std::invalid_argument(os.str());
    }
    builder = it->second;
  }
  return builder(params);
}

}  // namespace speakup::client
