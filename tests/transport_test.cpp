// Tests for the Reno-style TCP model: handshake, bulk transfer throughput,
// slow start, loss recovery, RTO behaviour, fairness, and the
// parallel-connection advantage the paper's §3.4/§4.2 discussion relies on.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"

namespace speakup::transport {
namespace {

struct TwoHostNet {
  explicit TwoHostNet(const net::LinkSpec& spec) : net(loop) {
    a = &net.add_node<Host>("a");
    b = &net.add_node<Host>("b");
    net.connect(*a, *b, spec);
    net.build_routes();
  }
  sim::EventLoop loop;
  net::Network net;
  Host* a = nullptr;
  Host* b = nullptr;
};

constexpr net::LinkSpec kLan{Bandwidth::mbps(2.0), Duration::millis(1), 96'000};

TEST(Tcp, HandshakeEstablishesBothEnds) {
  TwoHostNet t(kLan);
  TcpConnection* accepted = nullptr;
  t.b->listen(80, [&](TcpConnection& c) { accepted = &c; });
  bool established = false;
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  TcpConnection::Callbacks cbs;
  cbs.on_established = [&] { established = true; };
  c.set_callbacks(std::move(cbs));
  t.loop.run_until(SimTime::zero() + Duration::seconds(1.0));
  EXPECT_TRUE(established);
  ASSERT_NE(accepted, nullptr);
  EXPECT_TRUE(c.established());
  EXPECT_TRUE(accepted->established());
  EXPECT_EQ(c.peer(), accepted);
  EXPECT_EQ(accepted->peer(), &c);
}

TEST(Tcp, HandshakeTakesOneRtt) {
  TwoHostNet t(kLan);
  t.b->listen(80, [](TcpConnection&) {});
  SimTime established_at;
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  TcpConnection::Callbacks cbs;
  cbs.on_established = [&] { established_at = t.loop.now(); };
  c.set_callbacks(std::move(cbs));
  t.loop.run_until(SimTime::zero() + Duration::seconds(1.0));
  // SYN + SYN-ACK, each 1 ms propagation + tiny serialization.
  EXPECT_GE(established_at.ns(), Duration::millis(2).ns());
  EXPECT_LE(established_at.ns(), Duration::millis(3).ns());
}

TEST(Tcp, ConnectionToNonListeningPortResets) {
  TwoHostNet t(kLan);
  bool reset = false;
  TcpConnection& c = t.a->connect(t.b->id(), 4242);
  TcpConnection::Callbacks cbs;
  cbs.on_reset = [&] { reset = true; };
  c.set_callbacks(std::move(cbs));
  t.loop.run_until(SimTime::zero() + Duration::seconds(1.0));
  EXPECT_TRUE(reset);
}

/// Transfers `n` bytes a->b and returns the completion time (seconds).
double transfer_time(const net::LinkSpec& spec, Bytes n) {
  TwoHostNet t(spec);
  Bytes delivered = 0;
  SimTime done_at;
  t.b->listen(80, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&, n](Bytes newly) {
      delivered += newly;
      if (delivered >= n) done_at = t.net.loop().now();
    };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  c.write(n);
  t.loop.run_until(SimTime::zero() + Duration::seconds(120.0));
  EXPECT_EQ(delivered, n);
  return done_at.sec();
}

TEST(Tcp, BulkTransferApproachesLinkRate) {
  // 2 Mbit/s link, 1 MByte payload: ideal goodput-limited time is
  // 1e6*8/2e6 = 4 s; headers add ~3%; slow start adds a little.
  const double sec = transfer_time(kLan, megabytes(1));
  EXPECT_GT(sec, 4.0);
  EXPECT_LT(sec, 5.0);
}

TEST(Tcp, ThroughputScalesWithBandwidth) {
  const double slow = transfer_time(kLan, kilobytes(500));
  const double fast =
      transfer_time(net::LinkSpec{Bandwidth::mbps(8.0), Duration::millis(1), 96'000},
                    kilobytes(500));
  EXPECT_GT(slow / fast, 3.0);  // 4x bandwidth -> ~4x faster (minus slow start)
}

TEST(Tcp, SlowStartDoublesPerRtt) {
  // With a 100 ms RTT and an initial window of 2 MSS, delivered bytes
  // should roughly double each RTT during slow start.
  TwoHostNet t(net::LinkSpec{Bandwidth::mbps(100.0), Duration::millis(50), 1'000'000});
  Bytes delivered = 0;
  t.b->listen(80, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes newly) { delivered += newly; };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  c.write(megabytes(4));
  // Handshake completes at ~100 ms and the first flight lands at ~150 ms;
  // sample mid-round (175 ms, 275 ms, ...) and compare per-round deltas.
  std::vector<Bytes> deltas;
  Bytes prev = 0;
  for (int i = 0; i < 4; ++i) {
    t.loop.run_until(SimTime::zero() + Duration::millis(175 + 100 * i));
    deltas.push_back(delivered - prev);
    prev = delivered;
  }
  ASSERT_GT(deltas[0], 0);
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    ASSERT_GT(deltas[i - 1], 0);
    const double ratio =
        static_cast<double>(deltas[i]) / static_cast<double>(deltas[i - 1]);
    EXPECT_GT(ratio, 1.5) << "slow-start round " << i << " did not ~double";
    EXPECT_LT(ratio, 3.0) << "slow-start round " << i << " grew implausibly fast";
  }
}

TEST(Tcp, SmallMessageNeedsNoFullMss) {
  // 200 bytes should arrive as a single sub-MSS segment quickly.
  TwoHostNet t(kLan);
  Bytes delivered = 0;
  t.b->listen(80, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes newly) { delivered += newly; };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  c.write(200);
  t.loop.run_until(SimTime::zero() + Duration::millis(10));
  EXPECT_EQ(delivered, 200);
}

TEST(Tcp, OnAckedReportsProgress) {
  TwoHostNet t(kLan);
  t.b->listen(80, [](TcpConnection&) {});
  Bytes acked = 0;
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  TcpConnection::Callbacks cbs;
  cbs.on_acked = [&](Bytes total) { acked = total; };
  c.set_callbacks(std::move(cbs));
  c.write(10'000);
  t.loop.run_until(SimTime::zero() + Duration::seconds(2.0));
  EXPECT_EQ(acked, 10'000);
  EXPECT_EQ(c.bytes_acked(), 10'000);
}

TEST(Tcp, RecoversFromLossThroughTightQueue) {
  // A queue of only 3 packets forces drops during slow start; the transfer
  // must still complete (fast retransmit / RTO).
  const double sec =
      transfer_time(net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(10), 3 * 1500},
                    kilobytes(300));
  EXPECT_GT(sec, 1.2);   // 300 KB at 2 Mbit/s is at least 1.2 s
  EXPECT_LT(sec, 30.0);  // and loss must not stall it forever
}

TEST(Tcp, RetransmitsAreCounted) {
  TwoHostNet t(net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(10), 3 * 1500});
  t.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  c.write(kilobytes(300));
  t.loop.run_until(SimTime::zero() + Duration::seconds(60.0));
  EXPECT_GT(c.retransmits(), 0);
  EXPECT_EQ(c.bytes_acked(), kilobytes(300));
}

TEST(Tcp, SrttApproximatesPathRtt) {
  TwoHostNet t(net::LinkSpec{Bandwidth::mbps(10.0), Duration::millis(40), 1'000'000});
  t.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  c.write(kilobytes(100));
  t.loop.run_until(SimTime::zero() + Duration::seconds(5.0));
  // Path RTT is 80 ms + serialization; SRTT should land nearby.
  EXPECT_GT(c.srtt().ms(), 60.0);
  EXPECT_LT(c.srtt().ms(), 160.0);
}

TEST(Tcp, AbortSendsRstToPeer) {
  TwoHostNet t(kLan);
  TcpConnection* accepted = nullptr;
  t.b->listen(80, [&](TcpConnection& c) { accepted = &c; });
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  t.loop.run_until(SimTime::zero() + Duration::millis(100));
  ASSERT_NE(accepted, nullptr);
  bool peer_reset = false;
  TcpConnection::Callbacks cbs;
  cbs.on_reset = [&] { peer_reset = true; };
  accepted->set_callbacks(std::move(cbs));
  c.abort();
  EXPECT_TRUE(c.closed());
  t.loop.run_until(SimTime::zero() + Duration::millis(200));
  EXPECT_TRUE(peer_reset);
  EXPECT_EQ(c.peer(), nullptr);
}

TEST(Tcp, WriteAfterAbortIsIgnored) {
  TwoHostNet t(kLan);
  t.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  t.loop.run_until(SimTime::zero() + Duration::millis(100));
  c.abort();
  c.write(1000);  // must not crash or send
  t.loop.run_until(SimTime::zero() + Duration::millis(200));
  EXPECT_EQ(c.bytes_acked(), 0);
}

TEST(Tcp, SynLossRecoversViaRto) {
  // Drop the first SYN by using a zero-capacity... not possible; instead use
  // a queue fitting nothing beyond the in-flight packet and pre-fill the
  // link with a dummy transfer so the SYN is dropped.
  TwoHostNet t(net::LinkSpec{Bandwidth::kbps(64), Duration::millis(1), 100});
  t.b->listen(80, [](TcpConnection&) {});
  // Saturate the a->b direction so some control packets drop.
  TcpConnection& filler = t.a->connect(t.b->id(), 80);
  filler.write(kilobytes(50));
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  bool established = false;
  TcpConnection::Callbacks cbs;
  cbs.on_established = [&] { established = true; };
  c.set_callbacks(std::move(cbs));
  t.loop.run_until(SimTime::zero() + Duration::seconds(60.0));
  EXPECT_TRUE(established);  // SYN retries eventually get through
}

TEST(Tcp, TwoFlowsShareBottleneckFairly) {
  // Two hosts behind a shared 2 Mbit/s bottleneck send to the same sink;
  // long-run throughputs should be within 2x of each other.
  sim::EventLoop loop;
  net::Network net(loop);
  auto& h1 = net.add_node<Host>("h1");
  auto& h2 = net.add_node<Host>("h2");
  auto& sw = net.add_switch("sw");
  auto& sink = net.add_node<Host>("sink");
  const net::LinkSpec access{Bandwidth::mbps(10.0), Duration::millis(1), 96'000};
  net.connect(h1, sw, access);
  net.connect(h2, sw, access);
  net.connect(sw, sink, net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(5), 30'000});
  net.build_routes();
  Bytes d1 = 0;
  Bytes d2 = 0;
  sink.listen(80, [&](TcpConnection& c) {
    const auto remote = c.remote_node();
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&, remote](Bytes n) { (remote == h1.id() ? d1 : d2) += n; };
    c.set_callbacks(std::move(cbs));
  });
  h1.connect(sink.id(), 80).write(megabytes(100));
  h2.connect(sink.id(), 80).write(megabytes(100));
  loop.run_until(SimTime::zero() + Duration::seconds(60.0));
  ASSERT_GT(d1, 0);
  ASSERT_GT(d2, 0);
  const double ratio = static_cast<double>(d1) / static_cast<double>(d2);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  // Combined goodput should be near link rate: >= 70% of 2 Mbit/s over 60 s.
  EXPECT_GT(d1 + d2, static_cast<Bytes>(0.7 * 2e6 / 8 * 60));
}

TEST(Tcp, ParallelConnectionsGrabLargerShare) {
  // One host opens 5 connections, the other 1, across a shared bottleneck:
  // the 5-connection host should get roughly 5x the bandwidth (§4.2's
  // n/(n+1) argument). Accept anything clearly above 2x.
  sim::EventLoop loop;
  net::Network net(loop);
  auto& greedy = net.add_node<Host>("greedy");
  auto& meek = net.add_node<Host>("meek");
  auto& sw = net.add_switch("sw");
  auto& sink = net.add_node<Host>("sink");
  const net::LinkSpec access{Bandwidth::mbps(10.0), Duration::millis(1), 96'000};
  net.connect(greedy, sw, access);
  net.connect(meek, sw, access);
  net.connect(sw, sink, net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(5), 30'000});
  net.build_routes();
  Bytes dg = 0;
  Bytes dm = 0;
  sink.listen(80, [&](TcpConnection& c) {
    const auto remote = c.remote_node();
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&, remote](Bytes n) { (remote == greedy.id() ? dg : dm) += n; };
    c.set_callbacks(std::move(cbs));
  });
  for (int i = 0; i < 5; ++i) greedy.connect(sink.id(), 80).write(megabytes(100));
  meek.connect(sink.id(), 80).write(megabytes(100));
  loop.run_until(SimTime::zero() + Duration::seconds(60.0));
  ASSERT_GT(dm, 0);
  EXPECT_GT(static_cast<double>(dg) / static_cast<double>(dm), 2.0);
}

TEST(Host, PortAllocationIsUnique) {
  TwoHostNet t(kLan);
  t.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c1 = t.a->connect(t.b->id(), 80);
  TcpConnection& c2 = t.a->connect(t.b->id(), 80);
  EXPECT_NE(c1.local_port(), c2.local_port());
}

TEST(Host, ConnectionsAreReapedAfterClose) {
  TwoHostNet t(kLan);
  t.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c = t.a->connect(t.b->id(), 80);
  t.loop.run_until(SimTime::zero() + Duration::millis(100));
  EXPECT_GE(t.a->live_connections(), 1u);
  c.abort();
  t.loop.run_until(SimTime::zero() + Duration::millis(300));
  EXPECT_EQ(t.a->live_connections(), 0u);
  EXPECT_EQ(t.b->live_connections(), 0u);
}

TEST(Host, ConnectionsCreatedCounter) {
  TwoHostNet t(kLan);
  t.b->listen(80, [](TcpConnection&) {});
  t.a->connect(t.b->id(), 80);
  t.a->connect(t.b->id(), 80);
  t.loop.run_until(SimTime::zero() + Duration::millis(50));
  EXPECT_EQ(t.a->connections_created(), 2);
  EXPECT_EQ(t.b->connections_created(), 2);  // two accepted
}

TEST(Host, DuplicateListenerRejected) {
  TwoHostNet t(kLan);
  t.b->listen(80, [](TcpConnection&) {});
  EXPECT_THROW(t.b->listen(80, [](TcpConnection&) {}), std::invalid_argument);
}

}  // namespace
}  // namespace speakup::transport
