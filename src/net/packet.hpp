// The unit of transmission in the simulated network.
//
// Packets carry byte *counts*, not byte contents: all simulated endpoints
// live in one address space, so application payloads "teleport" through
// message-descriptor queues (see http/message_stream.hpp) while the network
// faithfully simulates the timing, queueing and loss of the counted bytes.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace speakup::net {

/// Index of a node within its Network. Assigned densely from 0.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

enum class PacketKind : std::uint8_t {
  kSyn,     // connection request
  kSynAck,  // connection accept
  kData,    // payload-bearing segment
  kAck,     // cumulative acknowledgment
  kRst,     // abortive teardown / no-such-connection
};

/// TCP/IP-ish header overhead charged to every packet on the wire.
inline constexpr Bytes kHeaderBytes = 40;

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t src_port = 0;
  std::uint32_t dst_port = 0;
  PacketKind kind = PacketKind::kData;
  std::int64_t seq = 0;      // kData: stream offset of first payload byte; kAck: cumulative ack
  Bytes payload = 0;         // kData only
  Bytes wire_size = kHeaderBytes;  // payload + header overhead

  [[nodiscard]] bool is_control() const { return kind != PacketKind::kData; }
};

/// Builds a data segment with correct wire size.
inline Packet make_data_packet(NodeId src, std::uint32_t sport, NodeId dst, std::uint32_t dport,
                               std::int64_t seq, Bytes payload) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.kind = PacketKind::kData;
  p.seq = seq;
  p.payload = payload;
  p.wire_size = payload + kHeaderBytes;
  return p;
}

/// Builds a control packet (SYN/SYN-ACK/ACK/RST); wire size is header-only.
inline Packet make_control_packet(NodeId src, std::uint32_t sport, NodeId dst, std::uint32_t dport,
                                  PacketKind kind, std::int64_t seq = 0) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.kind = kind;
  p.seq = seq;
  p.payload = 0;
  p.wire_size = kHeaderBytes;
  return p;
}

}  // namespace speakup::net
