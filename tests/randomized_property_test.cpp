// Randomized property tests on the substrate invariants: the event loop
// never runs time backwards under arbitrary schedules; routing on random
// connected topologies delivers between all host pairs; payment accounting
// conserves bytes end to end under random client mixes.
#include <gtest/gtest.h>

#include <vector>

#include "core/auction_thinner.hpp"
#include "exp/experiment.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup {
namespace {

TEST(RandomizedProperty, EventLoopTimeIsMonotoneUnderRandomSchedules) {
  util::RngStream rng(101, "loop-fuzz");
  sim::EventLoop loop;
  SimTime last_seen;
  int fired = 0;
  std::vector<sim::EventId> cancellable;
  // Seed events that randomly schedule more events and randomly cancel.
  std::function<void()> chaos = [&] {
    EXPECT_GE(loop.now(), last_seen);  // time never goes backwards
    last_seen = loop.now();
    ++fired;
    if (fired > 5000) return;
    const int n = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n; ++i) {
      sim::EventId id =
          loop.schedule(Duration::nanos(rng.uniform_int(0, 5'000'000)), chaos);
      if (rng.chance(0.2)) cancellable.push_back(id);
    }
    if (!cancellable.empty() && rng.chance(0.3)) {
      loop.cancel(cancellable.back());
      cancellable.pop_back();
    }
  };
  for (int i = 0; i < 20; ++i) {
    loop.schedule(Duration::nanos(rng.uniform_int(0, 1'000'000)), chaos);
  }
  loop.run();
  EXPECT_GT(fired, 20);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(RandomizedProperty, RandomConnectedTopologiesRouteAllPairs) {
  util::RngStream rng(102, "topo-fuzz");
  for (int trial = 0; trial < 5; ++trial) {
    sim::EventLoop loop;
    net::Network net(loop);
    const int hosts = 4;
    const int switches = 3 + static_cast<int>(rng.uniform_int(0, 3));
    std::vector<net::Switch*> sw;
    for (int i = 0; i < switches; ++i) {
      sw.push_back(&net.add_switch("sw" + std::to_string(i)));
      if (i > 0) {
        // Spanning chain keeps the graph connected...
        net.connect(*sw[static_cast<std::size_t>(i)], *sw[static_cast<std::size_t>(i - 1)],
                    net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(100), 500'000});
      }
    }
    // ...plus random extra links.
    for (int e = 0; e < 2; ++e) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, switches - 1));
      const auto b = static_cast<std::size_t>(rng.uniform_int(0, switches - 1));
      if (a != b && net.link_between(sw[a]->id(), sw[b]->id()) == nullptr) {
        net.connect(*sw[a], *sw[b],
                    net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(100), 500'000});
      }
    }
    std::vector<transport::Host*> hs;
    for (int i = 0; i < hosts; ++i) {
      auto& h = net.add_node<transport::Host>("h" + std::to_string(i));
      const auto at = static_cast<std::size_t>(rng.uniform_int(0, switches - 1));
      net.connect(h, *sw[at],
                  net::LinkSpec{Bandwidth::mbps(10.0), Duration::micros(500), 96'000});
      hs.push_back(&h);
    }
    net.build_routes();
    // Every ordered host pair completes a small transfer.
    int completed = 0;
    for (auto* server : hs) {
      server->listen(80, [&](transport::TcpConnection& c) {
        transport::TcpConnection::Callbacks cbs;
        cbs.on_data = [&completed](Bytes n) {
          if (n > 0) ++completed;
        };
        c.set_callbacks(std::move(cbs));
      });
    }
    int expected = 0;
    for (auto* a : hs) {
      for (auto* b : hs) {
        if (a == b) continue;
        a->connect(b->id(), 80).write(500);
        ++expected;
      }
    }
    loop.run_until(SimTime::zero() + Duration::seconds(10.0));
    EXPECT_EQ(completed, expected) << "trial " << trial;
  }
}

TEST(RandomizedProperty, ThinnerByteAccountingConserves) {
  // Across random mixes, the thinner's books must balance: every credited
  // byte is either attributed to a served request's price, wasted in an
  // expired channel, or still outstanding with a live contender.
  util::RngStream rng(103, "mix-fuzz");
  for (int trial = 0; trial < 3; ++trial) {
    const int good = 2 + static_cast<int>(rng.uniform_int(0, 4));
    const int bad = 2 + static_cast<int>(rng.uniform_int(0, 4));
    const double c = 5.0 + 10.0 * rng.uniform();
    exp::ScenarioConfig cfg = exp::lan_scenario(good, bad, c, exp::DefenseMode::kAuction,
                                                200 + static_cast<std::uint64_t>(trial));
    cfg.duration = Duration::seconds(15.0);
    exp::Experiment e(cfg);
    const exp::ExperimentResult r = e.run();
    const core::ThinnerStats& t = r.thinner;
    const double priced = t.price_good.sum() + t.price_bad.sum();
    const auto wasted = static_cast<double>(t.payment_bytes_wasted);
    const auto total = static_cast<double>(t.payment_bytes_total);
    // priced + wasted <= total credited (the remainder is held by live
    // contenders at the end of the run).
    EXPECT_LE(priced + wasted, total * 1.0001) << "trial " << trial;
    // And the books roughly balance: live contenders are bounded, so most
    // bytes are accounted for.
    EXPECT_GT(priced + wasted, total * 0.3) << "trial " << trial;
    // The time series agrees with the scalar total.
    EXPECT_NEAR(t.payment_rate.total(), total, 1.0) << "trial " << trial;
  }
}

TEST(RandomizedProperty, ServedCountsMatchBetweenThinnerAndClients) {
  // Thinner-side and client-side served counts agree modulo responses in
  // flight at the end of the run.
  util::RngStream rng(104, "count-fuzz");
  for (int trial = 0; trial < 3; ++trial) {
    exp::ScenarioConfig cfg =
        exp::lan_scenario(3 + static_cast<int>(rng.uniform_int(0, 3)),
                          3 + static_cast<int>(rng.uniform_int(0, 3)), 20.0,
                          exp::DefenseMode::kAuction, 300 + static_cast<std::uint64_t>(trial));
    cfg.duration = Duration::seconds(15.0);
    const exp::ExperimentResult r = exp::run_scenario(cfg);
    std::int64_t client_served = 0;
    for (const auto& g : r.groups) client_served += g.totals.served;
    EXPECT_LE(client_served, r.served_total);
    EXPECT_GE(client_served, r.served_total - 5);
  }
}

}  // namespace
}  // namespace speakup
