// Tests for the polymorphic FrontEnd interface and its factory registry:
// every registered defense constructs through the registry, runs a short
// LAN scenario end to end, and reports consistent ThinnerStats — and a new
// defense plugs in without any edit to the experiment harness.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/front_end.hpp"
#include "core/front_end_factory.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"

namespace speakup {
namespace {

using core::FrontEnd;
using core::FrontEndConfig;
using core::FrontEndFactory;

exp::ScenarioConfig short_lan(const std::string& defense) {
  exp::ScenarioConfig cfg = exp::lan_scenario(/*good=*/3, /*bad=*/3, /*capacity_rps=*/50.0,
                                              exp::DefenseMode::kAuction, /*seed=*/17);
  cfg.defense = defense;
  cfg.duration = Duration::seconds(2.0);
  return cfg;
}

TEST(FrontEndFactory, BuiltinsAreRegistered) {
  FrontEndFactory& f = FrontEndFactory::instance();
  for (const exp::DefenseMode m : exp::kAllDefenseModes) {
    EXPECT_TRUE(f.contains(exp::to_string(m))) << exp::to_string(m);
  }
}

TEST(FrontEndFactory, NamesAreSortedAndUnique) {
  const auto names = FrontEndFactory::instance().names();
  ASSERT_GE(names.size(), 4u);
  const std::set<std::string> uniq(names.begin(), names.end());
  EXPECT_EQ(uniq.size(), names.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(FrontEndFactory, CreateRejectsUnknownName) {
  sim::EventLoop loop;
  net::Network net(loop);
  auto& sw = net.add_switch("sw");
  auto& host = net.add_node<transport::Host>("thinner");
  net.connect(host, sw, net::LinkSpec{Bandwidth::gbps(1.0), Duration::micros(500), 100'000});
  net.build_routes();
  EXPECT_THROW((void)FrontEndFactory::instance().create("no-such-defense", host,
                                                        FrontEndConfig{},
                                                        util::RngStream(1, "srv")),
               std::invalid_argument);
}

TEST(FrontEndFactory, DuplicateRegistrationThrows) {
  EXPECT_THROW(FrontEndFactory::instance().register_defense(
                   "auction", [](transport::Host&, const FrontEndConfig&,
                                 util::RngStream) -> std::unique_ptr<FrontEnd> {
                     return nullptr;
                   }),
               std::invalid_argument);
}

// The acceptance bar for the registry: every registered defense constructs,
// runs a short LAN scenario, and reports internally consistent stats
// through the uniform interface.
TEST(FrontEndFactory, EveryRegisteredDefenseRunsAScenario) {
  for (const std::string& name : FrontEndFactory::instance().names()) {
    exp::Experiment e(short_lan(name));
    FrontEnd* fe = e.front_end();
    ASSERT_NE(fe, nullptr) << name;
    EXPECT_EQ(fe->name(), name);

    const exp::ExperimentResult r = e.run();
    EXPECT_EQ(r.defense, name);
    // ThinnerStats consistency through the FrontEnd interface.
    const core::ThinnerStats& st = fe->stats();
    EXPECT_EQ(st.served_total(), st.served_good + st.served_bad + st.served_other) << name;
    EXPECT_EQ(fe->served(), st.served_total()) << name;
    EXPECT_GE(st.requests_received, st.served_total()) << name;
    EXPECT_GT(st.requests_received, 0) << name;
    EXPECT_GE(fe->server_busy_total().ns(),
              (fe->server_busy_good() + fe->server_busy_bad()).ns())
        << name;
    // The copy harvested into the result matches the live stats.
    EXPECT_EQ(r.served_total, st.served_total()) << name;
    EXPECT_DOUBLE_EQ(r.allocation_good + r.allocation_bad,
                     st.allocation_good() + st.allocation_bad())
        << name;
  }
}

TEST(FrontEnd, TypedAccessorsAreDynamicCastViews) {
  exp::Experiment a(short_lan("auction"));
  EXPECT_NE(a.auction_thinner(), nullptr);
  EXPECT_EQ(a.auction_thinner(), dynamic_cast<core::AuctionThinner*>(a.front_end()));
  EXPECT_EQ(a.retry_thinner(), nullptr);
  EXPECT_EQ(a.no_defense(), nullptr);
  EXPECT_EQ(a.quantum_thinner(), nullptr);
}

TEST(Scenario, ParseDefenseModeRoundTrips) {
  for (const exp::DefenseMode m : exp::kAllDefenseModes) {
    const auto parsed = exp::parse_defense_mode(exp::to_string(m));
    ASSERT_TRUE(parsed.has_value()) << exp::to_string(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(exp::parse_defense_mode("").has_value());
  EXPECT_FALSE(exp::parse_defense_mode("Auction").has_value());
  EXPECT_FALSE(exp::parse_defense_mode("nonesuch").has_value());
}

// ---------------------------------------------------------------------------
// A fifth defense, defined entirely here: serves every request instantly,
// no payment, no queueing. Registering it requires no edit to
// experiment.cpp — that is the point of the registry.
// ---------------------------------------------------------------------------

class InstantServeFrontEnd final : public core::FrontEnd {
 public:
  InstantServeFrontEnd(transport::Host& host, const FrontEndConfig& cfg)
      : cfg_(cfg), pool_(host.loop()) {
    host.listen(cfg.request_port, [this](transport::TcpConnection& c) {
      http::MessageStream& s = pool_.adopt(c);
      http::MessageStream::Callbacks cbs;
      cbs.on_message = [this, &s](const http::Message& m) { on_message(s, m); };
      cbs.on_reset = [this, &s] { pool_.retire(&s); };
      s.set_callbacks(std::move(cbs));
    });
  }

  [[nodiscard]] std::string_view name() const override { return "instant"; }
  [[nodiscard]] const core::ThinnerStats& stats() const override { return stats_; }
  [[nodiscard]] std::size_t contending() const override { return 0; }
  [[nodiscard]] Duration server_busy_good() const override { return Duration::zero(); }
  [[nodiscard]] Duration server_busy_bad() const override { return Duration::zero(); }
  [[nodiscard]] Duration server_busy_total() const override { return Duration::zero(); }
  void on_run_start() override { ++run_start_calls; }
  void on_run_end() override { ++run_end_calls; }

  int run_start_calls = 0;
  int run_end_calls = 0;

 private:
  void on_message(http::MessageStream& s, const http::Message& m) {
    if (m.type != http::MessageType::kRequest) return;
    ++stats_.requests_received;
    if (m.cls == http::ClientClass::kGood) {
      ++stats_.served_good;
    } else if (m.cls == http::ClientClass::kBad) {
      ++stats_.served_bad;
    } else {
      ++stats_.served_other;
    }
    s.send(http::Message{.type = http::MessageType::kResponse,
                         .request_id = m.request_id,
                         .body = cfg_.response_body});
  }

  FrontEndConfig cfg_;
  http::SessionPool pool_;
  core::ThinnerStats stats_;
};

class FifthDefenseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FrontEndFactory::instance().register_defense(
        "instant", [this](transport::Host& host, const FrontEndConfig& cfg,
                          util::RngStream) -> std::unique_ptr<FrontEnd> {
          auto fe = std::make_unique<InstantServeFrontEnd>(host, cfg);
          last_created_ = fe.get();
          return fe;
        });
  }
  void TearDown() override { FrontEndFactory::instance().unregister_defense("instant"); }

  InstantServeFrontEnd* last_created_ = nullptr;
};

TEST_F(FifthDefenseTest, PlugsInWithoutTouchingTheHarness) {
  exp::Experiment e(short_lan("instant"));
  ASSERT_NE(e.front_end(), nullptr);
  EXPECT_EQ(e.front_end(), last_created_);
  // None of the built-in typed views match.
  EXPECT_EQ(e.auction_thinner(), nullptr);
  EXPECT_EQ(e.retry_thinner(), nullptr);
  EXPECT_EQ(e.no_defense(), nullptr);
  EXPECT_EQ(e.quantum_thinner(), nullptr);

  const exp::ExperimentResult r = e.run();
  EXPECT_EQ(r.defense, "instant");
  EXPECT_GT(r.served_total, 0);  // it really served traffic end to end
  EXPECT_EQ(last_created_->run_start_calls, 1);
  EXPECT_EQ(last_created_->run_end_calls, 1);
}

TEST_F(FifthDefenseTest, RunScenarioWorksByName) {
  const exp::ExperimentResult r = exp::run_scenario(short_lan("instant"));
  EXPECT_EQ(r.defense, "instant");
  EXPECT_GT(r.served_total, 0);
}

}  // namespace
}  // namespace speakup
