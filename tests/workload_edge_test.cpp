// Edge cases and property sweeps for the workload client: pause semantics,
// difficulty propagation, POST-size configuration, retry pipelining bounds,
// and demand scaling with lambda/window.
#include <gtest/gtest.h>

#include "client/workload_client.hpp"
#include "core/auction_thinner.hpp"
#include "core/quantum_thinner.hpp"
#include "core/retry_thinner.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::client {
namespace {

struct Rig {
  Rig() : net(loop) {
    sw = &net.add_switch("sw");
    thinner_host = &net.add_node<transport::Host>("thinner");
    net.connect(*thinner_host, *sw,
                net::LinkSpec{Bandwidth::gbps(1.0), Duration::micros(500), 4'000'000});
  }
  transport::Host& add_host(const std::string& name,
                            Bandwidth bw = Bandwidth::mbps(2.0)) {
    auto& h = net.add_node<transport::Host>(name);
    net.connect(h, *sw, net::LinkSpec{bw, Duration::micros(500), 48'000});
    return h;
  }
  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }
  sim::EventLoop loop;
  net::Network net;
  net::Switch* sw = nullptr;
  transport::Host* thinner_host = nullptr;
};

TEST(WorkloadEdge, PauseStopsNewArrivals) {
  Rig rig;
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 100.0;
  core::AuctionThinner thinner(*rig.thinner_host, tc, util::RngStream(1, "srv"));
  auto& h = rig.add_host("c");
  WorkloadClient c(h, rig.thinner_host->id(), good_client_params(), 0,
                   util::RngStream(1, "c"));
  c.start();
  rig.run_for(5.0);
  const auto arrivals_at_pause = c.stats().arrivals;
  EXPECT_GT(arrivals_at_pause, 0);
  c.pause();
  rig.run_for(5.0);
  // At most one in-flight arrival event lands after pause().
  EXPECT_LE(c.stats().arrivals, arrivals_at_pause + 1);
}

TEST(WorkloadEdge, DifficultyReachesTheServer) {
  // A difficulty-5 client against a quantum thinner: the served request
  // consumes ~5x the base service time of good busy time.
  Rig rig;
  core::QuantumAuctionThinner::Config tc;
  tc.capacity_rps = 10.0;  // base quantum ~0.1 s
  core::QuantumAuctionThinner thinner(*rig.thinner_host, tc, util::RngStream(1, "srv"));
  auto& h = rig.add_host("c");
  WorkloadParams p = good_client_params();
  p.lambda = 0.2;  // one request, roughly
  p.difficulty = 5;
  WorkloadClient c(h, rig.thinner_host->id(), p, 0, util::RngStream(1, "c"));
  c.start();
  rig.run_for(20.0);
  ASSERT_GT(c.stats().served, 0);
  const double per_request =
      thinner.server().good_busy_time().sec() / static_cast<double>(c.stats().served);
  EXPECT_GT(per_request, 0.4);  // ~5 * 0.1 s, with U[0.9,1.1] jitter
  EXPECT_LT(per_request, 0.6);
}

TEST(WorkloadEdge, PostSizeControlsChannelChurn) {
  // Tiny POSTs force many channel rotations per payment; the thinner's
  // kPostContinue count shows up as extra connections from the client host.
  Rig rig;
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 0.5;  // ~2 s services force sustained payment
  core::AuctionThinner thinner(*rig.thinner_host, tc, util::RngStream(1, "srv"));
  std::int64_t conns[2] = {0, 0};
  int i = 0;
  for (const Bytes post : {megabytes(1), kilobytes(20)}) {
    auto& h = rig.add_host("c" + std::to_string(i), Bandwidth::mbps(4.0));
    auto& h2 = rig.add_host("rival" + std::to_string(i), Bandwidth::mbps(4.0));
    WorkloadParams p = good_client_params();
    p.post_size = post;
    WorkloadClient c(h, rig.thinner_host->id(), p, static_cast<std::uint32_t>(2 * i),
                     util::RngStream(1, "c" + std::to_string(i)));
    WorkloadClient rival(h2, rig.thinner_host->id(), p,
                         static_cast<std::uint32_t>(2 * i + 1),
                         util::RngStream(1, "r" + std::to_string(i)));
    c.start();
    rival.start();
    rig.run_for(15.0);
    c.pause();
    rival.pause();
    conns[i] = h.connections_created();
    rig.run_for(5.0);
    ++i;
  }
  // Small POSTs -> markedly more connections (one per POST rotation).
  EXPECT_GT(conns[1], conns[0] * 2);
}

TEST(WorkloadEdge, RetryPipelineStaysBounded) {
  Rig rig;
  core::RetryThinner::Config tc;
  tc.capacity_rps = 0.2;  // nobody gets served for a long time
  core::RetryThinner thinner(*rig.thinner_host, tc, util::RngStream(1, "srv"));
  auto& filler_host = rig.add_host("filler");
  WorkloadParams fp = good_client_params();
  fp.lambda = 5.0;
  WorkloadClient filler(filler_host, rig.thinner_host->id(), fp, 0,
                        util::RngStream(1, "filler"));
  filler.start();
  auto& h = rig.add_host("c");
  WorkloadParams p = good_client_params();
  p.lambda = 1.0;
  p.retry_pipeline = 16;
  WorkloadClient c(h, rig.thinner_host->id(), p, 1, util::RngStream(1, "c"));
  c.start();
  rig.run_for(20.0);
  // §3.2: the client streams retries continuously, paced by TCP — so the
  // count approaches (but cannot exceed) the access link's capacity of
  // ~1785 messages/s (2 Mbit/s over 140-byte wire messages).
  EXPECT_GT(c.stats().retries_sent, 1'000);
  EXPECT_LT(c.stats().retries_sent, static_cast<std::int64_t>(20.0 * 1'900));
}

struct DemandCase {
  const char* name;
  double lambda;
  int window;
};

class DemandScaling : public ::testing::TestWithParam<DemandCase> {};

TEST_P(DemandScaling, ArrivalsTrackLambdaAndWindowCapsOutstanding) {
  Rig rig;
  // Thinner that never replies: outstanding requests pile up to the window.
  rig.thinner_host->listen(80, [](transport::TcpConnection&) {});
  auto& h = rig.add_host("c");
  WorkloadParams p;
  p.lambda = GetParam().lambda;
  p.window = GetParam().window;
  p.cls = http::ClientClass::kGood;
  WorkloadClient c(h, rig.thinner_host->id(), p, 0, util::RngStream(9, GetParam().name));
  c.start();
  rig.run_for(30.0);
  EXPECT_NEAR(static_cast<double>(c.stats().arrivals), 30.0 * p.lambda,
              5 * std::sqrt(30.0 * p.lambda) + 1);
  EXPECT_LE(c.outstanding(), static_cast<std::size_t>(p.window));
  EXPECT_EQ(c.stats().started,
            static_cast<std::int64_t>(c.outstanding()));  // none ever finished
}

INSTANTIATE_TEST_SUITE_P(
    Params, DemandScaling,
    ::testing::Values(DemandCase{"light", 0.5, 1}, DemandCase{"paper_good", 2.0, 1},
                      DemandCase{"mid", 10.0, 5}, DemandCase{"paper_bad", 40.0, 20}),
    [](const ::testing::TestParamInfo<DemandCase>& i) { return i.param.name; });

}  // namespace
}  // namespace speakup::client
