#include "exp/result_writer.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace speakup::exp {

namespace json = util::json;

namespace {

/// RFC-4180 quoting for commas/quotes — but newlines are replaced with a
/// space first: merge_csv (and most CSV tooling) works line-by-line, so a
/// row must never span lines even when a label or error message contains
/// '\n'.
std::string csv_escape(const std::string& field) {
  std::string flat = field;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  if (flat.find_first_of(",\"") == std::string::npos) return flat;
  std::string out = "\"";
  for (const char c : flat) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

std::string fmt(double v) { return json::number_to_string(v); }

}  // namespace

const std::string& ResultWriter::csv_header() {
  static const std::string header =
      "index,label,defense,strategies,seed,capacity_rps,duration_s,"
      "served_total,served_good,served_bad,"
      "allocation_good,allocation_bad,server_time_good,server_time_bad,"
      "fraction_good_served,server_busy_fraction,events_executed,attacker_bytes,"
      "fingerprint,error";
  return header;
}

std::string ResultWriter::csv_row(std::size_t index, const RunOutcome& o) {
  std::ostringstream os;
  os << index << ',' << csv_escape(o.label) << ','
     << csv_escape(o.config.defense_name()) << ','
     << csv_escape(o.config.strategy_names()) << ',' << o.config.seed << ','
     << fmt(o.config.capacity_rps) << ',' << fmt(o.config.duration.sec()) << ',';
  if (o.ok()) {
    const ExperimentResult& r = o.result;
    os << r.served_total << ',' << r.served_good << ',' << r.served_bad << ','
       << fmt(r.allocation_good) << ',' << fmt(r.allocation_bad) << ','
       << fmt(r.server_time_good) << ',' << fmt(r.server_time_bad) << ','
       << fmt(r.fraction_good_served) << ',' << fmt(r.server_busy_fraction) << ','
       << r.events_executed << ',' << r.attacker_bytes() << ','
       << fingerprint_hex(r.fingerprint()) << ',';
  } else {
    // 12 empty metric/fingerprint columns, then the error column.
    os << ",,,,,,,,,,,," << csv_escape(o.error);
  }
  return os.str();
}

void ResultWriter::add(std::size_t index, const RunOutcome& outcome) {
  for (const Row& r : rows_) {
    if (r.index == index) {
      throw std::invalid_argument("ResultWriter: duplicate scenario index " +
                                  std::to_string(index));
    }
  }
  rows_.push_back(Row{index, outcome});
}

void ResultWriter::write_csv(std::ostream& os) const {
  std::vector<const Row*> sorted;
  sorted.reserve(rows_.size());
  for (const Row& r : rows_) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const Row* a, const Row* b) { return a->index < b->index; });
  os << csv_header() << '\n';
  for (const Row* r : sorted) os << csv_row(r->index, r->outcome) << '\n';
}

void ResultWriter::write_json(std::ostream& os) const {
  std::vector<const Row*> sorted;
  sorted.reserve(rows_.size());
  for (const Row& r : rows_) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const Row* a, const Row* b) { return a->index < b->index; });

  json::Value results{json::Value::Array{}};
  for (const Row* row : sorted) {
    const RunOutcome& o = row->outcome;
    json::Value entry;
    entry.set("index", static_cast<double>(row->index));
    entry.set("label", o.label);
    entry.set("defense", o.config.defense_name());
    entry.set("strategy_names", o.config.strategy_names());
    entry.set("seed", static_cast<double>(o.config.seed));
    entry.set("capacity_rps", o.config.capacity_rps);
    entry.set("duration_s", o.config.duration.sec());
    if (!o.ok()) {
      entry.set("error", o.error);
      results.push_back(std::move(entry));
      continue;
    }
    const ExperimentResult& r = o.result;
    json::Value metrics;
    metrics.set("served_total", static_cast<double>(r.served_total));
    metrics.set("served_good", static_cast<double>(r.served_good));
    metrics.set("served_bad", static_cast<double>(r.served_bad));
    metrics.set("allocation_good", r.allocation_good);
    metrics.set("allocation_bad", r.allocation_bad);
    metrics.set("server_time_good", r.server_time_good);
    metrics.set("server_time_bad", r.server_time_bad);
    metrics.set("fraction_good_served", r.fraction_good_served);
    metrics.set("server_busy_fraction", r.server_busy_fraction);
    metrics.set("events_executed", static_cast<double>(r.events_executed));
    metrics.set("attacker_bytes", static_cast<double>(r.attacker_bytes()));
    entry.set("metrics", std::move(metrics));
    json::Value groups{json::Value::Array{}};
    for (const GroupResult& g : r.groups) {
      json::Value gv;
      gv.set("label", g.label);
      gv.set("count", g.count);
      gv.set("strategy", g.strategy);
      gv.set("served", static_cast<double>(g.totals.served));
      gv.set("denied", static_cast<double>(g.totals.denied));
      gv.set("allocation", g.allocation);
      groups.push_back(std::move(gv));
    }
    entry.set("groups", std::move(groups));
    // Adversary-library view: the same totals merged per workload strategy.
    json::Value strategies{json::Value::Array{}};
    for (const StrategyResult& s : r.strategy_totals()) {
      json::Value sv;
      sv.set("strategy", s.strategy);
      sv.set("clients", s.clients);
      sv.set("served", static_cast<double>(s.totals.served));
      sv.set("denied", static_cast<double>(s.totals.denied));
      sv.set("payments_declined", static_cast<double>(s.totals.payments_declined));
      sv.set("payments_abandoned", static_cast<double>(s.totals.payments_abandoned));
      sv.set("allocation", s.allocation);
      strategies.push_back(std::move(sv));
    }
    entry.set("strategies", std::move(strategies));
    entry.set("fingerprint", fingerprint_hex(r.fingerprint()));
    // Host wall time: the one nondeterministic field, excluded from the
    // fingerprint and from the CSV form.
    entry.set("wall_seconds", r.wall_seconds);
    results.push_back(std::move(entry));
  }
  json::Value doc;
  doc.set("result_count", static_cast<double>(rows_.size()));
  doc.set("results", std::move(results));
  os << doc.dump(2) << '\n';
}

namespace {

struct CsvLine {
  std::size_t index;
  std::string text;
};

/// Splits one write_csv output into indexed rows, validating the header.
/// `what` names the caller in error messages ("merge_csv: input 0", ...).
std::vector<CsvLine> scan_csv(const std::string& csv, const std::string& what) {
  std::vector<CsvLine> lines;
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line) || line != ResultWriter::csv_header()) {
    throw std::invalid_argument(what + " does not start with the speakup CSV header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::size_t pos = 0;
    std::size_t index = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      index = index * 10 + static_cast<std::size_t>(line[pos] - '0');
      ++pos;
    }
    if (pos == 0 || pos >= line.size() || line[pos] != ',') {
      throw std::invalid_argument(what + " has a row without a leading index: " + line);
    }
    lines.push_back(CsvLine{index, line});
  }
  return lines;
}

/// Splits one CSV row into its fields, honoring the RFC-4180 quoting
/// csv_escape produces (rows never span lines).
std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

std::vector<std::size_t> ResultWriter::csv_indices(const std::string& csv) {
  std::vector<std::size_t> out;
  for (const CsvLine& l : scan_csv(csv, "csv_indices: input")) out.push_back(l.index);
  std::sort(out.begin(), out.end());
  return out;
}

ResultWriter::ResumeInfo ResultWriter::resume_info(const std::string& csv) {
  // A writer killed mid-row leaves the file without a trailing newline;
  // whatever sits after the last '\n' is a partial row and must be re-run,
  // not merged — even when the truncation point makes it look well-formed.
  std::string intact = csv;
  if (!intact.empty() && intact.back() != '\n') {
    const std::size_t last_nl = intact.find_last_of('\n');
    intact.resize(last_nl == std::string::npos ? 0 : last_nl + 1);
  }
  const std::size_t n_columns = split_csv_row(csv_header()).size();
  ResumeInfo info;
  info.completed_csv = csv_header() + "\n";
  std::vector<std::size_t> seen;
  for (const CsvLine& l : scan_csv(intact, "resume: existing output")) {
    if (std::find(seen.begin(), seen.end(), l.index) != seen.end()) {
      throw std::invalid_argument(
          "resume: existing output lists scenario index " +
          std::to_string(l.index) + " more than once; refusing to resume from it");
    }
    seen.push_back(l.index);
    const std::vector<std::string> fields = split_csv_row(l.text);
    // A failed row leaves the metric columns empty and fills the final
    // `error` column; only successfully completed rows with the full
    // column count qualify — a short row is a corrupt partial write.
    const bool completed = fields.size() == n_columns && fields.back().empty();
    if (!completed) continue;
    info.completed_csv += l.text;
    info.completed_csv += '\n';
    info.completed.emplace_back(l.index, fields[1]);
  }
  return info;
}

namespace {

/// "input 0", ... when the caller did not supply file names.
std::vector<std::string> default_names(const char* op, std::size_t n,
                                       const std::vector<std::string>& names) {
  if (!names.empty()) {
    if (names.size() != n) {
      throw std::invalid_argument(std::string(op) +
                                  ": names/inputs length mismatch");
    }
    return names;
  }
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back("input " + std::to_string(i));
  return out;
}

/// The duplicate-index diagnostic: says which input(s) hold the copies, and
/// whether the duplication is inside one file or across two.
[[noreturn]] void throw_duplicate_index(const char* op, std::size_t index,
                                        const std::string& first_name,
                                        const std::string& second_name) {
  if (first_name == second_name) {
    throw std::invalid_argument(
        std::string(op) + ": scenario index " + std::to_string(index) +
        " appears more than once inside '" + first_name +
        "' (that file was never a valid single-run output)");
  }
  throw std::invalid_argument(
      std::string(op) + ": scenario index " + std::to_string(index) +
      " appears in both '" + first_name + "' and '" + second_name +
      "' — shard inputs must cover disjoint scenario indices");
}

}  // namespace

std::string ResultWriter::merge_csv(const std::vector<std::string>& shards) {
  return merge_csv(shards, {});
}

std::string ResultWriter::merge_csv(const std::vector<std::string>& shards,
                                    const std::vector<std::string>& names) {
  if (shards.empty()) throw std::invalid_argument("merge_csv: no inputs");
  const std::vector<std::string> labels =
      default_names("merge_csv", shards.size(), names);
  struct SourcedLine {
    CsvLine line;
    std::size_t source;
  };
  std::vector<SourcedLine> lines;
  for (std::size_t si = 0; si < shards.size(); ++si) {
    const std::vector<CsvLine> shard_lines =
        scan_csv(shards[si], "merge_csv: '" + labels[si] + "'");
    for (const CsvLine& l : shard_lines) lines.push_back(SourcedLine{l, si});
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const SourcedLine& a, const SourcedLine& b) {
                     return a.line.index < b.line.index;
                   });
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].line.index == lines[i - 1].line.index) {
      throw_duplicate_index("merge_csv", lines[i].line.index,
                            labels[lines[i - 1].source], labels[lines[i].source]);
    }
  }
  std::string out = csv_header() + "\n";
  for (const SourcedLine& l : lines) {
    out += l.line.text;
    out += '\n';
  }
  return out;
}

std::string ResultWriter::merge_json(const std::vector<std::string>& shards) {
  return merge_json(shards, {});
}

std::string ResultWriter::merge_json(const std::vector<std::string>& shards,
                                     const std::vector<std::string>& names) {
  if (shards.empty()) throw std::invalid_argument("merge_json: no inputs");
  const std::vector<std::string> labels =
      default_names("merge_json", shards.size(), names);
  struct Entry {
    std::size_t index;
    std::size_t source;
    json::Value value;
  };
  std::vector<Entry> entries;
  for (std::size_t si = 0; si < shards.size(); ++si) {
    const std::string what = "merge_json: '" + labels[si] + "'";
    json::Value doc;
    try {
      doc = json::parse(shards[si]);
    } catch (const json::Error& e) {
      throw std::invalid_argument(what + ": " + e.what());
    }
    const json::Value* results = doc.find("results");
    if (results == nullptr || !results->is_array()) {
      throw std::invalid_argument(what + " is not a speakup JSON result document "
                                         "(missing \"results\" array)");
    }
    for (const json::Value& entry : results->as_array()) {
      const json::Value* index = entry.find("index");
      std::int64_t idx = -1;
      try {
        idx = index != nullptr ? index->as_int() : -1;
      } catch (const json::Error&) {
        idx = -1;
      }
      if (idx < 0) {
        throw std::invalid_argument(what + " has a result without an integer \"index\"");
      }
      entries.push_back(Entry{static_cast<std::size_t>(idx), si, entry});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.index < b.index; });
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].index == entries[i - 1].index) {
      throw_duplicate_index("merge_json", entries[i].index,
                            labels[entries[i - 1].source], labels[entries[i].source]);
    }
  }
  json::Value results{json::Value::Array{}};
  for (Entry& e : entries) results.push_back(std::move(e.value));
  json::Value doc;
  doc.set("result_count", static_cast<double>(entries.size()));
  doc.set("results", std::move(results));
  return doc.dump(2) + "\n";
}

}  // namespace speakup::exp
