// Edge-case and failure-injection tests for the TCP model: window caps,
// RTO backoff under blackout (single-application pinned against Karn's
// rule), stale-packet handling, accessor semantics, the zero-allocation
// guarantee of the loss path, and parameterized throughput sweeps.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"

// Zero-allocation assertions use util::AllocGuard; the counting operator
// new lives in the speakup_counted_new object library. Only the *delta*
// inside a measured region matters, so gtest and the warm-up phases may
// allocate freely.
#include "util/alloc_guard.hpp"

namespace speakup::transport {
namespace {

struct Pair {
  explicit Pair(const net::LinkSpec& spec, TcpConfig cfg = {}) : net(loop) {
    a = &net.add_node<Host>("a");
    b = &net.add_node<Host>("b");
    a->set_tcp_config(cfg);
    b->set_tcp_config(cfg);
    net.connect(*a, *b, spec);
    net.build_routes();
  }
  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }
  sim::EventLoop loop;
  net::Network net;
  Host* a = nullptr;
  Host* b = nullptr;
};

TEST(TcpEdge, MaxInflightCapsThroughputOnLongFatPath) {
  // 100 Mbit/s, 100 ms RTT: BDP = 1.25 MB >> the 64 KB window, so goodput
  // is window/RTT ~= 5 Mbit/s, not the link rate.
  Pair p(net::LinkSpec{Bandwidth::mbps(100.0), Duration::millis(50), 4'000'000});
  Bytes delivered = 0;
  p.b->listen(80, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes n) { delivered += n; };
    c.set_callbacks(std::move(cbs));
  });
  p.a->connect(p.b->id(), 80).write(megabytes(20));
  p.run_for(10.0);
  const double mbps = static_cast<double>(delivered) * 8 / 10.0 / 1e6;
  EXPECT_GT(mbps, 3.0);
  EXPECT_LT(mbps, 8.0);  // ~64 KB / 100 ms = 5.2 Mbit/s
}

TEST(TcpEdge, LargerWindowRaisesLongFatThroughput) {
  TcpConfig big;
  big.max_inflight = 512 * 1024;
  big.initial_ssthresh = 512 * 1024;
  Pair p(net::LinkSpec{Bandwidth::mbps(100.0), Duration::millis(50), 4'000'000}, big);
  Bytes delivered = 0;
  p.b->listen(80, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes n) { delivered += n; };
    c.set_callbacks(std::move(cbs));
  });
  p.a->connect(p.b->id(), 80).write(megabytes(40));
  p.run_for(10.0);
  EXPECT_GT(static_cast<double>(delivered) * 8 / 10.0 / 1e6, 20.0);
}

TEST(TcpEdge, SenderSurvivesTotalBlackout) {
  // The peer vanishes mid-transfer (we model it by aborting the receiving
  // endpoint silently — its RST races ahead but the sender's state machine
  // must terminate cleanly either way).
  Pair p(net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(5), 96'000});
  TcpConnection* server_side = nullptr;
  p.b->listen(80, [&](TcpConnection& c) { server_side = &c; });
  TcpConnection& c = p.a->connect(p.b->id(), 80);
  bool reset = false;
  TcpConnection::Callbacks cbs;
  cbs.on_reset = [&] { reset = true; };
  c.set_callbacks(std::move(cbs));
  c.write(megabytes(1));
  p.run_for(1.0);
  ASSERT_NE(server_side, nullptr);
  server_side->abort();
  p.run_for(5.0);
  EXPECT_TRUE(reset);      // sender learned via RST
  EXPECT_TRUE(c.closed());
}

TEST(TcpEdge, StaleDataAfterTeardownDrawsRst) {
  // After the receiver's endpoint disappears, retransmissions hit the host
  // demux miss path and draw an RST, closing the sender.
  Pair p(net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(5), 96'000});
  p.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c = p.a->connect(p.b->id(), 80);
  c.write(kilobytes(10));
  p.run_for(1.0);
  EXPECT_TRUE(c.established());
  // Kill the server-side connection behind the sender's back.
  TcpConnection* srv = p.b->find_connection(80, p.a->id(), c.local_port());
  ASSERT_NE(srv, nullptr);
  srv->abort();
  p.run_for(0.5);
  c.write(kilobytes(10));  // more data -> RST -> close
  p.run_for(5.0);
  EXPECT_TRUE(c.closed());
}

TEST(TcpEdge, RtoBackoffGrowsExponentially) {
  // A connection whose peer never answers: SYN retries should back off and
  // eventually give up (max_syn_retries).
  TcpConfig cfg;
  cfg.max_syn_retries = 3;
  sim::EventLoop loop;
  net::Network net(loop);
  auto& a = net.add_node<Host>("a");
  auto& blackhole = net.add_switch("blackhole");  // switch sinks the packets
  a.set_tcp_config(cfg);
  net.connect(a, blackhole,
              net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(1), 96'000});
  net.build_routes();
  bool reset = false;
  TcpConnection& c = a.connect(blackhole.id(), 80);
  TcpConnection::Callbacks cbs;
  cbs.on_reset = [&] { reset = true; };
  c.set_callbacks(std::move(cbs));
  // 3 s + 6 s + 12 s + 24 s of backoff before giving up: not yet at 20 s...
  loop.run_until(SimTime::zero() + Duration::seconds(20.0));
  EXPECT_FALSE(reset);
  // ...but done by 50 s.
  loop.run_until(SimTime::zero() + Duration::seconds(50.0));
  EXPECT_TRUE(reset);
  EXPECT_TRUE(c.closed());
  EXPECT_EQ(c.timeouts(), 4);  // 3 retries + the final firing
}

TEST(TcpEdge, SynRetransmissionBacksOffExactlyOncePerTimeout) {
  // Pins the backoff ladder byte for byte: with initial_rto = 3 s the SYN
  // retransmissions must land at exactly t = 3, 9, 21 s (doubling once per
  // expiry) and the give-up at t = 45 s. A double-applied backoff would
  // move the second retry from 9 s to 15 s and trip the boundary checks.
  TcpConfig cfg;
  cfg.max_syn_retries = 3;
  sim::EventLoop loop;
  net::Network net(loop);
  auto& a = net.add_node<Host>("a");
  auto& blackhole = net.add_switch("blackhole");
  a.set_tcp_config(cfg);
  net.connect(a, blackhole,
              net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(1), 96'000});
  net.build_routes();
  TcpConnection& c = a.connect(blackhole.id(), 80);
  const struct {
    double at_sec;
    std::int64_t timeouts;
  } ladder[] = {{2.9, 0}, {3.1, 1}, {8.9, 1}, {9.1, 2}, {20.9, 2}, {21.1, 3}, {44.9, 3}};
  for (const auto& step : ladder) {
    loop.run_until(SimTime::zero() + Duration::seconds(step.at_sec));
    EXPECT_EQ(c.timeouts(), step.timeouts) << "at t=" << step.at_sec;
    EXPECT_FALSE(c.closed()) << "at t=" << step.at_sec;
  }
  loop.run_until(SimTime::zero() + Duration::seconds(45.1));
  EXPECT_TRUE(c.closed());
}

TEST(TcpEdge, KarnsRuleKeepsSingleBackoffAfterSynRetransmission) {
  // A 2 s one-way delay makes the SYN-ACK arrive (t=4 s) after the first
  // RTO (t=3 s): the SYN is retransmitted exactly once. Karn's rule then
  // forbids an RTT sample from the retransmitted handshake, so the
  // connection must establish with rto == 2 * initial_rto — one backoff,
  // not two — and no RTT estimate until fresh data is acked.
  Pair p(net::LinkSpec{Bandwidth::mbps(10.0), Duration::seconds(2.0), 96'000});
  p.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c = p.a->connect(p.b->id(), 80);
  p.run_for(4.5);  // SYN t=0 lost to no one — it arrives; its ack is just late
  EXPECT_TRUE(c.established());
  EXPECT_EQ(c.timeouts(), 1);
  EXPECT_EQ(c.srtt().ns(), 0);  // Karn: no sample from a retransmitted range
  EXPECT_EQ(c.rto().ns(), 2 * p.a->tcp_config().initial_rto.ns());
  // Fresh data eventually yields a sample and the estimator takes over.
  c.write(1000);
  p.run_for(10.0);
  EXPECT_GT(c.srtt().ns(), 0);
}

TEST(TcpEdge, BytesWrittenCountsAppSubmissionNotTransmission) {
  // bytes_written() is the application-side count: write() credits it in
  // full immediately, while bytes_sent()/bytes_acked() trail behind at the
  // pace the window and the wire allow.
  Pair p(net::LinkSpec{Bandwidth::mbps(1.0), Duration::millis(5), 96'000});
  p.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c = p.a->connect(p.b->id(), 80);
  c.write(megabytes(1));
  EXPECT_EQ(c.bytes_written(), megabytes(1));  // before the handshake even completes
  EXPECT_EQ(c.bytes_sent(), 0);
  p.run_for(1.0);
  EXPECT_EQ(c.bytes_written(), megabytes(1));
  EXPECT_GT(c.bytes_sent(), 0);
  EXPECT_LT(c.bytes_sent(), megabytes(1));  // 1 Mbit/s cannot move 1 MB in 1 s
  EXPECT_LE(c.bytes_acked(), c.bytes_sent());
  c.write(500);
  EXPECT_EQ(c.bytes_written(), megabytes(1) + 500);
}

TEST(TcpEdge, SteadyStateLossPathIsAllocationFree) {
  // A shallow bottleneck queue keeps this transfer in permanent loss
  // recovery: holes at the receiver (out-of-order tracker), fast
  // retransmit, RTO backoff, and a timer re-arm on every ack. After
  // warm-up, none of it may touch the allocator — the interval vector is
  // inline/pooled, timer re-arms reuse their event record, and packets
  // ride pooled link records.
  Pair p(net::LinkSpec{Bandwidth::mbps(10.0), Duration::millis(1), 6'000});
  Bytes delivered = 0;
  p.b->listen(80, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes n) { delivered += n; };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& c = p.a->connect(p.b->id(), 80);
  c.write(megabytes(200));  // far more than the run can move: never drains
  p.run_for(5.0);  // warm-up: pools, rings, slabs, spill buffers
  ASSERT_TRUE(c.established());
  ASSERT_GT(c.retransmits(), 0) << "config no longer produces loss";
  const Bytes delivered_before = delivered;
#if SPEAKUP_AUDIT_ENABLED
  // Audit checkpoints may allocate scratch inside the measured region.
  GTEST_SKIP() << "zero-alloc guarantees are not measured in SPEAKUP_AUDIT builds";
#endif
  ASSERT_TRUE(util::AllocGuard::counting()) << "speakup_counted_new not linked";
  const util::AllocGuard guard;
  p.run_for(10.0);  // measured region: steady-state loss recovery
  EXPECT_EQ(guard.delta(), 0) << "TCP loss path allocated in steady state";
  EXPECT_GT(delivered, delivered_before);  // the region really moved data
  EXPECT_GT(c.retransmits(), 0);
}

TEST(TcpEdge, ZeroByteWriteIsNoop) {
  Pair p(net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(1), 96'000});
  p.b->listen(80, [](TcpConnection&) {});
  TcpConnection& c = p.a->connect(p.b->id(), 80);
  c.write(0);
  p.run_for(1.0);
  EXPECT_EQ(c.bytes_written(), 0);
  EXPECT_EQ(c.bytes_acked(), 0);
  EXPECT_TRUE(c.established());
}

TEST(TcpEdge, ManySmallWritesCoalesceIntoSegments) {
  Pair p(net::LinkSpec{Bandwidth::mbps(10.0), Duration::millis(1), 96'000});
  Bytes delivered = 0;
  p.b->listen(80, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes n) { delivered += n; };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& c = p.a->connect(p.b->id(), 80);
  p.run_for(0.1);
  for (int i = 0; i < 1000; ++i) c.write(10);  // 10 KB in dribbles
  p.run_for(2.0);
  EXPECT_EQ(delivered, 10'000);
  // Far fewer than 1000 packets were needed (writes coalesce into MSS
  // segments once the first flight is in the air).
  EXPECT_LT(c.retransmits(), 5);
}

struct RateCase {
  const char* name;
  std::int64_t mbps;
};

class TcpThroughputSweep : public ::testing::TestWithParam<RateCase> {};

TEST_P(TcpThroughputSweep, BulkTransferUsesMostOfTheLink) {
  const double rate = static_cast<double>(GetParam().mbps);
  Pair p(net::LinkSpec{Bandwidth::mbps(rate), Duration::millis(2), 96'000});
  Bytes delivered = 0;
  p.b->listen(80, [&](TcpConnection& c) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes n) { delivered += n; };
    c.set_callbacks(std::move(cbs));
  });
  p.a->connect(p.b->id(), 80).write(megabytes(100));
  p.run_for(10.0);
  const double goodput_mbps = static_cast<double>(delivered) * 8 / 10.0 / 1e6;
  // At least 80% of the link after header overhead and slow start.
  EXPECT_GT(goodput_mbps, 0.8 * rate);
  EXPECT_LT(goodput_mbps, rate);  // and no faster than physics
}

INSTANTIATE_TEST_SUITE_P(Rates, TcpThroughputSweep,
                         ::testing::Values(RateCase{"one", 1}, RateCase{"two", 2},
                                           RateCase{"five", 5}, RateCase{"ten", 10},
                                           RateCase{"fifty", 50}),
                         [](const ::testing::TestParamInfo<RateCase>& i) {
                           return i.param.name;
                         });

}  // namespace
}  // namespace speakup::transport
