#include "exp/work_queue.hpp"

#include <stdexcept>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace speakup::exp {

namespace json = util::json;

WorkQueue::WorkQueue(std::vector<std::size_t> rows_per_slice, int max_attempts)
    : max_attempts_(max_attempts) {
  util::require(max_attempts >= 1, "WorkQueue: max_attempts must be >= 1");
  slices_.reserve(rows_per_slice.size());
  for (std::size_t i = 0; i < rows_per_slice.size(); ++i) {
    Slice s;
    s.id = static_cast<int>(i);
    s.rows = rows_per_slice[i];
    slices_.push_back(std::move(s));
  }
}

Slice& WorkQueue::at(int id) {
  if (id < 0 || id >= size()) {
    throw std::out_of_range("WorkQueue: no slice " + std::to_string(id));
  }
  return slices_[static_cast<std::size_t>(id)];
}

int WorkQueue::claim(int worker) {
  for (Slice& s : slices_) {
    if (s.state != Slice::State::kPending) continue;
    s.state = Slice::State::kRunning;
    s.worker = worker;
    s.rows_done = 0;
    s.events = 0;
    ++s.attempts;
    return s.id;
  }
  return -1;
}

void WorkQueue::heartbeat(int slice, std::size_t rows_done, std::uint64_t events) {
  Slice& s = at(slice);
  if (s.state != Slice::State::kRunning) return;  // late beat from a kill race
  s.rows_done = rows_done;
  s.events = events;
}

void WorkQueue::complete(int slice, std::uint64_t events) {
  Slice& s = at(slice);
  util::require(s.state == Slice::State::kRunning,
                "WorkQueue: complete() on a slice that is not running");
  s.state = Slice::State::kDone;
  s.rows_done = s.rows;
  s.events = events;
  s.worker = -1;
  s.error.clear();
}

void WorkQueue::complete_resumed(int slice, std::uint64_t events) {
  Slice& s = at(slice);
  util::require(s.state == Slice::State::kPending,
                "WorkQueue: complete_resumed() on a claimed slice");
  s.state = Slice::State::kDone;
  s.rows_done = s.rows;
  s.events = events;
}

bool WorkQueue::requeue(int slice, const std::string& reason) {
  Slice& s = at(slice);
  util::require(s.state == Slice::State::kRunning,
                "WorkQueue: requeue() on a slice that is not running");
  s.worker = -1;
  s.rows_done = 0;
  s.events = 0;
  s.error = reason;
  if (s.attempts >= max_attempts_) {
    s.state = Slice::State::kFailed;
    return false;
  }
  s.state = Slice::State::kPending;
  return true;
}

void WorkQueue::fail_pending(const std::string& reason) {
  for (Slice& s : slices_) {
    if (s.state != Slice::State::kPending) continue;
    s.state = Slice::State::kFailed;
    s.error = reason;
  }
}

int WorkQueue::count(Slice::State state) const {
  int n = 0;
  for (const Slice& s : slices_) n += s.state == state ? 1 : 0;
  return n;
}

std::size_t WorkQueue::rows_total() const {
  std::size_t n = 0;
  for (const Slice& s : slices_) n += s.rows;
  return n;
}

std::size_t WorkQueue::rows_done() const {
  std::size_t n = 0;
  for (const Slice& s : slices_) {
    if (s.state == Slice::State::kDone) n += s.rows;
    else if (s.state == Slice::State::kRunning) n += s.rows_done;
  }
  return n;
}

std::uint64_t WorkQueue::events_total() const {
  std::uint64_t n = 0;
  for (const Slice& s : slices_) {
    if (s.state == Slice::State::kDone || s.state == Slice::State::kRunning) {
      n += s.events;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// SliceJournal
// ---------------------------------------------------------------------------

SliceJournal::SliceJournal(SliceJournal&& other) noexcept : f_(other.f_) {
  other.f_ = nullptr;
}

SliceJournal& SliceJournal::operator=(SliceJournal&& other) noexcept {
  if (this != &other) {
    if (f_ != nullptr) std::fclose(f_);
    f_ = other.f_;
    other.f_ = nullptr;
  }
  return *this;
}

SliceJournal::~SliceJournal() {
  if (f_ != nullptr) std::fclose(f_);
}

SliceJournal SliceJournal::create(const std::string& path, const Header& header) {
  SliceJournal j;
  j.f_ = std::fopen(path.c_str(), "wb");
  if (j.f_ == nullptr) {
    throw std::runtime_error("dispatch: cannot write journal '" + path + "'");
  }
  json::Value h;
  h.set("speakup_dispatch_journal", 1);
  h.set("scenario", header.scenario_path);
  h.set("scenarios", static_cast<double>(header.scenario_count));
  h.set("slices", header.slices);
  j.line(h.dump(0));
  return j;
}

SliceJournal SliceJournal::append_to(const std::string& path) {
  SliceJournal j;
  j.f_ = std::fopen(path.c_str(), "ab");
  if (j.f_ == nullptr) {
    throw std::runtime_error("dispatch: cannot append to journal '" + path + "'");
  }
  return j;
}

SliceJournal::Header SliceJournal::read_header(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("dispatch: no journal at '" + path +
                             "' (nothing to resume)");
  }
  std::string first;
  for (int c = std::fgetc(f); c != EOF && c != '\n'; c = std::fgetc(f)) {
    first.push_back(static_cast<char>(c));
  }
  std::fclose(f);
  json::Value v;
  try {
    v = json::parse(first);
  } catch (const json::Error&) {
    throw std::runtime_error("dispatch: '" + path + "' is not a dispatch journal");
  }
  const json::Value* magic = v.find("speakup_dispatch_journal");
  const json::Value* scenario = v.find("scenario");
  const json::Value* scenarios = v.find("scenarios");
  const json::Value* slices = v.find("slices");
  if (magic == nullptr || scenario == nullptr || !scenario->is_string() ||
      scenarios == nullptr || !scenarios->is_number() || slices == nullptr ||
      !slices->is_number()) {
    throw std::runtime_error("dispatch: '" + path + "' is not a dispatch journal");
  }
  Header h;
  h.scenario_path = scenario->as_string();
  h.scenario_count = static_cast<std::size_t>(scenarios->as_int());
  h.slices = static_cast<int>(slices->as_int());
  return h;
}

void SliceJournal::line(const std::string& text) {
  if (f_ == nullptr) return;
  std::fputs(text.c_str(), f_);
  std::fputc('\n', f_);
  std::fflush(f_);
}

void SliceJournal::claim(int slice, int attempt, int worker_pid) {
  line("claim " + std::to_string(slice) + " attempt " + std::to_string(attempt) +
       " pid " + std::to_string(worker_pid));
}

void SliceJournal::done(int slice, std::size_t rows, std::uint64_t events) {
  line("done " + std::to_string(slice) + " rows " + std::to_string(rows) +
       " events " + std::to_string(events));
}

void SliceJournal::fail(int slice, int attempt, const std::string& reason) {
  std::string flat = reason;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  line("fail " + std::to_string(slice) + " attempt " + std::to_string(attempt) +
       " reason " + flat);
}

void SliceJournal::note(const std::string& what) {
  std::string flat = what;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  line("note " + flat);
}

}  // namespace speakup::exp
