// Figure 5: average number of bytes sent on the payment channel — the
// "price" — for served requests, by class, against the theoretical average
// (G+B)/c ("Upper Bound"). G = B = 50 Mbit/s.
//
// The grid lives in scenarios/fig5.json (one scenario per capacity,
// labeled "cN"); `speakup run` on that file reproduces these numbers
// exactly.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 5", "average price (KBytes/request) vs capacity");
  bench::print_paper_note(
      "when overloaded (c = 50, 100) the price sits near but below the upper "
      "bound (G+B)/c; when lightly loaded (c = 200) good clients pay ~0");

  // G + B = 50 Mbit/s + 50 Mbit/s = 100 Mbit/s of aggregate client bandwidth.
  const double kTotalBytesPerSec = 100e6 / 8.0;
  const double kCapacities[] = {50.0, 100.0, 200.0};

  exp::ScenarioFile file = bench::load_scenarios("fig5.json");
  bench::apply_full_duration(file);
  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  stats::Table table({"capacity", "price-good-KB", "price-bad-KB", "upper-bound-KB"});
  for (const double c : kCapacities) {
    const exp::ExperimentResult& r = runner.result("c" + std::to_string(int(c)));
    table.row()
        .add(static_cast<std::int64_t>(c))
        .add(r.thinner.price_good.mean() / 1000.0, 1)
        .add(r.thinner.price_bad.mean() / 1000.0, 1)
        .add(core::theory::average_price_bytes(kTotalBytesPerSec / 2, kTotalBytesPerSec / 2, c) /
                 1000.0,
             1);
  }
  table.print(std::cout);
  return 0;
}
