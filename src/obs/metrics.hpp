// Live metrics: named counters, polled gauges, and log-bucketed histograms
// with allocation-free hot-path updates, plus interval sampling into
// stats::TimeSeries for the per-run timeseries.csv.
//
// Registration (naming a metric) happens once, at setup, and may allocate;
// every hot-path operation afterwards — inc(), observe() — is an index into
// a preallocated vector and touches no allocator, no map, no string. The
// registry is sampled on a sim-time interval (obs::Observer drives this via
// the event loop's sample hook, which adds *no events* to the simulation —
// see sim/event_loop.hpp): counters record their delta since the previous
// sample, gauges record their polled value.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/time_series.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace speakup::obs {

using MetricId = std::uint32_t;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (setup path; allocates) --------------------------------

  /// Monotonic event count. Returns the id used for inc().
  MetricId add_counter(std::string name);

  /// Value polled at each sample (queue depths, heap sizes, scale levels).
  /// `poll` is invoked only from sample() and json export, never on the
  /// hot path.
  MetricId add_gauge(std::string name, std::function<double()> poll);

  /// Distribution summary: count/sum/min/max plus power-of-two value
  /// buckets (bucket i counts values in [2^(i-1), 2^i)).
  MetricId add_histogram(std::string name);

  // --- hot path (allocation-free) ------------------------------------------

  void inc(MetricId id, std::int64_t delta = 1) { counters_[id].value += delta; }

  void observe(MetricId id, double v) {
    Histogram& h = histograms_[id];
    ++h.count;
    h.sum += v;
    if (h.count == 1 || v < h.min) h.min = v;
    if (h.count == 1 || v > h.max) h.max = v;
    ++h.buckets[bucket_of(v)];
  }

  [[nodiscard]] std::int64_t counter_value(MetricId id) const {
    return counters_[id].value;
  }

  // --- sampling -------------------------------------------------------------

  /// Arms interval sampling: each sample() call appends one point per
  /// counter (the delta since the last sample) and per gauge (the polled
  /// value) to that metric's TimeSeries. Must be called before sample().
  void enable_sampling(Duration interval);

  [[nodiscard]] bool sampling_enabled() const { return sample_interval_ > Duration::zero(); }
  [[nodiscard]] Duration sample_interval() const { return sample_interval_; }

  /// Records one sample at sim time `now`.
  void sample(SimTime now);

  // --- export ---------------------------------------------------------------

  /// End-of-run summary: {"<name>": {"type": "counter", "value": N} |
  /// {"type": "gauge", "value": V} | {"type": "histogram", "count": ...}}.
  [[nodiscard]] util::json::Value summary_json() const;

  /// Appends sampled points as CSV rows "<prefix><metric>,<time_s>,<value>"
  /// (no header), metrics in registration order, buckets in time order.
  /// Empty buckets are skipped for counters that never moved but written as
  /// 0 for buckets inside the sampled range, so rows are deterministic.
  void append_timeseries_csv(std::string& out, const std::string& prefix) const;

 private:
  struct Counter {
    std::string name;
    std::int64_t value = 0;
    std::int64_t last_sampled = 0;  // value at the previous sample()
  };
  struct Gauge {
    std::string name;
    std::function<double()> poll;
  };
  static constexpr std::size_t kBuckets = 64;
  struct Histogram {
    std::string name;
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::int64_t, kBuckets> buckets{};
  };
  struct Series {
    std::string name;                  // the sampled metric's name
    stats::TimeSeries points;          // one bucket per sample interval
    explicit Series(std::string n, Duration width)
        : name(std::move(n)), points(width) {}
  };

  /// Power-of-two bucket index for v (v <= 0 -> 0).
  [[nodiscard]] static std::size_t bucket_of(double v) {
    if (v < 1.0) return 0;
    std::size_t b = 0;
    auto u = static_cast<std::uint64_t>(v);
    while (u > 0 && b + 1 < kBuckets) {
      u >>= 1;
      ++b;
    }
    return b;
  }

  void require_unique(const std::string& name) const;

  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
  Duration sample_interval_ = Duration::zero();
  std::vector<Series> counter_series_;  // parallel to counters_
  std::vector<Series> gauge_series_;    // parallel to gauges_
  std::size_t samples_taken_ = 0;
};

}  // namespace speakup::obs
