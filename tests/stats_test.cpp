// Tests for streaming statistics, sample sets and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/counter_set.hpp"
#include "stats/online_stats.hpp"
#include "stats/sample_set.hpp"
#include "stats/table.hpp"

namespace speakup::stats {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_EQ(s.count(), 8);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = 0.3 * i - 2;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  OnlineStats a_copy = a;
  a.merge(b);  // empty right side: unchanged
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty left side: becomes right side
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(SampleSet, PercentilesExact) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100, added descending
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(s.median(), s.percentile(0.5));
}

TEST(SampleSet, EmptyPercentileIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(SampleSet, AddAfterPercentileResorts) {
  SampleSet s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 20.0);
}

TEST(SampleSet, SummaryMatches) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(SampleSet, Merge) {
  SampleSet a, b;
  a.add(1.0);
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 5.0);
}

TEST(CounterSet, IncrementAndRead) {
  CounterSet c;
  EXPECT_EQ(c.get("x"), 0);
  c.inc("x");
  c.inc("x", 4);
  EXPECT_EQ(c.get("x"), 5);
  EXPECT_EQ(c.all().size(), 1u);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 1);
  t.row().add("b").add(std::int64_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add("x").add(2.25, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2.25\n");
}

}  // namespace
}  // namespace speakup::stats
