#include "client/workload_client.hpp"

#include <algorithm>

#include "obs/observer.hpp"
#include "util/log.hpp"

namespace speakup::client {

using http::Message;
using http::MessageStream;
using http::MessageType;

WorkloadClient::WorkloadClient(transport::Host& host, net::NodeId thinner,
                               const WorkloadParams& params, std::uint32_t client_index,
                               util::RngStream rng)
    : host_(&host),
      thinner_(thinner),
      params_(params),
      id_base_(static_cast<std::uint64_t>(client_index + 1) << 32),
      rng_(std::move(rng)),
      strategy_(StrategyFactory::instance().create(params.strategy, strategy_params(params))),
      pool_(host.loop()) {
  util::require(params.lambda > 0, "client lambda must be positive");
  util::require(params.window >= 1, "client window must be >= 1");
}

WorkloadClient::~WorkloadClient() = default;

StrategyView WorkloadClient::view() const {
  StrategyView v;
  v.now = host_->loop().now();
  v.stats = &stats_;
  v.outstanding = outstanding_.size();
  v.backlog = backlog_.size();
  return v;
}

int WorkloadClient::current_window() {
  return std::max(1, strategy_->window(view()));
}

void WorkloadClient::start() {
  arrival_event_ =
      host_->loop().schedule(strategy_->next_arrival(rng_, view()), [this] { on_arrival(); });
}

void WorkloadClient::on_arrival() {
  if (paused_) return;
  ++stats_.arrivals;
  purge_backlog();
  if (outstanding_.size() < static_cast<std::size_t>(current_window())) {
    start_request();
  } else {
    backlog_.push_back(host_->loop().now());
  }
  arrival_event_ =
      host_->loop().schedule(strategy_->next_arrival(rng_, view()), [this] { on_arrival(); });
}

void WorkloadClient::start_request() {
  const std::uint64_t id = id_base_ | next_seq_++;
  auto pr = std::make_unique<PendingRequest>();
  pr->id = id;
  pr->sent = host_->loop().now();
  pr->timer = std::make_unique<sim::Timer>(host_->loop(), [this, id] {
    finish(id, Disposition::kDenied);
  });
  pr->timer->restart(params_.request_timeout);

  transport::TcpConnection& conn = host_->connect(thinner_, params_.request_port);
  pr->stream = &pool_.adopt(conn);
  PendingRequest& ref = *pr;
  http::MessageStream::Callbacks cbs;
  cbs.on_established = [this, &ref] {
    if (ref.stream == nullptr) return;
    ref.stream->send(Message{.type = MessageType::kRequest,
                             .request_id = ref.id,
                             .cls = params_.cls,
                             .difficulty = params_.difficulty});
    ++ref.retries_sent;
  };
  cbs.on_message = [this, &ref](const Message& m) { on_message(ref, m); };
  cbs.on_reset = [this, id](/*thinner evicted us or network failure*/) {
    finish(id, Disposition::kDenied);
  };
  cbs.on_acked = [this, &ref](Bytes) {
    if (ref.retry_pumping) pump_retries(ref);
  };
  pr->stream->set_callbacks(std::move(cbs));
  outstanding_[id] = std::move(pr);
  ++stats_.started;
}

void WorkloadClient::on_message(PendingRequest& pr, const Message& m) {
  switch (m.type) {
    case MessageType::kPleasePay: {
      if (pr.payment != nullptr) break;  // already paying (or defected)
      if (!strategy_->pay(rng_, view())) {
        ++stats_.payments_declined;
        if (auto* o = host_->loop().observer()) o->on_payment_declined(index());
        break;  // sit out the auction; the request rides on its timeout
      }
      pr.paying = true;
      pr.pay_started = host_->loop().now();
      if (auto* o = host_->loop().observer()) o->on_payment_started(index());
      PaymentChannelClient::Config pc;
      pc.thinner = thinner_;
      pc.payment_port = params_.payment_port;
      pc.post_size = params_.post_size;
      pr.payment = std::make_unique<PaymentChannelClient>(*host_, pool_, pc, pr.id, params_.cls);
      pr.payment->start();
      if (const auto patience = strategy_->payment_patience(rng_, view())) {
        const std::uint64_t id = pr.id;
        pr.defect_timer =
            std::make_unique<sim::Timer>(host_->loop(), [this, id] { abandon_payment(id); });
        pr.defect_timer->restart(*patience);
      }
      break;
    }
    case MessageType::kRetry:
      // §3.2: stream retries without waiting for individual signals.
      if (!pr.retry_pumping) {
        pr.retry_pumping = true;
        pump_retries(pr);
      }
      break;
    case MessageType::kResponse: {
      ++stats_.served;
      stats_.response_time.add((host_->loop().now() - pr.sent).sec());
      if (pr.paying) {
        stats_.payment_time_client.add((host_->loop().now() - pr.pay_started).sec());
      }
      finish(pr.id, Disposition::kServed);
      break;
    }
    case MessageType::kBusy:
      finish(pr.id, Disposition::kBusyRejected);
      break;
    case MessageType::kAborted:
      finish(pr.id, Disposition::kDenied);
      break;
    default:
      break;
  }
}

void WorkloadClient::abandon_payment(std::uint64_t id) {
  const auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  PendingRequest& pr = *it->second;
  if (pr.payment == nullptr || pr.payment->stopped()) return;
  pr.payment->stop();  // §7.4 defection: the bid freezes mid-window
  ++stats_.payments_abandoned;
  if (auto* o = host_->loop().observer()) o->on_payment_abandoned(index());
}

void WorkloadClient::pump_retries(PendingRequest& pr) {
  if (pr.stream == nullptr || pr.stream->connection() == nullptr) return;
  const transport::TcpConnection& conn = *pr.stream->connection();
  const Bytes per_msg = Message{.type = MessageType::kRequest}.wire_bytes();
  const auto acked_msgs = conn.bytes_acked() / per_msg;
  const int pipeline = strategy_->retry_pipeline(view());  // hot path: ask once per pump
  while (pr.retries_sent - acked_msgs < pipeline) {
    pr.stream->send(Message{.type = MessageType::kRequest,
                            .request_id = pr.id,
                            .cls = params_.cls,
                            .difficulty = params_.difficulty});
    ++pr.retries_sent;
    ++stats_.retries_sent;
  }
}

void WorkloadClient::finish(std::uint64_t id, Disposition d) {
  const auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  PendingRequest& pr = *it->second;
  int disposition = 0;
  switch (d) {
    case Disposition::kServed:
      break;  // counted by the caller
    case Disposition::kDenied:
      ++stats_.denied;
      disposition = 1;
      break;
    case Disposition::kBusyRejected:
      ++stats_.busy_rejected;
      disposition = 2;
      break;
  }
  if (auto* o = host_->loop().observer()) {
    o->on_request_finish(index(), pr.sent, disposition, pr.paying, pr.pay_started);
  }
  if (pr.payment != nullptr) {
    stats_.payment_bytes_acked += pr.payment->bytes_acked();
    pr.payment->stop();
  }
  if (pr.stream != nullptr) {
    MessageStream* s = pr.stream;
    pr.stream = nullptr;
    pool_.retire(s);
  }
  outstanding_.erase(it);
  drain_backlog();
}

void WorkloadClient::purge_backlog() {
  const SimTime now = host_->loop().now();
  while (!backlog_.empty() && now - backlog_.front() > params_.backlog_timeout) {
    backlog_.pop_front();
    ++stats_.denied;  // §7.1: queued longer than 10 s -> service denial
  }
}

void WorkloadClient::drain_backlog() {
  purge_backlog();
  while (!backlog_.empty() &&
         outstanding_.size() < static_cast<std::size_t>(current_window())) {
    backlog_.pop_front();
    start_request();
  }
}

}  // namespace speakup::client
