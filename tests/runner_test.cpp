// Tests for the batch Runner: labeling, sweep helpers, error capture, and —
// the load-bearing property — parallel run_all() producing results
// bit-identical to serial execution for fixed seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace speakup::exp {
namespace {

ScenarioConfig tiny(DefenseMode mode, std::uint64_t seed = 3) {
  ScenarioConfig cfg = lan_scenario(/*good=*/3, /*bad=*/3, /*capacity_rps=*/50.0, mode, seed);
  cfg.duration = Duration::seconds(2.0);
  return cfg;
}

TEST(Runner, DefaultLabelsAreDefenseSlashIndex) {
  Runner r;
  r.add(tiny(DefenseMode::kNone)).add(tiny(DefenseMode::kAuction));
  r.run_all(1);
  EXPECT_EQ(r.outcomes()[0].label, "none/0");
  EXPECT_EQ(r.outcomes()[1].label, "auction/1");
}

TEST(Runner, DuplicateLabelsRejected) {
  Runner r;
  r.add(tiny(DefenseMode::kNone), "x");
  EXPECT_THROW(r.add(tiny(DefenseMode::kAuction), "x"), std::invalid_argument);
}

TEST(Runner, RunAllIsCallableOnce) {
  Runner r;
  r.add(tiny(DefenseMode::kNone));
  r.run_all(1);
  EXPECT_THROW(r.run_all(1), std::invalid_argument);
  EXPECT_THROW(r.add(tiny(DefenseMode::kNone)), std::invalid_argument);
}

TEST(Runner, OutcomesBeforeRunThrow) {
  Runner r;
  r.add(tiny(DefenseMode::kNone));
  EXPECT_THROW((void)r.outcomes(), std::invalid_argument);
}

TEST(Runner, SeedSweepLabelsAndSeeds) {
  Runner r;
  ScenarioConfig base = tiny(DefenseMode::kNone, /*seed=*/10);
  r.add_seed_sweep(base, 3);
  ASSERT_EQ(r.size(), 3u);
  r.run_all(2);
  EXPECT_EQ(r.outcomes()[0].label, "none/seed10");
  EXPECT_EQ(r.outcomes()[2].label, "none/seed12");
  EXPECT_EQ(r.outcomes()[0].config.seed, 10u);
  EXPECT_EQ(r.outcomes()[2].config.seed, 12u);
  // Different seeds give different trajectories.
  EXPECT_NE(r.outcomes()[0].result.events_executed, r.outcomes()[1].result.events_executed);
}

TEST(Runner, SweepGoodFractionBuildsPaperGrid) {
  Runner r;
  r.sweep_good_fraction(10, {2, 5, 8}, 50.0, DefenseMode::kNone, Duration::seconds(2.0),
                        /*seed=*/5);
  ASSERT_EQ(r.size(), 3u);
  r.run_all(0);
  const RunOutcome& o = r.outcome("none/g2");
  ASSERT_EQ(o.config.groups.size(), 2u);
  EXPECT_EQ(o.config.groups[0].count, 2);
  EXPECT_EQ(o.config.groups[1].count, 8);
}

TEST(Runner, FailedScenarioIsCapturedNotFatal) {
  Runner r;
  ScenarioConfig bad = tiny(DefenseMode::kAuction);
  bad.defense = "no-such-defense";
  r.add(bad, "broken").add(tiny(DefenseMode::kNone), "fine");
  r.run_all(2);
  EXPECT_FALSE(r.outcome("broken").ok());
  EXPECT_NE(r.outcome("broken").error.find("no-such-defense"), std::string::npos);
  EXPECT_TRUE(r.outcome("fine").ok());
  EXPECT_THROW((void)r.result("broken"), std::invalid_argument);
  EXPECT_GT(r.result("fine").served_total, 0);
}

TEST(Runner, UnknownLabelThrows) {
  Runner r;
  r.add(tiny(DefenseMode::kNone), "a");
  r.run_all(1);
  EXPECT_THROW((void)r.outcome("b"), std::invalid_argument);
}

// The acceptance criterion: parallel execution must be bit-identical to
// serial execution for fixed seeds, across every defense mode.
TEST(Runner, ParallelEqualsSerialPerSeed) {
  auto build = [](Runner& r) {
    for (const DefenseMode mode : kAllDefenseModes) {
      r.add(tiny(mode), std::string("m/") + to_string(mode));
    }
    r.add_seed_sweep(tiny(DefenseMode::kAuction, 100), 4, "sweep");
  };

  Runner serial;
  build(serial);
  serial.run_all(1);
  Runner parallel;
  build(parallel);
  parallel.run_all(4);

  ASSERT_EQ(serial.outcomes().size(), parallel.outcomes().size());
  for (std::size_t i = 0; i < serial.outcomes().size(); ++i) {
    const RunOutcome& s = serial.outcomes()[i];
    const RunOutcome& p = parallel.outcomes()[i];
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(s.label, p.label);
    EXPECT_EQ(s.result.served_total, p.result.served_total) << s.label;
    EXPECT_EQ(s.result.served_good, p.result.served_good) << s.label;
    EXPECT_EQ(s.result.served_bad, p.result.served_bad) << s.label;
    EXPECT_EQ(s.result.events_executed, p.result.events_executed) << s.label;
    EXPECT_EQ(s.result.thinner.payment_bytes_total, p.result.thinner.payment_bytes_total)
        << s.label;
    // The fingerprint digests every deterministic field, including the
    // per-group and sample-set data.
    EXPECT_EQ(s.result.fingerprint(), p.result.fingerprint()) << s.label;
  }
}

TEST(Runner, FingerprintDistinguishesSeeds) {
  Runner r;
  r.add(tiny(DefenseMode::kAuction, 1), "s1").add(tiny(DefenseMode::kAuction, 2), "s2");
  r.run_all(2);
  EXPECT_NE(r.result("s1").fingerprint(), r.result("s2").fingerprint());
}

TEST(Runner, SummaryTableHasOneRowPerOutcome) {
  Runner r;
  r.add(tiny(DefenseMode::kNone), "a").add(tiny(DefenseMode::kAuction), "b");
  r.run_all(2);
  EXPECT_EQ(r.summary_table().num_rows(), 2u);
}

}  // namespace
}  // namespace speakup::exp
