// Figure 9: effect of speak-up traffic on an innocent bystander.
//
// Topology (§7.7): 10 good speak-up clients and one HTTP downloader H share
// a bottleneck m (1 Mbit/s, 100 ms one-way delay); on the other side sit
// the thinner (c = 2 requests/s) and a separate web server. H downloads a
// file repeatedly; we report mean and standard deviation of the end-to-end
// latency with and without the speak-up clients running, across file sizes.
// 16 independent scenarios — the flagship parallel sweep.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

namespace {

speakup::exp::ScenarioConfig scenario(std::int64_t kb, bool with_speakup, int downloads) {
  using namespace speakup;
  exp::ScenarioConfig cfg;
  cfg.mode = exp::DefenseMode::kAuction;
  cfg.capacity_rps = 2.0;
  cfg.seed = 28;
  cfg.bottleneck =
      exp::BottleneckSpec{Bandwidth::mbps(1.0), Duration::millis(100), 200'000};
  if (with_speakup) {
    exp::ClientGroupSpec g;
    g.label = "speakup-clients";
    g.count = 10;
    g.workload = client::good_client_params();
    g.behind_bottleneck = true;
    cfg.groups.push_back(g);
  }
  exp::CollateralSpec col;
  col.file_size = kilobytes(kb);
  col.downloads = downloads;
  cfg.collateral = col;
  // Give the downloads time to finish even when heavily delayed.
  cfg.duration = Duration::seconds(std::max(120.0, downloads * 6.0));
  return cfg;
}

}  // namespace

int main() {
  using namespace speakup;
  bench::print_banner("Figure 9", "HTTP download latency across a shared bottleneck");
  bench::print_paper_note(
      "download times inflate by ~6x for a 1 KB transfer and ~4.5x for 64 KB "
      "when speak-up traffic shares the bottleneck (a deliberately pessimistic "
      "configuration)");

  const int kDownloads = bench::full_mode() ? 100 : 40;
  const std::int64_t kSizesKb[] = {1, 2, 4, 8, 16, 32, 64, 100};

  exp::Runner runner;
  for (const std::int64_t kb : kSizesKb) {
    runner.add(scenario(kb, false, kDownloads), "off/" + std::to_string(kb) + "KB");
    runner.add(scenario(kb, true, kDownloads), "on/" + std::to_string(kb) + "KB");
  }
  bench::run_all(runner);

  stats::Table table({"size-KB", "no-speakup-mean-s", "no-speakup-sd", "speakup-mean-s",
                      "speakup-sd", "inflation"});
  for (const std::int64_t kb : kSizesKb) {
    const exp::ExperimentResult& off = runner.result("off/" + std::to_string(kb) + "KB");
    const exp::ExperimentResult& on = runner.result("on/" + std::to_string(kb) + "KB");
    const double mean_off = off.collateral_latencies.mean();
    const double mean_on = on.collateral_latencies.mean();
    table.row()
        .add(kb)
        .add(mean_off, 3)
        .add(off.collateral_latencies.stddev(), 3)
        .add(mean_on, 3)
        .add(on.collateral_latencies.stddev(), 3)
        .add(mean_off > 0 ? mean_on / mean_off : 0.0, 2);
  }
  table.print(std::cout);
  return 0;
}
