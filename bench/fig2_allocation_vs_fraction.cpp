// Figure 2: server allocation to good clients as a function of their
// fraction f of the total client bandwidth. 50 clients x 2 Mbit/s on a LAN,
// c = 100 requests/s. Series: with speak-up, without speak-up, ideal (f).
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "exp/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 2", "server allocation vs good clients' bandwidth fraction");
  bench::print_paper_note(
      "the speak-up series hugs the ideal line (good clients capture ~f of the "
      "server); without speak-up, bad clients at lambda=40, w=20 capture far more");

  const int kClients = 50;
  const double kCapacity = 100.0;
  stats::Table table({"f=G/(G+B)", "without-speakup", "with-speakup", "ideal"});

  for (int good = 5; good <= 45; good += 5) {
    const int bad = kClients - good;
    const double f = static_cast<double>(good) / kClients;

    exp::ScenarioConfig off =
        exp::lan_scenario(good, bad, kCapacity, exp::DefenseMode::kNone, /*seed=*/21);
    off.duration = bench::experiment_duration();
    const exp::ExperimentResult r_off = exp::run_scenario(off);

    exp::ScenarioConfig on =
        exp::lan_scenario(good, bad, kCapacity, exp::DefenseMode::kAuction, /*seed=*/21);
    on.duration = bench::experiment_duration();
    const exp::ExperimentResult r_on = exp::run_scenario(on);

    table.row()
        .add(f, 2)
        .add(r_off.allocation_good, 3)
        .add(r_on.allocation_good, 3)
        .add(core::theory::ideal_good_allocation(f, 1.0 - f), 3);
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
