// Observability-off invariance: attaching an obs::Observer must be
// behavior-invisible. Three guarantees, each pinned here:
//
//   1. A *disabled* Observer (metrics off, trace off) attached to a run
//      leaves every smoke-sweep fingerprint exactly at its pre-obs pinned
//      value (the PR-3 constants from hotpath_fingerprint_test.cpp).
//   2. A fully *enabled* Observer still leaves the fingerprints unchanged:
//      sampling rides the event loop's inline sample hook, not a scheduled
//      event, so `events_executed` — which fingerprint() hashes — cannot
//      drift.
//   3. With the registry compiled in and an Observer attached but disabled,
//      the steady-state packet pipeline performs zero heap allocations: a
//      probe site with a disabled half costs a pointer load and a
//      never-taken branch, nothing more.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/scenario_io.hpp"
#include "net/network.hpp"
#include "obs/observer.hpp"
#include "sim/event_loop.hpp"

// Zero-allocation assertions use util::AllocGuard; the counting operator
// new lives in the speakup_counted_new object library. Only the *delta*
// inside a measured region matters.
#include "util/alloc_guard.hpp"

namespace speakup::exp {
namespace {

std::string hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

/// Runs `cfg` with an Observer attached for the whole run.
ExperimentResult run_observed(const ScenarioConfig& cfg,
                              const obs::Observer::Options& opts) {
  Experiment e(cfg);
  obs::Observer ob(e.loop(), opts);
  ExperimentResult r = e.run();
  ob.finish();
  return r;
}

using Pins = std::vector<std::pair<std::string, std::string>>;

// The smoke-sweep fingerprints, captured at PR 3 — the same constants
// hotpath_fingerprint_test.cpp pins for the *unobserved* runs. Matching
// them here proves the Observer changed nothing.
const Pins kSmokePins = {
    {"smoke/none", "5926ff42af7d304f"},
    {"smoke/retry", "6f503a28a37defd5"},
    {"smoke/auction", "058ae2081de114a0"},
    {"smoke/quantum", "785972ef788a9750"},
    {"smoke/auction-seeds/seed7", "058ae2081de114a0"},
    {"smoke/auction-seeds/seed8", "9bf42045de308896"},
};

void expect_smoke_pins(const obs::Observer::Options& opts) {
  const ScenarioFile file =
      load_scenario_file(std::string(SPEAKUP_SCENARIO_DIR) + "/smoke.json");
  ASSERT_EQ(file.scenarios.size(), kSmokePins.size());
  for (std::size_t i = 0; i < kSmokePins.size(); ++i) {
    const LabeledScenario& s = file.scenarios[i];
    ASSERT_EQ(s.label, kSmokePins[i].first) << "scenario order changed; re-check pins";
    const ExperimentResult r = run_observed(s.config, opts);
    EXPECT_EQ(hex(r.fingerprint()), kSmokePins[i].second)
        << "observer perturbed '" << s.label
        << "' (events_executed=" << r.events_executed << ")";
  }
}

TEST(ObsInvariance, DisabledObserverLeavesSmokeFingerprintsPinned) {
  expect_smoke_pins(obs::Observer::Options{});  // both halves off
}

TEST(ObsInvariance, EnabledMetricsAndTraceLeaveSmokeFingerprintsPinned) {
  obs::Observer::Options opts;
  opts.metrics = true;
  opts.trace = true;
  opts.sample_interval = Duration::seconds(0.25);  // aggressive sampling
  expect_smoke_pins(opts);
}

TEST(ObsInvariance, ObserverDetachesOnDestruction) {
  sim::EventLoop loop;
  EXPECT_EQ(loop.observer(), nullptr);
  {
    obs::Observer ob(loop, obs::Observer::Options{});
    EXPECT_EQ(loop.observer(), &ob);
  }
  EXPECT_EQ(loop.observer(), nullptr);
}

// --- zero allocations with a disabled observer attached --------------------

class Reflector : public net::Node {
 public:
  Reflector(net::Network& net, net::NodeId id, std::string name)
      : net::Node(net, id, std::move(name)) {}
  void on_packet(net::Packet p) override {
    if (!reply_) return;
    network().forward(id(), net::make_data_packet(id(), 1, p.src, 1, 0, 500));
  }
  void stop() { reply_ = false; }

 private:
  bool reply_ = true;
};

TEST(ObsInvariance, DisabledObserverKeepsPacketPipelineAllocationFree) {
  sim::EventLoop loop;
  obs::Observer ob(loop, obs::Observer::Options{});  // attached, both halves off
  net::Network net(loop);
  auto& a = net.add_node<Reflector>("a");
  auto& b = net.add_node<Reflector>("b");
  net.connect(a, b, net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(100), 1'000'000});
  net.build_routes();
  for (int i = 0; i < 8; ++i) {
    net.forward(a.id(), net::make_data_packet(a.id(), 1, b.id(), 1, 0, 500));
  }
  // Warm-up: pools, rings, and the heap reach steady state.
  loop.run_until(loop.now() + Duration::seconds(1.0));
  const std::uint64_t warm_events = loop.executed_events();
  // Measured region: every packet crosses the Link probe sites.
#if SPEAKUP_AUDIT_ENABLED
  // Audit checkpoints may allocate scratch inside the measured region.
  GTEST_SKIP() << "zero-alloc guarantees are not measured in SPEAKUP_AUDIT builds";
#endif
  ASSERT_TRUE(util::AllocGuard::counting()) << "speakup_counted_new not linked";
  const util::AllocGuard guard;
  loop.run_until(loop.now() + Duration::seconds(10.0));
  EXPECT_EQ(guard.delta(), 0) << "disabled observer allocated on the packet hot path";
  EXPECT_GT(loop.executed_events(), warm_events + 1000u);  // the region really ran
  a.stop();
  b.stop();
  loop.run();
}

}  // namespace
}  // namespace speakup::exp
