// Bohatei-style elastic capacity (Fayaz et al., USENIX Security 2015): the
// defense answers overload not by charging clients but by provisioning more
// server capacity. Admission is identical to the undefended baseline (serve
// whoever arrives while the server is free, kBusy otherwise); a periodic
// monitor watches the server's busy fraction and doubles capacity — up to
// max_scale times the base rate — whenever an interval runs at or above the
// overload threshold. The tournament uses it as the "scale out instead of
// charging" column: it restores good-client service under load but pays in
// provisioned capacity rather than attacker bandwidth, and it cannot
// distinguish good demand from bad.
//
// With max_scale == 1.0 the monitor is never armed, so a run is
// event-for-event identical to NoDefenseFrontEnd (the differential test in
// adversarial_test.cpp holds this as an invariant).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/front_end.hpp"
#include "core/thinner_stats.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "server/emulated_server.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {

class ElasticFrontEnd : public FrontEnd {
 public:
  struct Config {
    double capacity_rps = 100.0;
    Bytes response_body = 1000;
    /// Capacity ceiling, as a multiple of the base rate. 1.0 = never scale.
    double max_scale = 4.0;
    /// Monitoring interval between scale decisions.
    Duration interval = Duration::seconds(5);
    /// Busy fraction over an interval at or above which capacity doubles.
    double threshold = 0.9;
    std::uint32_t request_port = 80;
  };

  ElasticFrontEnd(transport::Host& host, const Config& cfg, util::RngStream server_rng);

  // --- FrontEnd ---
  [[nodiscard]] std::string_view name() const override { return "elastic"; }
  [[nodiscard]] const ThinnerStats& stats() const override { return stats_; }
  [[nodiscard]] std::size_t contending() const override { return serving_.size(); }
  [[nodiscard]] Duration server_busy_good() const override {
    return server_.good_busy_time();
  }
  [[nodiscard]] Duration server_busy_bad() const override {
    return server_.bad_busy_time();
  }
  [[nodiscard]] Duration server_busy_total() const override { return server_.busy_time(); }

  void on_run_start() override;

  /// Current capacity multiplier (1.0 until the monitor first scales up).
  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] const server::EmulatedServer& server() const { return server_; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    http::ClientClass cls = http::ClientClass::kNeutral;
    http::MessageStream* session = nullptr;
  };

  void on_accept(transport::TcpConnection& conn);
  void on_message(http::MessageStream& s, const http::Message& m);
  void on_reset(http::MessageStream& s);
  void on_server_complete(const server::ServiceRequest& done);
  void on_monitor_tick();

  transport::Host* host_;
  Config cfg_;
  server::EmulatedServer server_;
  http::SessionPool pool_;
  ThinnerStats stats_;
  std::unordered_map<std::uint64_t, Pending> serving_;
  std::unordered_map<http::MessageStream*, std::uint64_t> by_stream_;
  double scale_ = 1.0;
  Duration busy_at_tick_ = Duration::zero();
};

}  // namespace speakup::core
