// Figure 3: server allocation to good and bad clients, and the fraction of
// good requests served, without ("OFF") and with ("ON") speak-up, for
// c = 50, 100, 200 requests/s. G = B = 50 Mbit/s (25 good + 25 bad clients,
// 2 Mbit/s each); c_id = 100.
//
// The grid lives in scenarios/fig3.json — the same file `speakup run`
// executes — so the bench and the CLI reproduce identical numbers.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 3",
                      "allocation and fraction of good requests served vs capacity");
  bench::print_paper_note(
      "for c = 50 and 100 the ON allocation is roughly proportional to aggregate "
      "bandwidths (~0.5/0.5); for c = 200 all good requests are served");

  const char* kDefenses[] = {"none", "auction"};

  exp::ScenarioFile file = bench::load_scenarios("fig3.json");
  bench::apply_full_duration(file);

  // The capacity axis comes from the file (one value per "none" scenario),
  // so editing the JSON grid never leaves this report stale.
  std::vector<int> capacities;
  for (const exp::LabeledScenario& s : file.scenarios) {
    if (s.config.defense_name() == "none") {
      capacities.push_back(static_cast<int>(s.config.capacity_rps));
    }
  }

  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  stats::Table table({"capacity", "defense", "alloc(good)", "alloc(bad)",
                      "frac-good-served", "ideal-alloc(good)"});
  for (const int c : capacities) {
    for (const char* defense : kDefenses) {
      const exp::ExperimentResult& r =
          runner.result(std::string(defense) + "/c" + std::to_string(c));
      table.row()
          .add(static_cast<std::int64_t>(c))
          .add(std::string(defense) == "none" ? "OFF" : "ON")
          .add(r.allocation_good, 3)
          .add(r.allocation_bad, 3)
          .add(r.fraction_good_served, 3)
          .add(core::theory::ideal_good_allocation(1.0, 1.0), 3);
    }
  }
  table.print(std::cout);
  return 0;
}
