// Adversarial tournament: the full cross-product of defenses × attacker
// strategies, scored into a payoff matrix (§7.4's gaming analysis
// generalized to the whole registry).
//
// A tournament spec is a small JSON file: a `base` scenario (server
// capacity, duration, seed, and the client groups), the list of defenses
// (rows) and attacker strategies (columns), and which group index plays the
// attacker. The spec expands into an ordinary scenario file — one scenario
// entry with a two-axis grid, defense outermost — so the sweep runs through
// the exact same machinery as `speakup run`: thread pools, `--shard i/M`,
// `--resume`, and the fault-tolerant dispatcher all work unchanged and
// byte-identically.
//
// Scoring reads the sweep's CSV back and emits, per (defense, strategy)
// cell, the defender's payoff (fraction of good requests served) and the
// attacker's cost (bytes transmitted at the front end), plus a dominance /
// Pareto report over the defense rows. See docs/tournament.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace speakup::exp {

/// Parsed tournament spec. `defenses` and `strategies` default to every
/// registered name when the spec omits them.
struct TournamentSpec {
  std::string description;
  std::vector<std::string> defenses;    // matrix rows
  std::vector<std::string> strategies;  // matrix columns (attacker workloads)
  /// Index into base's "groups" array of the population whose workload
  /// strategy varies across columns; the other groups are held fixed.
  std::size_t attacker_group = 1;
  /// Scenario defaults every cell shares (the scenario-file "defaults"
  /// object: capacity_rps, duration_s, seed, groups, ...).
  util::json::Value base;
};

/// One cell of the payoff matrix.
struct PayoffCell {
  std::size_t index = 0;  // scenario index in the expanded sweep
  std::string defense;
  std::string strategy;          // the attacker group's workload strategy
  double good_fraction = 0.0;    // defender payoff: fraction_good_served
  std::int64_t attacker_bytes = 0;  // attacker cost at the front end
  std::string fingerprint;       // the run's determinism digest (hex)
  // Run metrics carried into payoff.json's per-cell "metrics" object. All
  // parsed from the sweep CSV, so every scoring path (in-process, --score,
  // dispatch) produces identical matrices by construction.
  std::int64_t served_total = 0;
  std::int64_t events_executed = 0;
  double server_busy_fraction = 0.0;
};

struct PayoffMatrix {
  std::string description;
  std::vector<std::string> defenses;
  std::vector<std::string> strategies;
  /// Row-major, defense outermost: cells[d * strategies.size() + s].
  std::vector<PayoffCell> cells;

  [[nodiscard]] const PayoffCell& cell(std::size_t d, std::size_t s) const {
    return cells[d * strategies.size() + s];
  }

  /// Weak dominance over the defense rows: row `a` weakly dominates row `b`
  /// when a's good_fraction is >= b's in every strategy column and > in at
  /// least one.
  [[nodiscard]] bool dominates(std::size_t a, std::size_t b) const;

  /// Defense rows no other row weakly dominates, in row order.
  [[nodiscard]] std::vector<std::size_t> pareto_rows() const;
};

/// Parses a tournament spec document. Defense and strategy names are
/// validated against the registries; errors throw ScenarioError naming the
/// offending key.
[[nodiscard]] TournamentSpec parse_tournament_spec(std::string_view json_text);

/// Reads and parses `path`. Errors are prefixed with the file name.
[[nodiscard]] TournamentSpec load_tournament_spec(const std::string& path);

/// Expands the spec into scenario-file JSON text (see scenario_io.hpp): one
/// entry whose grid crosses `defense` (outermost) with the attacker group's
/// `workload.strategy`, labels "<defense>|<strategy>". The result is
/// validated by parsing it, so every cell is known to construct before any
/// sweep starts. Deterministic: same spec, same bytes.
[[nodiscard]] std::string tournament_scenarios_json(const TournamentSpec& spec);

/// Scores a completed sweep: `results_csv` must be the (merged) ResultWriter
/// CSV of exactly the sweep tournament_scenarios_json produced — every cell
/// present once, none failed. Throws std::runtime_error otherwise.
[[nodiscard]] PayoffMatrix score_tournament(const TournamentSpec& spec,
                                            const std::string& results_csv);

/// The matrix as CSV: defense,strategy,fraction_good_served,attacker_bytes,
/// fingerprint — row-major, deterministic.
[[nodiscard]] std::string payoff_csv(const PayoffMatrix& m);

/// The matrix as a JSON document (defenses, strategies, cells).
[[nodiscard]] std::string payoff_json(const PayoffMatrix& m);

/// Human-readable per-defense report: the payoff matrix, the best defense
/// per attacker column, weak-dominance relations, and the Pareto frontier.
[[nodiscard]] std::string pareto_report(const PayoffMatrix& m);

}  // namespace speakup::exp
