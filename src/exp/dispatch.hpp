// `speakup dispatch` — the fault-tolerant multi-worker sweep fabric.
//
// The Dispatcher is the coordinator the ROADMAP's cluster-scale item asks
// for: it expands a scenario file into M shard slices (exp::WorkQueue),
// spawns N `speakup worker` subprocesses, and drives a pull-based
// work-stealing loop over a line protocol on the workers' stdin/stdout
// pipes. Workers heartbeat while running; a worker that exits or goes
// silent past the heartbeat timeout is killed and its in-flight slice is
// requeued (up to `--retries` extra attempts). Completed slice CSVs are
// merged incrementally through ResultWriter::merge_csv, so the final
// `--out` file is byte-identical to a single-process `speakup run` — under
// worker crashes, heartbeat stalls, and a dispatcher kill + `--resume`
// restart alike (tests/dispatch_test.cpp injects all three). Protocol and
// failure semantics are documented in docs/cli.md.
#pragma once

#include <string>
#include <vector>

namespace speakup::exp {

struct DispatchOptions {
  std::string scenario_path;
  std::string out_csv;  // merged CSV destination (required)
  std::string exe;      // speakup binary to spawn `worker` processes from
  int workers = 4;
  int slices = 0;       // 0 -> min(4 * workers, scenario count)
  int retries = 2;      // extra attempts per slice after a worker loss
  int heartbeat_ms = 2000;  // declare a worker dead after this much silence
  enum class Status {
    kAuto,  // tty view on a terminal, plain per-event lines otherwise
    kTty,   // live single-line progress on stderr
    kJson,  // machine-readable JSON lines on stdout (CI)
  };
  Status status = Status::kAuto;
  bool resume = false;  // pick up a killed dispatcher's work directory
};

struct DispatchReport {
  bool ok = false;  // every slice completed; out_csv was written
  std::size_t rows_total = 0;
  std::size_t rows_failed = 0;  // scenario rows that carry an error column
  int slices_total = 0;
  int slices_resumed = 0;  // validated --resume artifacts, not re-run
  int workers_spawned = 0;
  int worker_deaths = 0;  // crashes + heartbeat timeouts
  int requeues = 0;
  std::vector<std::string> failures;  // permanent slice failures
};

/// Runs one dispatched sweep to completion (blocking). Throws
/// std::runtime_error on configuration errors (bad scenario file, missing
/// work directory on --resume, ...); worker-level trouble is handled by
/// retry and surfaced in the report instead.
[[nodiscard]] DispatchReport dispatch_sweep(const DispatchOptions& opts);

/// The worker half: `speakup worker SCENARIO WORKDIR HEARTBEAT_MS`.
/// Reads `slice <i> <M>` commands on stdin, runs each slice scenario by
/// scenario, heartbeats on stdout, writes the slice CSV atomically into
/// WORKDIR, and reports `done`/`fail`. Returns the process exit code.
int run_worker(const std::string& scenario_path, const std::string& work_dir,
               int heartbeat_ms);

/// The work directory `speakup dispatch --out OUT` journals into.
[[nodiscard]] std::string dispatch_work_dir(const std::string& out_csv);

}  // namespace speakup::exp
