// Randomized property tests on the substrate invariants: the event loop
// never runs time backwards under arbitrary schedules; the timer-wheel/
// heap split fires in exactly global (time, insertion) order under random
// schedule/cancel/re-arm traces; the interval-vector out-of-order tracker
// matches a reference std::map implementation over random segment arrival
// orders; routing on random connected topologies delivers between all host
// pairs; payment accounting conserves bytes end to end under random client
// mixes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "core/auction_thinner.hpp"
#include "exp/experiment.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "transport/ooo_tracker.hpp"
#include "util/rng.hpp"

namespace speakup {
namespace {

TEST(RandomizedProperty, EventLoopTimeIsMonotoneUnderRandomSchedules) {
  util::RngStream rng(101, "loop-fuzz");
  sim::EventLoop loop;
  SimTime last_seen;
  int fired = 0;
  std::vector<sim::EventId> cancellable;
  // Seed events that randomly schedule more events and randomly cancel.
  std::function<void()> chaos = [&] {
    EXPECT_GE(loop.now(), last_seen);  // time never goes backwards
    last_seen = loop.now();
    ++fired;
    if (fired > 5000) return;
    const int n = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n; ++i) {
      sim::EventId id =
          loop.schedule(Duration::nanos(rng.uniform_int(0, 5'000'000)), chaos);
      if (rng.chance(0.2)) cancellable.push_back(id);
    }
    if (!cancellable.empty() && rng.chance(0.3)) {
      loop.cancel(cancellable.back());
      cancellable.pop_back();
    }
  };
  for (int i = 0; i < 20; ++i) {
    loop.schedule(Duration::nanos(rng.uniform_int(0, 1'000'000)), chaos);
  }
  loop.run();
  EXPECT_GT(fired, 20);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(RandomizedProperty, WheelAndHeapFireInGlobalTimeAndInsertionOrder) {
  // The EventLoop splits pending events between a hierarchical timer wheel
  // and a 4-ary heap purely by deadline distance. This trace — random
  // delays spanning every wheel level plus the overflow heap, random
  // cancellation, and random in-place re-arming — checks the split is
  // invisible: every firing must be the global minimum of (deadline,
  // insertion order) among live events, exactly as a single ordered queue
  // would fire, and re-arming must order as if freshly scheduled.
  util::RngStream rng(105, "wheel-fuzz");
  sim::EventLoop loop;

  struct Slot {
    std::int64_t when_ns = 0;   // absolute deadline
    std::uint64_t order = 0;    // (re)insertion counter: the tie-breaker
    bool live = false;          // scheduled, not yet fired/cancelled
    sim::EventId id;
  };
  std::vector<Slot> slots;
  std::uint64_t order_counter = 0;
  int fired = 0;
  int checked = 0;
  constexpr int kBudget = 4000;

  auto random_delay = [&rng]() -> Duration {
    switch (rng.uniform_int(0, 5)) {
      case 0: return Duration::nanos(rng.uniform_int(0, 2'000));         // sub-tick
      case 1: return Duration::micros(rng.uniform_int(1, 900));          // heap range
      case 2: return Duration::millis(rng.uniform_int(1, 60));           // wheel L1/L2
      case 3: return Duration::millis(rng.uniform_int(60, 4'000));       // wheel L2
      case 4: return Duration::seconds(static_cast<double>(rng.uniform_int(4, 250)));  // L3
      default: return Duration::seconds(static_cast<double>(rng.uniform_int(300, 600)));  // overflow
    }
  };

  std::function<void(std::size_t)> on_fire = [&](std::size_t me) {
    Slot& self = slots[me];
    // Property 1: the clock stands exactly at this event's deadline.
    EXPECT_EQ(loop.now().ns(), self.when_ns);
    // Property 2: nothing live fires late — this event is the minimum of
    // (when, order) among all still-live events.
    if (++checked <= 1500) {  // O(n) scan; cap to keep the test quick
      for (const Slot& other : slots) {
        if (!other.live || &other == &self) continue;
        EXPECT_TRUE(other.when_ns > self.when_ns ||
                    (other.when_ns == self.when_ns && other.order > self.order))
            << "event fired ahead of an earlier live event";
      }
    }
    self.live = false;
    ++fired;
    if (fired >= kBudget) return;
    // Keep the trace going: schedule new events, cancel and re-arm others.
    // (1–2 spawns per fire against a 0.3 cancel rate keeps the population
    // supercritical until the budget cuts it off.)
    const int spawn = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < spawn; ++i) {
      const std::size_t idx = slots.size();
      slots.push_back(Slot{});
      const Duration d = random_delay();
      Slot& s = slots[idx];
      s.when_ns = (loop.now() + d).ns();
      s.order = order_counter++;
      s.live = true;
      s.id = loop.schedule(d, [&on_fire, idx] { on_fire(idx); });
    }
    if (!slots.empty() && rng.chance(0.3)) {  // cancel a random live event
      const std::size_t idx =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1));
      if (slots[idx].live && slots[idx].id.pending()) {
        loop.cancel(slots[idx].id);
        slots[idx].live = false;
      }
    }
    if (!slots.empty() && rng.chance(0.3)) {  // re-arm a random live event
      const std::size_t idx =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1));
      if (slots[idx].live && slots[idx].id.pending()) {
        const Duration d = random_delay();
        slots[idx].id = loop.reschedule(slots[idx].id, d);
        slots[idx].when_ns = (loop.now() + d).ns();
        slots[idx].order = order_counter++;  // re-arm orders as if fresh
      }
    }
  };

  slots.reserve(static_cast<std::size_t>(kBudget) * 3);
  for (int i = 0; i < 50; ++i) {
    const std::size_t idx = slots.size();
    slots.push_back(Slot{});
    const Duration d = random_delay();
    Slot& s = slots[idx];
    s.when_ns = (SimTime::zero() + d).ns();
    s.order = order_counter++;
    s.live = true;
    s.id = loop.schedule(d, [&on_fire, idx] { on_fire(idx); });
  }
  loop.run();
  EXPECT_GE(fired, kBudget);
  EXPECT_EQ(loop.pending_events(), 0u);
  // Everything the model says is live must have fired or been cancelled.
  for (const Slot& s : slots) EXPECT_FALSE(s.live);
}

/// The pre-round-2 std::map out-of-order tracker, verbatim — the reference
/// the interval vector must match byte for byte.
struct MapOooReference {
  std::map<std::int64_t, std::int64_t> ooo;
  std::int64_t rcv_nxt = 0;

  void handle_data(std::int64_t seq, std::int64_t len) {
    std::int64_t begin = std::max(seq, rcv_nxt);
    const std::int64_t end = seq + len;
    if (begin < end) {
      auto it = ooo.lower_bound(begin);
      if (it != ooo.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= begin) {
          begin = prev->first;
          it = prev;
        }
      }
      std::int64_t merged_end = end;
      while (it != ooo.end() && it->first <= merged_end) {
        merged_end = std::max(merged_end, it->second);
        it = ooo.erase(it);
      }
      ooo[begin] = merged_end;
    }
    auto front = ooo.begin();
    if (front != ooo.end() && front->first <= rcv_nxt) {
      rcv_nxt = std::max(rcv_nxt, front->second);
      ooo.erase(front);
    }
  }
};

TEST(RandomizedProperty, OooTrackerMatchesMapReference) {
  // Random segment arrival orders — overlapping, touching, duplicated,
  // stale, and far-future — must leave the interval vector and the map
  // reference with identical delivered prefixes and identical hole sets.
  util::RngStream rng(106, "ooo-fuzz");
  for (int trial = 0; trial < 20; ++trial) {
    transport::OooTracker tracker;
    std::int64_t rcv_nxt = 0;
    MapOooReference ref;
    const int segments = 300 + static_cast<int>(rng.uniform_int(0, 300));
    std::int64_t frontier = 0;  // loosely tracks the "sender position"
    for (int i = 0; i < segments; ++i) {
      std::int64_t seq;
      const std::int64_t len = 1 + rng.uniform_int(0, 2999);
      if (rng.chance(0.5)) {
        // Near the frontier: in-order-ish with reordering and gaps.
        seq = std::max<std::int64_t>(0, frontier + rng.uniform_int(-4000, 8000));
        frontier = std::max(frontier, seq + len);
      } else if (rng.chance(0.3)) {
        seq = rcv_nxt + rng.uniform_int(0, 2000);  // straddles the cum-ack point
      } else {
        seq = rng.uniform_int(0, 200'000);  // anywhere: stale or far future
      }
      // Mirror TcpConnection::handle_data on both implementations.
      ref.handle_data(seq, len);
      const std::int64_t begin = std::max(seq, rcv_nxt);
      const std::int64_t end = seq + len;
      if (begin < end) tracker.insert(begin, end);
      rcv_nxt = tracker.pop_prefix(rcv_nxt);

      ASSERT_EQ(rcv_nxt, ref.rcv_nxt) << "trial " << trial << " segment " << i;
      ASSERT_EQ(tracker.size(), ref.ooo.size()) << "trial " << trial << " segment " << i;
      std::size_t k = 0;
      for (const auto& [b, e] : ref.ooo) {
        ASSERT_EQ(tracker.data()[k].begin, b) << "trial " << trial << " segment " << i;
        ASSERT_EQ(tracker.data()[k].end, e) << "trial " << trial << " segment " << i;
        ++k;
      }
    }
  }
}

TEST(RandomizedProperty, OooTrackerSpillsAndRecoversBeyondInlineCapacity) {
  // Dozens of disjoint holes force the inline array to spill; filling the
  // gaps must then drain everything through a single merged pop.
  transport::OooTracker tracker;
  constexpr int kHoles = 40;
  for (int i = 0; i < kHoles; ++i) {
    // [1000, 1100), [3000, 3100), ... — disjoint, inserted back to front.
    const std::int64_t b = (kHoles - i) * 2000 + 1000;
    tracker.insert(b, b + 100);
  }
  EXPECT_EQ(tracker.size(), static_cast<std::size_t>(kHoles));
  EXPECT_TRUE(tracker.spilled());
  EXPECT_EQ(tracker.pop_prefix(0), 0);  // nothing contiguous yet
  // Fill everything below the last hole: one insert merges the lot.
  tracker.insert(0, kHoles * 2000 + 1000);
  EXPECT_EQ(tracker.pop_prefix(0), kHoles * 2000 + 1100);
  EXPECT_TRUE(tracker.empty());
}

TEST(RandomizedProperty, RandomConnectedTopologiesRouteAllPairs) {
  util::RngStream rng(102, "topo-fuzz");
  for (int trial = 0; trial < 5; ++trial) {
    sim::EventLoop loop;
    net::Network net(loop);
    const int hosts = 4;
    const int switches = 3 + static_cast<int>(rng.uniform_int(0, 3));
    std::vector<net::Switch*> sw;
    for (int i = 0; i < switches; ++i) {
      sw.push_back(&net.add_switch("sw" + std::to_string(i)));
      if (i > 0) {
        // Spanning chain keeps the graph connected...
        net.connect(*sw[static_cast<std::size_t>(i)], *sw[static_cast<std::size_t>(i - 1)],
                    net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(100), 500'000});
      }
    }
    // ...plus random extra links.
    for (int e = 0; e < 2; ++e) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, switches - 1));
      const auto b = static_cast<std::size_t>(rng.uniform_int(0, switches - 1));
      if (a != b && net.link_between(sw[a]->id(), sw[b]->id()) == nullptr) {
        net.connect(*sw[a], *sw[b],
                    net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(100), 500'000});
      }
    }
    std::vector<transport::Host*> hs;
    for (int i = 0; i < hosts; ++i) {
      auto& h = net.add_node<transport::Host>("h" + std::to_string(i));
      const auto at = static_cast<std::size_t>(rng.uniform_int(0, switches - 1));
      net.connect(h, *sw[at],
                  net::LinkSpec{Bandwidth::mbps(10.0), Duration::micros(500), 96'000});
      hs.push_back(&h);
    }
    net.build_routes();
    // Every ordered host pair completes a small transfer.
    int completed = 0;
    for (auto* server : hs) {
      server->listen(80, [&](transport::TcpConnection& c) {
        transport::TcpConnection::Callbacks cbs;
        cbs.on_data = [&completed](Bytes n) {
          if (n > 0) ++completed;
        };
        c.set_callbacks(std::move(cbs));
      });
    }
    int expected = 0;
    for (auto* a : hs) {
      for (auto* b : hs) {
        if (a == b) continue;
        a->connect(b->id(), 80).write(500);
        ++expected;
      }
    }
    loop.run_until(SimTime::zero() + Duration::seconds(10.0));
    EXPECT_EQ(completed, expected) << "trial " << trial;
  }
}

TEST(RandomizedProperty, ThinnerByteAccountingConserves) {
  // Across random mixes, the thinner's books must balance: every credited
  // byte is either attributed to a served request's price, wasted in an
  // expired channel, or still outstanding with a live contender.
  util::RngStream rng(103, "mix-fuzz");
  for (int trial = 0; trial < 3; ++trial) {
    const int good = 2 + static_cast<int>(rng.uniform_int(0, 4));
    const int bad = 2 + static_cast<int>(rng.uniform_int(0, 4));
    const double c = 5.0 + 10.0 * rng.uniform();
    exp::ScenarioConfig cfg = exp::lan_scenario(good, bad, c, exp::DefenseMode::kAuction,
                                                200 + static_cast<std::uint64_t>(trial));
    cfg.duration = Duration::seconds(15.0);
    exp::Experiment e(cfg);
    const exp::ExperimentResult r = e.run();
    const core::ThinnerStats& t = r.thinner;
    const double priced = t.price_good.sum() + t.price_bad.sum();
    const auto wasted = static_cast<double>(t.payment_bytes_wasted);
    const auto total = static_cast<double>(t.payment_bytes_total);
    // priced + wasted <= total credited (the remainder is held by live
    // contenders at the end of the run).
    EXPECT_LE(priced + wasted, total * 1.0001) << "trial " << trial;
    // And the books roughly balance: live contenders are bounded, so most
    // bytes are accounted for.
    EXPECT_GT(priced + wasted, total * 0.3) << "trial " << trial;
    // The time series agrees with the scalar total.
    EXPECT_NEAR(t.payment_rate.total(), total, 1.0) << "trial " << trial;
  }
}

TEST(RandomizedProperty, ServedCountsMatchBetweenThinnerAndClients) {
  // Thinner-side and client-side served counts agree modulo responses in
  // flight at the end of the run.
  util::RngStream rng(104, "count-fuzz");
  for (int trial = 0; trial < 3; ++trial) {
    exp::ScenarioConfig cfg =
        exp::lan_scenario(3 + static_cast<int>(rng.uniform_int(0, 3)),
                          3 + static_cast<int>(rng.uniform_int(0, 3)), 20.0,
                          exp::DefenseMode::kAuction, 300 + static_cast<std::uint64_t>(trial));
    cfg.duration = Duration::seconds(15.0);
    const exp::ExperimentResult r = exp::run_scenario(cfg);
    std::int64_t client_served = 0;
    for (const auto& g : r.groups) client_served += g.totals.served;
    EXPECT_LE(client_served, r.served_total);
    EXPECT_GE(client_served, r.served_total - 5);
  }
}

}  // namespace
}  // namespace speakup
