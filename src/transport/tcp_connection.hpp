// One endpoint of a simulated TCP connection.
//
// Implements the congestion-control behaviours the speak-up evaluation
// depends on: 3-way handshake (SYN loss costs a full RTO), slow start,
// AIMD congestion avoidance, fast retransmit/recovery (NewReno-style
// partial-ack handling), RTO with exponential backoff and Karn's rule,
// and RFC 6298 RTT estimation.
//
// Data is modeled as byte counts. Applications call write(n) to append n
// bytes to the stream; the receiving endpoint's on_data callback reports
// in-order arrival. peer() exposes the other endpoint — a simulation
// shortcut used by the message layer to pass typed message descriptors
// alongside the faithfully-simulated bytes.
#pragma once

#include <any>
#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/timer.hpp"
#include "transport/ooo_tracker.hpp"
#include "transport/tcp_config.hpp"
#include "util/units.hpp"

namespace speakup::transport {

class Host;

class TcpConnection {
 public:
  enum class State { kSynSent, kSynReceived, kEstablished, kClosed };

  /// Application-facing callbacks. All optional.
  struct Callbacks {
    std::function<void()> on_established;
    std::function<void(Bytes newly_delivered)> on_data;  // receiver side, in-order bytes
    std::function<void(Bytes total_acked)> on_acked;     // sender side, cumulative
    std::function<void()> on_reset;                      // peer RST or local failure
  };

  TcpConnection(Host& host, std::uint32_t local_port, net::NodeId remote,
                std::uint32_t remote_port, const TcpConfig& cfg, bool initiator);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  ~TcpConnection();

  void set_callbacks(Callbacks cbs) { cbs_ = std::move(cbs); }

  /// Appends `n` bytes to the outgoing stream.
  void write(Bytes n);

  /// Sends RST and tears the local endpoint down immediately.
  void abort();

  /// Packet entry point (called by Host demux).
  void on_packet(const net::Packet& p);

  // --- identity & state ---
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool established() const { return state_ == State::kEstablished; }
  [[nodiscard]] bool closed() const { return state_ == State::kClosed; }
  [[nodiscard]] std::uint32_t local_port() const { return local_port_; }
  [[nodiscard]] net::NodeId remote_node() const { return remote_; }
  [[nodiscard]] std::uint32_t remote_port() const { return remote_port_; }
  [[nodiscard]] Host& host() const { return *host_; }

  /// The opposite endpoint (simulation shortcut); nullptr before the
  /// handshake completes or after the peer closes.
  [[nodiscard]] TcpConnection* peer() const { return peer_; }

  /// Opaque slot for a higher layer (http::MessageStream) to attach itself.
  [[nodiscard]] std::any& app_handle() { return app_handle_; }

  // --- counters / introspection (used by tests and reports) ---
  /// Total bytes the application has submitted via write() — the
  /// app-side count, independent of how much has been transmitted yet
  /// (a window-limited connection reports the full amount immediately).
  /// For wire-side progress see bytes_sent() / bytes_acked().
  [[nodiscard]] Bytes bytes_written() const { return app_limit_; }
  /// Highest stream offset handed to the network so far (snd_nxt); always
  /// <= bytes_written(), and temporarily rewinds on a retransmission
  /// timeout (go-back-N restarts from the last cumulative ack).
  [[nodiscard]] Bytes bytes_sent() const { return snd_nxt_; }
  [[nodiscard]] Bytes bytes_acked() const { return snd_una_; }
  [[nodiscard]] Bytes bytes_delivered() const { return rcv_nxt_; }
  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] Duration srtt() const { return srtt_; }
  /// Current retransmission timeout, including any exponential backoff
  /// still in force (Karn's rule: backoff sticks until fresh data yields
  /// an RTT sample). Introspection for tests.
  [[nodiscard]] Duration rto() const { return rto_; }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::int64_t timeouts() const { return timeouts_; }

 private:
  friend class Host;

  void start_handshake();
  void start_passive();
  void establish();
  void try_send();
  void send_segment(std::int64_t seq, Bytes len, bool retransmission);
  void send_ack();
  void handle_ack(std::int64_t ack);
  void handle_data(std::int64_t seq, Bytes len);
  void on_rto();
  void arm_rto();
  /// Karn-style exponential backoff: doubles the RTO (capped at
  /// cfg_.max_rto). Called exactly once per timer expiry — the single
  /// place backoff is applied, so no path can double-apply it.
  void backoff_rto();
  void take_rtt_sample(Duration sample);
  void enter_fast_recovery();
  void teardown(bool notify_app);
  void link_peer(TcpConnection* p) { peer_ = p; }

  [[nodiscard]] Bytes inflight() const { return snd_nxt_ - snd_una_; }

  Host* host_;
  TcpConfig cfg_;
  std::uint32_t local_port_;
  net::NodeId remote_;
  std::uint32_t remote_port_;
  State state_;
  TcpConnection* peer_ = nullptr;
  std::any app_handle_;
  Callbacks cbs_;

  // --- send side ---
  std::int64_t snd_una_ = 0;   // oldest unacked stream offset
  std::int64_t snd_nxt_ = 0;   // next offset to transmit
  std::int64_t app_limit_ = 0; // total bytes the app has written
  double cwnd_;
  double ssthresh_;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;   // NewReno recovery point
  std::int64_t retransmits_ = 0;
  std::int64_t timeouts_ = 0;
  int syn_retries_ = 0;

  // --- RTT estimation (one timed segment at a time; Karn's rule) ---
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  bool have_rtt_ = false;
  Duration rto_;
  std::int64_t timed_seq_ = -1;  // -1: nothing being timed
  SimTime timed_sent_;
  SimTime syn_sent_at_;
  bool syn_retransmitted_ = false;

  sim::Timer rto_timer_;

  // --- receive side ---
  std::int64_t rcv_nxt_ = 0;
  OooTracker ooo_;  // out-of-order intervals past rcv_nxt_
};

}  // namespace speakup::transport
