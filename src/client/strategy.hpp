// The adversary library: pluggable client behavior strategies.
//
// A Strategy is to WorkloadClient what a core::FrontEnd is to the thinner
// host: a polymorphic behavior behind a name-keyed registry, so new attacker
// (or flash-crowd) behaviors plug in without touching the harness. The
// client delegates every behavioral decision to its strategy —
//
//   - next_arrival(): when the next request arrives (the Poisson process,
//     an on-off pulse, a flash-crowd surge, ...);
//   - window(): how many requests may be outstanding right now;
//   - pay(): whether to answer kPleasePay with a payment channel;
//   - payment_patience(): how long to keep paying before defecting;
//   - retry_pipeline(): §3.2 retry aggressiveness.
//
// Strategies are per-client and may keep state, but all randomness MUST
// come from the RngStream passed into each hook (the client's own seeded
// stream): that is what keeps parallel and sharded sweeps bit-identical to
// serial runs. Phase schedules (on-off periods, surge windows) are derived
// from StrategyView::now instead of wall timers for the same reason.
//
// Built-ins (registered in StrategyFactory's constructor, strategy.cpp):
//   "poisson"         §7.1 baseline: Poisson(lambda) arrivals, fixed
//                     window, always pays. The default; byte-identical to
//                     the pre-strategy WorkloadClient.
//   "onoff"           shrew-style pulsing: Poisson arrivals only during the
//                     on-phase of a duty cycle.
//   "defector"        §7.4 gaming: pays until admitted, then stops paying.
//   "adaptive-window" ramps concurrency with the observed denial rate.
//   "flash-crowd"     a correlated surge of legitimate demand (no malice).
//   "recon"           coupon-collector reconnaissance: probes without paying
//                     before committing bandwidth (probes=0 == "poisson").
//   "switcher"        pays until the admission rate signals detection, then
//                     defects to free-riding.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "client/client_stats.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace speakup::client {

/// What a strategy may observe when deciding: the simulation clock, the
/// client's own accounting, and its current load. Everything here is
/// deterministic per (scenario, seed).
struct StrategyView {
  SimTime now;
  const ClientStats* stats = nullptr;
  std::size_t outstanding = 0;
  std::size_t backlog = 0;
};

/// Construction-time parameters: the base workload knobs every strategy
/// shares (from client::WorkloadParams), plus free-form named knobs from
/// the scenario file's `strategy_params` block. Each strategy validates its
/// own knob names at construction (unknown knobs throw, listing the known
/// ones), so a scenario-file typo fails at load, not silently mid-run.
struct StrategyParams {
  double lambda = 2.0;
  int window = 1;
  int retry_pipeline = 64;
  /// Named per-strategy knobs, in file order.
  std::vector<std::pair<std::string, double>> knobs;

  [[nodiscard]] double knob(std::string_view key, double fallback) const;
  /// Throws std::invalid_argument if any knob name is not in `known`,
  /// listing the known names ("strategy 'onoff': unknown parameter ...").
  void require_knobs(std::string_view strategy,
                     std::initializer_list<std::string_view> known) const;
};

class Strategy {
 public:
  explicit Strategy(StrategyParams params) : params_(std::move(params)) {}
  virtual ~Strategy() = default;

  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;

  /// The registry key this strategy was created under.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Gap until the next request arrival. Called once at start() and again
  /// after every arrival.
  [[nodiscard]] virtual Duration next_arrival(util::RngStream& rng,
                                              const StrategyView& v) = 0;

  /// Maximum outstanding requests at this instant (clamped to >= 1 by the
  /// client). Default: the fixed base window.
  [[nodiscard]] virtual int window(const StrategyView& v) {
    (void)v;
    return params_.window;
  }

  /// Whether to answer kPleasePay by opening a payment channel. Returning
  /// false leaves the request waiting without a bid (it will be denied
  /// unless the thinner admits it anyway). Default: always pay.
  [[nodiscard]] virtual bool pay(util::RngStream& rng, const StrategyView& v) {
    (void)rng;
    (void)v;
    return true;
  }

  /// Called when a payment channel opens. A value means "abandon the
  /// channel after this long if still unserved" — §7.4-style defection
  /// mid-window. Default: pay until the auction resolves.
  [[nodiscard]] virtual std::optional<Duration> payment_patience(util::RngStream& rng,
                                                                 const StrategyView& v) {
    (void)rng;
    (void)v;
    return std::nullopt;
  }

  /// §3.2 retry mode: target number of unacked retries kept in flight.
  [[nodiscard]] virtual int retry_pipeline(const StrategyView& v) {
    (void)v;
    return params_.retry_pipeline;
  }

 protected:
  const StrategyParams params_;
};

/// Name-keyed registry of client strategies, mirroring core::FrontEndFactory:
/// adding a strategy touches no harness code — register it (statically via
/// SPEAKUP_REGISTER_STRATEGY or imperatively from a test) and every scenario
/// file can name it in a `workload.strategy` key.
class StrategyFactory {
 public:
  using Builder = std::function<std::unique_ptr<Strategy>(const StrategyParams&)>;

  /// The process-wide registry, with the built-in strategies pre-registered.
  static StrategyFactory& instance();

  /// Registers a strategy; throws std::invalid_argument on a duplicate name.
  void register_strategy(const std::string& name, Builder builder);

  /// Removes a registration (used by tests to clean up after themselves).
  void unregister_strategy(const std::string& name);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Constructs the named strategy; throws std::invalid_argument for an
  /// unknown name (listing the registry) or an unknown knob. Thread-safe:
  /// Runner workers build clients concurrently.
  [[nodiscard]] std::unique_ptr<Strategy> create(std::string_view name,
                                                 const StrategyParams& params) const;

 private:
  StrategyFactory();

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Builder>> builders_;
};

/// Static self-registration helper: at namespace scope,
///   SPEAKUP_REGISTER_STRATEGY(my_strategy, "mystrategy",
///       [](const StrategyParams& p) {
///         return std::make_unique<MyStrategy>(p);
///       });
/// Beware the archive-member caveat noted in front_end_factory.hpp: a
/// translation unit nothing references gets dropped by the linker.
struct StrategyRegistrar {
  StrategyRegistrar(const std::string& name, StrategyFactory::Builder builder) {
    StrategyFactory::instance().register_strategy(name, std::move(builder));
  }
};

#define SPEAKUP_REGISTER_STRATEGY(tag, name, ...) \
  static const ::speakup::client::StrategyRegistrar speakup_strategy_registrar_##tag{ \
      name, __VA_ARGS__}

}  // namespace speakup::client
