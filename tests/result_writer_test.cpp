// Tests for result persistence: deterministic CSV rows (golden output),
// well-formed JSON, the sharded-merge contract — merging per-shard CSVs
// (and JSON documents) reproduces the unsharded file byte for byte, with
// equal fingerprints — and the resume contract: re-running only the
// missing indices of an interrupted sweep and merging reproduces the
// uninterrupted output byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "exp/result_writer.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "util/json.hpp"

namespace speakup {
namespace {

using exp::ResultWriter;
using exp::RunOutcome;

namespace json = util::json;

/// A fully deterministic synthetic outcome (no simulation involved).
RunOutcome synthetic_outcome(const std::string& label, std::uint64_t seed) {
  RunOutcome o;
  o.label = label;
  o.config = exp::lan_scenario(2, 2, 100.0, exp::DefenseMode::kAuction, seed);
  o.config.duration = Duration::seconds(60.0);
  o.result.defense = "auction";
  o.result.served_total = 120;
  o.result.served_good = 90;
  o.result.served_bad = 30;
  o.result.allocation_good = 0.75;
  o.result.allocation_bad = 0.25;
  o.result.fraction_good_served = 0.5;
  o.result.server_busy_fraction = 0.9;
  o.result.sim_duration = Duration::seconds(60.0);
  o.result.events_executed = 1000 + seed;
  o.result.wall_seconds = 1.5;  // nondeterministic in real runs; fixed here
  o.result.groups.resize(2);
  o.result.groups[0].label = "good";
  o.result.groups[0].count = 2;
  o.result.groups[0].totals.served = 90;
  o.result.groups[0].allocation = 0.75;
  o.result.groups[1].label = "bad";
  o.result.groups[1].count = 2;
  o.result.groups[1].totals.served = 30;
  o.result.groups[1].allocation = 0.25;
  return o;
}

TEST(ResultWriter, CsvHeaderAndRowShape) {
  const RunOutcome o = synthetic_outcome("auction/g5", 3);
  const std::string row = ResultWriter::csv_row(7, o);
  // Same number of columns as the header.
  const auto count_fields = [](const std::string& s) {
    std::size_t n = 1;
    for (const char c : s) n += c == ',';
    return n;
  };
  EXPECT_EQ(count_fields(row), count_fields(ResultWriter::csv_header()));
  EXPECT_EQ(row.rfind("7,auction/g5,auction,poisson,3,100,60,120,90,30,0.75,0.25,0,0,0.5,0.9,1003,0,", 0), 0u)
      << row;
  // The fingerprint column holds the result's actual fingerprint as
  // fixed-width hex.
  char expected_fp[17];
  std::snprintf(expected_fp, sizeof expected_fp, "%016llx",
                static_cast<unsigned long long>(o.result.fingerprint()));
  EXPECT_NE(row.find(expected_fp), std::string::npos) << row;
}

TEST(ResultWriter, FailedOutcomeRowIsGolden) {
  RunOutcome o;
  o.label = "broken";
  o.config = exp::lan_scenario(1, 0, 50.0, exp::DefenseMode::kRetry, 4);
  o.config.duration = Duration::seconds(10.0);
  o.error = "something fell over";
  EXPECT_EQ(ResultWriter::csv_row(2, o),
            "2,broken,retry,poisson,4,50,10,,,,,,,,,,,,,something fell over");
}

TEST(ResultWriter, CsvEscapesDelimitersAndFlattensNewlines) {
  RunOutcome o;
  o.label = "weird,label \"x\"";
  o.config.seed = 1;
  o.error = "line1\nline2";
  const std::string row = ResultWriter::csv_row(0, o);
  EXPECT_NE(row.find("\"weird,label \"\"x\"\"\""), std::string::npos) << row;
  // Rows must never span lines (merge_csv and CSV tooling are line-based),
  // so embedded newlines flatten to spaces.
  EXPECT_EQ(row.find('\n'), std::string::npos) << row;
  EXPECT_NE(row.find("line1 line2"), std::string::npos) << row;
}

// A shard containing a failed scenario must still merge (failure messages
// are the field most likely to carry hostile characters).
TEST(ResultWriter, ShardWithFailedOutcomeStillMerges) {
  ResultWriter ok_shard, bad_shard, all;
  const RunOutcome good = synthetic_outcome("fine", 1);
  RunOutcome bad;
  bad.label = "broken";
  bad.config.seed = 2;
  bad.error = "multi\nline, \"quoted\" error";
  ok_shard.add(0, good);
  bad_shard.add(1, bad);
  all.add(0, good);
  all.add(1, bad);
  std::ostringstream s0, s1, sa;
  ok_shard.write_csv(s0);
  bad_shard.write_csv(s1);
  all.write_csv(sa);
  EXPECT_EQ(ResultWriter::merge_csv({s0.str(), s1.str()}), sa.str());
}

TEST(ResultWriter, WritesRowsSortedByIndex) {
  ResultWriter w;
  w.add(2, synthetic_outcome("c", 3));
  w.add(0, synthetic_outcome("a", 1));
  w.add(1, synthetic_outcome("b", 2));
  std::ostringstream os;
  w.write_csv(os);
  const std::string csv = os.str();
  const std::size_t a = csv.find("\n0,a,");
  const std::size_t b = csv.find("\n1,b,");
  const std::size_t c = csv.find("\n2,c,");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_THROW(w.add(1, synthetic_outcome("dup", 9)), std::invalid_argument);
}

TEST(ResultWriter, JsonOutputIsWellFormedAndComplete) {
  ResultWriter w;
  w.add(0, synthetic_outcome("auction/g5", 3));
  RunOutcome bad;
  bad.label = "exploded";
  bad.config.seed = 2;
  bad.error = "boom";
  w.add(1, bad);
  std::ostringstream os;
  w.write_json(os);
  const json::Value doc = json::parse(os.str());  // must re-parse cleanly
  EXPECT_EQ(doc.find("result_count")->as_int(), 2);
  const auto& results = doc.find("results")->as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].find("label")->as_string(), "auction/g5");
  EXPECT_EQ(results[0].find("metrics")->find("served_total")->as_int(), 120);
  EXPECT_DOUBLE_EQ(results[0].find("metrics")->find("allocation_good")->as_number(),
                   0.75);
  EXPECT_DOUBLE_EQ(results[0].find("wall_seconds")->as_number(), 1.5);
  ASSERT_EQ(results[0].find("groups")->as_array().size(), 2u);
  EXPECT_EQ(results[1].find("error")->as_string(), "boom");
  EXPECT_EQ(results[1].find("metrics"), nullptr);
}

TEST(ResultWriter, MergeRejectsBadInputs) {
  ResultWriter w0;
  w0.add(0, synthetic_outcome("a", 1));
  std::ostringstream s0;
  w0.write_csv(s0);
  EXPECT_THROW((void)ResultWriter::merge_csv({}), std::invalid_argument);
  EXPECT_THROW((void)ResultWriter::merge_csv({"not,a,speakup,header\n"}),
               std::invalid_argument);
  // Overlapping indices across shards are a hard error.
  EXPECT_THROW((void)ResultWriter::merge_csv({s0.str(), s0.str()}),
               std::invalid_argument);
}

TEST(ResultWriter, MergedSyntheticShardsEqualUnsharded) {
  ResultWriter all, even, odd;
  for (std::size_t i = 0; i < 5; ++i) {
    const RunOutcome o = synthetic_outcome("s" + std::to_string(i), i);
    all.add(i, o);
    (i % 2 == 0 ? even : odd).add(i, o);
  }
  std::ostringstream sa, se, so;
  all.write_csv(sa);
  even.write_csv(se);
  odd.write_csv(so);
  EXPECT_EQ(ResultWriter::merge_csv({se.str(), so.str()}), sa.str());
  // Merge order must not matter.
  EXPECT_EQ(ResultWriter::merge_csv({so.str(), se.str()}), sa.str());
}

// The end-to-end contract behind `speakup run --shard`: really running the
// shards of a scenario file in separate Runners and merging the CSVs gives
// the byte-identical unsharded file — same fingerprints, same everything.
TEST(ResultWriter, ShardedRunMergesToUnshardedBytes) {
  const exp::ScenarioFile file = exp::parse_scenario_file(R"({
    "defaults": {"duration_s": 1, "capacity_rps": 30, "lan": {"good": 1, "bad": 1}},
    "scenarios": [{
      "label": "{defense}/s{seed}",
      "grid": {"defense": ["none", "auction"]},
      "seeds": 2
    }]
  })");
  ASSERT_EQ(file.scenarios.size(), 4u);

  const auto run_slice = [](const std::vector<exp::LabeledScenario>& slice) {
    exp::Runner runner;
    exp::ScenarioFile::queue_on(runner, slice);
    runner.run_all(2);
    ResultWriter w;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      EXPECT_TRUE(runner.outcomes()[i].ok()) << runner.outcomes()[i].error;
      w.add(slice[i].index, runner.outcomes()[i]);
    }
    std::ostringstream os;
    w.write_csv(os);
    return os.str();
  };

  const std::string unsharded = run_slice(file.scenarios);
  const std::string shard0 = run_slice(file.shard(0, 2));
  const std::string shard1 = run_slice(file.shard(1, 2));
  EXPECT_EQ(ResultWriter::merge_csv({shard0, shard1}), unsharded);
}

// ---------------------------------------------------------------------------
// JSON merge (speakup merge --json).
// ---------------------------------------------------------------------------

TEST(ResultWriter, MergedJsonShardsEqualUnsharded) {
  ResultWriter all, even, odd;
  for (std::size_t i = 0; i < 5; ++i) {
    const RunOutcome o = synthetic_outcome("s" + std::to_string(i), i);
    all.add(i, o);
    (i % 2 == 0 ? even : odd).add(i, o);
  }
  std::ostringstream sa, se, so;
  all.write_json(sa);
  even.write_json(se);
  odd.write_json(so);
  // Byte-identical either way round: entries round-trip through the parser
  // (deterministic key order and number formatting).
  EXPECT_EQ(ResultWriter::merge_json({se.str(), so.str()}), sa.str());
  EXPECT_EQ(ResultWriter::merge_json({so.str(), se.str()}), sa.str());
}

TEST(ResultWriter, MergeJsonRejectsBadInputs) {
  ResultWriter w0;
  w0.add(0, synthetic_outcome("a", 1));
  std::ostringstream s0;
  w0.write_json(s0);
  EXPECT_THROW((void)ResultWriter::merge_json({}), std::invalid_argument);
  EXPECT_THROW((void)ResultWriter::merge_json({"not json at all"}),
               std::invalid_argument);
  EXPECT_THROW((void)ResultWriter::merge_json({"{\"foo\": 1}"}), std::invalid_argument);
  // Overlapping indices across shards are a hard error.
  EXPECT_THROW((void)ResultWriter::merge_json({s0.str(), s0.str()}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Resume (speakup run --resume).
// ---------------------------------------------------------------------------

TEST(ResultWriter, ResumeInfoDropsFailedRowsAndKeepsLabels) {
  ResultWriter w;
  w.add(0, synthetic_outcome("ok,with \"quotes\"", 0));
  RunOutcome failed;
  failed.label = "exploded";
  failed.config.seed = 1;
  failed.error = "transient, hopefully";
  w.add(1, failed);
  w.add(2, synthetic_outcome("fine", 2));
  std::ostringstream os;
  w.write_csv(os);

  const ResultWriter::ResumeInfo info = ResultWriter::resume_info(os.str());
  // The failed scenario is not "done": it must be re-run on resume.
  ASSERT_EQ(info.completed.size(), 2u);
  EXPECT_EQ(info.completed[0].first, 0u);
  EXPECT_EQ(info.completed[0].second, "ok,with \"quotes\"");  // quoting round-trips
  EXPECT_EQ(info.completed[1].first, 2u);
  // The completed baseline holds exactly the header + the two ok rows, so
  // merging it with a re-run of index 1 reproduces the full file.
  EXPECT_EQ(ResultWriter::csv_indices(info.completed_csv),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(info.completed_csv.find("exploded"), std::string::npos);
}

// A worker killed mid-write leaves the CSV without a trailing newline; the
// dangling fragment must be re-run, not merged — even when the cut lands
// right after a comma, which makes the fragment end in an "empty error
// column" exactly like a completed row.
TEST(ResultWriter, ResumeInfoDropsTruncatedTrailingRow) {
  ResultWriter w;
  w.add(0, synthetic_outcome("a", 0));
  w.add(1, synthetic_outcome("b", 1));
  std::ostringstream os;
  w.write_csv(os);
  const std::string full = os.str();

  // Cut mid-way through the last row, right after a comma.
  const std::size_t cut = full.find_last_of(',');
  ASSERT_NE(cut, std::string::npos);
  const std::string truncated = full.substr(0, cut + 1);

  const ResultWriter::ResumeInfo info = ResultWriter::resume_info(truncated);
  ASSERT_EQ(info.completed.size(), 1u);
  EXPECT_EQ(info.completed[0].first, 0u);
  // Byte-level: the partial row of index 1 must not leak into the baseline.
  EXPECT_EQ(ResultWriter::csv_indices(info.completed_csv),
            std::vector<std::size_t>{0});
}

// A newline-terminated row with too few columns is corrupt, not completed.
TEST(ResultWriter, ResumeInfoSkipsShortRows) {
  ResultWriter w;
  w.add(0, synthetic_outcome("a", 0));
  std::ostringstream os;
  w.write_csv(os);
  const std::string csv = os.str() + "1,short,auction,7,50,3,\n";
  const ResultWriter::ResumeInfo info = ResultWriter::resume_info(csv);
  ASSERT_EQ(info.completed.size(), 1u);
  EXPECT_EQ(info.completed[0].first, 0u);
}

// A duplicate index means the file was never a write_csv output — refuse to
// resume from it rather than guess which copy to keep.
TEST(ResultWriter, ResumeInfoThrowsOnDuplicateIndex) {
  ResultWriter w;
  w.add(0, synthetic_outcome("a", 0));
  std::ostringstream os;
  w.write_csv(os);
  const std::string full = os.str();
  const std::size_t row_start = full.find('\n') + 1;
  const std::string doubled = full + full.substr(row_start);
  EXPECT_THROW((void)ResultWriter::resume_info(doubled), std::invalid_argument);
}

// The names overload says which input(s) carry a colliding index, and
// whether the duplication is across inputs or inside a single file.
TEST(ResultWriter, MergeDuplicateDiagnosticsNameTheInputs) {
  ResultWriter w;
  w.add(0, synthetic_outcome("a", 0));
  std::ostringstream os;
  w.write_csv(os);
  const std::string shard = os.str();

  try {
    (void)ResultWriter::merge_csv({shard, shard}, {"left.csv", "right.csv"});
    FAIL() << "duplicate index across inputs not rejected";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("left.csv"), std::string::npos) << msg;
    EXPECT_NE(msg.find("right.csv"), std::string::npos) << msg;
  }

  const std::size_t row_start = shard.find('\n') + 1;
  const std::string doubled = shard + shard.substr(row_start);
  try {
    (void)ResultWriter::merge_csv({doubled}, {"self.csv"});
    FAIL() << "duplicate index inside one input not rejected";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("inside 'self.csv'"), std::string::npos) << msg;
  }
}

TEST(ResultWriter, CsvIndicesRoundTrip) {
  ResultWriter w;
  w.add(4, synthetic_outcome("e", 4));
  w.add(0, synthetic_outcome("a", 0));
  w.add(2, synthetic_outcome("c", 2));
  std::ostringstream os;
  w.write_csv(os);
  EXPECT_EQ(ResultWriter::csv_indices(os.str()),
            (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(ResultWriter::csv_indices(ResultWriter::csv_header() + "\n"),
            std::vector<std::size_t>{});
  EXPECT_THROW((void)ResultWriter::csv_indices("garbage\n"), std::invalid_argument);
}

// The contract behind `speakup run --resume`: an interrupted sweep's CSV
// plus a run of only the missing indices merges to the byte-identical
// output of an uninterrupted fresh run.
TEST(ResultWriter, ResumedRunIsByteIdenticalToFreshRun) {
  const exp::ScenarioFile file = exp::parse_scenario_file(R"({
    "defaults": {"duration_s": 1, "capacity_rps": 30, "lan": {"good": 1, "bad": 1}},
    "scenarios": [{
      "label": "{defense}/s{seed}",
      "grid": {"defense": ["none", "retry"]},
      "seeds": 2
    }]
  })");
  ASSERT_EQ(file.scenarios.size(), 4u);

  const auto run_slice = [](const std::vector<exp::LabeledScenario>& slice) {
    exp::Runner runner;
    exp::ScenarioFile::queue_on(runner, slice);
    runner.run_all(2);
    ResultWriter w;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      EXPECT_TRUE(runner.outcomes()[i].ok()) << runner.outcomes()[i].error;
      w.add(slice[i].index, runner.outcomes()[i]);
    }
    std::ostringstream os;
    w.write_csv(os);
    return os.str();
  };

  // The uninterrupted run.
  const std::string fresh = run_slice(file.scenarios);

  // An interrupted run got through indices 0 and 3 only.
  std::vector<exp::LabeledScenario> done{file.scenarios[0], file.scenarios[3]};
  const std::string partial = run_slice(done);

  // Resume: identify the missing indices from the partial CSV, run only
  // those, merge — exactly what `speakup run --resume` does.
  const std::vector<std::size_t> have = ResultWriter::csv_indices(partial);
  EXPECT_EQ(have, (std::vector<std::size_t>{0, 3}));
  std::vector<exp::LabeledScenario> missing;
  for (const exp::LabeledScenario& s : file.scenarios) {
    if (std::find(have.begin(), have.end(), s.index) == have.end()) {
      missing.push_back(s);
    }
  }
  ASSERT_EQ(missing.size(), 2u);
  const std::string resumed = ResultWriter::merge_csv({partial, run_slice(missing)});
  EXPECT_EQ(resumed, fresh);
}

}  // namespace
}  // namespace speakup
