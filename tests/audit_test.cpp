// SPEAKUP_AUDIT structural self-checks (src/util/audit.hpp).
//
// Two halves:
//   - clean runs: real traffic (TCP handshakes, RTO timers, the pooled
//     client engine) with explicit audit() calls sprinkled in — the
//     invariants must hold on live structures, not just empty ones;
//   - death tests: each structure's corrupt_*_for_test() hook plants the
//     signature of a real bug class (missed sift swap, lost table erase,
//     stale bitmap bit, clobbered heap key) and audit() must catch it.
//     Without these, a vacuously-true audit would pass forever.
//
// The whole file GTEST_SKIPs unless built with -DSPEAKUP_AUDIT=ON in a
// Debug build (SPEAKUP_AUDIT_ENABLED) — CI's audit job is the build that
// runs it for real.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "client/client_pool.hpp"
#include "client/workload_client.hpp"
#include "core/auction_thinner.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "transport/ooo_tracker.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace speakup {
namespace {

#if !SPEAKUP_AUDIT_ENABLED

TEST(Audit, RequiresAuditBuild) {
  GTEST_SKIP() << "built without SPEAKUP_AUDIT (or NDEBUG): audit hooks are "
                  "compiled out; configure with -DSPEAKUP_AUDIT=ON and "
                  "-DCMAKE_BUILD_TYPE=Debug to run these";
}

#else

constexpr char kDeathMsg[] = "SPEAKUP_AUDIT invariant violated";

struct Rig {
  Rig() : net(loop) {
    sw = &net.add_switch("sw");
    thinner_host = &net.add_node<transport::Host>("thinner");
    net.connect(*thinner_host, *sw,
                net::LinkSpec{Bandwidth::gbps(1.0), Duration::micros(500), 4'000'000});
  }
  transport::Host& add_host(const std::string& name) {
    auto& h = net.add_node<transport::Host>(name);
    net.connect(h, *sw, net::LinkSpec{Bandwidth::mbps(2.0), Duration::micros(500), 48'000});
    return h;
  }
  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }
  sim::EventLoop loop;
  net::Network net;
  net::Switch* sw = nullptr;
  transport::Host* thinner_host = nullptr;
};

// ---------------------------------------------------------------------------
// Clean runs: audits hold on live, busy structures.
// ---------------------------------------------------------------------------

TEST(Audit, EventLoopCleanUnderChurn) {
  sim::EventLoop loop;
  // Mix of heap-resident (imminent / far-future) and wheel-resident
  // deadlines, with cancellations to exercise tombstones + free list.
  std::vector<sim::EventId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      const auto d = Duration::micros(1 + 7919 * i % 3'000'000);  // ns..seconds
      ids.push_back(loop.schedule(d, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) loop.cancel(ids[i]);
    ids.clear();
    loop.audit();
    loop.run_until(loop.now() + Duration::millis(10));
    loop.audit();
  }
  loop.run_until(loop.now() + Duration::seconds(10));
  loop.audit();
}

// Regression: reschedule() of a heap-resident event tombstones the old
// entry before re-filing the record, and used to run maybe_compact() — and
// with it the compaction-time audit — in that window, when the armed record
// is resident in neither store. Enough heap-resident reschedules to cross
// the compaction threshold (heap >= 64, tombstones > half) made the audit
// abort a perfectly healthy loop. Caught live by dispatch_test's 720 s
// auction scenario in the CI audit job; pinned here at microscope size.
TEST(Audit, RescheduleCompactionAuditsConsistentState) {
  sim::EventLoop loop;
  // Sub-tick delays (< ~1 ms wheel tick span) keep every entry in the
  // 4-ary heap, so each reschedule leaves a heap tombstone behind.
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(loop.schedule(Duration::micros(500 + i), [] {}));
  }
  for (int round = 0; round < 5; ++round) {
    for (auto& id : ids) {
      id = loop.reschedule(id, Duration::micros(700 + round));
    }
    loop.audit();
  }
  loop.run();
  loop.audit();
}

TEST(Audit, OooTrackerCleanUnderMerges) {
  transport::OooTracker t;
  // insert()/pop_prefix() self-audit on every call; this exercises merge,
  // swallow, spill, and prefix-drain paths.
  std::uint64_t x = 12345;
  std::int64_t floor = 0;
  for (int i = 0; i < 2'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto begin = floor + 1 + static_cast<std::int64_t>((x >> 33) % 5'000);
    const auto len = 1 + static_cast<std::int64_t>((x >> 13) % 400);
    t.insert(begin, begin + len);
    if (i % 7 == 0) floor = t.pop_prefix(floor + static_cast<std::int64_t>(x % 1'000));
  }
  t.audit();
}

TEST(Audit, TrafficRigCleanAudits) {
  Rig rig;
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 20.0;
  core::AuctionThinner thinner(*rig.thinner_host, tc, util::RngStream(9, "srv"));
  client::ClientPool pool(rig.loop, rig.thinner_host->id(),
                          client::good_client_params(), 0);
  std::vector<transport::Host*> hosts;
  for (int i = 0; i < 8; ++i) {
    hosts.push_back(&rig.add_host("c" + std::to_string(i)));
    pool.add_member(*hosts.back(), util::RngStream(9, "client." + std::to_string(i)));
  }
  pool.start_all();
  for (int step = 0; step < 10; ++step) {
    rig.run_for(3.0);
    rig.loop.audit();
    pool.audit();
    rig.thinner_host->audit();
    for (transport::Host* h : hosts) h->audit();
  }
}

// ---------------------------------------------------------------------------
// Death tests: planted corruption must be detected.
// ---------------------------------------------------------------------------

TEST(AuditDeathTest, EventLoopDetectsHeapCorruption) {
  EXPECT_DEATH(
      {
        sim::EventLoop loop;
        // Sub-tick deadlines stay in the heap; two entries give the
        // corrupted tail a parent to disagree with.
        (void)loop.schedule(Duration::zero(), [] {});
        (void)loop.schedule(Duration::zero(), [] {});
        loop.corrupt_heap_for_test();
        loop.audit();
      },
      kDeathMsg);
}

TEST(AuditDeathTest, EventLoopDetectsWheelBitmapCorruption) {
  EXPECT_DEATH(
      {
        sim::EventLoop loop;
        loop.corrupt_wheel_for_test();  // occupancy bit with no list behind it
        loop.audit();
      },
      kDeathMsg);
}

TEST(AuditDeathTest, HostDetectsLostTableEntry) {
  EXPECT_DEATH(
      {
        Rig rig;
        transport::Host& a = rig.add_host("a");
        transport::Host& b = rig.add_host("b");
        (void)a.connect(b.id(), 80);  // live slot + demux table entry on a
        a.corrupt_table_for_test();   // the signature of a lost erase
        a.audit();
      },
      kDeathMsg);
}

TEST(AuditDeathTest, ClientPoolDetectsHeapPosDesync) {
  EXPECT_DEATH(
      {
        Rig rig;
        client::ClientPool pool(rig.loop, rig.thinner_host->id(),
                                client::good_client_params(), 0);
        pool.add_member(rig.add_host("c0"), util::RngStream(1, "c0"));
        pool.add_member(rig.add_host("c1"), util::RngStream(1, "c1"));
        pool.start_all();                // two members in the cohort heap
        pool.corrupt_heap_for_test();    // missed swap during sift
        pool.audit();
      },
      kDeathMsg);
}

#endif  // SPEAKUP_AUDIT_ENABLED

}  // namespace
}  // namespace speakup
