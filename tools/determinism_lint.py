#!/usr/bin/env python3
"""Determinism lint for the speakup simulation sources.

The repo's core guarantee is that every ExperimentResult fingerprint is
bit-identical across --jobs counts, shard splits, dispatch workers, and
engines. This lint statically bans the patterns that historically break
that promise:

  wall-clock   std::random_device / system_clock / steady_clock /
               std::rand / srand / time(...) anywhere under src/ --
               simulation code must draw time from sim::EventLoop and
               entropy from util::RngStream only.

  unordered-iteration
               range-for over a member that is declared anywhere in src/
               as std::unordered_map / std::unordered_set. Iteration
               order is libstdc++-specific and (for pointer keys)
               ASLR-dependent; results that feed fingerprints, CSVs, or
               payoff matrices must never depend on it.

  hot-path-alloc
               raw `new` (placement ::new is fine) and growing container
               calls (push_back / emplace_back / resize / reserve /
               insert) in files annotated `// speakup-lint: hot-path`.
               These files promise an allocation-free steady state;
               every growth site must be amortized (chunk boundary or
               doubling) and explicitly allowlisted.

Known-good sites live in tools/lint_allowlist.txt as
`path|rule|content-substring` lines; the substring is matched against the
offending line's text, so entries survive unrelated line renumbering.
Stale entries (matching nothing) are reported as warnings.

Exit status: 0 clean, 1 violations found, 2 usage/config error.
--self-test seeds one violation per rule into a synthetic file and exits
0 only if the scanner flags all of them (the CI negative self-test).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HOT_PATH_MARKER = "speakup-lint: hot-path"

WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock"),
    (re.compile(r"std::rand\b|\brand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)"), "time()"),
]

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)\s*[;{=]"
)

# Container-growth tells. `insert`/`emplace` are deliberately absent: those
# names collide with domain APIs in the hot-path files (TimerWheel::insert,
# OooTracker::insert) and the slab engines grow via the vector calls below.
RAW_NEW_RE = re.compile(r"(?<!:)\bnew\b")
GROWTH_RE = re.compile(r"\.\s*(?:push_back|emplace_back|resize|reserve)\s*\(")

STRING_OR_CHAR_RE = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')


def strip_noise(line: str) -> str:
    """Drops string/char literals and // comments so prose never trips rules."""
    line = STRING_OR_CHAR_RE.sub('""', line)
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def collect_unordered_names(files: list[tuple[str, str]]) -> set[str]:
    names: set[str] = set()
    for _, text in files:
        for m in UNORDERED_DECL_RE.finditer(text):
            names.add(m.group(1))
    return names


def scan(files: list[tuple[str, str]]) -> list[tuple[str, int, str, str]]:
    """Returns (path, line_no, rule, line_text) violations, pre-allowlist."""
    unordered = collect_unordered_names(files)
    range_for_res = [
        re.compile(r"for\s*\([^;)]*:\s*(?:this->)?" + re.escape(n) + r"\s*\)")
        for n in sorted(unordered)
    ]
    out: list[tuple[str, int, str, str]] = []
    for path, text in files:
        hot = HOT_PATH_MARKER in text
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = strip_noise(raw)
            if not line.strip():
                continue
            for pat, _ in WALL_CLOCK_PATTERNS:
                if pat.search(line):
                    out.append((path, line_no, "wall-clock", raw.strip()))
                    break
            if any(r.search(line) for r in range_for_res):
                out.append((path, line_no, "unordered-iteration", raw.strip()))
            if hot and (RAW_NEW_RE.search(line) or GROWTH_RE.search(line)):
                out.append((path, line_no, "hot-path-alloc", raw.strip()))
    return out


def load_allowlist(path: Path) -> list[tuple[str, str, str]]:
    entries: list[tuple[str, str, str]] = []
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|", 2)
        if len(parts) != 3:
            print(f"lint_allowlist.txt: malformed entry: {raw}", file=sys.stderr)
            sys.exit(2)
        entries.append((parts[0].strip(), parts[1].strip(), parts[2].strip()))
    return entries


def run_lint(root: Path) -> int:
    src = root / "src"
    files = [
        (str(p.relative_to(root)), p.read_text())
        for p in sorted(src.rglob("*"))
        if p.suffix in (".cpp", ".hpp", ".h", ".cc")
    ]
    violations = scan(files)
    allowlist = load_allowlist(root / "tools" / "lint_allowlist.txt")
    used = [False] * len(allowlist)

    reported = []
    for path, line_no, rule, text in violations:
        allowed = False
        for i, (a_path, a_rule, a_sub) in enumerate(allowlist):
            if a_path == path and a_rule == rule and a_sub in text:
                used[i] = True
                allowed = True
        if not allowed:
            reported.append((path, line_no, rule, text))

    for (a_path, a_rule, a_sub), u in zip(allowlist, used):
        if not u:
            print(f"warning: stale allowlist entry: {a_path}|{a_rule}|{a_sub}")

    for path, line_no, rule, text in reported:
        print(f"{path}:{line_no}: [{rule}] {text}")
    if reported:
        print(
            f"determinism lint: {len(reported)} violation(s). Either make the "
            "code deterministic or add a justified entry to "
            "tools/lint_allowlist.txt (see docs/correctness.md)."
        )
        return 1
    print(f"determinism lint: clean ({len(files)} files scanned).")
    return 0


SELF_TEST_FILE = (
    "src/fake/seeded.hpp",
    """
#include <unordered_map>
// speakup-lint: hot-path
struct Seeded {
  std::unordered_map<int, int> table_;
  void wall() { auto t = std::chrono::system_clock::now(); (void)t; }
  void iterate() { for (auto& [k, v] : table_) { (void)k; (void)v; } }
  void alloc() { auto* p = new int(7); delete p; }
};
""",
)


def run_self_test() -> int:
    violations = scan([SELF_TEST_FILE])
    rules = {rule for _, _, rule, _ in violations}
    expected = {"wall-clock", "unordered-iteration", "hot-path-alloc"}
    missing = expected - rules
    if missing:
        print(f"self-test FAILED: rules not detected: {sorted(missing)}")
        return 1
    print("self-test passed: all banned patterns detected on seeded input.")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return run_self_test()
    return run_lint(args.root.resolve())


if __name__ == "__main__":
    sys.exit(main())
