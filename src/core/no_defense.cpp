#include "core/no_defense.hpp"

#include "obs/observer.hpp"

namespace {
// obs::Cls mirrors http::ClientClass value for value.
speakup::obs::Cls obs_cls(speakup::http::ClientClass c) {
  return static_cast<speakup::obs::Cls>(c);
}
}  // namespace

namespace speakup::core {

using http::ClientClass;
using http::Message;
using http::MessageStream;
using http::MessageType;

NoDefenseFrontEnd::NoDefenseFrontEnd(transport::Host& host, const Config& cfg,
                                     util::RngStream server_rng)
    : host_(&host),
      cfg_(cfg),
      server_(host.loop(), cfg.capacity_rps, std::move(server_rng)),
      pool_(host.loop()) {
  server_.set_on_complete([this](const server::ServiceRequest& r) { on_server_complete(r); });
  host.listen(cfg_.request_port, [this](transport::TcpConnection& c) { on_accept(c); });
}

void NoDefenseFrontEnd::on_accept(transport::TcpConnection& conn) {
  MessageStream& s = pool_.adopt(conn);
  MessageStream::Callbacks cbs;
  cbs.on_message = [this, &s](const Message& m) { on_message(s, m); };
  cbs.on_reset = [this, &s] { on_reset(s); };
  s.set_callbacks(std::move(cbs));
}

void NoDefenseFrontEnd::on_message(MessageStream& s, const Message& m) {
  if (m.type != MessageType::kRequest) return;
  ++stats_.requests_received;
  if (server_.busy()) {
    ++stats_.busy_rejections;
    if (auto* o = host_->loop().observer()) o->on_rejection();
    s.send(Message{.type = MessageType::kBusy, .request_id = m.request_id});
    return;
  }
  if (auto* o = host_->loop().observer()) {
    o->on_admission(obs_cls(m.cls), 0.0, /*direct=*/true);
  }
  if (m.cls == ClientClass::kGood) {
    ++stats_.served_good;
  } else if (m.cls == ClientClass::kBad) {
    ++stats_.served_bad;
  } else {
    ++stats_.served_other;
  }
  serving_[m.request_id] = Pending{m.request_id, m.cls, &s};
  by_stream_[&s] = m.request_id;
  server_.submit(server::ServiceRequest{m.request_id, m.cls, m.difficulty});
}

void NoDefenseFrontEnd::on_server_complete(const server::ServiceRequest& done) {
  const auto it = serving_.find(done.request_id);
  if (it != serving_.end()) {
    if (it->second.session != nullptr) {
      it->second.session->send(Message{.type = MessageType::kResponse,
                                       .request_id = done.request_id,
                                       .body = cfg_.response_body});
      by_stream_.erase(it->second.session);
    }
    serving_.erase(it);
  }
}

void NoDefenseFrontEnd::on_reset(MessageStream& s) {
  const auto it = by_stream_.find(&s);
  if (it != by_stream_.end()) {
    const auto sit = serving_.find(it->second);
    if (sit != serving_.end()) sit->second.session = nullptr;
    by_stream_.erase(it);
  }
  pool_.retire(&s);
}

}  // namespace speakup::core
