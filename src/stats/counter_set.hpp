// Named monotonic counters, used by the thinner and clients to expose
// behavioural counts (auctions held, channels expired, denials, ...) without
// each component growing bespoke accessors.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace speakup::stats {

class CounterSet {
 public:
  void inc(const std::string& name, std::int64_t by = 1) { counters_[name] += by; }

  [[nodiscard]] std::int64_t get(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const { return counters_; }

 private:
  std::map<std::string, std::int64_t> counters_;
};

}  // namespace speakup::stats
