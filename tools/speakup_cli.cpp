// `speakup` — the data-driven sweep driver.
//
//   speakup run scenarios/fig2.json --out results.csv --jobs 4
//   speakup run scenarios/fig2.json --shard 0/2 --out shard0.csv
//   speakup run scenarios/fig2.json --out results.csv --resume
//   speakup run scenarios/fig2.json --list
//   speakup tournament scenarios/tournament_small.json --out tourney/
//   speakup dispatch scenarios/fig2.json --workers 4 --out results.csv
//   speakup merge --out merged.csv shard0.csv shard1.csv
//   speakup merge --json --out merged.json shard0.json shard1.json
//   speakup validate scenarios/fig2.json
//   speakup defenses
//   speakup strategies
//
// `run` executes a scenario file on a Runner thread pool; `--shard i/M`
// takes the round-robin slice owned by process i of M, and `merge` stitches
// the per-shard CSVs (or, with --json, JSON documents) back into the
// unsharded output (results are deterministic per scenario + seed, so
// splitting work across processes never changes numbers). `--resume` skips
// scenario indices already present in the `--out` CSV and merges the rest
// in, byte-identical to an uninterrupted run. `dispatch` is the
// fault-tolerant multi-process driver built on the same shard slices: it
// spawns `speakup worker` subprocesses (an internal mode, not for direct
// use) and supervises them — see exp/dispatch.hpp and docs/cli.md. Full
// usage notes live in docs/cli.md; the file format in
// docs/scenario_format.md.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "client/strategy.hpp"
#include "core/auction_game.hpp"
#include "core/front_end_factory.hpp"
#include "exp/dispatch.hpp"
#include "exp/result_writer.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "exp/tournament.hpp"
#include "obs/observer.hpp"
#include "util/json.hpp"

namespace {

using namespace speakup;

int usage(std::FILE* to) {
  std::fprintf(to,
               "speakup — data-driven scenario sweeps for the speak-up simulator\n"
               "\n"
               "usage:\n"
               "  speakup run <scenarios.json> [options]   execute a scenario file\n"
               "    --out FILE       write results as CSV (deterministic, mergeable)\n"
               "    --json FILE      write results as JSON (adds groups + wall time)\n"
               "    --jobs N         thread-pool size (default: hardware concurrency)\n"
               "    --shard i/M      run only scenarios with index %% M == i\n"
               "    --resume         skip indices already in the --out CSV, merge the rest\n"
               "    --list           print the expanded index/label/seed table, run nothing\n"
               "    --quiet          suppress the summary table on stdout\n"
               "    --metrics FILE   write per-run metrics summaries as JSON; sampled\n"
               "                     timeseries go to FILE's '.timeseries.csv' sibling\n"
               "    --trace FILE     write a Chrome trace-event JSON flight recording\n"
               "                     (load in Perfetto; pid = scenario index)\n"
               "    --sample-interval S  metrics sampling period in sim seconds (default 1)\n"
               "  speakup dispatch <scenarios.json> --out FILE [options]\n"
               "                                           fault-tolerant multi-worker sweep\n"
               "    --workers N      worker subprocesses to keep alive (default 4)\n"
               "    --slices M       shard slices to cut the sweep into (default 4*N)\n"
               "    --retries K      extra attempts per slice after a worker loss (default 2)\n"
               "    --heartbeat-ms T declare a worker dead after T ms of silence (default 2000)\n"
               "    --status MODE    auto|tty|json progress view (json: one line per event)\n"
               "    --resume         pick up a killed dispatcher's work directory\n"
               "  speakup tournament <spec.json> --out DIR [options]\n"
               "                                           defense x strategy payoff matrix\n"
               "    --jobs N         thread-pool size (default: hardware concurrency)\n"
               "    --expand-only    write DIR/scenarios.json and stop (for shard/dispatch)\n"
               "    --score FILE     score an already-swept results CSV instead of running\n"
               "    --quiet          suppress the pareto report on stdout\n"
               "  speakup merge --out FILE <shard.csv>...  merge sharded CSV outputs\n"
               "    --json           inputs/output are JSON result documents\n"
               "  speakup validate <scenarios.json>        parse + list expanded scenarios\n"
               "  speakup defenses                         list registered defense names\n"
               "  speakup strategies                       list registered workload strategies\n"
               "\n"
               "docs: docs/cli.md, docs/scenario_format.md\n");
  return to == stdout ? 0 : 2;
}

bool parse_shard(const std::string& arg, int& index, int& count) {
  const std::size_t slash = arg.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= arg.size()) return false;
  const std::string left = arg.substr(0, slash);
  const std::string right = arg.substr(slash + 1);
  try {
    std::size_t li = 0, ri = 0;
    index = std::stoi(left, &li);
    count = std::stoi(right, &ri);
    // Reject trailing garbage ("1.9/2" must not run as shard 1/2).
    if (li != left.size() || ri != right.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  return count >= 1 && index >= 0 && index < count;
}

int parse_int_arg(const char* name, const std::string& text) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (text.empty() || pos != text.size()) {
    throw std::runtime_error(std::string(name) + " wants an integer (got '" + text +
                             "')");
  }
  return v;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << content;
}

int cmd_run(const std::vector<std::string>& args) {
  std::string scenario_path, out_csv, out_json;
  std::string metrics_path, trace_path;
  double sample_interval_s = 1.0;
  int jobs = 0;
  int shard_index = 0, shard_count = 1;
  bool quiet = false;
  bool resume = false;
  bool list_only = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::runtime_error("option " + a + " needs a value");
      }
      return args[++i];
    };
    if (a == "--out") {
      out_csv = value();
    } else if (a == "--json") {
      out_json = value();
    } else if (a == "--jobs") {
      jobs = parse_int_arg("--jobs", value());
      if (jobs < 1) throw std::runtime_error("--jobs must be >= 1");
    } else if (a == "--shard") {
      if (!parse_shard(value(), shard_index, shard_count)) {
        throw std::runtime_error("--shard wants i/M with 0 <= i < M (got '" +
                                 args[i] + "')");
      }
    } else if (a == "--resume") {
      resume = true;
    } else if (a == "--list") {
      list_only = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--metrics") {
      metrics_path = value();
    } else if (a == "--trace") {
      trace_path = value();
    } else if (a == "--sample-interval") {
      const std::string& text = value();
      std::size_t pos = 0;
      try {
        sample_interval_s = std::stod(text, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (text.empty() || pos != text.size() || sample_interval_s <= 0.0) {
        throw std::runtime_error("--sample-interval wants a positive number (got '" +
                                 text + "')");
      }
    } else if (!a.empty() && a[0] == '-') {
      throw std::runtime_error("unknown option '" + a + "' for run");
    } else if (scenario_path.empty()) {
      scenario_path = a;
    } else {
      throw std::runtime_error("run takes exactly one scenario file");
    }
  }
  if (scenario_path.empty()) throw std::runtime_error("run needs a scenario file");
  if (resume && out_csv.empty()) {
    throw std::runtime_error("--resume needs --out FILE (the CSV to resume into)");
  }
  if (resume && !out_json.empty()) {
    throw std::runtime_error(
        "--resume cannot fill in a --json file (it would hold only the resumed "
        "scenarios); resume into the CSV, or re-run without --resume for JSON");
  }

  const exp::ScenarioFile file = exp::load_scenario_file(scenario_path);
  std::vector<exp::LabeledScenario> slice = file.shard(shard_index, shard_count);

  // --list: show exactly what would run (the dispatcher cuts slices with
  // the same expansion + shard math, so this is the slice debugger too).
  if (list_only) {
    std::printf("index\tlabel\tdefense\tstrategies\tseed\tcapacity_rps\tduration_s\n");
    for (const exp::LabeledScenario& s : slice) {
      std::printf("%zu\t%s\t%s\t%s\t%llu\t%s\t%s\n", s.index, s.label.c_str(),
                  s.config.defense_name().c_str(), s.config.strategy_names().c_str(),
                  static_cast<unsigned long long>(s.config.seed),
                  util::json::number_to_string(s.config.capacity_rps).c_str(),
                  util::json::number_to_string(s.config.duration.sec()).c_str());
    }
    return 0;
  }

  // --resume: drop the indices an earlier (interrupted) run already
  // completed; failed rows are dropped from the baseline so their scenarios
  // re-run. The merged output below is byte-identical to an uninterrupted
  // run because per-scenario rows are deterministic.
  std::string resumed_csv;
  std::size_t skipped = 0;
  if (resume) {
    std::ifstream existing(out_csv, std::ios::binary);
    std::string previous;
    if (existing) {
      std::ostringstream buf;
      buf << existing.rdbuf();
      previous = buf.str();
    }
    if (!previous.empty()) {  // absent or zero-byte --out: nothing to resume
      const exp::ResultWriter::ResumeInfo info =
          exp::ResultWriter::resume_info(previous);
      // The existing CSV must come from this scenario file: every completed
      // (index, label) pair has to match the file's expansion.
      for (const auto& [index, label] : info.completed) {
        if (index >= file.scenarios.size() || file.scenarios[index].label != label) {
          throw std::runtime_error(
              "--resume: '" + out_csv + "' row " + std::to_string(index) + " ('" +
              label + "') does not match " + scenario_path +
              " — it was written from a different scenario file");
        }
      }
      if (!info.completed.empty()) {
        resumed_csv = info.completed_csv;
        const std::size_t before = slice.size();
        std::erase_if(slice, [&](const exp::LabeledScenario& s) {
          return std::any_of(info.completed.begin(), info.completed.end(),
                             [&](const auto& done) { return done.first == s.index; });
        });
        skipped = before - slice.size();
      }
    }
  }

  if (!quiet) {
    std::printf("%s: %zu scenario(s)", scenario_path.c_str(), file.scenarios.size());
    if (shard_count > 1) {
      std::printf(", shard %d/%d runs %zu", shard_index, shard_count, slice.size());
    }
    if (skipped > 0) {
      std::printf(", resume skips %zu done, %zu to run", skipped, slice.size());
    }
    if (!file.description.empty()) std::printf(" — %s", file.description.c_str());
    std::printf("\n");
  }

  exp::Runner runner;
  exp::ScenarioFile::queue_on(runner, slice);
  if (!metrics_path.empty() || !trace_path.empty()) {
    obs::Observer::Options opts;
    opts.metrics = !metrics_path.empty();
    opts.trace = !trace_path.empty();
    opts.sample_interval = Duration::seconds(sample_interval_s);
    runner.set_observability(opts);
    std::vector<std::size_t> indices;
    indices.reserve(slice.size());
    for (const exp::LabeledScenario& s : slice) indices.push_back(s.index);
    runner.set_telemetry_indices(std::move(indices));
  }
  runner.run_all(jobs);

  exp::ResultWriter writer;
  int failures = 0;
  for (std::size_t i = 0; i < runner.outcomes().size(); ++i) {
    const exp::RunOutcome& o = runner.outcomes()[i];
    writer.add(slice[i].index, o);
    if (!o.ok()) {
      ++failures;
      std::fprintf(stderr, "scenario '%s' failed: %s\n", o.label.c_str(),
                   o.error.c_str());
    }
  }

  if (!out_csv.empty()) {
    std::ostringstream os;
    writer.write_csv(os);
    std::string csv = os.str();
    if (!resumed_csv.empty()) {
      csv = exp::ResultWriter::merge_csv({resumed_csv, csv});
    }
    write_file(out_csv, csv);
    if (!quiet) std::printf("wrote %s\n", out_csv.c_str());
  }
  if (!out_json.empty()) {
    std::ostringstream os;
    writer.write_json(os);
    write_file(out_json, os.str());
    if (!quiet) std::printf("wrote %s\n", out_json.c_str());
  }
  // Telemetry assembly happens here, in job order, so the files are
  // byte-identical for any --jobs value.
  if (!metrics_path.empty()) {
    util::json::Value doc{util::json::Value::Object{}};
    doc.set("version", 1);
    doc.set("sample_interval_s", sample_interval_s);
    util::json::Value runs{util::json::Value::Array{}};
    std::string timeseries = "index,label,metric,time_s,value\n";
    for (std::size_t i = 0; i < runner.outcomes().size(); ++i) {
      const exp::RunOutcome& o = runner.outcomes()[i];
      if (!o.ok() || o.telemetry.metrics_json.empty()) continue;
      util::json::Value r{util::json::Value::Object{}};
      r.set("index", static_cast<std::int64_t>(slice[i].index));
      r.set("label", o.label);
      r.set("metrics", util::json::parse(o.telemetry.metrics_json));
      runs.push_back(std::move(r));
      timeseries += o.telemetry.timeseries_csv;
    }
    doc.set("runs", std::move(runs));
    write_file(metrics_path, doc.dump(2) + "\n");
    // The sampled timeseries ride beside the summary: "<FILE minus .json>
    // .timeseries.csv".
    std::string ts_path = metrics_path;
    if (ts_path.size() > 5 && ts_path.ends_with(".json")) {
      ts_path.resize(ts_path.size() - 5);
    }
    ts_path += ".timeseries.csv";
    write_file(ts_path, timeseries);
    if (!quiet) std::printf("wrote %s and %s\n", metrics_path.c_str(), ts_path.c_str());
  }
  if (!trace_path.empty()) {
    std::string trace = "{\"traceEvents\":[\n";
    bool first = true;
    for (const exp::RunOutcome& o : runner.outcomes()) {
      if (o.telemetry.trace_json.empty()) continue;
      if (!first) trace += ",\n";
      first = false;
      trace += o.telemetry.trace_json;
    }
    trace += "\n],\"displayTimeUnit\":\"ms\"}\n";
    write_file(trace_path, trace);
    if (!quiet) std::printf("wrote %s\n", trace_path.c_str());
  }
  if (!quiet) runner.summary_table().print(std::cout);
  return failures == 0 ? 0 : 1;
}

// `speakup tournament spec.json --out DIR`: expand the defense x strategy
// cross-product into DIR/scenarios.json, sweep it (unless --expand-only or
// --score), and score the results into DIR/payoff.{csv,json} + pareto.txt.
// The expansion is an ordinary scenario file, so large tournaments can run
// it through `run --shard`/`dispatch`, merge, and feed the merged CSV back
// via --score — byte-identical to the single-process path.
int cmd_tournament(const std::vector<std::string>& args) {
  std::string spec_path, out_dir, score_csv;
  int jobs = 0;
  bool quiet = false;
  bool expand_only = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::runtime_error("option " + a + " needs a value");
      }
      return args[++i];
    };
    if (a == "--out") {
      out_dir = value();
    } else if (a == "--jobs") {
      jobs = parse_int_arg("--jobs", value());
      if (jobs < 1) throw std::runtime_error("--jobs must be >= 1");
    } else if (a == "--expand-only") {
      expand_only = true;
    } else if (a == "--score") {
      score_csv = value();
    } else if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      throw std::runtime_error("unknown option '" + a + "' for tournament");
    } else if (spec_path.empty()) {
      spec_path = a;
    } else {
      throw std::runtime_error("tournament takes exactly one spec file");
    }
  }
  if (spec_path.empty()) throw std::runtime_error("tournament needs a spec file");
  if (out_dir.empty()) {
    throw std::runtime_error("tournament needs --out DIR (the output directory)");
  }
  if (expand_only && !score_csv.empty()) {
    throw std::runtime_error("--expand-only and --score are mutually exclusive");
  }

  const exp::TournamentSpec spec = exp::load_tournament_spec(spec_path);
  const std::string scenarios = exp::tournament_scenarios_json(spec);
  if (::mkdir(out_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create output directory '" + out_dir + "'");
  }
  write_file(out_dir + "/scenarios.json", scenarios);
  if (!quiet) {
    std::printf("%s: %zu defense(s) x %zu strategy(s) = %zu cell(s); wrote "
                "%s/scenarios.json\n",
                spec_path.c_str(), spec.defenses.size(), spec.strategies.size(),
                spec.defenses.size() * spec.strategies.size(), out_dir.c_str());
  }
  if (expand_only) return 0;

  std::string results_csv;
  if (!score_csv.empty()) {
    results_csv = read_file(score_csv);
  } else {
    const exp::ScenarioFile file = exp::parse_scenario_file(scenarios);
    exp::Runner runner;
    file.queue_on(runner);
    runner.run_all(jobs);
    exp::ResultWriter writer;
    for (std::size_t i = 0; i < runner.outcomes().size(); ++i) {
      const exp::RunOutcome& o = runner.outcomes()[i];
      writer.add(file.scenarios[i].index, o);
      if (!o.ok()) {
        std::fprintf(stderr, "cell '%s' failed: %s\n", o.label.c_str(),
                     o.error.c_str());
      }
    }
    std::ostringstream os;
    writer.write_csv(os);
    results_csv = os.str();
    write_file(out_dir + "/results.csv", results_csv);
    if (!quiet) std::printf("wrote %s/results.csv\n", out_dir.c_str());
  }

  // score_tournament throws (exit 2) when any cell failed or is missing.
  const exp::PayoffMatrix matrix = exp::score_tournament(spec, results_csv);
  write_file(out_dir + "/payoff.csv", exp::payoff_csv(matrix));
  write_file(out_dir + "/payoff.json", exp::payoff_json(matrix));
  const std::string report = exp::pareto_report(matrix);
  write_file(out_dir + "/pareto.txt", report);
  if (!quiet) {
    std::printf("wrote %s/payoff.csv, payoff.json, pareto.txt\n", out_dir.c_str());
    std::fputs(report.c_str(), stdout);
  }
  return 0;
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> inputs;
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) throw std::runtime_error("--out needs a value");
      out_path = args[++i];
    } else if (args[i] == "--json") {
      json = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      throw std::runtime_error("unknown option '" + args[i] + "' for merge");
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) {
    throw std::runtime_error(std::string("merge needs at least one shard ") +
                             (json ? "JSON document" : "CSV"));
  }
  std::vector<std::string> contents;
  contents.reserve(inputs.size());
  for (const std::string& p : inputs) contents.push_back(read_file(p));
  // File names ride along so a duplicate-index rejection can say which
  // input(s) carry the colliding row.
  const std::string merged = json ? exp::ResultWriter::merge_json(contents, inputs)
                                  : exp::ResultWriter::merge_csv(contents, inputs);
  if (out_path.empty() || out_path == "-") {
    std::fputs(merged.c_str(), stdout);
  } else {
    write_file(out_path, merged);
    std::printf("merged %zu file(s) into %s\n", inputs.size(), out_path.c_str());
  }
  return 0;
}

/// The path to re-spawn ourselves as `speakup worker` processes.
std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

int cmd_dispatch(const std::vector<std::string>& args, const char* argv0) {
  exp::DispatchOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::runtime_error("option " + a + " needs a value");
      }
      return args[++i];
    };
    if (a == "--out") {
      opts.out_csv = value();
    } else if (a == "--workers") {
      opts.workers = parse_int_arg("--workers", value());
      if (opts.workers < 1) throw std::runtime_error("--workers must be >= 1");
    } else if (a == "--slices") {
      opts.slices = parse_int_arg("--slices", value());
      if (opts.slices < 1) throw std::runtime_error("--slices must be >= 1");
    } else if (a == "--retries") {
      opts.retries = parse_int_arg("--retries", value());
      if (opts.retries < 0) throw std::runtime_error("--retries must be >= 0");
    } else if (a == "--heartbeat-ms") {
      opts.heartbeat_ms = parse_int_arg("--heartbeat-ms", value());
      if (opts.heartbeat_ms < 50) {
        throw std::runtime_error("--heartbeat-ms must be >= 50");
      }
    } else if (a == "--status") {
      const std::string& mode = value();
      if (mode == "auto") opts.status = exp::DispatchOptions::Status::kAuto;
      else if (mode == "tty") opts.status = exp::DispatchOptions::Status::kTty;
      else if (mode == "json") opts.status = exp::DispatchOptions::Status::kJson;
      else throw std::runtime_error("--status wants auto, tty, or json (got '" + mode + "')");
    } else if (a == "--resume") {
      opts.resume = true;
    } else if (!a.empty() && a[0] == '-') {
      throw std::runtime_error("unknown option '" + a + "' for dispatch");
    } else if (opts.scenario_path.empty()) {
      opts.scenario_path = a;
    } else {
      throw std::runtime_error("dispatch takes exactly one scenario file");
    }
  }
  if (opts.scenario_path.empty()) {
    throw std::runtime_error("dispatch needs a scenario file");
  }
  if (opts.out_csv.empty()) {
    throw std::runtime_error("dispatch needs --out FILE (the merged CSV destination)");
  }
  opts.exe = self_exe(argv0);
  const exp::DispatchReport report = exp::dispatch_sweep(opts);
  for (const std::string& f : report.failures) {
    std::fprintf(stderr, "dispatch: %s\n", f.c_str());
  }
  // Mirror `run`: scenario-level failures (error rows in the CSV) exit 1,
  // as does a sweep that could not complete every slice.
  return report.ok && report.rows_failed == 0 ? 0 : 1;
}

int cmd_worker(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    throw std::runtime_error(
        "worker is internal to dispatch: "
        "speakup worker <scenarios.json> <workdir> <heartbeat-ms>");
  }
  return exp::run_worker(args[0], args[1], parse_int_arg("heartbeat-ms", args[2]));
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.size() != 1) throw std::runtime_error("validate takes one scenario file");
  // A tournament spec (distinguished by its "base" key) validates through
  // the tournament path: parse the spec, expand it, and re-validate the
  // expansion as an ordinary scenario file.
  {
    util::json::Value doc;
    bool parsed = false;
    try {
      doc = util::json::parse(read_file(args[0]));
      parsed = true;
    } catch (const std::exception&) {
      // Not JSON at all: fall through so load_scenario_file reports it.
    }
    // Grid-spec files carry a discriminating "kind" key: auction-game
    // grids (bench/abl5_theorem31_bound) and capacity-bench grids
    // (bench/tab1_thinner_capacity) validate through their own loaders.
    if (parsed && doc.is_object() && doc.find("kind") != nullptr) {
      const std::string& kind = doc.find("kind")->as_string();
      if (kind == "auction_game") {
        const core::AuctionGameSpec spec = core::load_auction_game_file(args[0]);
        std::printf("%s: OK, auction-game grid — %zu eps x %zu delta x %zu "
                    "adversary = %zu cell(s)\n",
                    args[0].c_str(), spec.eps.size(), spec.delta.size(),
                    spec.adversaries.size(),
                    spec.eps.size() * spec.delta.size() * spec.adversaries.size());
        if (!spec.description.empty()) {
          std::printf("description: %s\n", spec.description.c_str());
        }
        for (const std::string& name : spec.adversaries) {
          std::printf("  adversary %s\n", name.c_str());
        }
        return 0;
      }
      if (kind == "capacity_bench") {
        const exp::CapacityBenchSpec spec = exp::load_capacity_bench_file(args[0]);
        std::printf("%s: OK, capacity-bench grid — %d client(s), %zu packet "
                    "size(s)\n",
                    args[0].c_str(), spec.clients, spec.packet_bytes.size());
        if (!spec.description.empty()) {
          std::printf("description: %s\n", spec.description.c_str());
        }
        for (const int bytes : spec.packet_bytes) {
          std::printf("  packet_bytes %d\n", bytes);
        }
        return 0;
      }
      throw std::runtime_error(args[0] + ": unknown spec \"kind\": \"" + kind +
                               "\" (known: auction_game, capacity_bench)");
    }
    if (parsed && doc.is_object() && doc.find("base") != nullptr) {
      const exp::TournamentSpec spec = exp::load_tournament_spec(args[0]);
      const exp::ScenarioFile grid =
          exp::parse_scenario_file(exp::tournament_scenarios_json(spec));
      std::printf("%s: OK, tournament spec — %zu defense(s) x %zu strategy(s) = "
                  "%zu cell(s)\n",
                  args[0].c_str(), spec.defenses.size(), spec.strategies.size(),
                  grid.scenarios.size());
      if (!spec.description.empty()) {
        std::printf("description: %s\n", spec.description.c_str());
      }
      for (const exp::LabeledScenario& s : grid.scenarios) {
        std::printf("  [%zu] %s\n", s.index, s.label.c_str());
      }
      return 0;
    }
  }
  const exp::ScenarioFile file = exp::load_scenario_file(args[0]);
  std::printf("%s: OK, %zu scenario(s)\n", args[0].c_str(), file.scenarios.size());
  if (!file.description.empty()) std::printf("description: %s\n", file.description.c_str());
  for (const exp::LabeledScenario& s : file.scenarios) {
    std::printf("  [%zu] %s  (defense=%s seed=%llu capacity=%g duration=%gs)\n",
                s.index, s.label.c_str(), s.config.defense_name().c_str(),
                static_cast<unsigned long long>(s.config.seed), s.config.capacity_rps,
                s.config.duration.sec());
  }
  return 0;
}

int cmd_defenses() {
  for (const std::string& name : core::FrontEndFactory::instance().names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_strategies() {
  for (const std::string& name : client::StrategyFactory::instance().names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "tournament") return cmd_tournament(args);
    if (cmd == "dispatch") return cmd_dispatch(args, argv[0]);
    if (cmd == "worker") return cmd_worker(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "validate") return cmd_validate(args);
    if (cmd == "defenses") return cmd_defenses();
    if (cmd == "strategies") return cmd_strategies();
    if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(stdout);
    std::fprintf(stderr, "speakup: unknown command '%s'\n\n", cmd.c_str());
    return usage(stderr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "speakup %s: %s\n", cmd.c_str(), e.what());
    return 2;
  }
}
