// Ablation A3: POST size vs bandwidth-delay product.
//
// §3.4 argues the per-POST overheads (a ~2-RTT quiescent gap and a fresh
// slow start) are negligible exactly when the POST is large compared to the
// bandwidth-delay product. We pit a long-RTT good population against a
// LAN-RTT good population (equal bandwidth, so the ideal split is 50/50)
// and shrink the POST: the long-RTT group's share should degrade as the
// POST stops dwarfing its BDP.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

namespace {

speakup::exp::ScenarioConfig scenario(std::int64_t post_kb) {
  using namespace speakup;
  exp::ScenarioConfig cfg;
  cfg.mode = exp::DefenseMode::kAuction;
  cfg.capacity_rps = 10.0;
  cfg.seed = 33;
  cfg.duration = bench::experiment_duration();
  for (const bool long_rtt : {false, true}) {
    exp::ClientGroupSpec g;
    g.label = long_rtt ? "long-rtt" : "lan-rtt";
    g.count = 10;
    g.workload = client::good_client_params();
    g.workload.post_size = kilobytes(post_kb);
    g.access_delay = long_rtt ? Duration::millis(150) : Duration::micros(500);
    cfg.groups.push_back(g);
  }
  return cfg;
}

}  // namespace

int main() {
  using namespace speakup;
  bench::print_banner("Ablation A3", "payment POST size vs RTT (quiescence overhead)");
  bench::print_paper_note(
      "with 1 MB POSTs (the paper's choice) the long-RTT group stays near its "
      "proportional share; small POSTs multiply the 2-RTT gaps and slow-start "
      "ramps, taxing long-RTT clients");

  const std::int64_t kPostKb[] = {25, 100, 1000};
  exp::Runner runner;
  for (const std::int64_t post_kb : kPostKb) {
    runner.add(scenario(post_kb), std::to_string(post_kb) + "KB");
  }
  bench::run_all(runner);

  stats::Table table({"post-size-KB", "lan-rtt-alloc", "long-rtt-alloc",
                      "long-rtt-share-of-ideal"});
  for (const std::int64_t post_kb : kPostKb) {
    const exp::ExperimentResult& r = runner.result(std::to_string(post_kb) + "KB");
    table.row()
        .add(post_kb)
        .add(r.groups[0].allocation, 3)
        .add(r.groups[1].allocation, 3)
        .add(r.groups[1].allocation / 0.5, 3);
  }
  table.print(std::cout);
  return 0;
}
