// Figure 7: heterogeneous RTTs. 50 LAN clients in five categories:
// category i (10 clients) has RTT ~= 100*i ms to the thinner; everyone has
// 2 Mbit/s; c = 10 requests/s. Run twice: all clients good, then all bad.
// Good clients with long RTTs get a smaller share (slow start + the 2-RTT
// quiescence between POSTs); bad clients' RTTs matter little because they
// keep many concurrent connections.
//
// Both scenarios live in scenarios/fig7.json ("all-good" / "all-bad");
// `speakup run` on that file reproduces these numbers exactly.
#include <iostream>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 7", "per-category server allocation vs client RTT");
  bench::print_paper_note(
      "all-good: long-RTT categories fall below the 0.2 ideal (no category "
      "below ~half or above ~double); all-bad: allocation stays ~flat");

  exp::ScenarioFile file = bench::load_scenarios("fig7.json");
  bench::apply_full_duration(file);
  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);
  const exp::ExperimentResult& good = runner.result("all-good");
  const exp::ExperimentResult& bad = runner.result("all-bad");

  stats::Table table({"RTT-ms", "all-good-alloc", "all-bad-alloc", "ideal"});
  for (int i = 1; i <= 5; ++i) {
    table.row()
        .add(static_cast<std::int64_t>(100 * i))
        .add(good.groups[static_cast<std::size_t>(i - 1)].allocation, 3)
        .add(bad.groups[static_cast<std::size_t>(i - 1)].allocation, 3)
        .add(0.2, 3);
  }
  table.print(std::cout);
  return 0;
}
