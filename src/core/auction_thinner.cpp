#include "core/auction_thinner.hpp"

#include "obs/observer.hpp"
#include "util/log.hpp"

namespace {
// obs::Cls mirrors http::ClientClass value for value.
speakup::obs::Cls obs_cls(speakup::http::ClientClass c) {
  return static_cast<speakup::obs::Cls>(c);
}
}  // namespace

namespace speakup::core {

using http::ClientClass;
using http::Message;
using http::MessageStream;
using http::MessageType;

AuctionThinner::AuctionThinner(transport::Host& host, const Config& cfg,
                               util::RngStream server_rng)
    : host_(&host),
      cfg_(cfg),
      server_(host.loop(), cfg.capacity_rps, std::move(server_rng)),
      pool_(host.loop()) {
  server_.set_on_complete([this](const server::ServiceRequest& r) { on_server_complete(r); });
  host.listen(cfg_.request_port,
              [this](transport::TcpConnection& c) { on_request_accept(c); });
  host.listen(cfg_.payment_port,
              [this](transport::TcpConnection& c) { on_payment_accept(c); });
}

void AuctionThinner::on_request_accept(transport::TcpConnection& conn) {
  MessageStream& s = pool_.adopt(conn);
  MessageStream::Callbacks cbs;
  cbs.on_message = [this, &s](const Message& m) { on_request_message(s, m); };
  cbs.on_reset = [this, &s] { on_stream_reset(s); };
  s.set_callbacks(std::move(cbs));
}

void AuctionThinner::on_payment_accept(transport::TcpConnection& conn) {
  MessageStream& s = pool_.adopt(conn);
  MessageStream::Callbacks cbs;
  cbs.on_message = [this, &s](const Message& m) { on_payment_message(s, m); };
  cbs.on_body_progress = [this, &s](const Message& m, Bytes n) {
    on_payment_progress(s, m, n);
  };
  cbs.on_reset = [this, &s] { on_stream_reset(s); };
  s.set_callbacks(std::move(cbs));
}

void AuctionThinner::on_request_message(MessageStream& s, const Message& m) {
  if (m.type != MessageType::kRequest) return;  // ignore anything malformed
  ++stats_.requests_received;
  RequestState& st = get_or_create(m.request_id, m.cls);
  if (st.serving || st.has_request) return;  // duplicate request
  st.cls = m.cls;
  st.difficulty = m.difficulty;
  st.has_request = true;
  st.request_session = &s;
  by_stream_[&s] = st.id;
  // The missing-request window no longer applies; from here the state lives
  // until it wins or the client abandons the request channel.
  st.expiry->cancel();
  if (!server_.busy()) {
    // Idle server: admit without payment. (If the state had been paying
    // ahead of its delayed request — the §7.3 overpayment case — its paid
    // bytes are recorded as its price.)
    admit(st);
  } else {
    s.send(Message{.type = MessageType::kPleasePay, .request_id = st.id});
  }
}

void AuctionThinner::on_payment_message(MessageStream& s, const Message& m) {
  switch (m.type) {
    case MessageType::kPayOpen: {
      RequestState& st = get_or_create(m.request_id, m.cls);
      if (st.serving) return;  // stale channel for an admitted request
      st.payment_session = &s;
      by_stream_[&s] = st.id;
      if (!st.started_paying) {
        st.started_paying = true;
        st.first_payment = host_->loop().now();
      }
      break;
    }
    case MessageType::kPostData: {
      // A full POST was consumed; tell the client to send the next one
      // (paper: the thinner returns JavaScript causing another POST).
      s.send(Message{.type = MessageType::kPostContinue, .request_id = m.request_id});
      break;
    }
    default:
      break;
  }
}

void AuctionThinner::on_payment_progress(MessageStream& s, const Message& m, Bytes newly) {
  if (m.type != MessageType::kPostData) return;
  stats_.payment_bytes_total += newly;
  stats_.payment_rate.add(host_->loop().now(), static_cast<double>(newly));
  RequestState* st = state_for(s);
  if (st == nullptr || st->serving) return;
  st->paid += newly;
}

void AuctionThinner::on_stream_reset(MessageStream& s) {
  const auto it = by_stream_.find(&s);
  if (it == by_stream_.end()) {
    pool_.retire(&s);
    return;
  }
  const std::uint64_t id = it->second;
  by_stream_.erase(it);
  const auto sit = states_.find(id);
  if (sit != states_.end()) {
    RequestState& st = *sit->second;
    if (st.request_session == &s) {
      st.request_session = nullptr;
      // The client abandoned the request itself; without a request channel
      // the request can never be served, so drop the whole state.
      if (!st.serving) {
        pool_.retire(&s);
        destroy_state(id, /*abort_sessions=*/true);
        return;
      }
    } else if (st.payment_session == &s) {
      // Payment channels churn between POSTs; accounting persists.
      st.payment_session = nullptr;
    }
  }
  pool_.retire(&s);
}

AuctionThinner::RequestState& AuctionThinner::get_or_create(std::uint64_t id, ClientClass cls) {
  const auto it = states_.find(id);
  if (it != states_.end()) return *it->second;
  auto st = std::make_unique<RequestState>();
  st->id = id;
  st->cls = cls;
  st->created = host_->loop().now();
  st->expiry = std::make_unique<sim::Timer>(host_->loop(), [this, id] { expire(id); });
  st->expiry->restart(cfg_.payment_window);
  RequestState& ref = *st;
  states_[id] = std::move(st);
  return ref;
}

AuctionThinner::RequestState* AuctionThinner::state_for(MessageStream& s) {
  const auto it = by_stream_.find(&s);
  if (it == by_stream_.end()) return nullptr;
  const auto sit = states_.find(it->second);
  return sit == states_.end() ? nullptr : sit->second.get();
}

void AuctionThinner::admit(RequestState& st) {
  SPEAKUP_ASSERT(!server_.busy());
  SPEAKUP_ASSERT(st.has_request && !st.serving);
  st.serving = true;
  st.expiry->cancel();
  const double price = static_cast<double>(st.paid);
  const double pay_time =
      st.started_paying ? (host_->loop().now() - st.first_payment).sec() : 0.0;
  if (st.cls == ClientClass::kGood) {
    ++stats_.served_good;
    stats_.price_good.add(price);
    stats_.payment_time_good.add(pay_time);
  } else if (st.cls == ClientClass::kBad) {
    ++stats_.served_bad;
    stats_.price_bad.add(price);
    stats_.payment_time_bad.add(pay_time);
  } else {
    ++stats_.served_other;
  }
  if (!st.started_paying) ++stats_.direct_admissions;
  if (auto* o = host_->loop().observer()) {
    o->on_admission(obs_cls(st.cls), price, /*direct=*/!st.started_paying);
  }
  if (st.payment_session != nullptr) {
    // Terminate the payment channel (§3.3): the client stops paying.
    st.payment_session->send(
        Message{.type = MessageType::kWin, .request_id = st.id, .cls = st.cls});
  }
  server_.submit(server::ServiceRequest{st.id, st.cls, st.difficulty});
}

void AuctionThinner::run_auction() {
  SPEAKUP_ASSERT(!server_.busy());
  RequestState* best = nullptr;
  for (auto& [id, st] : states_) {
    if (!st->has_request || st->serving) continue;
    if (best == nullptr || st->paid > best->paid ||
        (st->paid == best->paid &&
         (st->created < best->created ||
          (st->created == best->created && st->id < best->id)))) {
      best = st.get();
    }
  }
  if (best != nullptr) {
    ++stats_.auctions_held;
    if (auto* o = host_->loop().observer()) {
      o->on_auction_clear(static_cast<double>(best->paid));
    }
    admit(*best);
  }
}

void AuctionThinner::on_server_complete(const server::ServiceRequest& done) {
  const auto it = states_.find(done.request_id);
  if (it != states_.end()) {
    RequestState& st = *it->second;
    if (st.request_session != nullptr) {
      st.request_session->send(Message{.type = MessageType::kResponse,
                                       .request_id = st.id,
                                       .body = cfg_.response_body,
                                       .cls = st.cls});
    }
    // Sessions stay open until the client closes them; the reset handler
    // retires streams that no longer map to a state.
    destroy_state(done.request_id, /*abort_sessions=*/false);
  }
  run_auction();
}

void AuctionThinner::expire(std::uint64_t id) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  RequestState& st = *it->second;
  SPEAKUP_ASSERT(!st.serving);
  ++stats_.channels_expired;
  stats_.payment_bytes_wasted += st.paid;
  if (auto* o = host_->loop().observer()) {
    o->on_channel_expired(static_cast<double>(st.paid));
  }
  destroy_state(id, /*abort_sessions=*/true);
}

void AuctionThinner::destroy_state(std::uint64_t id, bool abort_sessions) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  RequestState& st = *it->second;
  if (st.request_session != nullptr) {
    by_stream_.erase(st.request_session);
    if (abort_sessions) pool_.retire(st.request_session);
  }
  if (st.payment_session != nullptr) {
    by_stream_.erase(st.payment_session);
    if (abort_sessions) pool_.retire(st.payment_session);
  }
  states_.erase(it);
}

}  // namespace speakup::core
