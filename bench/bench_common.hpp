// Shared helpers for the per-figure benchmark harnesses.
//
// Every harness runs the paper's experiment at reduced duration by default
// (60 s instead of §7.1's 600 s) so the whole bench/ directory executes in
// minutes. Set SPEAKUP_FULL=1 to run the paper-length experiments.
//
// Harnesses queue their scenarios on an exp::Runner and call
// bench::run_all(), which executes them on a thread pool (one core per
// scenario); SPEAKUP_THREADS caps the pool. Results are deterministic per
// seed regardless of thread count.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "util/units.hpp"

namespace speakup::bench {

inline bool full_mode() {
  const char* env = std::getenv("SPEAKUP_FULL");
  return env != nullptr && env[0] == '1';
}

/// Experiment duration: the paper's 600 s in full mode, else `quick_sec`.
inline Duration experiment_duration(double quick_sec = 60.0) {
  return Duration::seconds(full_mode() ? 600.0 : quick_sec);
}

/// Sweep parallelism: SPEAKUP_THREADS when set, else hardware concurrency.
inline int default_threads() {
  if (const char* env = std::getenv("SPEAKUP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;  // Runner resolves 0 to hardware concurrency
}

/// Runs every queued scenario on the bench thread pool; any failure is
/// fatal (a bench with a missing data point would silently mislead).
inline const std::vector<exp::RunOutcome>& run_all(exp::Runner& runner) {
  const auto& outcomes = runner.run_all(default_threads());
  for (const auto& o : outcomes) {
    if (!o.ok()) {
      std::fprintf(stderr, "scenario '%s' failed: %s\n", o.label.c_str(),
                   o.error.c_str());
      std::exit(1);
    }
  }
  return outcomes;
}

/// Locates a checked-in scenario file (scenarios/<name> in the source tree;
/// $SPEAKUP_SCENARIO_DIR overrides, e.g. for running from an install).
inline std::string scenario_path(const std::string& name) {
  if (const char* env = std::getenv("SPEAKUP_SCENARIO_DIR")) {
    return std::string(env) + "/" + name;
  }
#ifdef SPEAKUP_SCENARIO_DIR
  return std::string(SPEAKUP_SCENARIO_DIR) + "/" + name;
#else
  return "scenarios/" + name;
#endif
}

/// Loads a checked-in scenario file; a parse failure is fatal (the grids
/// under scenarios/ are part of the bench suite).
inline exp::ScenarioFile load_scenarios(const std::string& name) {
  try {
    return exp::load_scenario_file(scenario_path(name));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
}

/// SPEAKUP_FULL=1: stretch every scenario in the file to the paper's 600 s
/// (scenario files carry the quick durations).
inline void apply_full_duration(exp::ScenarioFile& file) {
  if (!full_mode()) return;
  for (exp::LabeledScenario& s : file.scenarios) {
    s.config.duration = Duration::seconds(600.0);
  }
}

inline void print_banner(const char* figure, const char* description) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("mode: %s (set SPEAKUP_FULL=1 for the paper's 600 s runs)\n",
              full_mode() ? "FULL (600 s)" : "QUICK");
  std::printf("==============================================================================\n");
}

inline void print_paper_note(const char* note) { std::printf("paper: %s\n\n", note); }

}  // namespace speakup::bench
