// Streaming summary statistics (Welford) — mean, variance, min, max —
// without storing samples. Used for per-class latency/price summaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace speakup::stats {

class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  void merge(const OnlineStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double delta = o.mean_ - mean_;
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(o.n_);
    mean_ = (n1 * mean_ + n2 * o.mean_) / (n1 + n2);
    m2_ += o.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace speakup::stats
