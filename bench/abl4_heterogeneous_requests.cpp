// Ablation A4: the §5 generalization under a hard-request attack.
//
// The threat (§5): if the thinner charges a flat per-request price,
// attackers who send only the hardest requests get a disproportionate share
// of the server's *time*. The quantum auction makes every quantum of
// attention cost a fresh bid. Attackers here are "smart": difficulty-10
// requests, bandwidth concentrated on one payment at a time.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Ablation A4", "flat auction (§3.3) vs quantum auction (§5)");
  bench::print_paper_note(
      "under a hard-request-only attack the flat auction cedes most server "
      "time to attackers; the quantum auction restores the bandwidth-"
      "proportional time split (~0.5 here)");

  const int kDifficulties[] = {1, 5, 10};
  const exp::DefenseMode kModes[] = {exp::DefenseMode::kAuction,
                                     exp::DefenseMode::kQuantumAuction};

  exp::Runner runner;
  for (const int difficulty : kDifficulties) {
    for (const exp::DefenseMode mode : kModes) {
      exp::ScenarioConfig cfg = exp::lan_scenario(10, 10, 20.0, mode, /*seed=*/34);
      cfg.duration = bench::experiment_duration();
      cfg.groups[1].workload.difficulty = difficulty;
      cfg.groups[1].workload.window = 1;    // concentrate bandwidth
      cfg.groups[1].workload.lambda = 10.0;
      runner.add(cfg, std::string(to_string(mode)) + "/d" + std::to_string(difficulty));
    }
  }
  bench::run_all(runner);

  stats::Table table({"bad-difficulty", "mechanism", "server-time-good", "server-time-bad",
                      "suspensions"});
  for (const int difficulty : kDifficulties) {
    for (const exp::DefenseMode mode : kModes) {
      const exp::ExperimentResult& r =
          runner.result(std::string(to_string(mode)) + "/d" + std::to_string(difficulty));
      const bool quantum = mode == exp::DefenseMode::kQuantumAuction;
      table.row()
          .add(difficulty)
          .add(quantum ? "quantum (5)" : "flat (3.3)")
          .add(r.server_time_good, 3)
          .add(r.server_time_bad, 3)
          .add(quantum ? r.thinner.counters.get("suspensions") : 0);
    }
  }
  table.print(std::cout);
  return 0;
}
