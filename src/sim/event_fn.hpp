// Small-buffer-only callback type for the event loop's hot path.
//
// A scheduled callback in this simulator is almost always a tiny closure —
// `[this]`, `[this, slot]`, a couple of references — yet std::function heap-
// allocates anything bigger than its two-pointer SBO. EventFn stores the
// callable inline in a fixed 32-byte buffer and refuses (at compile time)
// anything larger, so EventLoop::schedule never touches the allocator. A
// call site that genuinely needs a big capture can wrap it in a
// shared_ptr/unique_ptr and capture the pointer — making the allocation
// explicit and visible at the call site instead of hidden in the loop.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace speakup::sim {

class EventFn {
 public:
  /// Inline storage size. The audit (compile errors at every schedule site)
  /// shows the whole tree's closures are <= 24 bytes — `[this]`,
  /// `[this, slot]`, `[this, key]` — so 32 halves the event record versus
  /// the previous 64 while still leaving one pointer of headroom.
  static constexpr std::size_t kCapacity = 32;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "EventFn callable must be invocable as void()");
    static_assert(sizeof(Fn) <= kCapacity,
                  "closure too large for EventFn's inline buffer; capture a "
                  "(shared_)ptr to the state instead of the state itself");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "EventFn callables must be nothrow-movable (the event slab "
                  "relocates records when it grows)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* b) { (*std::launder(static_cast<Fn*>(b)))(); };
    relocate_ = [](void* src, void* dst) noexcept {
      Fn* fn = std::launder(static_cast<Fn*>(src));
      if (dst != nullptr) ::new (dst) Fn(std::move(*fn));
      fn->~Fn();
    };
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  /// Destroys the stored callable (no-op when empty).
  void reset() {
    if (relocate_ != nullptr) relocate_(buf_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

 private:
  void move_from(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (other.relocate_ != nullptr) other.relocate_(other.buf_, buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  alignas(std::max_align_t) std::byte buf_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  // Moves the callable from src into dst (destroying src), or just destroys
  // src when dst is nullptr. One pointer covers move + destroy.
  void (*relocate_)(void* src, void* dst) noexcept = nullptr;
};

}  // namespace speakup::sim
