// Tests for the data-driven scenario loader: JSON -> LabeledScenario
// expansion (defaults, grids, label templates, seed replication, sharding),
// a full parse -> run -> serialize round trip against hand-built configs,
// and malformed-input errors that name the offending key.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"

namespace speakup {
namespace {

using exp::LabeledScenario;
using exp::ScenarioError;
using exp::ScenarioFile;
using exp::parse_scenario_file;

/// EXPECT that parsing `text` fails and the message mentions `needle`.
void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    (void)parse_scenario_file(text);
    FAIL() << "expected ScenarioError mentioning \"" << needle << "\"";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(ScenarioIo, MinimalFileUsesConfigDefaults) {
  const ScenarioFile f = parse_scenario_file(R"({
    "scenarios": [{"defense": "retry"}]
  })");
  ASSERT_EQ(f.scenarios.size(), 1u);
  const LabeledScenario& s = f.scenarios[0];
  EXPECT_EQ(s.index, 0u);
  EXPECT_EQ(s.label, "retry");
  EXPECT_EQ(s.config.defense_name(), "retry");
  // Untouched knobs keep the ScenarioConfig defaults.
  const exp::ScenarioConfig defaults;
  EXPECT_DOUBLE_EQ(s.config.capacity_rps, defaults.capacity_rps);
  EXPECT_EQ(s.config.seed, defaults.seed);
  EXPECT_EQ(s.config.duration, defaults.duration);
  EXPECT_TRUE(s.config.groups.empty());
}

TEST(ScenarioIo, DefaultsMergeAndScenarioWins) {
  const ScenarioFile f = parse_scenario_file(R"({
    "defaults": {"capacity_rps": 80, "seed": 9, "lan": {"good": 2, "bad": 3}},
    "scenarios": [
      {"label": "a"},
      {"label": "b", "capacity_rps": 120, "lan": {"good": 4}}
    ]
  })");
  ASSERT_EQ(f.scenarios.size(), 2u);
  EXPECT_DOUBLE_EQ(f.scenarios[0].config.capacity_rps, 80.0);
  EXPECT_EQ(f.scenarios[0].config.seed, 9u);
  ASSERT_EQ(f.scenarios[0].config.groups.size(), 2u);
  EXPECT_EQ(f.scenarios[0].config.groups[0].count, 2);
  EXPECT_EQ(f.scenarios[0].config.groups[1].count, 3);
  // The second scenario's nested "lan" object deep-merges over the default.
  EXPECT_DOUBLE_EQ(f.scenarios[1].config.capacity_rps, 120.0);
  EXPECT_EQ(f.scenarios[1].config.groups[0].count, 4);
  EXPECT_EQ(f.scenarios[1].config.groups[1].count, 3);
}

TEST(ScenarioIo, ExplicitGroupsReplaceLanInheritedFromDefaults) {
  // "lan" and "groups" are alternatives: an entry writing one drops the
  // other inherited from defaults instead of tripping mutual exclusion.
  const ScenarioFile f = parse_scenario_file(R"({
    "defaults": {"lan": {"good": 25, "bad": 25}},
    "scenarios": [
      {"label": "inherited"},
      {"label": "special", "groups": [{"label": "solo", "count": 1}]},
      {"label": "resized", "lan": {"good": 2, "bad": 2}}
    ]
  })");
  ASSERT_EQ(f.scenarios.size(), 3u);
  EXPECT_EQ(f.scenarios[0].config.groups.size(), 2u);
  ASSERT_EQ(f.scenarios[1].config.groups.size(), 1u);
  EXPECT_EQ(f.scenarios[1].config.groups[0].label, "solo");
  ASSERT_EQ(f.scenarios[2].config.groups.size(), 2u);
  EXPECT_EQ(f.scenarios[2].config.groups[0].count, 2);
}

TEST(ScenarioIo, GridExpandsCrossProductInOrder) {
  const ScenarioFile f = parse_scenario_file(R"({
    "scenarios": [{
      "label": "{defense}/c{capacity_rps}",
      "grid": {"defense": ["none", "auction"], "capacity_rps": [50, 100, 200]}
    }]
  })");
  ASSERT_EQ(f.scenarios.size(), 6u);
  // First axis outermost, last cycles fastest; indices follow file order.
  EXPECT_EQ(f.scenarios[0].label, "none/c50");
  EXPECT_EQ(f.scenarios[1].label, "none/c100");
  EXPECT_EQ(f.scenarios[2].label, "none/c200");
  EXPECT_EQ(f.scenarios[3].label, "auction/c50");
  EXPECT_EQ(f.scenarios[5].label, "auction/c200");
  for (std::size_t i = 0; i < f.scenarios.size(); ++i) {
    EXPECT_EQ(f.scenarios[i].index, i);
  }
  EXPECT_DOUBLE_EQ(f.scenarios[4].config.capacity_rps, 100.0);
  EXPECT_EQ(f.scenarios[4].config.defense_name(), "auction");
}

TEST(ScenarioIo, GridReachesNestedPathsAndLanTotal) {
  const ScenarioFile f = parse_scenario_file(R"({
    "defaults": {"lan": {"total": 10, "good": 5}},
    "scenarios": [{
      "label": "g{lan.good}",
      "grid": {"lan.good": [2, 8]}
    }]
  })");
  ASSERT_EQ(f.scenarios.size(), 2u);
  EXPECT_EQ(f.scenarios[0].label, "g2");
  ASSERT_EQ(f.scenarios[0].config.groups.size(), 2u);
  EXPECT_EQ(f.scenarios[0].config.groups[0].count, 2);   // good
  EXPECT_EQ(f.scenarios[0].config.groups[1].count, 8);   // bad = total - good
  EXPECT_EQ(f.scenarios[1].config.groups[0].count, 8);
  EXPECT_EQ(f.scenarios[1].config.groups[1].count, 2);
}

TEST(ScenarioIo, SeedsReplicateWithDerivedLabels) {
  const ScenarioFile f = parse_scenario_file(R"({
    "scenarios": [{"defense": "auction", "seed": 10, "seeds": 3}]
  })");
  ASSERT_EQ(f.scenarios.size(), 3u);
  EXPECT_EQ(f.scenarios[0].label, "auction/seed10");
  EXPECT_EQ(f.scenarios[2].label, "auction/seed12");
  EXPECT_EQ(f.scenarios[0].config.seed, 10u);
  EXPECT_EQ(f.scenarios[2].config.seed, 12u);
}

TEST(ScenarioIo, SeedPlaceholderInLabelSuppressesSuffix) {
  const ScenarioFile f = parse_scenario_file(R"({
    "scenarios": [{"label": "s{seed}", "defense": "none", "seeds": 2}]
  })");
  ASSERT_EQ(f.scenarios.size(), 2u);
  EXPECT_EQ(f.scenarios[0].label, "s1");
  EXPECT_EQ(f.scenarios[1].label, "s2");
}

TEST(ScenarioIo, GroupAndLinkKnobsParse) {
  const ScenarioFile f = parse_scenario_file(R"({
    "scenarios": [{
      "defense": "quantum",
      "quantum_s": 0.02,
      "payment_window_s": 5,
      "response_body_bytes": 500,
      "thinner": {"bw_mbps": 1000, "delay_us": 200, "queue_bytes": 50000},
      "bottleneck": {"rate_mbps": 1, "delay_us": 100000, "queue_bytes": 100000},
      "collateral": {"file_size_bytes": 8000, "downloads": 20},
      "groups": [
        {"label": "good", "count": 3, "workload": "good",
         "access_bw_mbps": 0.5, "behind_bottleneck": true},
        {"label": "attack", "count": 2,
         "workload": {"preset": "bad", "lambda": 10, "post_size_bytes": 2000000}}
      ]
    }]
  })");
  ASSERT_EQ(f.scenarios.size(), 1u);
  const exp::ScenarioConfig& c = f.scenarios[0].config;
  EXPECT_EQ(c.defense_name(), "quantum");
  EXPECT_EQ(c.quantum, Duration::seconds(0.02));
  EXPECT_EQ(c.payment_window, Duration::seconds(5.0));
  EXPECT_EQ(c.response_body, 500);
  EXPECT_EQ(c.thinner_bw, Bandwidth::mbps(1000));
  EXPECT_EQ(c.thinner_delay, Duration::micros(200));
  ASSERT_TRUE(c.bottleneck.has_value());
  EXPECT_EQ(c.bottleneck->rate, Bandwidth::mbps(1));
  ASSERT_TRUE(c.collateral.has_value());
  EXPECT_EQ(c.collateral->file_size, 8000);
  EXPECT_EQ(c.collateral->downloads, 20);
  ASSERT_EQ(c.groups.size(), 2u);
  EXPECT_EQ(c.groups[0].access_bw, Bandwidth::mbps(0.5));
  EXPECT_TRUE(c.groups[0].behind_bottleneck);
  EXPECT_EQ(c.groups[1].workload.cls, http::ClientClass::kBad);
  EXPECT_DOUBLE_EQ(c.groups[1].workload.lambda, 10.0);
  EXPECT_EQ(c.groups[1].workload.post_size, 2'000'000);
  EXPECT_EQ(c.groups[1].workload.window, client::bad_client_params().window);
}

TEST(ScenarioIo, ShardsPartitionRoundRobin) {
  const ScenarioFile f = parse_scenario_file(R"({
    "scenarios": [{"label": "i{seed}", "defense": "none", "seed": 0, "seeds": 5}]
  })");
  ASSERT_EQ(f.scenarios.size(), 5u);
  const auto s0 = f.shard(0, 2);
  const auto s1 = f.shard(1, 2);
  ASSERT_EQ(s0.size(), 3u);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_EQ(s0[0].index, 0u);
  EXPECT_EQ(s0[1].index, 2u);
  EXPECT_EQ(s0[2].index, 4u);
  EXPECT_EQ(s1[0].index, 1u);
  EXPECT_EQ(s1[1].index, 3u);
  // Global labels are preserved inside a shard.
  EXPECT_EQ(s1[0].label, "i1");
  EXPECT_THROW((void)f.shard(2, 2), ScenarioError);
  EXPECT_THROW((void)f.shard(-1, 2), ScenarioError);
  EXPECT_THROW((void)f.shard(0, 0), ScenarioError);
}

// The core contract: a parsed scenario runs to the same fingerprint as the
// equivalent hand-built ScenarioConfig.
TEST(ScenarioIo, ParsedScenarioMatchesHandBuiltFingerprint) {
  const ScenarioFile f = parse_scenario_file(R"({
    "scenarios": [{
      "defense": "auction", "capacity_rps": 50, "duration_s": 2, "seed": 17,
      "lan": {"good": 3, "bad": 3}
    }]
  })");
  ASSERT_EQ(f.scenarios.size(), 1u);
  exp::ScenarioConfig hand =
      exp::lan_scenario(3, 3, 50.0, exp::DefenseMode::kAuction, 17);
  hand.duration = Duration::seconds(2.0);
  const exp::ExperimentResult from_file = exp::run_scenario(f.scenarios[0].config);
  const exp::ExperimentResult from_hand = exp::run_scenario(hand);
  EXPECT_EQ(from_file.fingerprint(), from_hand.fingerprint());
  EXPECT_GT(from_file.served_total, 0);
}

TEST(ScenarioIo, QueueOnRunnerPreservesLabels) {
  const ScenarioFile f = parse_scenario_file(R"({
    "defaults": {"duration_s": 1, "capacity_rps": 30, "lan": {"good": 1, "bad": 1}},
    "scenarios": [{"label": "{defense}", "grid": {"defense": ["none", "retry"]}}]
  })");
  exp::Runner runner;
  f.queue_on(runner);
  ASSERT_EQ(runner.size(), 2u);
  runner.run_all(2);
  EXPECT_TRUE(runner.outcome("none").ok()) << runner.outcome("none").error;
  EXPECT_TRUE(runner.outcome("retry").ok()) << runner.outcome("retry").error;
}

// ---------------------------------------------------------------------------
// Malformed inputs: every error names the offending key or location.
// ---------------------------------------------------------------------------

TEST(ScenarioIoErrors, UnknownKeysAreNamedWithTheirPath) {
  expect_parse_error(R"({"scenarios": [{"capcity_rps": 100}]})", "capcity_rps");
  expect_parse_error(
      R"({"scenarios": [{"groups": [{"label": "g", "count": 1, "acess_bw_mbps": 2}]}]})",
      "acess_bw_mbps");
  expect_parse_error(R"({"scenarios": [{"lan": {"goood": 1}}]})", "goood");
  expect_parse_error(R"({"scenario": []})", "scenario");
}

TEST(ScenarioIoErrors, UnknownDefenseListsRegisteredNames) {
  try {
    (void)parse_scenario_file(R"({"scenarios": [{"defense": "aucton"}]})");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("aucton"), std::string::npos) << what;
    // The fix-it list: every registered defense is spelled out.
    EXPECT_NE(what.find("auction"), std::string::npos) << what;
    EXPECT_NE(what.find("retry"), std::string::npos) << what;
    EXPECT_NE(what.find("none"), std::string::npos) << what;
    EXPECT_NE(what.find("quantum"), std::string::npos) << what;
  }
}

TEST(ScenarioIoErrors, ResolveDefenseNameIsStrict) {
  EXPECT_EQ(exp::resolve_defense_name("auction"), "auction");
  EXPECT_EQ(exp::resolve_defense_name("none"), "none");
  try {
    (void)exp::resolve_defense_name("nonesuch");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("auction"), std::string::npos) << e.what();
  }
}

TEST(ScenarioIoErrors, ValueErrorsNameTheKey) {
  expect_parse_error(R"({"scenarios": [{"capacity_rps": "fast"}]})", "capacity_rps");
  expect_parse_error(R"({"scenarios": [{"capacity_rps": -5}]})", "capacity_rps");
  expect_parse_error(R"({"scenarios": [{"duration_s": 0}]})", "duration_s");
  expect_parse_error(R"({"scenarios": [{"seed": 1.5}]})", "seed");
  expect_parse_error(R"({"scenarios": [{"groups": [{"count": 1}]}]})", "label");
  expect_parse_error(R"({"scenarios": [{"groups": [{"label": "g"}]}]})", "count");
  expect_parse_error(
      R"({"scenarios": [{"groups": [{"label": "g", "count": 1, "workload": "evil"}]}]})",
      "evil");
}

TEST(ScenarioIoErrors, StructuralMistakesAreCaught) {
  expect_parse_error(R"({"scenarios": []})", "at least one");
  expect_parse_error(R"({"scenarios": [{"lan": {"good": 1}, "groups": []}]})",
                     "mutually exclusive");
  expect_parse_error(R"({"scenarios": [{"lan": {"good": 5, "total": 3}}]})", "total");
  expect_parse_error(R"({"scenarios": [{"lan": {"bad": 1, "total": 3}}]})",
                     "not both");
  expect_parse_error(R"({"defaults": {"grid": {}}, "scenarios": [{}]})", "grid");
  expect_parse_error(
      R"({"scenarios": [{"label": "x", "defense": "none"}, {"label": "x"}]})",
      "duplicate label");
  expect_parse_error(R"({"scenarios": [{"label": "{oops}"}]})", "oops");
  expect_parse_error(R"({"scenarios": [{"label": "{unclosed"}]})", "unterminated");
  expect_parse_error(R"({"scenarios": [{"grid": {"capacity_rps": []}}]})",
                     "at least one value");
  expect_parse_error(R"({"scenarios": [{"grid": {"capacity_rps": 5}}]})", "array");
}

TEST(ScenarioIoErrors, JsonSyntaxErrorsCarryLineInfo) {
  expect_parse_error("{\"scenarios\": [\n  {,}\n]}", "line 2");
  expect_parse_error("[]", "object");
}

// ---------------------------------------------------------------------------
// The checked-in scenario files are part of the contract: they must parse
// and expand to the labels the bench harnesses look up.
// ---------------------------------------------------------------------------

std::string checked_in(const std::string& name) {
  const char* env = std::getenv("SPEAKUP_SCENARIO_DIR");
  const std::string dir = env != nullptr ? env : SPEAKUP_SCENARIO_DIR;
  return dir + "/" + name;
}

TEST(ScenarioFiles, Fig2ExpandsToTheBenchGrid) {
  const ScenarioFile f = exp::load_scenario_file(checked_in("fig2.json"));
  EXPECT_EQ(f.scenarios.size(), 18u);  // 2 defenses x 9 good-counts
  std::set<std::string> labels;
  for (const auto& s : f.scenarios) labels.insert(s.label);
  EXPECT_TRUE(labels.count("none/g5"));
  EXPECT_TRUE(labels.count("auction/g45"));
  for (const auto& s : f.scenarios) {
    EXPECT_DOUBLE_EQ(s.config.capacity_rps, 100.0);
    EXPECT_EQ(s.config.seed, 21u);
    ASSERT_EQ(s.config.groups.size(), 2u);
    EXPECT_EQ(s.config.groups[0].count + s.config.groups[1].count, 50);
  }
}

TEST(ScenarioFiles, Fig4AndSec74ExpandToTheBenchGrids) {
  const ScenarioFile fig4 = exp::load_scenario_file(checked_in("fig4.json"));
  EXPECT_EQ(fig4.scenarios.size(), 3u);
  std::set<std::string> labels;
  for (const auto& s : fig4.scenarios) {
    labels.insert(s.label);
    EXPECT_EQ(s.config.defense_name(), "auction");
    EXPECT_EQ(s.config.seed, 23u);
  }
  EXPECT_TRUE(labels.count("c50"));
  EXPECT_TRUE(labels.count("c200"));

  const ScenarioFile s74 = exp::load_scenario_file(checked_in("sec7_4.json"));
  EXPECT_EQ(s74.scenarios.size(), 13u);  // 7 capacities + 6 bad windows
  labels.clear();
  for (const auto& s : s74.scenarios) labels.insert(s.label);
  EXPECT_TRUE(labels.count("c100"));
  EXPECT_TRUE(labels.count("c160"));
  EXPECT_TRUE(labels.count("w1"));
  EXPECT_TRUE(labels.count("w60"));
  // The window sweep writes through an array-index grid path.
  for (const auto& s : s74.scenarios) {
    if (s.label == "w40") {
      ASSERT_EQ(s.config.groups.size(), 2u);
      EXPECT_EQ(s.config.groups[1].workload.window, 40);
      EXPECT_DOUBLE_EQ(s.config.groups[1].workload.lambda,
                       client::bad_client_params().lambda);
    }
  }
}

TEST(ScenarioFiles, AdversaryFilesSweepEveryDefenseWithTheirStrategy) {
  const struct {
    const char* file;
    const char* strategy;
    std::size_t count;
  } kAdversaryFiles[] = {
      {"adversary_onoff.json", "onoff", 8u},
      {"adversary_defector.json", "defector", 4u},
      {"adversary_adaptive.json", "adaptive-window", 4u},
      {"adversary_flashcrowd.json", "flash-crowd", 4u},
  };
  for (const auto& [name, strategy, count] : kAdversaryFiles) {
    const ScenarioFile f = exp::load_scenario_file(checked_in(name));
    EXPECT_EQ(f.scenarios.size(), count) << name;
    std::set<std::string> defenses;
    for (const auto& s : f.scenarios) {
      defenses.insert(s.config.defense_name());
      ASSERT_EQ(s.config.groups.size(), 2u) << name;
      EXPECT_EQ(s.config.groups[0].workload.strategy, "poisson") << name;
      EXPECT_EQ(s.config.groups[1].workload.strategy, strategy) << name;
    }
    // Each adversary file sweeps every built-in defense.
    for (const exp::DefenseMode m : exp::kAllDefenseModes) {
      EXPECT_TRUE(defenses.count(exp::to_string(m))) << name << " " << exp::to_string(m);
    }
  }
}

TEST(ScenarioFiles, Fig3AndTab1AndSmokeParse) {
  const ScenarioFile fig3 = exp::load_scenario_file(checked_in("fig3.json"));
  EXPECT_EQ(fig3.scenarios.size(), 6u);
  const ScenarioFile tab1 = exp::load_scenario_file(checked_in("tab1.json"));
  EXPECT_EQ(tab1.scenarios.size(), 7u);  // row1 + 4x row2 + row4 off/on
  std::set<std::string> labels;
  for (const auto& s : tab1.scenarios) labels.insert(s.label);
  EXPECT_TRUE(labels.count("row1"));
  EXPECT_TRUE(labels.count("row2/c155"));
  EXPECT_TRUE(labels.count("row4/on"));
  const ScenarioFile smoke = exp::load_scenario_file(checked_in("smoke.json"));
  EXPECT_EQ(smoke.scenarios.size(), 6u);  // 4 defenses + 2 seed replicas
}

TEST(ScenarioFiles, MissingFileNamesThePath) {
  try {
    (void)exp::load_scenario_file("/nonexistent/sweep.json");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/sweep.json"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace speakup
