// The topology container: owns nodes and links, computes shortest-path
// routes, and moves packets hop by hop.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "util/assert.hpp"

namespace speakup::net {

class Switch;

class Network {
 public:
  explicit Network(sim::EventLoop& loop) : loop_(&loop) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node of any Node-derived type. The Network owns it.
  /// Usage: auto& h = net.add_node<transport::Host>("client3");
  template <typename T, typename... Args>
  T& add_node(std::string name, Args&&... args) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    auto node = std::make_unique<T>(*this, id, std::move(name), std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    routes_valid_ = false;
    return ref;
  }

  Switch& add_switch(std::string name);

  /// Connects two nodes with a symmetric full-duplex link.
  Link& connect(const Node& a, const Node& b, const LinkSpec& spec) {
    return connect(a, b, spec, spec);
  }

  /// Connects two nodes with per-direction specs (a->b uses `ab`).
  Link& connect(const Node& a, const Node& b, const LinkSpec& ab, const LinkSpec& ba);

  /// Recomputes shortest-path next-hop tables. Called lazily by forward();
  /// callable explicitly after topology construction.
  void build_routes();

  /// Moves `p` one hop from `from` toward `p.dst`.
  void forward(NodeId from, Packet p);

  /// Delivers `p` to node `to` (called by links on arrival).
  void deliver(NodeId to, Packet p);

  [[nodiscard]] sim::EventLoop& loop() const { return *loop_; }
  [[nodiscard]] Node& node(NodeId id) const {
    SPEAKUP_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Link* link_between(NodeId a, NodeId b) const;

  /// Packets dropped because no route / unroutable destination.
  [[nodiscard]] std::int64_t unroutable_drops() const { return unroutable_drops_; }

 private:
  static constexpr std::size_t kNoLink = SIZE_MAX;

  sim::EventLoop* loop_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  // adjacency_[n] lists (neighbor, link index)
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> adjacency_;
  // Leaf-compressed routing state (see build_routes): degree-1 nodes route
  // through their single neighbor; shortest-path tables cover core nodes
  // only, so a 10^5-leaf access tree costs O(N + C^2) instead of O(N^2).
  std::vector<NodeId> gateway_;            // leaf -> its single neighbor, else kInvalidNode
  std::vector<std::size_t> gateway_link_;  // leaf -> its single link index
  std::vector<std::int32_t> core_index_;   // node -> dense core index, or -1
  std::vector<NodeId> core_nodes_;         // dense core index -> node
  std::vector<std::int32_t> component_;    // connected-component id per node
  // core_next_hop_[v_ci * C + dst_ci] = neighbor of v on a shortest core
  // path toward dst (same BFS tie-breaks as the old full-matrix build);
  // core_next_link_ carries the corresponding link index.
  std::vector<NodeId> core_next_hop_;
  std::vector<std::size_t> core_next_link_;
  bool routes_valid_ = false;
  std::int64_t unroutable_drops_ = 0;
};

/// A store-and-forward switch: relays packets along shortest paths.
class Switch : public Node {
 public:
  Switch(Network& net, NodeId id, std::string name) : Node(net, id, std::move(name)) {}

  void on_packet(Packet p) override {
    if (p.dst == id()) return;  // switches sink stray packets addressed to them
    network().forward(id(), std::move(p));
  }
};

}  // namespace speakup::net
