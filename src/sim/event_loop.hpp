// Deterministic discrete-event loop.
//
// The loop owns a virtual clock and a priority queue of (fire-time, sequence,
// callback). Ties on fire-time are broken by insertion order, which — with
// per-component RNG streams (util/rng.hpp) — makes whole experiments
// bit-reproducible. Events are cancellable; cancellation is lazy (the entry
// stays in the heap with a tombstone flag) so both schedule and cancel are
// O(log n) / O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace speakup::sim {

class EventLoop;

/// Handle to a scheduled event; lets the owner cancel it. Default-constructed
/// handles are inert. Copies share the same underlying event.
class EventId {
 public:
  EventId() = default;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool pending() const { return state_ && !state_->done; }

 private:
  friend class EventLoop;
  struct State {
    bool done = false;  // fired or cancelled
  };
  explicit EventId(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Returns a cancellation handle.
  EventId schedule(Duration delay, std::function<void()> fn) {
    SPEAKUP_ASSERT(delay >= Duration::zero());
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute time (must not be in the past).
  EventId schedule_at(SimTime when, std::function<void()> fn) {
    SPEAKUP_ASSERT(when >= now_);
    auto state = std::make_shared<EventId::State>();
    heap_.push(Entry{when, next_seq_++, std::move(fn), state});
    ++pending_;
    return EventId{std::move(state)};
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId& id) {
    if (id.state_ && !id.state_->done) {
      id.state_->done = true;
      --pending_;
    }
    id.state_.reset();
  }

  /// Runs events until the queue empties or the clock passes `end`; the
  /// clock then reads `end` (time passes even when nothing happens).
  /// Events scheduled exactly at `end` do run.
  void run_until(SimTime end) {
    while (step(end)) {
    }
    if (now_ < end) now_ = end;
  }

  /// Runs until no events remain, leaving the clock at the last event (use
  /// with care: self-rescheduling processes make this unbounded).
  void run() {
    while (step(SimTime::from_ns(INT64_MAX / 8))) {
    }
  }

  /// Number of scheduled-but-not-yet-fired events.
  [[nodiscard]] std::size_t pending_events() const { return pending_; }

  /// Total events executed so far (for performance reporting).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  /// Fires the next due event (<= end); returns false if none.
  bool step(SimTime end) {
    while (!heap_.empty() && heap_.top().state->done) heap_.pop();  // tombstones
    if (heap_.empty() || heap_.top().when > end) return false;
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --pending_;
    ++executed_;
    SPEAKUP_ASSERT(e.when >= now_);
    now_ = e.when;
    e.state->done = true;
    e.fn();
    return true;
  }

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventId::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace speakup::sim
