// Differential/property battery for the adversarial tournament additions:
// the "elastic" and "puzzle" front ends and the "recon" and "switcher"
// attacker strategies. The load-bearing checks are differential — a new
// component configured to be inert must reproduce an existing baseline
// bit-for-bit (same ExperimentResult fingerprint), so the new code paths
// provably cost nothing when disabled — plus the §7.4 ordering regression:
// against defectors, the auction must serve good clients at least as well
// as the retry thinner.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "client/strategy.hpp"
#include "core/elastic_front_end.hpp"
#include "core/puzzle_front_end.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

namespace speakup {
namespace {

/// The tournament_small.json base, in C++: 5 good clients (10 rps demand,
/// 2 s patience) against 5 attackers on a 6 rps server — overloaded enough
/// that defenses are rationed and differences show.
exp::ScenarioConfig overload_lan(const std::string& defense,
                                 const std::string& bad_strategy,
                                 std::vector<std::pair<std::string, double>> knobs = {}) {
  exp::ScenarioConfig cfg = exp::lan_scenario(/*good=*/5, /*bad=*/5, /*capacity_rps=*/6.0,
                                              exp::DefenseMode::kAuction, /*seed=*/42);
  cfg.defense = defense;
  cfg.duration = Duration::seconds(6.0);
  cfg.elastic_interval = Duration::seconds(1.0);
  cfg.groups[0].workload.request_timeout = Duration::seconds(2.0);
  cfg.groups[1].workload.strategy = bad_strategy;
  cfg.groups[1].workload.strategy_knobs = std::move(knobs);
  return cfg;
}

// ---------------------------------------------------------------------------
// Differential: inert configurations reproduce their baselines exactly.
// ---------------------------------------------------------------------------

// "elastic" with max_scale <= 1 can never re-provision, so it must not even
// arm its monitor timer: apart from the defense's name, the run is
// bit-for-bit the "none" run — same event count, same fingerprint.
TEST(AdversarialDifferential, ElasticAtUnitScaleIsRowIdenticalToNone) {
  const exp::ExperimentResult none = exp::run_scenario(overload_lan("none", "poisson"));

  exp::ScenarioConfig cfg = overload_lan("elastic", "poisson");
  cfg.elastic_max_scale = 1.0;
  exp::ExperimentResult elastic = exp::run_scenario(cfg);

  EXPECT_EQ(elastic.events_executed, none.events_executed);
  EXPECT_EQ(elastic.defense, "elastic");
  elastic.defense = none.defense;  // the one intended difference
  EXPECT_EQ(elastic.fingerprint(), none.fingerprint());
}

// "recon" with a zero probe budget never probes and always pays: identical
// draws, identical decisions, identical dynamics to "poisson". The
// fingerprint hashes the group's strategy name, so that one intended
// difference is renamed away before comparing.
TEST(AdversarialDifferential, ReconWithZeroProbeBudgetMatchesPoissonBitForBit) {
  const exp::ExperimentResult poisson =
      exp::run_scenario(overload_lan("auction", "poisson"));
  exp::ExperimentResult recon =
      exp::run_scenario(overload_lan("auction", "recon", {{"probes", 0.0}}));
  EXPECT_EQ(recon.events_executed, poisson.events_executed);
  ASSERT_EQ(recon.groups.size(), 2u);
  EXPECT_EQ(recon.groups[1].strategy, "recon");
  recon.groups[1].strategy = "poisson";  // the one intended difference
  EXPECT_EQ(recon.fingerprint(), poisson.fingerprint());
}

// With a real probe budget the attacker refuses its early payment requests,
// which both changes the run and shows up as declined payments.
TEST(AdversarialDifferential, ReconProbingRefusesEarlyPayments) {
  const exp::ExperimentResult poisson =
      exp::run_scenario(overload_lan("auction", "poisson"));
  const exp::ExperimentResult recon =
      exp::run_scenario(overload_lan("auction", "recon", {{"probes", 50.0}}));
  EXPECT_NE(recon.fingerprint(), poisson.fingerprint());
  ASSERT_EQ(recon.groups.size(), 2u);
  EXPECT_GT(recon.groups[1].totals.payments_declined, 0);
}

// ---------------------------------------------------------------------------
// Behavior of the new defenses.
// ---------------------------------------------------------------------------

TEST(AdversarialBehavior, ElasticScalesUpUnderOverloadAndServesMoreThanNone) {
  const exp::ExperimentResult none = exp::run_scenario(overload_lan("none", "poisson"));

  exp::Experiment ex(overload_lan("elastic", "poisson"));
  const exp::ExperimentResult elastic = ex.run();
  auto* fe = dynamic_cast<core::ElasticFrontEnd*>(ex.front_end());
  ASSERT_NE(fe, nullptr);
  EXPECT_GT(fe->scale(), 1.0);
  EXPECT_LE(fe->scale(), 4.0);
  EXPECT_GE(elastic.thinner.counters.get("elastic_scale_ups"), 1);
  // Quadrupled capacity must not serve a smaller share of the good demand.
  EXPECT_GE(elastic.fraction_good_served, none.fraction_good_served);
  EXPECT_GT(elastic.served_total, none.served_total);
}

TEST(AdversarialBehavior, ElasticRejectsNonsenseKnobs) {
  exp::ScenarioConfig shrink = overload_lan("elastic", "poisson");
  shrink.elastic_max_scale = 0.5;  // a "scale-up" below 1x is a config bug
  EXPECT_THROW((void)exp::run_scenario(shrink), std::invalid_argument);

  exp::ScenarioConfig hair_trigger = overload_lan("elastic", "poisson");
  hair_trigger.elastic_threshold = 0.0;  // would scale on a fully idle server
  EXPECT_THROW((void)exp::run_scenario(hair_trigger), std::invalid_argument);
}

TEST(AdversarialBehavior, PuzzleFrontEndSolvesPuzzlesAndStaysDeterministic) {
  exp::ScenarioConfig cfg = overload_lan("puzzle", "poisson");
  cfg.puzzle_cost = Duration::seconds(0.5);
  const exp::ExperimentResult a = exp::run_scenario(cfg);
  EXPECT_GT(a.served_total, 0);
  EXPECT_GT(a.thinner.counters.get("puzzle_solved"), 0);
  EXPECT_GT(a.thinner.counters.get("puzzle_admitted"), 0);
  // Same scenario, same seed: bit-identical.
  const exp::ExperimentResult b = exp::run_scenario(cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

// A costlier puzzle currency throttles harder: the attacker's per-request
// solve time scales with difficulty, so raising the cost cannot increase
// the total served.
TEST(AdversarialBehavior, RaisingPuzzleCostDoesNotServeMore) {
  exp::ScenarioConfig cheap = overload_lan("puzzle", "poisson");
  cheap.puzzle_cost = Duration::seconds(0.1);
  exp::ScenarioConfig dear = overload_lan("puzzle", "poisson");
  dear.puzzle_cost = Duration::seconds(3.0);
  const exp::ExperimentResult a = exp::run_scenario(cheap);
  const exp::ExperimentResult b = exp::run_scenario(dear);
  EXPECT_GE(a.served_total, b.served_total);
}

// ---------------------------------------------------------------------------
// Behavior of the new strategies (strategy-level, no scenario needed).
// ---------------------------------------------------------------------------

TEST(AdversarialBehavior, SwitcherDefectsOnLowAdmissionRateAndStaysDefected) {
  client::StrategyParams p;
  auto s = client::StrategyFactory::instance().create("switcher", p);
  util::RngStream rng(1, "test");

  // Starved: 40 resolved, 1 served -> fraction 0.025 < 0.2 -> defect.
  client::ClientStats starved;
  starved.served = 1;
  starved.denied = 39;
  client::StrategyView v;
  v.stats = &starved;
  EXPECT_FALSE(s->pay(rng, v));

  // Sticky: once defected, a rosier view does not win it back.
  client::ClientStats healthy;
  healthy.served = 40;
  v.stats = &healthy;
  EXPECT_FALSE(s->pay(rng, v));

  // A fresh switcher with a healthy admission rate keeps paying.
  auto fresh = client::StrategyFactory::instance().create("switcher", p);
  EXPECT_TRUE(fresh->pay(rng, v));

  // Too few observations to judge: keeps paying.
  client::ClientStats early;
  early.served = 1;
  early.denied = 2;
  v.stats = &early;
  auto cautious = client::StrategyFactory::instance().create("switcher", p);
  EXPECT_TRUE(cautious->pay(rng, v));
}

TEST(AdversarialBehavior, SwitcherDefectsInsideAStarvedAuctionRun) {
  // Impatient attackers on an overloaded auction see most requests time out
  // (denied); the switcher reads that admission rate as detection and stops
  // buying in, while poisson keeps paying to the end.
  exp::ScenarioConfig cfg = overload_lan(
      "auction", "switcher", {{"min_observations", 5.0}, {"served_threshold", 0.9}});
  cfg.groups[1].workload.request_timeout = Duration::seconds(0.5);
  exp::ScenarioConfig base = cfg;
  base.groups[1].workload.strategy = "poisson";
  base.groups[1].workload.strategy_knobs.clear();
  const exp::ExperimentResult switcher = exp::run_scenario(cfg);
  const exp::ExperimentResult poisson = exp::run_scenario(base);
  ASSERT_EQ(switcher.groups.size(), 2u);
  EXPECT_GT(switcher.groups[1].totals.payments_declined, 0);
  EXPECT_EQ(poisson.groups[1].totals.payments_declined, 0);
}

// ---------------------------------------------------------------------------
// §7.4 regression: gaming the thinner.
// ---------------------------------------------------------------------------

// The paper's argument for charging in bandwidth up front: against clients
// who defect instead of paying, the auction serves the good population at
// least as well as the retry thinner does.
TEST(AdversarialRegression, AuctionServesGoodAtLeastAsWellAsRetryAgainstDefectors) {
  const exp::ExperimentResult auction =
      exp::run_scenario(overload_lan("auction", "defector"));
  const exp::ExperimentResult retry =
      exp::run_scenario(overload_lan("retry", "defector"));
  EXPECT_GE(auction.fraction_good_served, retry.fraction_good_served);
}

}  // namespace
}  // namespace speakup
