// Tests for the AuctionBook — the §3.3 mechanism in isolation — plus
// adversarial auction games validating Theorem 3.1 against the book itself.
#include <gtest/gtest.h>

#include <map>

#include "core/auction_book.hpp"
#include "core/theory.hpp"
#include "util/rng.hpp"

namespace speakup::core {
namespace {

TEST(AuctionBook, EmptyBookHasNoWinner) {
  AuctionBook book;
  EXPECT_FALSE(book.winner().has_value());
  EXPECT_FALSE(book.settle().has_value());
  EXPECT_EQ(book.size(), 0u);
}

TEST(AuctionBook, HighestBidWins) {
  AuctionBook book;
  book.credit(1, 100);
  book.credit(2, 300);
  book.credit(3, 200);
  ASSERT_TRUE(book.winner().has_value());
  EXPECT_EQ(*book.winner(), 2u);
}

TEST(AuctionBook, CreditsAccumulate) {
  AuctionBook book;
  book.credit(1, 100);
  book.credit(2, 150);
  book.credit(1, 100);  // 1 now has 200
  EXPECT_DOUBLE_EQ(book.bid(1), 200.0);
  EXPECT_EQ(*book.winner(), 1u);
}

TEST(AuctionBook, TieGoesToEarliestRegistration) {
  AuctionBook book;
  book.credit(7, 100);
  book.credit(3, 100);  // same bid, registered later
  EXPECT_EQ(*book.winner(), 7u);
}

TEST(AuctionBook, ZeroBidsStillAuction) {
  // Contenders that have paid nothing can still win (direct admissions at
  // light load); earliest registration wins.
  AuctionBook book;
  book.register_bidder(5);
  book.register_bidder(6);
  EXPECT_EQ(*book.winner(), 5u);
}

TEST(AuctionBook, IneligibleBidderCannotWin) {
  AuctionBook book;
  book.credit(1, 500);
  book.set_eligible(1, false);  // paid but its request never arrived
  book.credit(2, 10);
  EXPECT_EQ(*book.winner(), 2u);
  book.set_eligible(1, true);  // the request shows up
  EXPECT_EQ(*book.winner(), 1u);
}

TEST(AuctionBook, AllIneligibleMeansNoWinner) {
  AuctionBook book;
  book.credit(1, 500);
  book.set_eligible(1, false);
  EXPECT_FALSE(book.winner().has_value());
}

TEST(AuctionBook, SettleResetsWinnersBid) {
  AuctionBook book;
  book.credit(1, 300);
  book.credit(2, 100);
  EXPECT_EQ(*book.settle(), 1u);
  EXPECT_DOUBLE_EQ(book.bid(1), 0.0);
  // Next settle: 2 wins with its untouched balance.
  EXPECT_EQ(*book.settle(), 2u);
}

TEST(AuctionBook, RemoveDropsBidder) {
  AuctionBook book;
  book.credit(1, 300);
  book.credit(2, 100);
  book.remove(1);
  EXPECT_FALSE(book.contains(1));
  EXPECT_EQ(*book.winner(), 2u);
  EXPECT_DOUBLE_EQ(book.bid(1), 0.0);  // gone entirely
}

TEST(AuctionBook, ResetBidKeepsRegistration) {
  AuctionBook book;
  book.credit(1, 300);
  book.reset_bid(1);
  EXPECT_TRUE(book.contains(1));
  EXPECT_DOUBLE_EQ(book.bid(1), 0.0);
}

TEST(AuctionBook, RegisterIsIdempotent) {
  AuctionBook book;
  book.credit(1, 50);
  book.register_bidder(1);  // must not reset the balance or rank
  EXPECT_DOUBLE_EQ(book.bid(1), 50.0);
  EXPECT_EQ(book.size(), 1u);
}

// ---------------------------------------------------------------------------
// Theorem 3.1 games, driven through the real AuctionBook.
// ---------------------------------------------------------------------------

/// The victim deposits eps per service interval, the adversary (1-eps)
/// distributed by `strategy`. Returns the victim's win fraction.
template <typename Strategy>
double auction_game(double eps, int ticks, Strategy strategy) {
  AuctionBook book;
  const std::uint64_t kVictim = 0;
  int wins = 0;
  for (int t = 0; t < ticks; ++t) {
    book.credit(kVictim, eps);
    strategy(t, book, book.bid(kVictim));
    const auto w = book.settle();
    if (w.has_value() && *w == kVictim) ++wins;
  }
  return static_cast<double>(wins) / ticks;
}

struct GameParam {
  const char* name;
  double eps;
};

class AuctionBookTheorem : public ::testing::TestWithParam<GameParam> {};

TEST_P(AuctionBookTheorem, SingleHoarderRespectsBound) {
  const double eps = GetParam().eps;
  const double won = auction_game(eps, 20'000, [&](int, AuctionBook& b, double) {
    b.credit(1, 1.0 - eps);
  });
  EXPECT_GE(won, core::theory::theorem31_service_fraction(eps) * 0.95);
}

TEST_P(AuctionBookTheorem, ManyWaySplitRespectsBound) {
  const double eps = GetParam().eps;
  const double won = auction_game(eps, 20'000, [&](int, AuctionBook& b, double) {
    for (std::uint64_t i = 1; i <= 20; ++i) b.credit(i, (1.0 - eps) / 20);
  });
  EXPECT_GE(won, core::theory::theorem31_service_fraction(eps) * 0.95);
}

TEST_P(AuctionBookTheorem, ReactiveOutbidderRespectsLooseBound) {
  // The proof's worst case: outbid the victim by exactly epsilon, banking
  // the rest. Ties go against newer bidders, so bid slightly above.
  const double eps = GetParam().eps;
  const double won = auction_game(eps, 20'000, [&](int, AuctionBook& b, double victim) {
    b.credit(2, 1.0 - eps);  // bank
    const double need = victim - b.bid(1) + 1e-9;
    if (need > 0 && b.bid(2) >= need) {
      // Move `need` from the bank to the active bid.
      const double bank = b.bid(2);
      b.reset_bid(2);
      b.credit(2, bank - need);
      b.credit(1, need);
    }
  });
  EXPECT_GE(won, core::theory::theorem31_service_fraction_loose(eps) * 0.9);
}

TEST_P(AuctionBookTheorem, RandomizedSplitRespectsBound) {
  const double eps = GetParam().eps;
  util::RngStream rng(3, "book-theorem");
  const double won = auction_game(eps, 20'000, [&](int, AuctionBook& b, double) {
    b.credit(1 + static_cast<std::uint64_t>(rng.uniform_int(0, 7)), 1.0 - eps);
  });
  EXPECT_GE(won, core::theory::theorem31_service_fraction(eps) * 0.95);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, AuctionBookTheorem,
                         ::testing::Values(GameParam{"eps05", 0.05}, GameParam{"eps10", 0.10},
                                           GameParam{"eps20", 0.20}, GameParam{"eps33", 0.33},
                                           GameParam{"eps50", 0.50}),
                         [](const ::testing::TestParamInfo<GameParam>& i) {
                           return i.param.name;
                         });

}  // namespace
}  // namespace speakup::core
