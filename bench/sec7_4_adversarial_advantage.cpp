// §7.4: empirical adversarial advantage.
//
// Two questions from the paper:
//  (1) What is the minimum capacity c at which all of the good demand is
//      satisfied? (Paper: c = 115, i.e. 15% above the ideal c_id = 100.)
//  (2) How does the bad clients' window w affect their capture of the
//      server? (Paper: w = 20 is pessimistic; other w in 1..60 capture
//      less.)
//
// Both sweeps live in scenarios/sec7_4.json — the same file `speakup run`
// executes — so the bench and the CLI reproduce identical numbers. The
// window sweep is a grid over "groups.1.workload.window", the array-index
// grid-path form documented in docs/scenario_format.md.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Section 7.4", "empirical adversarial advantage");
  bench::print_paper_note(
      "all good demand is satisfied at c ~ 15% above the ideal c_id; "
      "bad-client window w = 20 is the (near-)pessimal choice");

  exp::ScenarioFile file = bench::load_scenarios("sec7_4.json");
  bench::apply_full_duration(file);

  // The two sweeps' x-axes come from the file: "c<capacity>" labels form
  // the capacity sweep, "w<window>" labels the bad-window sweep.
  std::vector<std::string> capacity_labels, window_labels;
  for (const exp::LabeledScenario& s : file.scenarios) {
    (s.label[0] == 'c' ? capacity_labels : window_labels).push_back(s.label);
  }

  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  // (1) Sweep c upward from c_id until the good clients are fully served.
  // "Fully served" tolerates a sliver of backlog-expiry noise.
  std::printf("c_id (ideal provisioning, G=B, g=50/s): %.0f req/s\n\n",
              core::theory::ideal_provisioning(50.0, 50.0, 50.0));
  stats::Table sweep({"capacity", "frac-good-served", "alloc(good)", "verdict"});
  double satisfied_at = -1.0;
  for (const std::string& label : capacity_labels) {
    const double c = runner.outcome(label).config.capacity_rps;
    const exp::ExperimentResult& r = runner.result(label);
    const bool ok = r.fraction_good_served >= 0.99;
    if (ok && satisfied_at < 0) satisfied_at = c;
    sweep.row()
        .add(static_cast<std::int64_t>(c))
        .add(r.fraction_good_served, 3)
        .add(r.allocation_good, 3)
        .add(ok ? "all good demand served" : "good demand NOT met");
  }
  sweep.print(std::cout);
  if (satisfied_at > 0) {
    std::printf("\n-> all good demand served at c = %.0f (%.0f%% above c_id; paper: +15%%)\n\n",
                satisfied_at, (satisfied_at / 100.0 - 1.0) * 100.0);
  } else {
    std::printf("\n-> good demand not fully served in the swept range\n\n");
  }

  // (2) Bad window sweep at c = 100.
  stats::Table wsweep({"bad-window-w", "alloc(bad)", "alloc(good)"});
  for (const std::string& label : window_labels) {
    const exp::ExperimentResult& r = runner.result(label);
    wsweep.row()
        .add(static_cast<std::int64_t>(
            runner.outcome(label).config.groups[1].workload.window))
        .add(r.allocation_bad, 3)
        .add(r.allocation_good, 3);
  }
  wsweep.print(std::cout);
  return 0;
}
