#include "exp/experiment.hpp"

#include <chrono>
#include <cstring>

#include "core/front_end_factory.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace speakup::exp {

Experiment::Experiment(ScenarioConfig cfg) : cfg_(std::move(cfg)) {
  util::require(cfg_.capacity_rps > 0, "capacity must be positive");
  util::require(cfg_.duration > Duration::zero(), "duration must be positive");
  build();
}

Experiment::~Experiment() = default;

void Experiment::build() {
  net_ = std::make_unique<net::Network>(loop_);

  // LAN core and the thinner behind a fat access link (condition C1).
  net::Switch& core = net_->add_switch("core");
  thinner_host_ = &net_->add_node<transport::Host>("thinner");
  net_->connect(*thinner_host_, core,
                net::LinkSpec{cfg_.thinner_bw, cfg_.thinner_delay, cfg_.thinner_queue});

  // Optional shared bottleneck subtree (§7.6 link l / §7.7 link m).
  net::Switch* bn_switch = nullptr;
  if (cfg_.bottleneck.has_value()) {
    bn_switch = &net_->add_switch("bottleneck-sw");
    net_->connect(*bn_switch, core,
                  net::LinkSpec{cfg_.bottleneck->rate, cfg_.bottleneck->delay,
                                cfg_.bottleneck->queue});
  }

  // §9 payment proxy (optional): pays the thinner on behalf of the groups
  // flagged via_proxy.
  transport::Host* proxy_host = nullptr;
  if (cfg_.proxy.has_value()) {
    proxy_host = &net_->add_node<transport::Host>("payment-proxy");
    net_->connect(*proxy_host, core,
                  net::LinkSpec{cfg_.proxy->uplink, cfg_.proxy->delay, cfg_.proxy->queue});
  }

  // Client populations. Each group runs on one of two behavior-equivalent
  // engines: one WorkloadClient object per member, or a struct-of-arrays
  // ClientPool for the whole group. Hosts, links, RNG streams, and global
  // client indices are constructed identically either way.
  std::uint32_t client_index = 0;
  for (std::size_t gi = 0; gi < cfg_.groups.size(); ++gi) {
    const ClientGroupSpec& g = cfg_.groups[gi];
    util::require(!g.behind_bottleneck || bn_switch != nullptr,
                  "group '" + g.label + "' is behind a bottleneck but none is configured");
    util::require(!g.via_proxy || proxy_host != nullptr,
                  "group '" + g.label + "' uses the proxy but none is configured");
    const net::NodeId front_end =
        g.via_proxy ? proxy_host->id() : thinner_host_->id();
    GroupRuntime rt;
    client::ClientPool* pool = nullptr;
    if (g.engine == "pooled") {
      pools_.push_back(std::make_unique<client::ClientPool>(loop_, front_end, g.workload,
                                                            client_index));
      pool = pools_.back().get();
      rt.pool = pool;
    } else {
      rt.first_client = clients_.size();
    }
    rt.n_clients = static_cast<std::size_t>(g.count);
    for (int i = 0; i < g.count; ++i) {
      auto& host = net_->add_node<transport::Host>(g.label + "-" + std::to_string(i));
      net_->connect(host, g.behind_bottleneck ? static_cast<net::Node&>(*bn_switch)
                                              : static_cast<net::Node&>(core),
                    net::LinkSpec{g.access_bw, g.access_delay, g.access_queue});
      util::RngStream rng(cfg_.seed, "client." + std::to_string(client_index));
      if (pool != nullptr) {
        pool->add_member(host, std::move(rng));
      } else {
        clients_.push_back(std::make_unique<client::WorkloadClient>(
            host, front_end, g.workload, client_index, std::move(rng)));
      }
      ++client_index;
    }
    group_rt_.push_back(rt);
  }

  // §7.7 bystander: web server S on the fast side, downloader H wherever
  // the spec puts it (behind the bottleneck, in the paper).
  if (cfg_.collateral.has_value()) {
    const CollateralSpec& c = *cfg_.collateral;
    auto& web = net_->add_node<transport::Host>("webserver");
    net_->connect(web, core,
                  net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(500), 1'000'000});
    file_server_ = std::make_unique<client::StaticFileServer>(web);
    auto& h = net_->add_node<transport::Host>("downloader");
    util::require(!c.behind_bottleneck || bn_switch != nullptr,
                  "collateral downloader needs a configured bottleneck");
    net_->connect(h, c.behind_bottleneck ? static_cast<net::Node&>(*bn_switch)
                                         : static_cast<net::Node&>(core),
                  net::LinkSpec{c.access_bw, c.access_delay, 96'000});
    client::FileTransferClient::Config fc;
    fc.server = web.id();
    fc.file_size = c.file_size;
    fc.count = c.downloads;
    downloader_ = std::make_unique<client::FileTransferClient>(h, fc);
  }

  net_->build_routes();

  if (proxy_host != nullptr) {
    client::PaymentProxy::Config pc;
    pc.thinner = thinner_host_->id();
    proxy_ = std::make_unique<client::PaymentProxy>(*proxy_host, pc);
  }

  // Front end: whatever defense the scenario names, via the registry.
  core::FrontEndConfig fc;
  fc.capacity_rps = cfg_.capacity_rps;
  fc.response_body = cfg_.response_body;
  fc.payment_window = cfg_.payment_window;
  fc.quantum = cfg_.quantum;
  fc.suspension_limit = cfg_.suspension_limit;
  fc.elastic_max_scale = cfg_.elastic_max_scale;
  fc.elastic_interval = cfg_.elastic_interval;
  fc.elastic_threshold = cfg_.elastic_threshold;
  fc.puzzle_cost = cfg_.puzzle_cost;
  front_end_ = core::FrontEndFactory::instance().create(
      cfg_.defense_name(), *thinner_host_, fc, util::RngStream(cfg_.seed, "server"));
}

ExperimentResult Experiment::run() {
  util::require(!ran_, "Experiment::run is callable once");
  ran_ = true;

  const auto wall_start = std::chrono::steady_clock::now();
  front_end_->on_run_start();
  // Group order == global client order, so mixed-engine scenarios start
  // (and reserve arrival seqs) in exactly the object engine's order.
  for (const GroupRuntime& rt : group_rt_) {
    if (rt.pool != nullptr) {
      rt.pool->start_all();
    } else {
      for (std::size_t i = 0; i < rt.n_clients; ++i) clients_[rt.first_client + i]->start();
    }
  }
  if (downloader_ != nullptr) {
    loop_.schedule(cfg_.collateral->start_delay, [this] { downloader_->start(); });
  }
  loop_.run_until(SimTime::zero() + cfg_.duration);
  front_end_->on_run_end();
  const auto wall_end = std::chrono::steady_clock::now();

  ExperimentResult r;
  r.defense = cfg_.defense_name();
  r.sim_duration = cfg_.duration;
  r.events_executed = loop_.executed_events();
  r.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  r.thinner = front_end_->stats();
  r.served_good = r.thinner.served_good;
  r.served_bad = r.thinner.served_bad;
  r.served_total = r.thinner.served_total();
  r.allocation_good = r.thinner.allocation_good();
  r.allocation_bad = r.thinner.allocation_bad();

  // Server-time split.
  const Duration good_busy = front_end_->server_busy_good();
  const Duration bad_busy = front_end_->server_busy_bad();
  const Duration all_busy = front_end_->server_busy_total();
  if (all_busy > Duration::zero()) {
    r.server_time_good = good_busy.sec() / all_busy.sec();
    r.server_time_bad = bad_busy.sec() / all_busy.sec();
  }
  r.server_busy_fraction = all_busy.sec() / cfg_.duration.sec();

  // Per-group results.
  r.groups.resize(cfg_.groups.size());
  for (std::size_t gi = 0; gi < cfg_.groups.size(); ++gi) {
    r.groups[gi].label = cfg_.groups[gi].label;
    r.groups[gi].count = cfg_.groups[gi].count;
    r.groups[gi].cls = cfg_.groups[gi].workload.cls;
    r.groups[gi].strategy = cfg_.groups[gi].workload.strategy;
  }
  for (std::size_t gi = 0; gi < group_rt_.size(); ++gi) {
    GroupResult& g = r.groups[gi];
    const GroupRuntime& rt = group_rt_[gi];
    for (std::size_t i = 0; i < rt.n_clients; ++i) {
      const client::ClientStats& s =
          rt.pool != nullptr ? rt.pool->stats(static_cast<std::uint32_t>(i))
                             : clients_[rt.first_client + i]->stats();
      g.totals.merge(s);
      g.served_per_client.push_back(s.served);
    }
  }
  client::ClientStats good_totals;
  for (auto& g : r.groups) {
    if (r.served_total > 0) {
      g.allocation = static_cast<double>(g.totals.served) /
                     static_cast<double>(r.served_total);
    }
    if (g.cls == http::ClientClass::kGood) good_totals.merge(g.totals);
  }
  r.fraction_good_served = good_totals.fraction_served();

  if (downloader_ != nullptr) {
    r.collateral_latencies = downloader_->latencies();
    r.collateral_failures = downloader_->failures();
  }
  if (proxy_ != nullptr) {
    r.proxy_relayed_requests = proxy_->relayed_requests();
    r.proxy_payments_started = proxy_->payments_started();
  }
  return r;
}

namespace {

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
}

void hash_i64(std::uint64_t& h, std::int64_t v) {
  hash_u64(h, static_cast<std::uint64_t>(v));
}

void hash_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  hash_u64(h, bits);
}

void hash_samples(std::uint64_t& h, const stats::SampleSet& s) {
  hash_u64(h, s.count());
  hash_double(h, s.sum());
  if (!s.empty()) {
    hash_double(h, s.min());
    hash_double(h, s.max());
  }
}

}  // namespace

std::uint64_t ExperimentResult::fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  hash_u64(h, util::fnv1a(defense));
  hash_i64(h, served_total);
  hash_i64(h, served_good);
  hash_i64(h, served_bad);
  hash_double(h, allocation_good);
  hash_double(h, allocation_bad);
  hash_double(h, server_time_good);
  hash_double(h, server_time_bad);
  hash_double(h, fraction_good_served);
  hash_double(h, server_busy_fraction);
  hash_i64(h, thinner.requests_received);
  hash_i64(h, thinner.direct_admissions);
  hash_i64(h, thinner.auctions_held);
  hash_i64(h, thinner.channels_expired);
  hash_i64(h, thinner.busy_rejections);
  hash_i64(h, thinner.payment_bytes_total);
  hash_i64(h, thinner.payment_bytes_wasted);
  hash_samples(h, thinner.price_good);
  hash_samples(h, thinner.price_bad);
  hash_samples(h, thinner.payment_time_good);
  hash_samples(h, thinner.payment_time_bad);
  hash_samples(h, thinner.retries_good);
  hash_samples(h, thinner.retries_bad);
  for (const auto& [name, value] : thinner.counters.all()) {
    hash_u64(h, util::fnv1a(name));
    hash_i64(h, value);
  }
  for (const GroupResult& g : groups) {
    hash_u64(h, util::fnv1a(g.label));
    hash_i64(h, g.count);
    hash_u64(h, util::fnv1a(g.strategy));
    hash_i64(h, g.totals.arrivals);
    hash_i64(h, g.totals.started);
    hash_i64(h, g.totals.served);
    hash_i64(h, g.totals.denied);
    hash_i64(h, g.totals.busy_rejected);
    hash_i64(h, g.totals.retries_sent);
    hash_i64(h, g.totals.payments_declined);
    hash_i64(h, g.totals.payments_abandoned);
    hash_i64(h, g.totals.payment_bytes_acked);
    hash_samples(h, g.totals.response_time);
    hash_double(h, g.allocation);
    for (const std::int64_t s : g.served_per_client) hash_i64(h, s);
  }
  hash_samples(h, collateral_latencies);
  hash_i64(h, collateral_failures);
  hash_i64(h, proxy_relayed_requests);
  hash_i64(h, proxy_payments_started);
  hash_i64(h, sim_duration.ns());
  hash_u64(h, events_executed);
  return h;
}

std::vector<StrategyResult> ExperimentResult::strategy_totals() const {
  std::vector<StrategyResult> out;
  for (const GroupResult& g : groups) {
    StrategyResult* s = nullptr;
    for (StrategyResult& existing : out) {
      if (existing.strategy == g.strategy) {
        s = &existing;
        break;
      }
    }
    if (s == nullptr) {
      out.push_back(StrategyResult{g.strategy, 0, {}, 0.0});
      s = &out.back();
    }
    s->clients += g.count;
    s->totals.merge(g.totals);
  }
  for (StrategyResult& s : out) {
    if (served_total > 0) {
      s.allocation =
          static_cast<double>(s.totals.served) / static_cast<double>(served_total);
    }
  }
  return out;
}

std::int64_t ExperimentResult::attacker_bytes() const {
  std::int64_t bytes = 0;
  for (const GroupResult& g : groups) {
    if (g.cls != http::ClientClass::kBad) continue;
    bytes += g.totals.payment_bytes_acked;
    bytes += static_cast<std::int64_t>(http::kMessageHeaderBytes) *
             (g.totals.started + g.totals.retries_sent);
  }
  return bytes;
}

ExperimentResult run_scenario(const ScenarioConfig& cfg) {
  Experiment e(cfg);
  return e.run();
}

}  // namespace speakup::exp
