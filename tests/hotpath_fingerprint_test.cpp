// Pins the ExperimentResult fingerprints of the checked-in smoke sweep and
// of the loss-heavy sweeps (shared_bottleneck.json, lossy.json).
//
// The hot-path refactor contract is behavior-invisibility: rewriting the
// event representation, the timer store (heap vs wheel), the TCP
// out-of-order tracker, the Link packet pipeline, or the queue storage must
// not change a single simulated outcome. fingerprint() hashes every counter
// in the result INCLUDING events_executed, so even an extra or re-ordered
// event trips this test. The smoke constants were captured from the
// pre-PR-4 (PR 3) tree; the loss-heavy constants from the pre-round-2
// (PR 4) tree — i.e. always from the code *before* the refactor they
// guard. If a future change legitimately alters simulation behavior,
// re-pin them in the same commit that explains why.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/scenario_io.hpp"

namespace speakup::exp {
namespace {

std::string hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

using Pins = std::vector<std::pair<std::string, std::string>>;

void expect_pins(const std::string& file_name, const Pins& pins) {
  const ScenarioFile file =
      load_scenario_file(std::string(SPEAKUP_SCENARIO_DIR) + "/" + file_name);
  ASSERT_EQ(file.scenarios.size(), pins.size()) << file_name;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    const LabeledScenario& s = file.scenarios[i];
    ASSERT_EQ(s.label, pins[i].first)
        << file_name << ": scenario order changed; re-check pins";
    const ExperimentResult r = run_scenario(s.config);
    EXPECT_EQ(hex(r.fingerprint()), pins[i].second)
        << "behavior drift in '" << s.label << "' (events_executed=" << r.events_executed << ")";
  }
}

TEST(HotPathFingerprint, SmokeSweepMatchesPreRefactorPins) {
  // Captured at PR 3 (seed event loop, pre-slab).
  expect_pins("smoke.json", {
                                {"smoke/none", "5926ff42af7d304f"},
                                {"smoke/retry", "6f503a28a37defd5"},
                                {"smoke/auction", "058ae2081de114a0"},
                                {"smoke/quantum", "785972ef788a9750"},
                                {"smoke/auction-seeds/seed7", "058ae2081de114a0"},
                                {"smoke/auction-seeds/seed8", "9bf42045de308896"},
                            });
}

TEST(HotPathFingerprint, SharedBottleneckSweepMatchesPreWheelPins) {
  // The fig8 grid: sustained bottleneck overflow — fast recovery and RTO on
  // every connection. Captured at PR 4 (binary heap, std::map OOO tracker),
  // before the timer wheel / 4-ary heap / interval-vector round.
  expect_pins("shared_bottleneck.json", {
                                            {"25/5", "ec056f4cfaef3dc3"},
                                            {"15/15", "b8da20a64b334756"},
                                            {"5/25", "159992d06766ed25"},
                                        });
}

TEST(HotPathFingerprint, LossySweepMatchesPreWheelPins) {
  // The fig9 grid: a saturated 1 Mbit/s bottleneck dropping continuously —
  // the deepest checked-in exercise of the TCP loss path. Captured at PR 4.
  expect_pins("lossy.json", {
                                {"off/1KB", "a1aa978c57d87c4c"},
                                {"on/1KB", "3fa7ce9c1dee200e"},
                                {"off/2KB", "adb477255f4ffb88"},
                                {"on/2KB", "33a431b0afaface3"},
                                {"off/4KB", "7f93c0fd13ebd5a0"},
                                {"on/4KB", "82c44c174f4cb1a3"},
                                {"off/8KB", "5aaaff106ab83ead"},
                                {"on/8KB", "51d944df0f228e04"},
                                {"off/16KB", "864e879c8fed0f43"},
                                {"on/16KB", "8d5589d1d0d275bd"},
                                {"off/32KB", "17063f2284721d39"},
                                {"on/32KB", "072a4170164804a5"},
                                {"off/64KB", "f4b2720bc8af781b"},
                                {"on/64KB", "8d33a45b8935aaa1"},
                                {"off/100KB", "78c4b8f38eaabe4b"},
                                {"on/100KB", "6364491cbbfafbec"},
                            });
}

}  // namespace
}  // namespace speakup::exp
