// The million-client engine: a struct-of-arrays WorkloadClient cohort.
//
// One ClientPool runs an entire client group (one WorkloadParams, N
// members) with the per-member state the object engine scatters across N
// WorkloadClient allocations laid out in dense parallel arrays indexed by
// member id: stats, strategy, RNG stream, request-id counter, backlog ring.
// Outstanding requests live in a pool-wide chunked slab (stable addresses,
// generation-counted slots) instead of N unordered_maps of unique_ptrs, and
// all members share one http::SessionPool.
//
// Arrival batching is the interesting part. The object engine keeps one
// pending event-loop entry per client; at 10^5-10^6 clients that is 10^5+
// live slab records just for arrival timers. The pool keeps ONE armed
// event per cohort and an indexed min-heap of per-member (when, seq) keys.
// Bit-exactness with the object engine falls out of the reserve_seq /
// schedule_keyed split in sim::EventLoop:
//
//   - wherever a WorkloadClient would call loop.schedule() for an arrival,
//     the pool calls loop.reserve_seq() — consuming the SAME sequence
//     number at the same point in execution — and parks (when, seq) in the
//     cohort heap;
//   - the cohort's single armed event is filed with schedule_keyed() under
//     the heap minimum's reserved key, so it occupies exactly the slot in
//     the (when, seq) total order that the per-client event would have;
//   - each fire handles exactly one member's arrival (one executed event,
//     matching the object engine's count) and re-arms at the new minimum.
//
// Every other code path — timers, TCP, streams, payments, deferred
// retirement — is shared with the object engine verbatim, so the whole
// simulation replays the identical event sequence and every
// ExperimentResult fingerprint matches byte for byte (enforced by
// tests/engine_differential_test.cpp on every checked-in scenario).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "client/client_stats.hpp"
#include "client/payment_channel.hpp"
#include "client/strategy.hpp"
#include "client/workload_client.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "sim/event_loop.hpp"
#include "sim/timer.hpp"
#include "transport/host.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace speakup::client {

class ClientPool {
 public:
  /// `base_index` is the global client index of member 0; members are
  /// globally indexed base_index, base_index+1, ... (trace track ids and
  /// request-id namespaces, identical to the object engine's client_index).
  ClientPool(sim::EventLoop& loop, net::NodeId thinner, const WorkloadParams& params,
             std::uint32_t base_index);

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;
  ~ClientPool();

  /// Adds one member. Must mirror the object engine's construction order:
  /// hosts in global client order, each with its own seeded RNG stream.
  void add_member(transport::Host& host, util::RngStream rng);

  /// Starts every member's arrival process, in member order — the seq
  /// reservations here line up with the object engine's start() loop.
  void start_all();

  /// Stops issuing new requests for one member (outstanding ones keep
  /// running); mirrors WorkloadClient::pause().
  void pause(std::uint32_t member) { paused_[member] = 1; }

  [[nodiscard]] std::size_t size() const { return hosts_.size(); }
  [[nodiscard]] const ClientStats& stats(std::uint32_t member) const {
    return stats_[member];
  }
  [[nodiscard]] std::size_t outstanding(std::uint32_t member) const {
    return outstanding_[member].size();
  }
  [[nodiscard]] std::size_t backlog(std::uint32_t member) const {
    return backlogs_[member].count;
  }

  // --- request-slab introspection (dense-id reuse / generation tests) ----
  /// Total request slots ever created (high-water mark of concurrency).
  [[nodiscard]] std::uint32_t request_slots() const {
    return static_cast<std::uint32_t>(slot_live_.size());
  }
  /// Times the slot has been recycled.
  [[nodiscard]] std::uint32_t request_generation(std::uint32_t slot) const {
    return slot_gen_[slot];
  }
  [[nodiscard]] std::size_t live_requests() const { return live_requests_; }

#if SPEAKUP_AUDIT_ENABLED
  /// Structural audit (SPEAKUP_AUDIT builds only): parallel member arrays
  /// aligned, cohort min-heap property + heap_pos_ inverse mapping, armed
  /// event agreement with the heap minimum, request-slab accounting, and
  /// outstanding lists holding exactly the live slots of their member.
  /// Runs every kAuditPeriod cohort fires (plus at start_all).
  void audit() const;
  /// Deliberate corruption for tests/audit_test.cpp: desyncs the heap_pos_
  /// inverse map — the signature of a missed swap during sift.
  void corrupt_heap_for_test();
#endif

 private:
  struct Request {
    std::uint64_t id = 0;  // (global_index + 1) << 32 | per-client seq
    std::uint32_t member = 0;
    SimTime sent;
    http::MessageStream* stream = nullptr;
    std::optional<PaymentChannelClient> payment;
    std::optional<sim::Timer> timer;
    std::optional<sim::Timer> defect_timer;
    bool paying = false;
    SimTime pay_started;
    bool retry_pumping = false;
    std::int64_t retries_sent = 0;
  };

  enum class Disposition { kServed, kDenied, kBusyRejected };

  /// Growable FIFO ring of backlogged arrival timestamps (the object
  /// engine's std::deque<SimTime>, minus the deque's chunk allocator).
  struct BacklogRing {
    std::vector<SimTime> buf;
    std::size_t head = 0;
    std::size_t count = 0;

    [[nodiscard]] const SimTime& front() const { return buf[head]; }
    void push_back(SimTime t) {
      if (count == buf.size()) grow();
      buf[(head + count) % buf.size()] = t;
      ++count;
    }
    void pop_front() {
      head = (head + 1) % buf.size();
      --count;
    }
    void grow() {
      const std::size_t old_cap = buf.size();
      std::vector<SimTime> bigger(old_cap == 0 ? 8 : old_cap * 2);
      for (std::size_t i = 0; i < count; ++i) bigger[i] = buf[(head + i) % old_cap];
      buf.swap(bigger);
      head = 0;
    }
  };

  static constexpr std::size_t kChunk = 64;
  static constexpr std::uint32_t kNpos = UINT32_MAX;

  struct alignas(Request) RawSlot {
    std::byte bytes[sizeof(Request)];
  };

  // --- transliterated WorkloadClient logic (one member at a time) --------
  [[nodiscard]] StrategyView view(std::uint32_t m) const;
  [[nodiscard]] int current_window(std::uint32_t m);
  void on_arrival(std::uint32_t m);
  void start_request(std::uint32_t m);
  void on_message(Request& r, const http::Message& m);
  void abandon_payment(std::uint64_t id);
  void pump_retries(Request& r);
  void finish(std::uint64_t id, Disposition d);
  void purge_backlog(std::uint32_t m);
  void drain_backlog(std::uint32_t m);

  [[nodiscard]] std::uint32_t global_index(std::uint32_t m) const {
    return base_index_ + m;
  }
  [[nodiscard]] std::uint64_t id_base(std::uint32_t m) const {
    return static_cast<std::uint64_t>(global_index(m) + 1) << 32;
  }

  // --- request slab ------------------------------------------------------
  [[nodiscard]] Request* request_at(std::uint32_t slot) {
    return std::launder(
        reinterpret_cast<Request*>(chunks_[slot / kChunk][slot % kChunk].bytes));
  }
  std::uint32_t acquire_request();
  void release_request(std::uint32_t slot);
  /// The live request with this full id, or nullptr (finish() idempotence:
  /// the full 64-bit id doubles as a generation check).
  [[nodiscard]] Request* find_request(std::uint64_t id, std::uint32_t* out_slot);

  // --- cohort arrival heap ------------------------------------------------
  /// Draws the member's next arrival gap, reserves the seq the object
  /// engine's schedule() would have consumed, and inserts into the heap.
  void draw_next_arrival(std::uint32_t m);
  void heap_insert(std::uint32_t m);
  void heap_pop_min();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  [[nodiscard]] bool heap_less(std::uint32_t a, std::uint32_t b) const {
    return arr_when_[a] < arr_when_[b] ||
           (arr_when_[a] == arr_when_[b] && arr_seq_[a] < arr_seq_[b]);
  }
  void arm_next();
  void fire();

  sim::EventLoop* loop_;
  net::NodeId thinner_;
  WorkloadParams params_;
  std::uint32_t base_index_;
  http::Message request_template_;  // interned kRequest header; id set per send
  http::SessionPool session_pool_;

  // Per-member parallel arrays (index = member id).
  std::vector<transport::Host*> hosts_;
  std::vector<util::RngStream> rngs_;
  std::vector<std::unique_ptr<Strategy>> strategies_;
  std::vector<ClientStats> stats_;
  std::vector<std::uint32_t> next_seq_;
  std::vector<std::uint8_t> paused_;
  std::vector<BacklogRing> backlogs_;
  std::vector<std::vector<std::uint32_t>> outstanding_;  // request slot ids

  // Pending-arrival keys + indexed min-heap over members.
  std::vector<SimTime> arr_when_;
  std::vector<std::uint64_t> arr_seq_;
  std::vector<std::uint32_t> heap_;      // member ids, heap-ordered
  std::vector<std::uint32_t> heap_pos_;  // member -> index in heap_, or kNpos
  sim::EventId armed_ev_;

  // Request slab.
  std::vector<std::unique_ptr<RawSlot[]>> chunks_;
  std::vector<std::uint8_t> slot_live_;
  std::vector<std::uint32_t> slot_gen_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_requests_ = 0;

#if SPEAKUP_AUDIT_ENABLED
  static constexpr std::uint64_t kAuditPeriod = 256;
  std::uint64_t audit_countdown_ = kAuditPeriod;
#endif
};

}  // namespace speakup::client
