// Strong unit types used throughout the simulator.
//
// Time is held as integer nanoseconds (SimTime / Duration) so that event
// ordering is exact and runs are bit-reproducible. Bandwidth is held as an
// integer bits-per-second. Helper factories (seconds(), mbps(), kilobytes(),
// ...) keep call sites free of unit mistakes, per the Core Guidelines advice
// to make interfaces precisely typed.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

#include "util/assert.hpp"

namespace speakup {

/// A span of simulated time. Integer nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t ns) { return Duration{ns}; }
  static constexpr Duration micros(std::int64_t us) { return Duration{us * 1000}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration zero() { return Duration{0}; }
  /// Effectively "never" — used for disabled timers and sentinels.
  static constexpr Duration infinite() { return Duration{INT64_MAX / 4}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock. Integer nanoseconds since start.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime zero() { return SimTime{}; }
  static constexpr SimTime from_ns(std::int64_t ns) { SimTime t; t.ns_ = ns; return t; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime::from_ns(t.ns_ + d.ns());
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }

 private:
  std::int64_t ns_ = 0;
};

/// Link or access-line rate. Integer bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth bps(std::int64_t v) { return Bandwidth{v}; }
  static constexpr Bandwidth kbps(double v) {
    return Bandwidth{static_cast<std::int64_t>(v * 1e3 + 0.5)};
  }
  static constexpr Bandwidth mbps(double v) {
    return Bandwidth{static_cast<std::int64_t>(v * 1e6 + 0.5)};
  }
  static constexpr Bandwidth gbps(double v) {
    return Bandwidth{static_cast<std::int64_t>(v * 1e9 + 0.5)};
  }

  [[nodiscard]] constexpr std::int64_t bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double mbits_per_sec() const { return static_cast<double>(bps_) / 1e6; }
  [[nodiscard]] constexpr double bytes_per_sec() const { return static_cast<double>(bps_) / 8.0; }

  /// Time to serialize `bytes` onto a line of this rate.
  [[nodiscard]] Duration transmission_time(std::int64_t bytes) const {
    SPEAKUP_ASSERT(bps_ > 0);
    const double ns = static_cast<double>(bytes) * 8.0 * 1e9 / static_cast<double>(bps_);
    return Duration::nanos(static_cast<std::int64_t>(std::llround(ns)));
  }

  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ + b.bps_}; }

 private:
  constexpr explicit Bandwidth(std::int64_t bps) : bps_(bps) {}
  std::int64_t bps_ = 0;
};

using Bytes = std::int64_t;

constexpr Bytes kilobytes(std::int64_t kb) { return kb * 1000; }
constexpr Bytes megabytes(std::int64_t mb) { return mb * 1'000'000; }

inline std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.sec() << "s"; }
inline std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.sec() << "s"; }
inline std::ostream& operator<<(std::ostream& os, Bandwidth b) {
  return os << b.mbits_per_sec() << "Mbit/s";
}

}  // namespace speakup
