// Tests for the workload clients (Poisson arrivals, windowing, backlog,
// timeouts), the payment-channel client (POST churn) and the file-transfer
// pair.
#include <gtest/gtest.h>

#include "client/file_transfer.hpp"
#include "client/payment_channel.hpp"
#include "client/workload_client.hpp"
#include "core/auction_thinner.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::client {
namespace {

struct Rig {
  Rig() : net(loop) {
    sw = &net.add_switch("sw");
    thinner_host = &net.add_node<transport::Host>("thinner");
    net.connect(*thinner_host, *sw,
                net::LinkSpec{Bandwidth::gbps(1.0), Duration::micros(500), 4'000'000});
  }

  transport::Host& add_client_host(const std::string& name,
                                   Bandwidth bw = Bandwidth::mbps(2.0)) {
    auto& h = net.add_node<transport::Host>(name);
    net.connect(h, *sw, net::LinkSpec{bw, Duration::micros(500), 96'000});
    return h;
  }

  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }

  sim::EventLoop loop;
  net::Network net;
  net::Switch* sw = nullptr;
  transport::Host* thinner_host = nullptr;
};

TEST(WorkloadClient, ParamFactoriesMatchPaper) {
  const WorkloadParams g = good_client_params();
  EXPECT_DOUBLE_EQ(g.lambda, 2.0);
  EXPECT_EQ(g.window, 1);
  EXPECT_EQ(g.cls, http::ClientClass::kGood);
  const WorkloadParams b = bad_client_params();
  EXPECT_DOUBLE_EQ(b.lambda, 40.0);
  EXPECT_EQ(b.window, 20);
  EXPECT_EQ(b.cls, http::ClientClass::kBad);
}

TEST(WorkloadClient, RejectsBadParameters) {
  Rig rig;
  auto& h = rig.add_client_host("c");
  WorkloadParams p = good_client_params();
  p.lambda = 0.0;
  EXPECT_THROW(WorkloadClient(h, rig.thinner_host->id(), p, 0, util::RngStream(1, "c")),
               std::invalid_argument);
  p = good_client_params();
  p.window = 0;
  EXPECT_THROW(WorkloadClient(h, rig.thinner_host->id(), p, 0, util::RngStream(1, "c")),
               std::invalid_argument);
}

TEST(WorkloadClient, ServedByIdleServer) {
  Rig rig;
  core::AuctionThinner::Config cfg;
  cfg.capacity_rps = 100.0;
  core::AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_client_host("c");
  WorkloadClient c(h, rig.thinner_host->id(), good_client_params(), 0,
                   util::RngStream(1, "c"));
  c.start();
  rig.run_for(10.0);
  // lambda=2 for 10 s: ~20 arrivals, nearly all served, none denied.
  EXPECT_GT(c.stats().served, 10);
  EXPECT_EQ(c.stats().denied, 0);
  EXPECT_DOUBLE_EQ(c.stats().fraction_served(), 1.0);
  // Response times on an idle server: connection setup + ~10 ms service.
  EXPECT_LT(c.stats().response_time.mean(), 0.1);
}

TEST(WorkloadClient, ArrivalRateMatchesLambda) {
  Rig rig;
  core::AuctionThinner::Config cfg;
  cfg.capacity_rps = 1000.0;
  core::AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_client_host("c");
  WorkloadParams p = good_client_params();
  p.lambda = 5.0;
  WorkloadClient c(h, rig.thinner_host->id(), p, 0, util::RngStream(1, "c"));
  c.start();
  rig.run_for(60.0);
  EXPECT_NEAR(static_cast<double>(c.stats().arrivals), 300.0, 60.0);  // ~4 sigma
}

TEST(WorkloadClient, WindowLimitsOutstanding) {
  Rig rig;
  // A thinner that never answers: requests pile up to the window limit.
  rig.thinner_host->listen(80, [](transport::TcpConnection&) {});
  auto& h = rig.add_client_host("c");
  WorkloadParams p = bad_client_params();  // lambda 40, window 20
  WorkloadClient c(h, rig.thinner_host->id(), p, 0, util::RngStream(1, "c"));
  c.start();
  rig.run_for(2.0);
  EXPECT_LE(c.outstanding(), 20u);
  EXPECT_GT(c.backlog(), 0u);  // excess arrivals queue up
}

TEST(WorkloadClient, UnansweredRequestsTimeOutAsDenials) {
  Rig rig;
  rig.thinner_host->listen(80, [](transport::TcpConnection&) {});  // silent
  auto& h = rig.add_client_host("c");
  WorkloadClient c(h, rig.thinner_host->id(), good_client_params(), 0,
                   util::RngStream(1, "c"));
  c.start();
  rig.run_for(25.0);
  // Every started request dies at the 10 s timeout.
  EXPECT_GT(c.stats().denied, 0);
  EXPECT_EQ(c.stats().served, 0);
  EXPECT_DOUBLE_EQ(c.stats().fraction_served(), 0.0);
}

TEST(WorkloadClient, BacklogEntriesExpireAfterTenSeconds) {
  Rig rig;
  rig.thinner_host->listen(80, [](transport::TcpConnection&) {});  // silent
  auto& h = rig.add_client_host("c");
  WorkloadParams p = good_client_params();  // window 1
  p.lambda = 10.0;                          // arrivals far outpace service
  WorkloadClient c(h, rig.thinner_host->id(), p, 0, util::RngStream(1, "c"));
  c.start();
  rig.run_for(30.0);
  // Arrivals ~300; at most ~3 can be in flight at a time; backlog churns
  // through 10 s expiries.
  EXPECT_GT(c.stats().denied, 100);
}

TEST(WorkloadClient, ConnectionResetCountsAsDenial) {
  Rig rig;
  // No listener at all: connect attempts are RST'd immediately.
  auto& h = rig.add_client_host("c");
  WorkloadClient c(h, rig.thinner_host->id(), good_client_params(), 0,
                   util::RngStream(1, "c"));
  c.start();
  rig.run_for(5.0);
  EXPECT_GT(c.stats().denied, 0);
  EXPECT_EQ(c.stats().served, 0);
}

TEST(WorkloadClient, DistinctClientsUseDistinctRequestIds) {
  // Request ids are namespaced by client index; two clients never collide.
  const std::uint64_t base0 = (static_cast<std::uint64_t>(0 + 1) << 32);
  const std::uint64_t base1 = (static_cast<std::uint64_t>(1 + 1) << 32);
  EXPECT_NE(base0, base1);
  EXPECT_EQ(base0 >> 32, 1u);
  EXPECT_EQ(base1 >> 32, 2u);
}

TEST(PaymentChannel, PostsChurnWhenPriceExceedsPostSize) {
  // Small POSTs force kPostContinue churn: the client must reopen channels.
  Rig rig;
  core::AuctionThinner::Config cfg;
  cfg.capacity_rps = 0.25;  // ~4 s service: contenders must pay a while
  core::AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h1 = rig.add_client_host("c1", Bandwidth::mbps(10.0));
  auto& h2 = rig.add_client_host("c2", Bandwidth::mbps(10.0));
  WorkloadParams p = good_client_params();
  p.post_size = kilobytes(50);  // tiny POSTs -> many per payment
  WorkloadClient c1(h1, rig.thinner_host->id(), p, 0, util::RngStream(1, "c1"));
  WorkloadClient c2(h2, rig.thinner_host->id(), p, 1, util::RngStream(1, "c2"));
  c1.start();
  c2.start();
  rig.run_for(20.0);
  // Both clients contend; at least one had to send multiple POSTs.
  EXPECT_GT(thinner.stats().payment_bytes_total, kilobytes(100));
  EXPECT_GT(c1.stats().served + c2.stats().served, 2);
  EXPECT_GT(c1.stats().payment_bytes_acked + c2.stats().payment_bytes_acked,
            kilobytes(100));
}

TEST(FileTransfer, DownloadsCompleteAndAreTimed) {
  Rig rig;
  auto& server_host = rig.add_client_host("web", Bandwidth::mbps(100.0));
  StaticFileServer server(server_host);
  auto& h = rig.add_client_host("dl", Bandwidth::mbps(2.0));
  FileTransferClient::Config cfg;
  cfg.server = server_host.id();
  cfg.file_size = kilobytes(64);
  cfg.count = 10;
  FileTransferClient dl(h, cfg);
  bool done = false;
  dl.set_on_done([&] { done = true; });
  dl.start();
  rig.run_for(60.0);
  EXPECT_TRUE(done);
  EXPECT_EQ(dl.completed(), 10);
  EXPECT_EQ(dl.failures(), 0);
  ASSERT_EQ(dl.latencies().count(), 10u);
  // 64 KB at 2 Mbit/s: >= 0.26 s each.
  EXPECT_GT(dl.latencies().mean(), 0.25);
  EXPECT_LT(dl.latencies().mean(), 2.0);
  EXPECT_EQ(server.requests(), 10);
}

TEST(FileTransfer, LatencyGrowsWithFileSize) {
  Rig rig;
  auto& server_host = rig.add_client_host("web", Bandwidth::mbps(100.0));
  StaticFileServer server(server_host);
  auto& h = rig.add_client_host("dl", Bandwidth::mbps(2.0));
  double means[2] = {0, 0};
  int i = 0;
  for (const Bytes size : {kilobytes(4), kilobytes(64)}) {
    FileTransferClient::Config cfg;
    cfg.server = server_host.id();
    cfg.file_size = size;
    cfg.count = 5;
    FileTransferClient dl(h, cfg);
    dl.start();
    rig.run_for(30.0);
    means[i++] = dl.latencies().mean();
  }
  EXPECT_GT(means[1], means[0] * 2);
}

}  // namespace
}  // namespace speakup::client
