// The abstract auction game behind Theorem 3.1, plus its adversary-strategy
// registry and grid-spec loader.
//
// The game: one auction per service interval. A victim client continuously
// delivers an eps fraction of the thinner's inbound bandwidth; an adversary
// spends the remaining (1-eps) fraction across any number of sub-bidders
// with any timing. Theorem 3.1 says the victim still wins at least
// eps/(2-eps) of the auctions. bench/abl5_theorem31_bound.cpp sweeps the
// grid in scenarios/abl5.json over the registered adversary strategies and
// prints the measured fraction next to the theoretical bounds.
//
// Adversary strategies are C++ functions; the JSON grid refers to them BY
// NAME (`speakup validate` rejects names missing from the registry). Keep
// the timing logic here and the swept parameters in the scenario file.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace speakup::core {

/// Adversary bid state: sub-bidder id -> bytes banked toward that bid.
using AdversaryBids = std::map<int, double>;

/// Called once per tick: spend `budget` ((1-eps) x interval) across the
/// bids, optionally reacting to the victim's visible `victim_bid`.
using AdversaryFn =
    std::function<void(int tick, AdversaryBids& bids, double victim_bid, double budget)>;

/// Registered adversary names, in registration (= display) order.
[[nodiscard]] const std::vector<std::string>& adversary_names();

/// Looks up a registered adversary; throws std::invalid_argument with the
/// known names when absent.
[[nodiscard]] const AdversaryFn& adversary_fn(const std::string& name);

/// Parsed scenarios/abl5.json (kind "auction_game").
struct AuctionGameSpec {
  std::string description;
  std::uint64_t seed = 0;
  std::string stream;      // RngStream label
  int ticks_quick = 0;     // default-mode auction count
  int ticks_full = 0;      // SPEAKUP_FULL=1 auction count
  std::vector<double> eps;
  std::vector<double> delta;            // service-interval jitter half-widths
  std::vector<std::string> adversaries; // registry names, swept in order
};

/// Loads and validates an auction-game grid file: checks `kind`, field
/// types, non-empty grids, and that every adversary name is registered.
[[nodiscard]] AuctionGameSpec load_auction_game_file(const std::string& path);

/// Plays `ticks` auctions and returns the fraction the victim won. `delta`
/// perturbs each interval's budget by U[1-delta, 1+delta] (service-time
/// fluctuation: a longer interval lets everyone pay more before the next
/// auction).
[[nodiscard]] double run_auction_game(double eps, double delta, int ticks,
                                      util::RngStream& rng, const AdversaryFn& adversary);

}  // namespace speakup::core
