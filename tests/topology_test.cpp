// Topology-level behaviour: multi-hop paths, bottleneck sharing across many
// flows, and the §7.6/§7.7 network effects the evaluation depends on.
#include <gtest/gtest.h>

#include <vector>

#include "client/file_transfer.hpp"
#include "exp/experiment.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"

namespace speakup {
namespace {

TEST(Topology, ManyFlowsFillASharedBottleneck) {
  // 8 senders through a 4 Mbit/s bottleneck: aggregate goodput approaches
  // the link rate even though each flow's share is small.
  sim::EventLoop loop;
  net::Network net(loop);
  auto& sw = net.add_switch("sw");
  auto& sink_sw = net.add_switch("sink-sw");
  auto& sink = net.add_node<transport::Host>("sink");
  net.connect(sw, sink_sw, net::LinkSpec{Bandwidth::mbps(4.0), Duration::millis(5), 50'000});
  net.connect(sink, sink_sw,
              net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(100), 1'000'000});
  std::vector<transport::Host*> senders;
  for (int i = 0; i < 8; ++i) {
    auto& h = net.add_node<transport::Host>("h" + std::to_string(i));
    net.connect(h, sw, net::LinkSpec{Bandwidth::mbps(2.0), Duration::millis(1), 48'000});
    senders.push_back(&h);
  }
  net.build_routes();
  Bytes delivered = 0;
  sink.listen(80, [&](transport::TcpConnection& c) {
    transport::TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes n) { delivered += n; };
    c.set_callbacks(std::move(cbs));
  });
  for (auto* h : senders) h->connect(sink.id(), 80).write(megabytes(50));
  loop.run_until(SimTime::zero() + Duration::seconds(30.0));
  const double mbps = static_cast<double>(delivered) * 8 / 30.0 / 1e6;
  EXPECT_GT(mbps, 3.0);
  EXPECT_LT(mbps, 4.0);
}

TEST(Topology, UplinkSaturationDelaysUnrelatedControlTraffic) {
  // The §7.7 mechanism in miniature: one host saturates the uplink of a
  // shared 1 Mbit/s link; another host's tiny request-response exchange
  // across the same uplink inflates dramatically.
  sim::EventLoop loop;
  net::Network net(loop);
  auto& near_sw = net.add_switch("near");
  auto& far_sw = net.add_switch("far");
  net.connect(near_sw, far_sw,
              net::LinkSpec{Bandwidth::mbps(1.0), Duration::millis(100), 100'000});
  auto& hog = net.add_node<transport::Host>("hog");
  auto& mouse = net.add_node<transport::Host>("mouse");
  auto& server = net.add_node<transport::Host>("server");
  net.connect(hog, near_sw, net::LinkSpec{Bandwidth::mbps(2.0), Duration::micros(500), 48'000});
  net.connect(mouse, near_sw,
              net::LinkSpec{Bandwidth::mbps(2.0), Duration::micros(500), 48'000});
  net.connect(server, far_sw,
              net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(500), 1'000'000});
  net.build_routes();
  client::StaticFileServer files(server);

  auto measure = [&](bool hog_active) {
    if (hog_active) {
      server.listen(90, [](transport::TcpConnection&) {});
      hog.connect(server.id(), 90).write(megabytes(100));
      loop.run_until(loop.now() + Duration::seconds(5.0));  // fill the queue
    }
    client::FileTransferClient::Config fc;
    fc.server = server.id();
    fc.file_size = kilobytes(1);
    fc.count = 10;
    client::FileTransferClient dl(mouse, fc);
    dl.start();
    loop.run_until(loop.now() + Duration::seconds(60.0));
    return dl.latencies().mean();
  };

  const double quiet = measure(false);
  const double crowded = measure(true);
  EXPECT_GT(quiet, 0.0);
  EXPECT_GT(crowded, quiet * 2.0);
}

TEST(Topology, ExperimentRunsStarTopologyAtPaperScale) {
  // 50 clients (the paper's count) at 60 s: a smoke test that the full
  // experiment machinery holds up at evaluation scale.
  exp::ScenarioConfig cfg =
      exp::lan_scenario(25, 25, 100.0, exp::DefenseMode::kAuction, /*seed=*/61);
  cfg.duration = Duration::seconds(20.0);
  const exp::ExperimentResult r = exp::run_scenario(cfg);
  EXPECT_GT(r.served_total, 1500);           // ~c * duration
  EXPECT_LT(r.served_total, 2100);
  EXPECT_GT(r.events_executed, 100'000u);
  EXPECT_EQ(r.groups.size(), 2u);
}

TEST(Topology, CollateralBaselineMatchesPathPhysics) {
  // Downloader alone across the §7.7 bottleneck: 1 KB download needs
  // SYN/SYN-ACK (1 RTT) + request/response (1 RTT) over a ~0.41 s RTT path.
  exp::ScenarioConfig cfg;
  cfg.mode = exp::DefenseMode::kAuction;
  cfg.capacity_rps = 2.0;
  cfg.seed = 62;
  cfg.duration = Duration::seconds(120.0);
  cfg.bottleneck = exp::BottleneckSpec{Bandwidth::mbps(1.0), Duration::millis(100), 100'000};
  exp::CollateralSpec col;
  col.file_size = kilobytes(1);
  col.downloads = 20;
  cfg.collateral = col;
  const exp::ExperimentResult r = exp::run_scenario(cfg);
  ASSERT_EQ(r.collateral_latencies.count(), 20u);
  EXPECT_GT(r.collateral_latencies.mean(), 0.38);
  EXPECT_LT(r.collateral_latencies.mean(), 0.55);
  EXPECT_EQ(r.collateral_failures, 0);
}

TEST(Topology, AsymmetricDuplexCarriesAcksUnimpeded) {
  // Data a->b at 1 Mbit/s with a fat reverse channel: ACKs never queue, so
  // goodput matches the forward rate.
  sim::EventLoop loop;
  net::Network net(loop);
  auto& a = net.add_node<transport::Host>("a");
  auto& b = net.add_node<transport::Host>("b");
  net.connect(a, b, net::LinkSpec{Bandwidth::mbps(1.0), Duration::millis(5), 48'000},
              net::LinkSpec{Bandwidth::mbps(50.0), Duration::millis(5), 48'000});
  net.build_routes();
  Bytes delivered = 0;
  b.listen(80, [&](transport::TcpConnection& c) {
    transport::TcpConnection::Callbacks cbs;
    cbs.on_data = [&](Bytes n) { delivered += n; };
    c.set_callbacks(std::move(cbs));
  });
  a.connect(b.id(), 80).write(megabytes(3));
  loop.run_until(SimTime::zero() + Duration::seconds(20.0));
  EXPECT_GT(static_cast<double>(delivered) * 8 / 20.0 / 1e6, 0.85);
}

}  // namespace
}  // namespace speakup
