// Result persistence: serialize Runner outcomes to CSV and JSON so sweeps
// are diffable across PRs and mergeable across processes.
//
// Every row carries the scenario's global expansion index (its coordinate
// in the scenario file) and the deterministic ExperimentResult::fingerprint.
// Rows are written sorted by index and every field except none is
// deterministic (wall_seconds is deliberately excluded from CSV), so
//
//   run --shard 0/2 + run --shard 1/2 + merge  ==  run unsharded
//
// byte for byte. That identity is the contract `speakup merge` relies on
// and result_writer_test.cpp enforces; it is the first concrete step of
// ROADMAP's "scale the Runner past one process" item.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace speakup::exp {

class ResultWriter {
 public:
  /// The CSV header row (no newline). Stable: downstream tooling and
  /// sharded merges key on it.
  [[nodiscard]] static const std::string& csv_header();

  /// One outcome as its CSV row (no newline). Deterministic for a given
  /// scenario + seed: doubles use shortest-round-trip formatting, the
  /// fingerprint is fixed-width hex, and wall time is excluded. A failed
  /// outcome leaves the metric columns empty and fills `error`.
  [[nodiscard]] static std::string csv_row(std::size_t index, const RunOutcome& o);

  /// Records one outcome under its global scenario index.
  void add(std::size_t index, const RunOutcome& outcome);

  /// All recorded outcomes as CSV / JSON, sorted by index. The JSON form
  /// additionally carries per-group breakdowns and wall_seconds (documented
  /// as the one nondeterministic field).
  void write_csv(std::ostream& os) const;
  void write_json(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Merges sharded CSV outputs (each produced by write_csv) into the
  /// byte-identical unsharded file: headers must match, indices must not
  /// collide, rows come out sorted by index. Throws std::invalid_argument
  /// on malformed or overlapping inputs. A scenario index appearing twice
  /// is rejected whether the copies sit in different inputs or inside one
  /// input; the `names` overload reports which input file(s), so a retried
  /// dispatcher slice that leaked into two shard CSVs is diagnosable.
  [[nodiscard]] static std::string merge_csv(const std::vector<std::string>& shards);
  [[nodiscard]] static std::string merge_csv(const std::vector<std::string>& shards,
                                             const std::vector<std::string>& names);

  /// Merges sharded JSON outputs (each produced by write_json) the same
  /// way: entries are keyed by their "index", overlaps are errors, and the
  /// merged document is sorted by index. Because entries are re-serialized
  /// from parsed values (deterministic key order, round-trip numbers), the
  /// merge of a writer's split outputs is byte-identical to that writer's
  /// unsharded write_json — modulo nothing: wall_seconds rides along
  /// verbatim inside each entry.
  [[nodiscard]] static std::string merge_json(const std::vector<std::string>& shards);
  [[nodiscard]] static std::string merge_json(const std::vector<std::string>& shards,
                                              const std::vector<std::string>& names);

  /// The scenario indices present in a CSV produced by write_csv (header
  /// required), sorted ascending.
  [[nodiscard]] static std::vector<std::size_t> csv_indices(const std::string& csv);

  /// What `speakup run --resume` needs from an interrupted run's CSV: the
  /// rows that completed successfully (failed rows are dropped so their
  /// scenarios get re-run, not carried forward) and their (index, label)
  /// pairs for validating the CSV against the scenario file being resumed.
  /// Robust against a writer killed mid-row: a final line without a
  /// trailing newline and any row with the wrong column count are treated
  /// as not completed (their scenarios re-run). A duplicate index is a
  /// hard error — that CSV was never a write_csv output.
  struct ResumeInfo {
    std::string completed_csv;  // header + successfully completed rows
    std::vector<std::pair<std::size_t, std::string>> completed;  // (index, label)
  };
  [[nodiscard]] static ResumeInfo resume_info(const std::string& csv);

 private:
  struct Row {
    std::size_t index;
    RunOutcome outcome;
  };
  std::vector<Row> rows_;
};

}  // namespace speakup::exp
