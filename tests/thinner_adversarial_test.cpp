// Adversarial-input tests for the thinners: malformed, duplicated and
// out-of-order protocol messages must never crash the front end, corrupt
// accounting, or let a client cheat the auction's bookkeeping.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/auction_thinner.hpp"
#include "core/quantum_thinner.hpp"
#include "core/retry_thinner.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {
namespace {

using http::ClientClass;
using http::Message;
using http::MessageStream;
using http::MessageType;

struct Rig {
  Rig() : net(loop), pool(loop) {
    sw = &net.add_switch("sw");
    thinner_host = &net.add_node<transport::Host>("thinner");
    net.connect(*thinner_host, *sw,
                net::LinkSpec{Bandwidth::gbps(1.0), Duration::micros(500), 4'000'000});
  }

  transport::Host& add_host(const std::string& name) {
    auto& h = net.add_node<transport::Host>(name);
    net.connect(h, *sw, net::LinkSpec{Bandwidth::mbps(10.0), Duration::micros(500), 96'000});
    return h;
  }

  /// Opens a raw stream to the thinner and sends `msgs` on establishment.
  MessageStream& blast(transport::Host& from, std::uint32_t port,
                       std::vector<Message> msgs) {
    transport::TcpConnection& c = from.connect(thinner_host->id(), port);
    MessageStream& s = pool.adopt(c);
    MessageStream::Callbacks cbs;
    cbs.on_established = [&s, msgs = std::move(msgs)] {
      for (const Message& m : msgs) s.send(m);
    };
    s.set_callbacks(std::move(cbs));
    return s;
  }

  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }

  sim::EventLoop loop;
  net::Network net;
  http::SessionPool pool;
  net::Switch* sw = nullptr;
  transport::Host* thinner_host = nullptr;
};

TEST(ThinnerAdversarial, WrongMessageTypesOnRequestPortAreIgnored) {
  Rig rig;
  AuctionThinner::Config cfg;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_host("weird");
  rig.blast(h, cfg.request_port,
            {Message{.type = MessageType::kPayOpen, .request_id = 1},
             Message{.type = MessageType::kPostData, .request_id = 1, .body = 5'000},
             Message{.type = MessageType::kWin, .request_id = 1},
             Message{.type = MessageType::kResponse, .request_id = 1}});
  rig.run_for(2.0);
  EXPECT_EQ(thinner.stats().requests_received, 0);
  EXPECT_EQ(thinner.stats().served_total(), 0);
}

TEST(ThinnerAdversarial, DuplicateRequestIdIsCountedOnce) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 100.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_host("dup");
  rig.blast(h, cfg.request_port,
            {Message{.type = MessageType::kRequest, .request_id = 9, .cls = ClientClass::kGood},
             Message{.type = MessageType::kRequest, .request_id = 9, .cls = ClientClass::kGood},
             Message{.type = MessageType::kRequest, .request_id = 9, .cls = ClientClass::kGood}});
  rig.run_for(2.0);
  EXPECT_EQ(thinner.stats().served_good, 1);  // served once, not thrice
}

TEST(ThinnerAdversarial, PaymentForUnknownRequestExpiresAndIsWasted) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 100.0;
  cfg.payment_window = Duration::seconds(1.0);
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_host("ghost");
  rig.blast(h, cfg.payment_port,
            {Message{.type = MessageType::kPayOpen, .request_id = 77},
             Message{.type = MessageType::kPostData, .request_id = 77, .body = 40'000}});
  rig.run_for(3.0);
  EXPECT_EQ(thinner.stats().channels_expired, 1);
  EXPECT_EQ(thinner.stats().payment_bytes_wasted, 40'000);
  EXPECT_EQ(thinner.contending(), 0u);
}

TEST(ThinnerAdversarial, TwoPaymentChannelsForOneRequestBothCredit) {
  // Splitting a request's payment across channels is allowed (the client is
  // only charged by total delivered bytes); both channels' bytes count.
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 0.5;  // server busy ~2 s
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& filler = rig.add_host("filler");
  rig.blast(filler, cfg.request_port, {Message{.type = MessageType::kRequest, .request_id = 1}});
  rig.run_for(0.2);
  auto& h = rig.add_host("split");
  rig.blast(h, cfg.request_port,
            {Message{.type = MessageType::kRequest, .request_id = 2,
                     .cls = ClientClass::kGood}});
  rig.blast(h, cfg.payment_port,
            {Message{.type = MessageType::kPayOpen, .request_id = 2},
             Message{.type = MessageType::kPostData, .request_id = 2, .body = 10'000}});
  rig.blast(h, cfg.payment_port,
            {Message{.type = MessageType::kPayOpen, .request_id = 2},
             Message{.type = MessageType::kPostData, .request_id = 2, .body = 15'000}});
  rig.run_for(3.5);  // first service ends; request 2 wins with 25 KB
  ASSERT_EQ(thinner.stats().price_good.count(), 1u);
  EXPECT_DOUBLE_EQ(thinner.stats().price_good.max(), 25'000.0);
}

TEST(ThinnerAdversarial, PayOpenAfterServiceIsHarmless) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 100.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_host("late");
  rig.blast(h, cfg.request_port, {Message{.type = MessageType::kRequest, .request_id = 5}});
  rig.run_for(1.0);  // request 5 served long ago
  rig.blast(h, cfg.payment_port,
            {Message{.type = MessageType::kPayOpen, .request_id = 5},
             Message{.type = MessageType::kPostData, .request_id = 5, .body = 1'000}});
  rig.run_for(1.0);
  // A fresh (requestless) state was created for the stale id; it expires.
  rig.run_for(10.0);
  EXPECT_EQ(thinner.contending(), 0u);
}

TEST(ThinnerAdversarial, RequestFloodFromOneHostIsBoundedByStateMachine) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 10.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_host("flood");
  std::vector<Message> flood;
  for (std::uint64_t i = 0; i < 200; ++i) {
    flood.push_back(Message{.type = MessageType::kRequest, .request_id = 1000 + i,
                            .cls = ClientClass::kBad});
  }
  rig.blast(h, cfg.request_port, std::move(flood));
  rig.run_for(5.0);
  // All requests arrived on one connection; they all registered but the
  // server only processed ~capacity*time of them.
  EXPECT_EQ(thinner.stats().requests_received, 200);
  EXPECT_LE(thinner.stats().served_total(), 60);
  // The rest are still contending (they never pay, so they only win when
  // the auction is otherwise empty).
  EXPECT_GT(thinner.contending(), 100u);
}

TEST(ThinnerAdversarial, RetryThinnerIgnoresGarbageAndDuplicates) {
  Rig rig;
  RetryThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  RetryThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_host("garbage");
  rig.blast(h, cfg.request_port,
            {Message{.type = MessageType::kPostData, .request_id = 3, .body = 1'000},
             Message{.type = MessageType::kWin, .request_id = 3},
             Message{.type = MessageType::kRequest, .request_id = 3}});
  rig.run_for(2.0);
  EXPECT_EQ(thinner.stats().served_total(), 1);  // only the real request served
}

TEST(ThinnerAdversarial, QuantumThinnerSurvivesChannelChurnDuringService) {
  Rig rig;
  QuantumAuctionThinner::Config cfg;
  cfg.capacity_rps = 2.0;
  cfg.quantum = Duration::millis(100);
  QuantumAuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  auto& h = rig.add_host("churn");
  rig.blast(h, cfg.request_port,
            {Message{.type = MessageType::kRequest, .request_id = 1, .difficulty = 4}});
  rig.run_for(0.2);
  // Open and abandon a payment channel every 200 ms while the request runs.
  for (int i = 0; i < 8; ++i) {
    MessageStream& s = rig.blast(
        h, cfg.payment_port,
        {Message{.type = MessageType::kPayOpen, .request_id = 1},
         Message{.type = MessageType::kPostData, .request_id = 1, .body = 2'000}});
    rig.run_for(0.2);
    rig.pool.retire(&s);
    rig.run_for(0.05);
  }
  rig.run_for(5.0);
  EXPECT_EQ(thinner.stats().served_total(), 1);
  EXPECT_EQ(thinner.aborts(), 0);
}

}  // namespace
}  // namespace speakup::core
