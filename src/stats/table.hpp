// Aligned-column text tables for the benchmark harnesses. Every bench binary
// prints the rows/series the corresponding paper table or figure reports;
// this type keeps the output uniform and diff-friendly, and can also emit
// CSV for plotting.
#pragma once

#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace speakup::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Starts a new row. Fill it with add() calls.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  Table& add(const std::string& cell) {
    SPEAKUP_ASSERT(!rows_.empty());
    rows_.back().push_back(cell);
    return *this;
  }

  Table& add(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return add(os.str());
  }

  Table& add(std::int64_t v) { return add(std::to_string(v)); }
  Table& add(int v) { return add(std::to_string(v)); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    print_row(os, headers_, widths);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& r : rows_) print_row(os, r, widths);
  }

  void print_csv(std::ostream& os) const {
    print_csv_row(os, headers_);
    for (const auto& r : rows_) print_csv_row(os, r);
  }

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& r,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[std::min(c, widths.size() - 1)]) + 2)
         << r[c];
    }
    os << "\n";
  }

  static void print_csv_row(std::ostream& os, const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c > 0) os << ",";
      os << r[c];
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace speakup::stats
