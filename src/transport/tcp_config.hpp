// Tunables of the Reno-style TCP model. Defaults approximate a 2006-era
// Linux stack (the paper's testbed): MSS 1460, initial window 2 segments,
// 3 s initial RTO with 200 ms floor, 3-dupack fast retransmit.
#pragma once

#include "util/units.hpp"

namespace speakup::transport {

struct TcpConfig {
  Bytes mss = 1460;
  int initial_cwnd_segments = 2;
  Bytes initial_ssthresh = 64 * 1024;
  /// Peer's advertised window / sender socket buffer: caps unacked data in
  /// flight. 64 KB models a classic stack without window scaling.
  Bytes max_inflight = 64 * 1024;
  Duration initial_rto = Duration::seconds(3.0);
  Duration min_rto = Duration::millis(200);
  Duration max_rto = Duration::seconds(60.0);
  int dupack_threshold = 3;
  int max_syn_retries = 6;
};

}  // namespace speakup::transport
