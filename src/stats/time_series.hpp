// Fixed-width-bucket time series, as the paper uses for its capacity
// measurements ("a time series of 5-second intervals", §7.1). Values are
// accumulated into the bucket containing their timestamp; per-bucket sums
// and rates can then be summarized.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/online_stats.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace speakup::stats {

class TimeSeries {
 public:
  explicit TimeSeries(Duration bucket_width) : width_(bucket_width) {
    util::require(bucket_width > Duration::zero(), "bucket width must be positive");
  }

  /// Adds `value` to the bucket containing `t`. Timestamps may arrive in
  /// any order but must be non-negative.
  void add(SimTime t, double value) {
    SPEAKUP_ASSERT(t.ns() >= 0);
    const auto idx = static_cast<std::size_t>(t.ns() / width_.ns());
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
    buckets_[idx] += value;
    total_ += value;
  }

  [[nodiscard]] Duration bucket_width() const { return width_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] double total() const { return total_; }

  /// Sum in the i-th bucket (0 for buckets never written).
  [[nodiscard]] double bucket_sum(std::size_t i) const {
    return i < buckets_.size() ? buckets_[i] : 0.0;
  }

  /// Per-second rate in the i-th bucket.
  [[nodiscard]] double bucket_rate(std::size_t i) const {
    return bucket_sum(i) / width_.sec();
  }

  /// Summary over per-bucket *rates*, excluding a leading warmup and the
  /// final (possibly partial) bucket. This is how §7.1 reports the
  /// thinner's sink rate: mean and standard deviation over 5 s intervals.
  [[nodiscard]] OnlineStats rate_summary(std::size_t skip_leading = 0) const {
    OnlineStats s;
    if (buckets_.size() <= 1) return s;
    for (std::size_t i = skip_leading; i + 1 < buckets_.size(); ++i) {
      s.add(bucket_rate(i));
    }
    return s;
  }

 private:
  Duration width_;
  std::vector<double> buckets_;
  double total_ = 0.0;
};

}  // namespace speakup::stats
