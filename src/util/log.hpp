// Minimal leveled logging. Off by default (simulators emit millions of
// events); enable per-run via Logger::set_level or the SPEAKUP_LOG
// environment variable ("debug", "info", "warn", "error", "off").
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace speakup::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level() { return instance().level_; }
  static void set_level(LogLevel lv) { instance().level_ = lv; }

  static bool enabled(LogLevel lv) { return static_cast<int>(lv) >= static_cast<int>(level()); }

  template <typename... Args>
  static void log(LogLevel lv, const char* fmt, Args... args) {
    if (!enabled(lv)) return;
    std::fprintf(stderr, "[speakup:%s] ", name(lv));
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }

 private:
  static const char* name(LogLevel lv) {
    switch (lv) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off";
    }
    return "?";
  }

  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  Logger() {
    if (const char* env = std::getenv("SPEAKUP_LOG")) {
      if (std::strcmp(env, "debug") == 0) level_ = LogLevel::kDebug;
      else if (std::strcmp(env, "info") == 0) level_ = LogLevel::kInfo;
      else if (std::strcmp(env, "warn") == 0) level_ = LogLevel::kWarn;
      else if (std::strcmp(env, "error") == 0) level_ = LogLevel::kError;
    }
  }

  LogLevel level_ = LogLevel::kOff;
};

}  // namespace speakup::util

#define SPEAKUP_LOG_DEBUG(...) ::speakup::util::Logger::log(::speakup::util::LogLevel::kDebug, __VA_ARGS__)
#define SPEAKUP_LOG_INFO(...) ::speakup::util::Logger::log(::speakup::util::LogLevel::kInfo, __VA_ARGS__)
#define SPEAKUP_LOG_WARN(...) ::speakup::util::Logger::log(::speakup::util::LogLevel::kWarn, __VA_ARGS__)
#define SPEAKUP_LOG_ERROR(...) ::speakup::util::Logger::log(::speakup::util::LogLevel::kError, __VA_ARGS__)
