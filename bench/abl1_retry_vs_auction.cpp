// Ablation A1: the two encouragement mechanisms side by side.
//
// §3.2 (random drops + aggressive retries, payment in-band) and §3.3
// (explicit payment channel + virtual auction) should both meet the §3.1
// design goal: allocation in proportion to bandwidth. The paper implements
// and evaluates only §3.3; this harness checks that §3.2 earns its keep as
// an alternative, and shows the emergent price in each currency unit.
//
// The grid lives in scenarios/abl1.json (defense x capacity, labeled
// "defense/cN"); `speakup run` on that file reproduces these numbers
// exactly.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Ablation A1", "random-drops/retries (§3.2) vs virtual auction (§3.3)");
  bench::print_paper_note(
      "both mechanisms should allocate the overloaded server roughly in "
      "proportion to bandwidth (ideal 0.5 here); prices emerge in retries "
      "per request (§3.2) and bytes per request (§3.3)");

  const double kCapacities[] = {50.0, 100.0, 200.0};
  const exp::DefenseMode kModes[] = {exp::DefenseMode::kRetry, exp::DefenseMode::kAuction};

  exp::ScenarioFile file = bench::load_scenarios("abl1.json");
  bench::apply_full_duration(file);
  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  stats::Table table({"capacity", "mechanism", "alloc(good)", "price-good", "price-bad",
                      "price-unit"});
  for (const double c : kCapacities) {
    for (const exp::DefenseMode mode : kModes) {
      const exp::ExperimentResult& r =
          runner.result(std::string(to_string(mode)) + "/c" + std::to_string(int(c)));
      const bool retry = mode == exp::DefenseMode::kRetry;
      table.row()
          .add(static_cast<std::int64_t>(c))
          .add(retry ? "retries (3.2)" : "auction (3.3)")
          .add(r.allocation_good, 3)
          .add(retry ? r.thinner.retries_good.mean() : r.thinner.price_good.mean() / 1000.0,
               1)
          .add(retry ? r.thinner.retries_bad.mean() : r.thinner.price_bad.mean() / 1000.0,
               1)
          .add(retry ? "retries/req" : "KB/req");
    }
  }
  table.print(std::cout);
  return 0;
}
