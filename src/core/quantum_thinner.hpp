// Heterogeneous-request thinner (§5): time is sliced into quanta of length
// tau and every quantum is auctioned.
//
// The thinner runs the paper's four-step procedure every tau seconds:
//   1. Let v be the currently-active request; let u be the contending
//      request that has paid the most.
//   2. If u has paid more than v: SUSPEND v, admit (or RESUME) u, and set
//      u's payment to zero.
//   3. If v has paid more than u: let v continue but set v's payment to
//      zero (v has not yet paid for the next quantum).
//   4. Time out and ABORT any request suspended longer than the limit
//      (30 s in the paper).
//
// Payment channels are NOT terminated on admission; clients keep paying
// until their response arrives, so a request of x chunks must win x
// auctions. The thinner never learns a request's difficulty — attackers
// sending deliberately hard requests pay for exactly the server time they
// consume, which is the point of the generalization.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/front_end.hpp"
#include "core/thinner_stats.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "server/interruptible_server.hpp"
#include "sim/timer.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {

class QuantumAuctionThinner : public FrontEnd {
 public:
  struct Config {
    double capacity_rps = 100.0;  // capacity in difficulty-1 requests/s
    Bytes response_body = 1000;
    Duration payment_window = Duration::seconds(10);   // missing-request eviction
    Duration quantum = Duration::zero();               // 0 -> default 1/c
    Duration suspension_limit = Duration::seconds(30); // §5 step 4
    std::uint32_t request_port = 80;
    std::uint32_t payment_port = 81;
  };

  QuantumAuctionThinner(transport::Host& host, const Config& cfg, util::RngStream server_rng);

  // --- FrontEnd ---
  [[nodiscard]] std::string_view name() const override { return "quantum"; }
  [[nodiscard]] const ThinnerStats& stats() const override { return stats_; }
  [[nodiscard]] std::size_t contending() const override { return states_.size(); }
  [[nodiscard]] Duration server_busy_good() const override {
    return server_.good_busy_time();
  }
  [[nodiscard]] Duration server_busy_bad() const override {
    return server_.bad_busy_time();
  }
  /// The interruptible server only charges classified work, so the total is
  /// the good + bad split (neutral traffic never reaches the §5 server).
  [[nodiscard]] Duration server_busy_total() const override {
    return server_.good_busy_time() + server_.bad_busy_time();
  }

  [[nodiscard]] const server::InterruptibleServer& server() const { return server_; }
  [[nodiscard]] std::int64_t suspensions() const {
    return stats_.counters.get("suspensions");
  }
  [[nodiscard]] std::int64_t aborts() const { return stats_.counters.get("aborts"); }

 private:
  struct RequestState {
    std::uint64_t id = 0;
    http::ClientClass cls = http::ClientClass::kNeutral;
    int difficulty = 1;
    bool has_request = false;
    bool active = false;      // currently holds the server
    bool suspended = false;   // SUSPENDed inside the server
    bool started = false;     // has been admitted at least once
    Bytes paid = 0;           // bid for the *next* quantum
    SimTime created;
    SimTime suspended_at;
    SimTime first_payment;
    bool started_paying = false;
    http::MessageStream* request_session = nullptr;
    http::MessageStream* payment_session = nullptr;
    std::unique_ptr<sim::Timer> expiry;  // payment window (armed while never admitted)
  };

  void on_request_accept(transport::TcpConnection& conn);
  void on_payment_accept(transport::TcpConnection& conn);
  void on_request_message(http::MessageStream& s, const http::Message& m);
  void on_payment_message(http::MessageStream& s, const http::Message& m);
  void on_payment_progress(http::MessageStream& s, const http::Message& m, Bytes newly);
  void on_stream_reset(http::MessageStream& s);
  void on_server_complete(const server::ServiceRequest& done);
  void quantum_tick();
  void give_server_to(RequestState& st);
  void abort_request(std::uint64_t id);
  void expire(std::uint64_t id);
  void destroy_state(std::uint64_t id, bool abort_sessions);
  RequestState& get_or_create(std::uint64_t id, http::ClientClass cls);
  RequestState* state_for(http::MessageStream& s);
  RequestState* active_state();
  RequestState* top_contender();

  transport::Host* host_;
  Config cfg_;
  Duration quantum_;
  server::InterruptibleServer server_;
  http::SessionPool pool_;
  ThinnerStats stats_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RequestState>> states_;
  std::unordered_map<http::MessageStream*, std::uint64_t> by_stream_;
  sim::Timer quantum_timer_;
};

}  // namespace speakup::core
