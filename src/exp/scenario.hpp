// Declarative experiment descriptions. A ScenarioConfig names everything the
// paper's testbed instantiated physically: the defense mode, the server
// capacity, client populations (counts, workloads, access links, RTTs),
// an optional shared bottleneck, and the optional §7.7 bystander downloader.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "client/workload_client.hpp"
#include "util/units.hpp"

namespace speakup::exp {

enum class DefenseMode {
  kNone,            // undefended baseline (random drops)
  kAuction,         // §3.3 explicit payment channel + virtual auction
  kRetry,           // §3.2 random drops + aggressive retries
  kQuantumAuction,  // §5 heterogeneous requests
};

/// Every built-in mode, in declaration order (exhaustiveness checks, CLI
/// help, factory tests).
inline constexpr DefenseMode kAllDefenseModes[] = {
    DefenseMode::kNone,
    DefenseMode::kAuction,
    DefenseMode::kRetry,
    DefenseMode::kQuantumAuction,
};

/// The mode's canonical name — also its core::FrontEndFactory registry key.
[[nodiscard]] inline const char* to_string(DefenseMode m) {
  switch (m) {
    case DefenseMode::kNone: return "none";
    case DefenseMode::kAuction: return "auction";
    case DefenseMode::kRetry: return "retry";
    case DefenseMode::kQuantumAuction: return "quantum";
  }
  return "?";
}

/// Round-trip of to_string: parse_defense_mode(to_string(m)) == m for every
/// mode; unknown names give nullopt (the caller may still be naming a
/// registered non-built-in defense — see ScenarioConfig::defense). Config
/// files and CLI paths must NOT treat nullopt as "use the default": resolve
/// user-supplied names with exp::resolve_defense_name (scenario_io.hpp),
/// which validates against the FrontEndFactory registry and throws listing
/// every registered defense, so a typo fails loudly.
[[nodiscard]] inline std::optional<DefenseMode> parse_defense_mode(std::string_view s) {
  for (const DefenseMode m : kAllDefenseModes) {
    if (s == to_string(m)) return m;
  }
  return std::nullopt;
}

/// A homogeneous population of clients.
struct ClientGroupSpec {
  std::string label;
  int count = 0;
  client::WorkloadParams workload;
  Bandwidth access_bw = Bandwidth::mbps(2.0);        // §7.1: 2 Mbit/s access links
  Duration access_delay = Duration::micros(500);     // one-way
  Bytes access_queue = 48'000;
  bool behind_bottleneck = false;                    // §7.6 topology flag
  /// §9 bandwidth envy: route this group's requests through the payment
  /// proxy (which pays the thinner on their behalf). Requires
  /// ScenarioConfig::proxy.
  bool via_proxy = false;
  /// Client engine: "object" (one WorkloadClient per member) or "pooled"
  /// (the struct-of-arrays client::ClientPool). Behavior-equivalent by
  /// construction — pooled runs replay the object engine's event sequence
  /// bit for bit — so this is purely a memory/speed knob for huge groups.
  std::string engine = "object";
};

/// §9: a high-bandwidth payment proxy fronting low-bandwidth customers.
struct ProxySpec {
  Bandwidth uplink = Bandwidth::mbps(20.0);
  Duration delay = Duration::micros(500);
  Bytes queue = 96'000;
};

/// Shared bottleneck link l (§7.6) or m (§7.7) between its own switch and
/// the LAN core.
struct BottleneckSpec {
  Bandwidth rate = Bandwidth::mbps(40.0);
  Duration delay = Duration::micros(500);  // one-way
  Bytes queue = 100'000;
};

/// §7.7: host H downloading from web server S while sharing the bottleneck.
struct CollateralSpec {
  Bytes file_size = kilobytes(1);
  int downloads = 100;
  Bandwidth access_bw = Bandwidth::mbps(2.0);
  Duration access_delay = Duration::micros(500);
  bool behind_bottleneck = true;
  Duration start_delay = Duration::seconds(2.0);  // let payment traffic ramp first
};

struct ScenarioConfig {
  DefenseMode mode = DefenseMode::kAuction;
  /// Factory override: when non-empty, the experiment asks
  /// core::FrontEndFactory for this name instead of to_string(mode) —
  /// that is how scenarios run defenses that are not built-in modes.
  std::string defense;
  double capacity_rps = 100.0;
  Duration duration = Duration::seconds(60.0);
  std::uint64_t seed = 1;
  std::vector<ClientGroupSpec> groups;
  std::optional<BottleneckSpec> bottleneck;
  std::optional<CollateralSpec> collateral;
  std::optional<ProxySpec> proxy;

  // Thinner knobs.
  Duration payment_window = Duration::seconds(10.0);
  Duration quantum = Duration::zero();  // 0 -> 1/c (quantum mode only)
  Duration suspension_limit = Duration::seconds(30.0);
  Bytes response_body = 1000;
  // "elastic" defense knobs (core/elastic_front_end.hpp).
  double elastic_max_scale = 4.0;
  Duration elastic_interval = Duration::seconds(5.0);
  double elastic_threshold = 0.9;
  // "puzzle" defense knob (core/puzzle_front_end.hpp).
  Duration puzzle_cost = Duration::seconds(2.0);

  // The thinner's access link: condition C1 requires it uncongested.
  Bandwidth thinner_bw = Bandwidth::gbps(10.0);
  Duration thinner_delay = Duration::micros(500);
  Bytes thinner_queue = 4'000'000;

  /// The front-end registry key this scenario runs.
  [[nodiscard]] std::string defense_name() const {
    return defense.empty() ? to_string(mode) : defense;
  }

  /// The distinct workload strategies the groups run, joined with '+' in
  /// first-appearance order ("poisson+defector"). This is the strategy
  /// column of CSV rows, `run --list`, and tournament cells — it makes a
  /// result row self-describing without consulting the scenario file.
  [[nodiscard]] std::string strategy_names() const {
    std::vector<std::string_view> seen;
    std::string out;
    for (const ClientGroupSpec& g : groups) {
      const std::string& s = g.workload.strategy;
      if (std::find(seen.begin(), seen.end(), std::string_view(s)) != seen.end()) {
        continue;
      }
      seen.push_back(s);
      if (!out.empty()) out += '+';
      out += s;
    }
    return out;
  }
};

/// Paper-default LAN scenario (§7.2): `good` + `bad` clients, each with
/// 2 Mbit/s to the thinner over a LAN, server capacity `capacity_rps`.
[[nodiscard]] inline ScenarioConfig lan_scenario(int good, int bad, double capacity_rps,
                                                 DefenseMode mode, std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.capacity_rps = capacity_rps;
  cfg.seed = seed;
  if (good > 0) {
    ClientGroupSpec g;
    g.label = "good";
    g.count = good;
    g.workload = client::good_client_params();
    cfg.groups.push_back(g);
  }
  if (bad > 0) {
    ClientGroupSpec b;
    b.label = "bad";
    b.count = bad;
    b.workload = client::bad_client_params();
    cfg.groups.push_back(b);
  }
  return cfg;
}

}  // namespace speakup::exp
