// Invariant checking for the speakup library.
//
// SPEAKUP_ASSERT is for internal invariants (never disabled; a violated
// invariant in a simulator silently corrupts every downstream number, so we
// keep the checks in release builds as well — they are cheap).
// speakup::util::require is for user-facing precondition checks on public
// API boundaries; it throws std::invalid_argument so callers can react.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace speakup::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "speakup: assertion failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

[[noreturn]] inline void require_fail(const char* what) {
  throw std::invalid_argument(std::string("speakup: ") + what);
}

/// Throws std::invalid_argument with `what` unless `ok`. The message is a
/// `const char*` (not std::string) so the success path — which includes
/// every EventLoop::schedule — never materializes a temporary string; the
/// allocation happens only inside the cold throwing helper.
inline void require(bool ok, const char* what) {
  if (!ok) require_fail(what);
}
inline void require(bool ok, const std::string& what) {
  if (!ok) require_fail(what.c_str());
}

}  // namespace speakup::util

#define SPEAKUP_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::speakup::util::assert_fail(#expr, __FILE__, __LINE__))
