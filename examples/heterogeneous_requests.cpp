// Example: defending a database front-end against deliberately hard queries
// with the §5 quantum auction.
//
// The threat model (§2.2) assumes attackers can send difficult requests on
// purpose — e.g. pathological search queries that take 10x the server time.
// A flat per-request price under-charges them. The §5 thinner auctions
// every quantum of server attention instead, using the server's
// SUSPEND/RESUME/ABORT interface.
#include <cstdio>

#include "exp/runner.hpp"

int main() {
  using namespace speakup;

  std::printf("database front-end: 10 good clients (easy queries) vs 10 attackers\n"
              "sending only 10x-hard queries, all with equal bandwidth.\n\n");

  const exp::DefenseMode kModes[] = {exp::DefenseMode::kAuction,
                                     exp::DefenseMode::kQuantumAuction};
  exp::Runner runner;
  for (const exp::DefenseMode mode : kModes) {
    exp::ScenarioConfig cfg = exp::lan_scenario(10, 10, 20.0, mode, /*seed=*/6);
    cfg.duration = Duration::seconds(60.0);
    cfg.groups[1].workload.difficulty = 10;  // attackers send hard queries
    cfg.groups[1].workload.window = 1;       // and concentrate their bandwidth
    cfg.groups[1].workload.lambda = 10.0;
    runner.add(cfg, to_string(mode));
  }
  runner.run_all();

  for (const exp::DefenseMode mode : kModes) {
    const exp::ExperimentResult& r = runner.result(to_string(mode));
    std::printf("%s thinner:\n", mode == exp::DefenseMode::kAuction
                                     ? "flat-auction (§3.3)"
                                     : "quantum-auction (§5) ");
    std::printf("  server time to good clients: %4.0f%%   to attackers: %4.0f%%\n",
                r.server_time_good * 100, r.server_time_bad * 100);
    std::printf("  good requests served: %lld   denied: %lld\n",
                static_cast<long long>(r.groups[0].totals.served),
                static_cast<long long>(r.groups[0].totals.denied));
    if (mode == exp::DefenseMode::kQuantumAuction) {
      std::printf("  quantum mechanics: %lld suspensions, %lld aborts\n",
                  static_cast<long long>(r.thinner.counters.get("suspensions")),
                  static_cast<long long>(r.thinner.counters.get("aborts")));
    }
    std::printf("\n");
  }

  std::printf("with the flat price, one hard request costs the attacker the same\n"
              "as an easy one but consumes 10x the server; the quantum auction\n"
              "makes every quantum cost a fresh bid, so server *time* reverts to\n"
              "bandwidth-proportional.\n");
  return 0;
}
