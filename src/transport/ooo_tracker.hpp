// Out-of-order interval tracker for the TCP receive path.
//
// Replaces the std::map<int64, int64> that previously tracked out-of-order
// byte ranges: a red-black tree pays a node allocation on every hole a
// dropped segment opens, and loss-heavy scenarios (shared bottlenecks,
// §7.6/§7.7) open holes continuously. This tracker keeps the intervals in
// a small sorted array instead: the first kInline intervals live inline in
// the connection object (real traces essentially never exceed a handful of
// simultaneous holes — reordering is bounded by the congestion window),
// and a connection that does exceed it spills into a heap buffer once and
// keeps that buffer for its lifetime, so the steady state allocates
// nothing either way.
//
// Semantics are exactly the map-based merge logic (pinned against a
// reference implementation by randomized_property_test): intervals are
// half-open [begin, end), disjoint, sorted, and *touching intervals merge*
// — inserting [5,10) into {[10,20)} yields {[5,20)}.
//
// speakup-lint: hot-path (allocation-free steady state; growth sites must
// be amortized and allowlisted in tools/lint_allowlist.txt)
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/assert.hpp"
#include "util/audit.hpp"

namespace speakup::transport {

class OooTracker {
 public:
  struct Interval {
    std::int64_t begin;
    std::int64_t end;
  };

  OooTracker() = default;
  // The tracker hands out interior pointers (data_), so it pins itself.
  OooTracker(const OooTracker&) = delete;
  OooTracker& operator=(const OooTracker&) = delete;

  /// Records [begin, end), merging with any overlapping or touching
  /// intervals. Precondition: begin < end.
  void insert(std::int64_t begin, std::int64_t end) {
    SPEAKUP_ASSERT(begin < end);
    // Find the first interval that starts after `begin` (upper bound).
    std::size_t idx = 0;
    while (idx < size_ && data_[idx].begin <= begin) ++idx;
    // The predecessor absorbs us when it reaches (or touches) our begin.
    std::size_t first = idx;
    if (idx > 0 && data_[idx - 1].end >= begin) {
      first = idx - 1;
      begin = data_[first].begin;
    }
    // Swallow every following interval our end reaches (or touches).
    std::int64_t merged_end = end;
    std::size_t last = first;  // one past the last swallowed interval
    while (last < size_ && data_[last].begin <= merged_end) {
      if (data_[last].end > merged_end) merged_end = data_[last].end;
      ++last;
    }
    if (first == last) {  // no overlap: make room at `first`
      grow_if_full();
      std::memmove(data_ + first + 1, data_ + first,
                   (size_ - first) * sizeof(Interval));
      ++size_;
    } else if (last > first + 1) {  // swallowed several: close the gap
      std::memmove(data_ + first + 1, data_ + last,
                   (size_ - last) * sizeof(Interval));
      size_ -= last - first - 1;
    }
    data_[first] = Interval{begin, merged_end};
    SPEAKUP_AUDIT_ONLY(audit();)
  }

  /// Advances `floor` over the contiguous prefix: while the lowest interval
  /// begins at or below `floor`, removes it and raises `floor` to at least
  /// its end. Returns the new floor (== the old one when the lowest
  /// interval still leaves a gap).
  [[nodiscard]] std::int64_t pop_prefix(std::int64_t floor) {
    std::size_t drop = 0;
    while (drop < size_ && data_[drop].begin <= floor) {
      if (data_[drop].end > floor) floor = data_[drop].end;
      ++drop;
    }
    if (drop > 0) {
      std::memmove(data_, data_ + drop, (size_ - drop) * sizeof(Interval));
      size_ -= drop;
    }
    SPEAKUP_AUDIT_ONLY(audit();)
    return floor;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Sorted, disjoint view (tests / introspection).
  [[nodiscard]] const Interval* data() const { return data_; }
  /// Whether the tracker has ever spilled out of its inline storage.
  [[nodiscard]] bool spilled() const { return data_ != inline_; }

#if SPEAKUP_AUDIT_ENABLED
  /// Structural audit (SPEAKUP_AUDIT builds only; re-run after every insert
  /// and pop_prefix — the arrays are tiny): intervals well-formed, sorted,
  /// strictly disjoint and non-touching (touching intervals must have
  /// merged), and the storage pointer/capacity bookkeeping consistent.
  void audit() const {
    SPEAKUP_AUDIT_CHECK(size_ <= cap_, "OooTracker: size must not exceed capacity");
    SPEAKUP_AUDIT_CHECK(spilled() ? (data_ == spill_.data() && cap_ == spill_.size())
                                  : cap_ == kInline,
                        "OooTracker: storage pointer/capacity bookkeeping broken");
    for (std::size_t i = 0; i < size_; ++i) {
      SPEAKUP_AUDIT_CHECK(data_[i].begin < data_[i].end,
                          "OooTracker: interval must be non-empty");
      if (i > 0) {
        SPEAKUP_AUDIT_CHECK(data_[i - 1].end < data_[i].begin,
                            "OooTracker: intervals must be sorted, disjoint, non-touching");
      }
    }
  }
#endif

 private:
  static constexpr std::size_t kInline = 8;

  void grow_if_full() {
    if (size_ < cap_) return;
    // First spill moves inline -> heap; later spills double the buffer.
    // The buffer is never given back: a connection that reordered once
    // will likely reorder again, and reuse is what keeps the steady state
    // allocation-free.
    const std::size_t new_cap = cap_ * 2;
    std::vector<Interval> bigger(new_cap);
    std::memcpy(bigger.data(), data_, size_ * sizeof(Interval));
    spill_.swap(bigger);
    data_ = spill_.data();
    cap_ = new_cap;
  }

  Interval inline_[kInline];
  std::vector<Interval> spill_;
  Interval* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = kInline;
};

}  // namespace speakup::transport
