// Tests for the adversary library: the Strategy interface, the
// StrategyFactory registry (round-trip: a sixth strategy plugs in with no
// harness edits), scenario_io's strategy validation, the built-in
// strategies' behavior, and the determinism contract — onoff/defector runs
// are fingerprint-identical across thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "client/strategy.hpp"
#include "client/workload_client.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"

namespace speakup {
namespace {

using client::Strategy;
using client::StrategyFactory;
using client::StrategyParams;
using client::StrategyView;

constexpr const char* kBuiltins[] = {"poisson", "onoff", "defector", "adaptive-window",
                                     "flash-crowd", "recon", "switcher"};

StrategyParams params_with(double lambda, int window,
                           std::vector<std::pair<std::string, double>> knobs = {}) {
  StrategyParams p;
  p.lambda = lambda;
  p.window = window;
  p.knobs = std::move(knobs);
  return p;
}

/// A 3-good/3-bad LAN scenario where the bad population runs `strategy`.
exp::ScenarioConfig lan_with_strategy(const std::string& strategy,
                                      std::vector<std::pair<std::string, double>> knobs = {},
                                      const std::string& defense = "auction") {
  exp::ScenarioConfig cfg = exp::lan_scenario(/*good=*/3, /*bad=*/3, /*capacity_rps=*/50.0,
                                              exp::DefenseMode::kAuction, /*seed=*/31);
  cfg.defense = defense;
  cfg.duration = Duration::seconds(4.0);
  cfg.groups[1].workload.strategy = strategy;
  cfg.groups[1].workload.strategy_knobs = std::move(knobs);
  return cfg;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(StrategyFactory, BuiltinsAreRegistered) {
  for (const char* name : kBuiltins) {
    EXPECT_TRUE(StrategyFactory::instance().contains(name)) << name;
  }
  EXPECT_GE(StrategyFactory::instance().names().size(), 5u);
}

TEST(StrategyFactory, NamesAreSortedAndUnique) {
  const auto names = StrategyFactory::instance().names();
  const std::set<std::string> uniq(names.begin(), names.end());
  EXPECT_EQ(uniq.size(), names.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(StrategyFactory, CreateRejectsUnknownNameListingRegistry) {
  try {
    (void)StrategyFactory::instance().create("no-such-strategy", StrategyParams{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const char* name : kBuiltins) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(StrategyFactory, UnknownKnobThrowsListingKnownOnes) {
  try {
    (void)StrategyFactory::instance().create(
        "onoff", params_with(2.0, 1, {{"perod_s", 5.0}}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("perod_s"), std::string::npos) << what;
    EXPECT_NE(what.find("period_s"), std::string::npos) << what;
    EXPECT_NE(what.find("duty"), std::string::npos) << what;
  }
}

TEST(StrategyFactory, BadKnobValuesThrow) {
  EXPECT_THROW((void)StrategyFactory::instance().create(
                   "onoff", params_with(2.0, 1, {{"duty", 0.0}})),
               std::invalid_argument);
  EXPECT_THROW((void)StrategyFactory::instance().create(
                   "onoff", params_with(2.0, 1, {{"period_s", -1.0}})),
               std::invalid_argument);
  EXPECT_THROW((void)StrategyFactory::instance().create(
                   "adaptive-window", params_with(2.0, 10, {{"max_window", 5.0}})),
               std::invalid_argument);
  EXPECT_THROW((void)StrategyFactory::instance().create(
                   "flash-crowd", params_with(2.0, 1, {{"surge_factor", 0.0}})),
               std::invalid_argument);
}

TEST(StrategyFactory, DuplicateRegistrationThrows) {
  EXPECT_THROW(StrategyFactory::instance().register_strategy(
                   "poisson",
                   [](const StrategyParams&) -> std::unique_ptr<Strategy> {
                     return nullptr;
                   }),
               std::invalid_argument);
}

// Every registered strategy constructs with default knobs and runs a short
// scenario end to end — conformance for free, like the defense registry.
TEST(StrategyFactory, EveryRegisteredStrategyRunsAScenario) {
  for (const std::string& name : StrategyFactory::instance().names()) {
    const exp::ExperimentResult r = exp::run_scenario(lan_with_strategy(name));
    EXPECT_GT(r.served_total, 0) << name;
    ASSERT_EQ(r.groups.size(), 2u) << name;
    EXPECT_EQ(r.groups[1].strategy, name);
    EXPECT_EQ(r.groups[0].strategy, "poisson") << name;
  }
}

// ---------------------------------------------------------------------------
// The default path is the pre-strategy client, bit for bit.
// ---------------------------------------------------------------------------

TEST(Strategy, DefaultPoissonMatchesExplicitPoissonFingerprint) {
  exp::ScenarioConfig implicit = exp::lan_scenario(3, 3, 50.0,
                                                   exp::DefenseMode::kAuction, 17);
  implicit.duration = Duration::seconds(2.0);
  exp::ScenarioConfig explicit_cfg = implicit;
  for (auto& g : explicit_cfg.groups) g.workload.strategy = "poisson";
  EXPECT_EQ(exp::run_scenario(implicit).fingerprint(),
            exp::run_scenario(explicit_cfg).fingerprint());
}

// ---------------------------------------------------------------------------
// A sixth strategy, defined entirely here: fixed-interval (isochronous)
// arrivals. Registering it requires no edit to the client, the experiment
// harness, or scenario_io — that is the point of the registry.
// ---------------------------------------------------------------------------

class MetronomeStrategy final : public Strategy {
 public:
  explicit MetronomeStrategy(StrategyParams p) : Strategy(std::move(p)) {
    params_.require_knobs(name(), {});
  }
  [[nodiscard]] std::string_view name() const override { return "metronome"; }
  [[nodiscard]] Duration next_arrival(util::RngStream& rng,
                                      const StrategyView& v) override {
    (void)rng;
    (void)v;
    return Duration::seconds(1.0 / params_.lambda);
  }
};

class SixthStrategyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StrategyFactory::instance().register_strategy(
        "metronome", [](const StrategyParams& p) -> std::unique_ptr<Strategy> {
          return std::make_unique<MetronomeStrategy>(p);
        });
  }
  void TearDown() override { StrategyFactory::instance().unregister_strategy("metronome"); }
};

TEST_F(SixthStrategyTest, PlugsInWithoutTouchingTheHarness) {
  const exp::ExperimentResult r = exp::run_scenario(lan_with_strategy("metronome"));
  EXPECT_GT(r.served_total, 0);
  EXPECT_EQ(r.groups[1].strategy, "metronome");
  // Isochronous arrivals at lambda=40 over 4 s: exactly floor(4 * 40) - ish
  // arrivals per client, no randomness. All 3 bad clients tick identically.
  EXPECT_EQ(r.groups[1].totals.arrivals % 3, 0);
}

TEST_F(SixthStrategyTest, ScenarioFilesCanNameIt) {
  const exp::ScenarioFile f = exp::parse_scenario_file(R"({
    "scenarios": [{
      "duration_s": 2, "capacity_rps": 30,
      "groups": [{"label": "g", "count": 2,
                  "workload": {"strategy": "metronome", "lambda": 5}}]
    }]
  })");
  ASSERT_EQ(f.scenarios.size(), 1u);
  EXPECT_EQ(f.scenarios[0].config.groups[0].workload.strategy, "metronome");
  const exp::ExperimentResult r = exp::run_scenario(f.scenarios[0].config);
  EXPECT_GT(r.served_total, 0);
}

// ---------------------------------------------------------------------------
// scenario_io validation: typos fail at load, listing the registry.
// ---------------------------------------------------------------------------

TEST(StrategyScenarioIo, UnknownStrategyNameListsRegisteredStrategies) {
  try {
    (void)exp::parse_scenario_file(R"({
      "scenarios": [{"groups": [{"label": "g", "count": 1,
                                 "workload": {"strategy": "onofff"}}]}]
    })");
    FAIL() << "expected ScenarioError";
  } catch (const exp::ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("onofff"), std::string::npos) << what;
    for (const char* name : kBuiltins) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(StrategyScenarioIo, UnknownStrategyParamFailsAtParse) {
  try {
    (void)exp::parse_scenario_file(R"({
      "scenarios": [{"groups": [{"label": "g", "count": 1,
                                 "workload": {"strategy": "onoff",
                                              "strategy_params": {"dutyy": 0.5}}}]}]
    })");
    FAIL() << "expected ScenarioError";
  } catch (const exp::ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dutyy"), std::string::npos) << what;
    EXPECT_NE(what.find("duty"), std::string::npos) << what;
  }
}

TEST(StrategyScenarioIo, ResolveStrategyNameIsStrict) {
  EXPECT_EQ(exp::resolve_strategy_name("poisson"), "poisson");
  EXPECT_EQ(exp::resolve_strategy_name("defector"), "defector");
  EXPECT_THROW((void)exp::resolve_strategy_name("nonesuch"), std::invalid_argument);
}

TEST(StrategyScenarioIo, GridSweepsStrategyKnobsThroughArrayPaths) {
  const exp::ScenarioFile f = exp::parse_scenario_file(R"({
    "defaults": {
      "duration_s": 2,
      "groups": [
        {"label": "good", "count": 1, "workload": "good"},
        {"label": "attack", "count": 1,
         "workload": {"preset": "bad", "strategy": "onoff",
                      "strategy_params": {"period_s": 4, "duty": 0.5}}}
      ]
    },
    "scenarios": [{
      "label": "d{groups.1.workload.strategy_params.duty}",
      "grid": {"groups.1.workload.strategy_params.duty": [0.25, 0.75]}
    }]
  })");
  ASSERT_EQ(f.scenarios.size(), 2u);
  EXPECT_EQ(f.scenarios[0].label, "d0.25");
  EXPECT_EQ(f.scenarios[1].label, "d0.75");
  EXPECT_DOUBLE_EQ(f.scenarios[0].config.groups[1].workload.strategy_knobs[1].second,
                   0.25);
  EXPECT_DOUBLE_EQ(f.scenarios[1].config.groups[1].workload.strategy_knobs[1].second,
                   0.75);
}

// ---------------------------------------------------------------------------
// Built-in behavior.
// ---------------------------------------------------------------------------

TEST(Strategy, OnOffArrivesLessThanPoissonAtTheSameLambda) {
  const exp::ExperimentResult poisson = exp::run_scenario(lan_with_strategy("poisson"));
  const exp::ExperimentResult onoff = exp::run_scenario(
      lan_with_strategy("onoff", {{"period_s", 2.0}, {"duty", 0.25}}));
  // Duty 0.25 passes a quarter of the on-time: far fewer bad arrivals.
  EXPECT_LT(onoff.groups[1].totals.arrivals, poisson.groups[1].totals.arrivals / 2);
  EXPECT_GT(onoff.groups[1].totals.arrivals, 0);
}

TEST(Strategy, OnOffDutyOneIsPoisson) {
  // duty = 1 never leaves the on-phase, so the arrival draws (and hence the
  // whole run) match plain poisson exactly.
  const exp::ExperimentResult a = exp::run_scenario(
      lan_with_strategy("onoff", {{"period_s", 7.0}, {"duty", 1.0}}));
  exp::ScenarioConfig cfg = lan_with_strategy("poisson");
  cfg.groups[1].workload.strategy = "poisson";
  const exp::ExperimentResult b = exp::run_scenario(cfg);
  EXPECT_EQ(a.groups[1].totals.arrivals, b.groups[1].totals.arrivals);
  EXPECT_EQ(a.groups[1].totals.served, b.groups[1].totals.served);
}

TEST(Strategy, DefectorStopsPayingAfterAdmission) {
  const exp::ExperimentResult r = exp::run_scenario(lan_with_strategy("defector"));
  // Each defector pays for its first admission, then refuses every later
  // kPleasePay under the auction defense.
  EXPECT_GT(r.groups[1].totals.served, 0);
  EXPECT_GT(r.groups[1].totals.payments_declined, 0);
  // The compliant good population never declines.
  EXPECT_EQ(r.groups[0].totals.payments_declined, 0);
}

TEST(Strategy, DefectorPatienceAbandonsPaymentsMidWindow) {
  // Low capacity + tiny patience: payments opened by the defectors are
  // abandoned before the auction can resolve.
  exp::ScenarioConfig cfg =
      lan_with_strategy("defector", {{"defect_after_served", 1e9}, {"patience_s", 0.5}});
  cfg.capacity_rps = 5.0;
  const exp::ExperimentResult r = exp::run_scenario(cfg);
  EXPECT_GT(r.groups[1].totals.payments_abandoned, 0);
  EXPECT_EQ(r.groups[0].totals.payments_abandoned, 0);
}

TEST(Strategy, AdaptiveWindowRampsWithDenialRate) {
  client::ClientStats stats;
  auto strat = StrategyFactory::instance().create(
      "adaptive-window", params_with(40.0, 10, {{"max_window", 60.0}, {"gain", 1.0}}));
  StrategyView v;
  v.stats = &stats;
  EXPECT_EQ(strat->window(v), 10);  // nothing resolved yet: base window
  stats.served = 1;
  stats.denied = 0;
  EXPECT_EQ(strat->window(v), 10);  // all served: still base
  stats.denied = 1;                 // 50% denial
  EXPECT_EQ(strat->window(v), 35);
  stats.served = 0;                 // 100% denial: full ramp
  EXPECT_EQ(strat->window(v), 60);
}

TEST(Strategy, FlashCrowdSurgeAddsArrivals) {
  exp::ScenarioConfig quiet = lan_with_strategy("poisson");
  quiet.groups[1].workload.cls = http::ClientClass::kGood;
  quiet.groups[1].workload.lambda = 2.0;
  quiet.groups[1].workload.window = 1;
  exp::ScenarioConfig surging = quiet;
  surging.groups[1].workload.strategy = "flash-crowd";
  surging.groups[1].workload.strategy_knobs = {
      {"surge_start_s", 1.0}, {"surge_duration_s", 2.0}, {"surge_factor", 10.0}};
  const exp::ExperimentResult q = exp::run_scenario(quiet);
  const exp::ExperimentResult s = exp::run_scenario(surging);
  EXPECT_GT(s.groups[1].totals.arrivals, 2 * q.groups[1].totals.arrivals);
}

// ---------------------------------------------------------------------------
// Determinism: adversary runs are fingerprint-identical across thread
// counts (the contract that keeps parallel/sharded sweeps mergeable).
// ---------------------------------------------------------------------------

TEST(StrategyDeterminism, OnOffAndDefectorAreFingerprintIdenticalAcrossThreadCounts) {
  const char* kSweep = R"({
    "defaults": {
      "capacity_rps": 40, "duration_s": 3, "seed": 11,
      "groups": [
        {"label": "good", "count": 2, "workload": "good"},
        {"label": "attack", "count": 2,
         "workload": {"preset": "bad", "strategy": "onoff",
                      "strategy_params": {"period_s": 1, "duty": 0.4}}}
      ]
    },
    "scenarios": [
      {"label": "onoff/{defense}", "grid": {"defense": ["auction", "retry"]}},
      {"label": "defector",
       "groups": [
         {"label": "good", "count": 2, "workload": "good"},
         {"label": "attack", "count": 2,
          "workload": {"preset": "bad", "strategy": "defector",
                       "strategy_params": {"patience_s": 1}}}
       ]}
    ]
  })";
  const exp::ScenarioFile file = exp::parse_scenario_file(kSweep);
  ASSERT_EQ(file.scenarios.size(), 3u);

  exp::Runner serial;
  file.queue_on(serial);
  serial.run_all(1);
  exp::Runner parallel;
  file.queue_on(parallel);
  parallel.run_all(4);

  for (std::size_t i = 0; i < file.scenarios.size(); ++i) {
    const exp::RunOutcome& a = serial.outcomes()[i];
    const exp::RunOutcome& b = parallel.outcomes()[i];
    ASSERT_TRUE(a.ok()) << a.label << ": " << a.error;
    ASSERT_TRUE(b.ok()) << b.label << ": " << b.error;
    EXPECT_EQ(a.result.fingerprint(), b.result.fingerprint()) << a.label;
    EXPECT_GT(a.result.served_total, 0) << a.label;
  }
}

// ---------------------------------------------------------------------------
// Per-strategy result breakdowns.
// ---------------------------------------------------------------------------

TEST(StrategyResults, StrategyTotalsMergeGroupsByStrategy) {
  exp::ScenarioConfig cfg = exp::lan_scenario(2, 2, 50.0,
                                              exp::DefenseMode::kAuction, 13);
  cfg.duration = Duration::seconds(2.0);
  // Two groups on poisson (good+bad), one on onoff.
  exp::ClientGroupSpec extra;
  extra.label = "pulse";
  extra.count = 1;
  extra.workload = client::bad_client_params();
  extra.workload.strategy = "onoff";
  extra.workload.strategy_knobs = {{"period_s", 1.0}, {"duty", 0.5}};
  cfg.groups.push_back(extra);

  const exp::ExperimentResult r = exp::run_scenario(cfg);
  const std::vector<exp::StrategyResult> totals = r.strategy_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].strategy, "poisson");
  EXPECT_EQ(totals[0].clients, 4);
  EXPECT_EQ(totals[1].strategy, "onoff");
  EXPECT_EQ(totals[1].clients, 1);
  // The rollup partitions the client-side group totals exactly. (The
  // thinner-side served_total can exceed this by responses still in flight
  // at run end, so compare against the groups, not the thinner.)
  std::int64_t group_served = 0;
  for (const exp::GroupResult& g : r.groups) group_served += g.totals.served;
  EXPECT_EQ(totals[0].totals.served + totals[1].totals.served, group_served);
  EXPECT_GT(group_served, 0);
}

}  // namespace
}  // namespace speakup
