// Ablation A3: POST size vs bandwidth-delay product.
//
// §3.4 argues the per-POST overheads (a ~2-RTT quiescent gap and a fresh
// slow start) are negligible exactly when the POST is large compared to the
// bandwidth-delay product. We pit a long-RTT good population against a
// LAN-RTT good population (equal bandwidth, so the ideal split is 50/50)
// and shrink the POST: the long-RTT group's share should degrade as the
// POST stops dwarfing its BDP.
//
// The grid lives in scenarios/abl3.json (one scenario per POST size,
// labeled "NKB"); `speakup run` on that file reproduces these numbers
// exactly.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Ablation A3", "payment POST size vs RTT (quiescence overhead)");
  bench::print_paper_note(
      "with 1 MB POSTs (the paper's choice) the long-RTT group stays near its "
      "proportional share; small POSTs multiply the 2-RTT gaps and slow-start "
      "ramps, taxing long-RTT clients");

  const std::int64_t kPostKb[] = {25, 100, 1000};
  exp::ScenarioFile file = bench::load_scenarios("abl3.json");
  bench::apply_full_duration(file);
  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  stats::Table table({"post-size-KB", "lan-rtt-alloc", "long-rtt-alloc",
                      "long-rtt-share-of-ideal"});
  for (const std::int64_t post_kb : kPostKb) {
    const exp::ExperimentResult& r = runner.result(std::to_string(post_kb) + "KB");
    table.row()
        .add(post_kb)
        .add(r.groups[0].allocation, 3)
        .add(r.groups[1].allocation, 3)
        .add(r.groups[1].allocation / 0.5, 3);
  }
  table.print(std::cout);
  return 0;
}
