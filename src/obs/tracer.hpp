// Flight-recorder tracing: a bounded ring buffer of span/instant events
// stamped with sim time, exported as Chrome trace-event JSON (the format
// Perfetto and chrome://tracing load natively).
//
// Design constraints, in order:
//   - Recording must be allocation-free at steady state: the ring is
//     preallocated and event names are `const char*` string literals, so a
//     record is a bounded memcpy into a POD slot. When the ring is full the
//     oldest event is overwritten — a flight recorder keeps the *latest*
//     window, which is the window you want when something goes wrong at the
//     end of a run.
//   - Spans are recorded as self-contained 'X' (complete) events carrying
//     (start, duration) rather than B/E pairs: a B whose E was overwritten
//     (or vice versa) would corrupt the JSON timeline, while a complete
//     event survives wraparound intact. Nesting still renders: Perfetto
//     nests 'X' events on the same track by containment.
//   - Export cost is paid once at the end of the run, never on the hot path.
//
// The tracer knows nothing about the simulator's components; the probe
// catalog lives in obs::Observer (observer.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace speakup::obs {

/// One recorded event. POD; `name`, `cat` and `arg_name` must be string
/// literals (or otherwise outlive the tracer) — they are stored by pointer.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = -1;  // < 0 marks an instant event
  std::uint32_t tid = 0;     // track id (e.g. client index); 0 = the sim core
  const char* arg_name = nullptr;  // optional single numeric argument
  double arg = 0.0;
};

class Tracer {
 public:
  /// `capacity` is the ring size in events (fixed at construction; the
  /// buffer is preallocated so recording never allocates).
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// A span: work covering [start, start + dur] on track `tid`.
  void span(const char* name, const char* cat, SimTime start, Duration dur,
            std::uint32_t tid, const char* arg_name = nullptr, double arg = 0.0) {
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ts_ns = start.ns();
    e.dur_ns = dur.ns();
    e.tid = tid;
    e.arg_name = arg_name;
    e.arg = arg;
    push(e);
  }

  /// A point-in-time event on track `tid`.
  void instant(const char* name, const char* cat, SimTime ts, std::uint32_t tid,
               const char* arg_name = nullptr, double arg = 0.0) {
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ts_ns = ts.ns();
    e.dur_ns = -1;
    e.tid = tid;
    e.arg_name = arg_name;
    e.arg = arg;
    push(e);
  }

  /// Events currently held (<= capacity once wrapped).
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Total events ever recorded; `recorded() - size()` were overwritten.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] bool wrapped() const { return recorded_ > count_; }

  /// The i-th retained event, oldest first (introspection for tests).
  [[nodiscard]] const TraceEvent& event(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  /// Appends this tracer's events to `out` as Chrome trace-event JSON
  /// objects (comma-separated, no enclosing array), oldest first, all
  /// under process id `pid`. `first` tracks whether a leading comma is
  /// needed and is updated; timestamps are microseconds (the trace-event
  /// unit), durations likewise.
  void append_chrome_events(std::string& out, int pid, bool& first) const;

  /// A complete single-process trace document for these events.
  [[nodiscard]] std::string chrome_trace_json(int pid = 0) const;

 private:
  void push(const TraceEvent& e) {
    if (count_ == ring_.size()) {
      ring_[head_] = e;  // overwrite the oldest
      head_ = (head_ + 1) % ring_.size();
    } else {
      ring_[(head_ + count_) % ring_.size()] = e;
      ++count_;
    }
    ++recorded_;
  }

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace speakup::obs
