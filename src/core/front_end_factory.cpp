#include "core/front_end_factory.hpp"

#include <algorithm>
#include <sstream>

#include "core/auction_thinner.hpp"
#include "core/elastic_front_end.hpp"
#include "core/no_defense.hpp"
#include "core/puzzle_front_end.hpp"
#include "core/quantum_thinner.hpp"
#include "core/retry_thinner.hpp"
#include "util/assert.hpp"

namespace speakup::core {

FrontEndFactory& FrontEndFactory::instance() {
  static FrontEndFactory factory;
  return factory;
}

// The built-ins register here, not via SPEAKUP_REGISTER_FRONT_END: static
// registrars in a library archive are dropped by the linker when nothing
// else references their translation unit, and after this refactor nothing
// outside the factory names the concrete thinners.
FrontEndFactory::FrontEndFactory() {
  builders_.emplace_back(
      "auction", [](transport::Host& host, const FrontEndConfig& cfg,
                    util::RngStream rng) -> std::unique_ptr<FrontEnd> {
        AuctionThinner::Config tc;
        tc.capacity_rps = cfg.capacity_rps;
        tc.response_body = cfg.response_body;
        tc.payment_window = cfg.payment_window;
        tc.request_port = cfg.request_port;
        tc.payment_port = cfg.payment_port;
        return std::make_unique<AuctionThinner>(host, tc, std::move(rng));
      });
  builders_.emplace_back(
      "retry", [](transport::Host& host, const FrontEndConfig& cfg,
                  util::RngStream rng) -> std::unique_ptr<FrontEnd> {
        RetryThinner::Config tc;
        tc.capacity_rps = cfg.capacity_rps;
        tc.response_body = cfg.response_body;
        tc.request_port = cfg.request_port;
        return std::make_unique<RetryThinner>(host, tc, std::move(rng));
      });
  builders_.emplace_back(
      "none", [](transport::Host& host, const FrontEndConfig& cfg,
                 util::RngStream rng) -> std::unique_ptr<FrontEnd> {
        NoDefenseFrontEnd::Config tc;
        tc.capacity_rps = cfg.capacity_rps;
        tc.response_body = cfg.response_body;
        tc.request_port = cfg.request_port;
        return std::make_unique<NoDefenseFrontEnd>(host, tc, std::move(rng));
      });
  builders_.emplace_back(
      "quantum", [](transport::Host& host, const FrontEndConfig& cfg,
                    util::RngStream rng) -> std::unique_ptr<FrontEnd> {
        QuantumAuctionThinner::Config tc;
        tc.capacity_rps = cfg.capacity_rps;
        tc.response_body = cfg.response_body;
        tc.payment_window = cfg.payment_window;
        tc.quantum = cfg.quantum;
        tc.suspension_limit = cfg.suspension_limit;
        tc.request_port = cfg.request_port;
        tc.payment_port = cfg.payment_port;
        return std::make_unique<QuantumAuctionThinner>(host, tc, std::move(rng));
      });
  builders_.emplace_back(
      "elastic", [](transport::Host& host, const FrontEndConfig& cfg,
                    util::RngStream rng) -> std::unique_ptr<FrontEnd> {
        ElasticFrontEnd::Config tc;
        tc.capacity_rps = cfg.capacity_rps;
        tc.response_body = cfg.response_body;
        tc.max_scale = cfg.elastic_max_scale;
        tc.interval = cfg.elastic_interval;
        tc.threshold = cfg.elastic_threshold;
        tc.request_port = cfg.request_port;
        return std::make_unique<ElasticFrontEnd>(host, tc, std::move(rng));
      });
  builders_.emplace_back(
      "puzzle", [](transport::Host& host, const FrontEndConfig& cfg,
                   util::RngStream rng) -> std::unique_ptr<FrontEnd> {
        PuzzleFrontEnd::Config tc;
        tc.capacity_rps = cfg.capacity_rps;
        tc.response_body = cfg.response_body;
        tc.puzzle_cost = cfg.puzzle_cost;
        tc.request_port = cfg.request_port;
        return std::make_unique<PuzzleFrontEnd>(host, tc, std::move(rng));
      });
}

void FrontEndFactory::register_defense(const std::string& name, Builder builder) {
  util::require(!name.empty(), "front-end name must be non-empty");
  util::require(builder != nullptr, "front-end builder must be callable");
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, unused] : builders_) {
    (void)unused;
    util::require(existing != name, "front end '" + name + "' is already registered");
  }
  builders_.emplace_back(name, std::move(builder));
}

void FrontEndFactory::unregister_defense(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(builders_, [&](const auto& entry) { return entry.first == name; });
}

bool FrontEndFactory::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(builders_.begin(), builders_.end(),
                     [&](const auto& entry) { return entry.first == name; });
}

std::vector<std::string> FrontEndFactory::names() const {
  std::vector<std::string> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.reserve(builders_.size());
    for (const auto& [name, unused] : builders_) {
      (void)unused;
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<FrontEnd> FrontEndFactory::create(std::string_view name,
                                                  transport::Host& host,
                                                  const FrontEndConfig& cfg,
                                                  util::RngStream server_rng) const {
  Builder builder;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find_if(builders_.begin(), builders_.end(),
                                 [&](const auto& entry) { return entry.first == name; });
    if (it == builders_.end()) {
      std::ostringstream os;
      os << "unknown front end '" << name << "' (registered:";
      for (const auto& [n, unused] : builders_) {
        (void)unused;
        os << " " << n;
      }
      os << ")";
      throw std::invalid_argument(os.str());
    }
    builder = it->second;
  }
  return builder(host, cfg, std::move(server_rng));
}

}  // namespace speakup::core
