// Figure 6: heterogeneous client bandwidths. 50 LAN clients, all good, in
// five categories: category i (10 clients) has 0.5*i Mbit/s. c = 10
// requests/s. The fraction of the server allocated to each category should
// track the bandwidth-proportional ideal.
//
// The scenario lives in scenarios/fig6.json (labeled "hetero-bw");
// `speakup run` on that file reproduces these numbers exactly.
#include <iostream>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 6", "per-category server allocation vs client bandwidth");
  bench::print_paper_note(
      "allocation per category is close to the proportional ideal "
      "(category i with 0.5*i Mbit/s gets ~i/15 of the server)");

  exp::ScenarioFile file = bench::load_scenarios("fig6.json");
  bench::apply_full_duration(file);
  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);
  const exp::ExperimentResult& r = runner.result("hetero-bw");

  // Sum of 10 clients per category at 0.5*i Mbit/s, i = 1..5.
  const double total_bw = 10 * 0.5 * (1 + 2 + 3 + 4 + 5);
  stats::Table table({"category", "bandwidth-Mbit/s", "observed-alloc", "ideal-alloc"});
  for (int i = 1; i <= 5; ++i) {
    table.row()
        .add("cat" + std::to_string(i))
        .add(0.5 * i, 1)
        .add(r.groups[static_cast<std::size_t>(i - 1)].allocation, 3)
        .add(10 * 0.5 * i / total_bw, 3);
  }
  table.print(std::cout);
  return 0;
}
