// Data-driven scenario files: parse a JSON scenario/sweep description into
// the labeled ScenarioConfigs an exp::Runner executes.
//
// A scenario file is the declarative counterpart of the hand-written grids
// in bench/: a "defaults" object, plus a "scenarios" array where each entry
// may carry a "grid" (cross-product axes over dotted config paths), a
// "seeds" replication count, and a "label" template ("{defense}/g{lan.good}").
// Expansion is deterministic — file order, axis order, then seed order — so
// a scenario's index is stable across runs and processes, which is what
// makes sharded sweeps (`speakup run --shard i/M`) mergeable back into the
// exact unsharded output.
//
// The full schema (every key, defaults, grid semantics) is documented in
// docs/scenario_format.md; the checked-in files under scenarios/ are the
// runnable examples.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"

namespace speakup::exp {

/// Any defect in a scenario file: JSON syntax, an unknown or mistyped key,
/// a bad value. The message always names the offending location
/// ("scenarios[1].groups[0]: unknown key \"acess_bw_mbps\"").
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One fully expanded scenario. `index` is its position in the file's
/// deterministic expansion order — the global coordinate used for sharding
/// and for merging sharded results.
struct LabeledScenario {
  std::size_t index = 0;
  std::string label;
  ScenarioConfig config;
};

struct ScenarioFile {
  std::string description;
  std::vector<LabeledScenario> scenarios;

  /// The round-robin slice owned by shard `index` of `count` (scenario i
  /// goes to shard i % count). Indices/labels keep their global values.
  [[nodiscard]] std::vector<LabeledScenario> shard(int index, int count) const;

  /// Queues every scenario (or a shard's slice) onto a Runner, preserving
  /// labels.
  void queue_on(Runner& runner) const;
  static void queue_on(Runner& runner, const std::vector<LabeledScenario>& slice);
};

/// Parses a scenario document from JSON text. Throws ScenarioError.
[[nodiscard]] ScenarioFile parse_scenario_file(std::string_view json_text);

/// Reads and parses `path`. Errors are prefixed with the file name.
[[nodiscard]] ScenarioFile load_scenario_file(const std::string& path);

/// Parsed scenarios/tab1_capacity.json (kind "capacity_bench"): the grid
/// for the thinner sink-rate benchmark (bench/tab1_thinner_capacity).
struct CapacityBenchSpec {
  std::string description;
  int clients = 0;                 // concurrent payers against the thinner
  std::vector<int> packet_bytes;   // wire packet sizes (payload = size - 40)
};

/// Reads and validates a capacity-bench grid file. Throws ScenarioError.
[[nodiscard]] CapacityBenchSpec load_capacity_bench_file(const std::string& path);

/// Strict companion to parse_defense_mode for config-file and CLI paths:
/// returns `name` when it is a built-in mode or a registered
/// core::FrontEndFactory defense, and otherwise throws std::invalid_argument
/// listing every registered name — a scenario-file typo fails loudly
/// instead of running some default defense.
[[nodiscard]] std::string resolve_defense_name(std::string_view name);

/// Same contract for workload strategies: returns `name` when it is
/// registered with client::StrategyFactory, and otherwise throws
/// std::invalid_argument listing every registered strategy. Used for the
/// `workload.strategy` scenario key (strategy knobs are validated by
/// constructing the strategy at parse time).
[[nodiscard]] std::string resolve_strategy_name(std::string_view name);

}  // namespace speakup::exp
