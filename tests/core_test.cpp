// Tests for the thinner variants, driven by hand-rolled clients so that
// payments and timing are under precise test control.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/auction_thinner.hpp"
#include "core/no_defense.hpp"
#include "core/quantum_thinner.hpp"
#include "core/retry_thinner.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {
namespace {

using http::ClientClass;
using http::Message;
using http::MessageStream;
using http::MessageType;

/// A scriptable client host: issues requests and payments on demand and
/// records every message the thinner sends back.
class ManualClient {
 public:
  ManualClient(net::Network& net, net::Node& attach_to, const std::string& name)
      : host_(&net.add_node<transport::Host>(name)), pool_(net.loop()) {
    net.connect(*host_, attach_to,
                net::LinkSpec{Bandwidth::mbps(10.0), Duration::micros(500), 200'000});
  }

  void send_request(net::NodeId thinner, std::uint64_t id,
                    ClientClass cls = ClientClass::kGood, int difficulty = 1) {
    transport::TcpConnection& c = host_->connect(thinner, 80);
    MessageStream& s = pool_.adopt(c);
    request_streams_[id] = &s;
    MessageStream::Callbacks cbs;
    cbs.on_established = [this, &s, id, cls, difficulty] {
      s.send(Message{.type = MessageType::kRequest,
                     .request_id = id,
                     .cls = cls,
                     .difficulty = difficulty});
    };
    cbs.on_message = [this, id](const Message& m) { inbox[id].push_back(m); };
    cbs.on_reset = [this, id] { resets.push_back(id); };
    s.set_callbacks(std::move(cbs));
  }

  /// Opens a payment channel and pays `amount` bytes (single POST).
  void pay(net::NodeId thinner, std::uint64_t id, Bytes amount,
           ClientClass cls = ClientClass::kGood) {
    transport::TcpConnection& c = host_->connect(thinner, 81);
    MessageStream& s = pool_.adopt(c);
    MessageStream::Callbacks cbs;
    cbs.on_established = [&s, id, amount, cls] {
      s.send(Message{.type = MessageType::kPayOpen, .request_id = id, .cls = cls});
      s.send(Message{
          .type = MessageType::kPostData, .request_id = id, .body = amount, .cls = cls});
    };
    cbs.on_message = [this, id](const Message& m) { pay_inbox[id].push_back(m); };
    s.set_callbacks(std::move(cbs));
  }

  /// Resends a request message on the existing stream (retry-mode).
  void resend_request(std::uint64_t id, ClientClass cls = ClientClass::kGood) {
    const auto it = request_streams_.find(id);
    ASSERT_NE(it, request_streams_.end());
    it->second->send(Message{.type = MessageType::kRequest, .request_id = id, .cls = cls});
  }

  [[nodiscard]] bool got(std::uint64_t id, MessageType t) const {
    const auto it = inbox.find(id);
    if (it == inbox.end()) return false;
    for (const Message& m : it->second) {
      if (m.type == t) return true;
    }
    return false;
  }

  [[nodiscard]] bool paid_won(std::uint64_t id) const {
    const auto it = pay_inbox.find(id);
    if (it == pay_inbox.end()) return false;
    for (const Message& m : it->second) {
      if (m.type == MessageType::kWin) return true;
    }
    return false;
  }

  std::map<std::uint64_t, std::vector<Message>> inbox;
  std::map<std::uint64_t, std::vector<Message>> pay_inbox;
  std::vector<std::uint64_t> resets;

 private:
  transport::Host* host_;
  http::SessionPool pool_;
  std::map<std::uint64_t, MessageStream*> request_streams_;
};

struct Rig {
  Rig() : net(loop) {
    sw = &net.add_switch("sw");
    thinner_host = &net.add_node<transport::Host>("thinner");
    net.connect(*thinner_host, *sw,
                net::LinkSpec{Bandwidth::gbps(1.0), Duration::micros(500), 4'000'000});
  }
  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }

  sim::EventLoop loop;
  net::Network net;
  net::Switch* sw = nullptr;
  transport::Host* thinner_host = nullptr;
};

// --------------------------------------------------------------------------
// AuctionThinner
// --------------------------------------------------------------------------

TEST(AuctionThinner, IdleServerAdmitsImmediatelyAtPriceZero) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 10.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient c(rig.net, *rig.sw, "c0");
  c.send_request(rig.thinner_host->id(), 1, ClientClass::kGood);
  rig.run_for(1.0);
  EXPECT_TRUE(c.got(1, MessageType::kResponse));
  EXPECT_FALSE(c.got(1, MessageType::kPleasePay));
  EXPECT_EQ(thinner.stats().served_good, 1);
  EXPECT_EQ(thinner.stats().direct_admissions, 1);
  ASSERT_EQ(thinner.stats().price_good.count(), 1u);
  EXPECT_DOUBLE_EQ(thinner.stats().price_good.mean(), 0.0);
}

TEST(AuctionThinner, BusyServerAsksForPayment) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;  // ~1 s service times
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient c(rig.net, *rig.sw, "c0");
  c.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.1);
  c.send_request(rig.thinner_host->id(), 2);
  rig.run_for(0.1);
  EXPECT_TRUE(c.got(2, MessageType::kPleasePay));
  EXPECT_FALSE(c.got(2, MessageType::kResponse));
}

TEST(AuctionThinner, HighestBidderWinsTheAuction) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient a(rig.net, *rig.sw, "a");
  ManualClient b(rig.net, *rig.sw, "b");
  ManualClient c(rig.net, *rig.sw, "c");
  a.send_request(rig.thinner_host->id(), 1);  // takes the idle server
  rig.run_for(0.05);
  b.send_request(rig.thinner_host->id(), 2);
  c.send_request(rig.thinner_host->id(), 3);
  rig.run_for(0.05);
  b.pay(rig.thinner_host->id(), 2, 50'000);
  c.pay(rig.thinner_host->id(), 3, 100'000);
  rig.run_for(0.5);  // payments complete well before the ~1 s service ends
  // First completion auctions between b(50k) and c(100k): c wins.
  rig.run_for(1.0);
  EXPECT_TRUE(c.paid_won(3));
  EXPECT_FALSE(b.paid_won(2));
  rig.run_for(2.5);  // c completes (~2 s), b wins the follow-up auction (~3 s)
  EXPECT_TRUE(c.got(3, MessageType::kResponse));
  EXPECT_TRUE(b.got(2, MessageType::kResponse));
  EXPECT_EQ(thinner.stats().served_good, 3);
  EXPECT_EQ(thinner.stats().auctions_held, 2);
}

TEST(AuctionThinner, RecordedPriceIsWinnersBytes) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient a(rig.net, *rig.sw, "a");
  ManualClient b(rig.net, *rig.sw, "b");
  a.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.05);
  b.send_request(rig.thinner_host->id(), 2);
  rig.run_for(0.05);
  b.pay(rig.thinner_host->id(), 2, 80'000);
  rig.run_for(3.0);
  EXPECT_TRUE(b.got(2, MessageType::kResponse));
  // Price samples: request 1 paid 0 (direct), request 2 paid 80k.
  ASSERT_EQ(thinner.stats().price_good.count(), 2u);
  EXPECT_DOUBLE_EQ(thinner.stats().price_good.max(), 80'000.0);
}

TEST(AuctionThinner, PaymentBeforeRequestIsCreditedOnArrival) {
  // §7.3's overpayment case: the payment channel opens first; the request
  // arrives later (delayed behind payment bytes for real bad clients).
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient a(rig.net, *rig.sw, "a");
  ManualClient b(rig.net, *rig.sw, "b");
  a.send_request(rig.thinner_host->id(), 1);  // occupy the server (~1 s)
  rig.run_for(0.05);
  b.pay(rig.thinner_host->id(), 2, 60'000);  // pays with NO request yet
  rig.run_for(0.5);
  // The auction at t~1s has no eligible contender (no request): idle.
  rig.run_for(1.0);
  EXPECT_EQ(thinner.stats().served_total(), 1);
  // Request 2 finally arrives: admitted immediately, price = 60 KB.
  b.send_request(rig.thinner_host->id(), 2);
  rig.run_for(2.0);
  EXPECT_TRUE(b.got(2, MessageType::kResponse));
  ASSERT_EQ(thinner.stats().price_good.count(), 2u);
  EXPECT_DOUBLE_EQ(thinner.stats().price_good.max(), 60'000.0);
}

TEST(AuctionThinner, PostCompletionElicitsContinue) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient a(rig.net, *rig.sw, "a");
  ManualClient b(rig.net, *rig.sw, "b");
  a.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.05);
  b.send_request(rig.thinner_host->id(), 2);
  b.pay(rig.thinner_host->id(), 2, 10'000);
  rig.run_for(0.5);
  ASSERT_NE(b.pay_inbox.find(2), b.pay_inbox.end());
  EXPECT_EQ(b.pay_inbox[2].front().type, MessageType::kPostContinue);
}

TEST(AuctionThinner, RequestlessChannelExpiresAfterWindow) {
  // §7.3 wastage: a payment channel whose request never arrives is timed
  // out after the payment window and its bytes are wasted.
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 0.2;  // ~5 s service keeps the server busy throughout
  cfg.payment_window = Duration::seconds(2.0);
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient x(rig.net, *rig.sw, "x");
  ManualClient y(rig.net, *rig.sw, "y");
  x.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.1);
  y.pay(rig.thinner_host->id(), 2, 5'000);  // request 2 never arrives
  rig.run_for(3.0);
  EXPECT_EQ(thinner.stats().channels_expired, 1);
  EXPECT_EQ(thinner.stats().payment_bytes_wasted, 5'000);
  EXPECT_EQ(thinner.contending(), 1u);  // only the one being served remains
}

TEST(AuctionThinner, ContenderWithRequestSurvivesTheWindow) {
  // A contender whose request is present keeps paying past the window and
  // eventually wins (the window is only for missing requests).
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 0.2;  // ~5 s service
  cfg.payment_window = Duration::seconds(2.0);
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient x(rig.net, *rig.sw, "x");
  ManualClient y(rig.net, *rig.sw, "y");
  x.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.1);
  y.send_request(rig.thinner_host->id(), 2);
  y.pay(rig.thinner_host->id(), 2, 5'000);
  rig.run_for(6.5);  // well past the window; first service ends ~5 s
  EXPECT_EQ(thinner.stats().channels_expired, 0);
  EXPECT_TRUE(y.got(2, MessageType::kResponse) || y.paid_won(2));
}

TEST(AuctionThinner, TieBreaksByArrivalOrder) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient a(rig.net, *rig.sw, "a");
  ManualClient b(rig.net, *rig.sw, "b");
  ManualClient c(rig.net, *rig.sw, "c");
  a.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.05);
  b.send_request(rig.thinner_host->id(), 2);  // arrives first
  rig.run_for(0.05);
  c.send_request(rig.thinner_host->id(), 3);
  rig.run_for(2.0);  // first completion: both paid 0 -> b (earlier) wins
  EXPECT_TRUE(b.got(2, MessageType::kResponse));
  EXPECT_FALSE(c.got(3, MessageType::kResponse));
}

TEST(AuctionThinner, ClassAccountingSeparatesGoodAndBad) {
  Rig rig;
  AuctionThinner::Config cfg;
  cfg.capacity_rps = 10.0;
  AuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient g(rig.net, *rig.sw, "g");
  ManualClient b(rig.net, *rig.sw, "b");
  g.send_request(rig.thinner_host->id(), 1, ClientClass::kGood);
  rig.run_for(0.5);
  b.send_request(rig.thinner_host->id(), 2, ClientClass::kBad);
  rig.run_for(0.5);
  EXPECT_EQ(thinner.stats().served_good, 1);
  EXPECT_EQ(thinner.stats().served_bad, 1);
  EXPECT_DOUBLE_EQ(thinner.stats().allocation_good(), 0.5);
}

// --------------------------------------------------------------------------
// RetryThinner
// --------------------------------------------------------------------------

TEST(RetryThinner, IdleServerAdmitsImmediately) {
  Rig rig;
  RetryThinner::Config cfg;
  cfg.capacity_rps = 10.0;
  RetryThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient c(rig.net, *rig.sw, "c");
  c.send_request(rig.thinner_host->id(), 1);
  rig.run_for(1.0);
  EXPECT_TRUE(c.got(1, MessageType::kResponse));
  ASSERT_EQ(thinner.stats().retries_good.count(), 1u);
  EXPECT_DOUBLE_EQ(thinner.stats().retries_good.mean(), 1.0);  // one try
}

TEST(RetryThinner, BusyServerSendsRetrySignal) {
  Rig rig;
  RetryThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  RetryThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient c(rig.net, *rig.sw, "c");
  c.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.05);
  c.send_request(rig.thinner_host->id(), 2);
  rig.run_for(0.1);
  EXPECT_TRUE(c.got(2, MessageType::kRetry));
}

TEST(RetryThinner, PersistentRetrierGetsServedAndPriceCounted) {
  Rig rig;
  RetryThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  RetryThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient c(rig.net, *rig.sw, "c");
  c.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.05);
  c.send_request(rig.thinner_host->id(), 2);
  // Retry every 100 ms until served.
  for (int i = 0; i < 25; ++i) {
    rig.run_for(0.1);
    if (c.got(2, MessageType::kResponse)) break;
    c.resend_request(2);
  }
  EXPECT_TRUE(c.got(2, MessageType::kResponse));
  ASSERT_EQ(thinner.stats().retries_good.count(), 2u);
  // Request 2 needed several retries; the price reflects that.
  EXPECT_GT(thinner.stats().retries_good.max(), 3.0);
}

// --------------------------------------------------------------------------
// NoDefenseFrontEnd
// --------------------------------------------------------------------------

TEST(NoDefense, DropsWhenBusyServesWhenFree) {
  Rig rig;
  NoDefenseFrontEnd::Config cfg;
  cfg.capacity_rps = 1.0;
  NoDefenseFrontEnd fe(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient c(rig.net, *rig.sw, "c");
  c.send_request(rig.thinner_host->id(), 1);
  rig.run_for(0.05);
  c.send_request(rig.thinner_host->id(), 2);
  rig.run_for(0.1);
  EXPECT_TRUE(c.got(2, MessageType::kBusy));
  rig.run_for(2.0);
  EXPECT_TRUE(c.got(1, MessageType::kResponse));
  EXPECT_EQ(fe.stats().busy_rejections, 1);
  EXPECT_EQ(fe.stats().served_total(), 1);
}

// --------------------------------------------------------------------------
// QuantumAuctionThinner (§5)
// --------------------------------------------------------------------------

TEST(QuantumThinner, ServesSingleRequestLikeFlatThinner) {
  Rig rig;
  QuantumAuctionThinner::Config cfg;
  cfg.capacity_rps = 10.0;
  QuantumAuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient c(rig.net, *rig.sw, "c");
  c.send_request(rig.thinner_host->id(), 1);
  rig.run_for(1.0);
  EXPECT_TRUE(c.got(1, MessageType::kResponse));
  EXPECT_EQ(thinner.stats().served_good, 1);
}

TEST(QuantumThinner, PayingContenderPreemptsNonPayingActive) {
  Rig rig;
  QuantumAuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;       // 1 s per difficulty unit
  cfg.quantum = Duration::millis(200);
  QuantumAuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient slow(rig.net, *rig.sw, "slow");
  ManualClient fast(rig.net, *rig.sw, "fast");
  slow.send_request(rig.thinner_host->id(), 1, ClientClass::kBad, /*difficulty=*/5);
  rig.run_for(0.1);  // slow holds the server (needs ~5 s)
  fast.send_request(rig.thinner_host->id(), 2, ClientClass::kGood, 1);
  rig.run_for(0.05);
  fast.pay(rig.thinner_host->id(), 2, 50'000);
  rig.run_for(1.5);
  // fast outbid the (non-paying) active request at a quantum boundary,
  // was admitted, and finished its ~1 s of work.
  EXPECT_TRUE(fast.got(2, MessageType::kResponse));
  EXPECT_FALSE(slow.got(1, MessageType::kResponse));
  EXPECT_GE(thinner.suspensions(), 1);
  // slow resumes once fast is done and eventually completes.
  rig.run_for(6.0);
  EXPECT_TRUE(slow.got(1, MessageType::kResponse));
}

TEST(QuantumThinner, SuspendedTooLongIsAborted) {
  Rig rig;
  QuantumAuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  cfg.quantum = Duration::millis(200);
  cfg.suspension_limit = Duration::seconds(2.0);
  QuantumAuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient victim(rig.net, *rig.sw, "victim");
  ManualClient hog(rig.net, *rig.sw, "hog");
  victim.send_request(rig.thinner_host->id(), 1, ClientClass::kGood, 3);
  rig.run_for(0.1);
  hog.send_request(rig.thinner_host->id(), 2, ClientClass::kBad, /*difficulty=*/20);
  rig.run_for(0.05);
  hog.pay(rig.thinner_host->id(), 2, 200'000);  // outbids the victim for good
  rig.run_for(4.0);
  // The victim was suspended, the hog's 20 s job keeps the server, and the
  // 2 s suspension limit aborts the victim.
  EXPECT_TRUE(victim.got(1, MessageType::kAborted));
  EXPECT_GE(thinner.aborts(), 1);
  EXPECT_FALSE(victim.got(1, MessageType::kResponse));
}

TEST(QuantumThinner, ActivePayerKeepsServerAgainstSmallerBids) {
  Rig rig;
  QuantumAuctionThinner::Config cfg;
  cfg.capacity_rps = 1.0;
  cfg.quantum = Duration::millis(200);
  QuantumAuctionThinner thinner(*rig.thinner_host, cfg, util::RngStream(1, "srv"));
  ManualClient holder(rig.net, *rig.sw, "holder");
  ManualClient rival(rig.net, *rig.sw, "rival");
  holder.send_request(rig.thinner_host->id(), 1, ClientClass::kGood, 3);
  rig.run_for(0.1);
  // A 5 MB POST takes ~4 s at 10 Mbit/s — the holder pays throughout its
  // ~3 s of service and outbids the rival at every quantum.
  holder.pay(rig.thinner_host->id(), 1, 5'000'000);
  rival.send_request(rig.thinner_host->id(), 2, ClientClass::kBad, 1);
  rig.run_for(0.05);
  rival.pay(rig.thinner_host->id(), 2, 1'000);  // tiny bid
  rig.run_for(3.6);
  // The holder completes its ~3 s request without ever being suspended:
  // its ongoing payment outbids the rival at every quantum.
  EXPECT_TRUE(holder.got(1, MessageType::kResponse));
  EXPECT_EQ(thinner.suspensions(), 0);
}

}  // namespace
}  // namespace speakup::core
