// Work-stealing slice queue + claim journal for `speakup dispatch`.
//
// A dispatched sweep is cut into M shard slices (slice k of M owns exactly
// the scenarios `speakup run --shard k/M` would run, so completed slice
// CSVs merge byte-identically to a single-process run). WorkQueue tracks
// each slice through pending -> running -> done, requeues slices lost to a
// dead or silent worker until their attempt budget runs out, and accounts
// rows/events progress for the live status view. SliceJournal is the
// dispatcher's on-disk record of that state machine: an append-only file
// under the work directory whose header pins the sweep's identity
// (scenario file, expansion size, slice count) so a killed dispatcher can
// be restarted with --resume against the same work directory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace speakup::exp {

/// One shard slice of a sweep — the unit `speakup dispatch` hands to a
/// worker.
struct Slice {
  enum class State { kPending, kRunning, kDone, kFailed };

  int id = 0;
  std::size_t rows = 0;  // scenarios in this slice
  State state = State::kPending;
  int attempts = 0;    // times handed to a worker
  int worker = -1;     // worker currently running it (-1 otherwise)
  std::size_t rows_done = 0;  // within-slice progress (from heartbeats)
  std::uint64_t events = 0;   // sim events executed so far / in total
  std::string error;          // most recent failure reason
};

/// In-memory slice state machine. Pull-based work stealing: an idle worker
/// claims the next pending slice; there is no static assignment, so a slow
/// worker never strands work. Driven single-threaded from the dispatcher's
/// poll loop — no locking.
class WorkQueue {
 public:
  /// `rows_per_slice[i]` is slice i's scenario count; `max_attempts` is how
  /// many times a slice may be handed out before it is marked failed
  /// (1 + `--retries`).
  WorkQueue(std::vector<std::size_t> rows_per_slice, int max_attempts);

  /// Claims the lowest-id pending slice for `worker`; -1 when none is
  /// pending (the caller keeps the worker idle — a running slice may still
  /// be requeued).
  int claim(int worker);

  /// Heartbeat progress for a running slice.
  void heartbeat(int slice, std::size_t rows_done, std::uint64_t events);

  /// A worker finished a slice and its CSV is on disk.
  void complete(int slice, std::uint64_t events);

  /// Marks a slice done without running it (validated --resume artifact).
  void complete_resumed(int slice, std::uint64_t events);

  /// The slice's worker died or reported failure: back to pending, unless
  /// the attempt budget is spent — then kFailed. Returns true when the
  /// slice was requeued, false when it is now permanently failed.
  bool requeue(int slice, const std::string& reason);

  /// Marks every still-pending slice failed (no workers can be had for
  /// them); running slices are untouched.
  void fail_pending(const std::string& reason);

  [[nodiscard]] const std::vector<Slice>& slices() const { return slices_; }
  [[nodiscard]] const Slice& slice(int id) const { return slices_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int size() const { return static_cast<int>(slices_.size()); }

  [[nodiscard]] int pending() const { return count(Slice::State::kPending); }
  [[nodiscard]] int running() const { return count(Slice::State::kRunning); }
  [[nodiscard]] int done() const { return count(Slice::State::kDone); }
  [[nodiscard]] int failed() const { return count(Slice::State::kFailed); }

  /// Every slice reached a terminal state (done or failed).
  [[nodiscard]] bool settled() const { return pending() == 0 && running() == 0; }
  /// settled() with nothing failed: the sweep is complete and mergeable.
  [[nodiscard]] bool complete_ok() const { return settled() && failed() == 0; }

  [[nodiscard]] std::size_t rows_total() const;
  /// Rows finished across done slices plus heartbeat progress of running
  /// ones (the progress-bar numerator).
  [[nodiscard]] std::size_t rows_done() const;
  [[nodiscard]] std::uint64_t events_total() const;

 private:
  [[nodiscard]] int count(Slice::State s) const;
  Slice& at(int id);

  std::vector<Slice> slices_;
  int max_attempts_;
};

/// Append-only dispatch journal. First line is a JSON header identifying
/// the sweep; every subsequent line is one event (`claim`, `done`, `fail`,
/// `note`), flushed as written so the file is meaningful after a kill -9.
/// Resume trusts the header for identity but re-validates slice CSVs on
/// disk rather than replaying events — artifacts beat bookkeeping.
class SliceJournal {
 public:
  struct Header {
    std::string scenario_path;
    std::size_t scenario_count = 0;
    int slices = 0;
  };

  SliceJournal() = default;
  SliceJournal(SliceJournal&& other) noexcept;
  SliceJournal& operator=(SliceJournal&& other) noexcept;
  ~SliceJournal();
  SliceJournal(const SliceJournal&) = delete;
  SliceJournal& operator=(const SliceJournal&) = delete;

  /// Truncates `path` and writes a fresh header.
  static SliceJournal create(const std::string& path, const Header& header);
  /// Opens an existing journal for appending (--resume).
  static SliceJournal append_to(const std::string& path);
  /// Parses the header line of an existing journal. Throws
  /// std::runtime_error when the file is missing or not a dispatch journal.
  static Header read_header(const std::string& path);

  void claim(int slice, int attempt, int worker_pid);
  void done(int slice, std::size_t rows, std::uint64_t events);
  void fail(int slice, int attempt, const std::string& reason);
  void note(const std::string& what);

 private:
  void line(const std::string& text);

  std::FILE* f_ = nullptr;
};

}  // namespace speakup::exp
