// Per-client accounting, aggregated per group by the experiment harness.
#pragma once

#include <cstdint>

#include "stats/sample_set.hpp"
#include "util/units.hpp"

namespace speakup::client {

struct ClientStats {
  std::int64_t arrivals = 0;       // Poisson process fires
  std::int64_t started = 0;        // requests actually sent to the thinner
  std::int64_t served = 0;
  std::int64_t denied = 0;         // 10 s timeout, backlog expiry, eviction, abort
  std::int64_t busy_rejected = 0;  // kBusy fast failures (no-defense baseline)
  std::int64_t retries_sent = 0;   // §3.2 mode
  std::int64_t payments_declined = 0;   // strategy refused a kPleasePay
  std::int64_t payments_abandoned = 0;  // strategy defected mid-payment
  Bytes payment_bytes_acked = 0;   // dummy bytes delivered (client view)
  stats::SampleSet response_time;        // request sent -> response, served only
  stats::SampleSet payment_time_client;  // kPleasePay -> response, served only

  /// Requests that reached a disposition.
  [[nodiscard]] std::int64_t resolved() const { return served + denied + busy_rejected; }

  /// The paper's "fraction of good requests served" metric (Figure 3).
  [[nodiscard]] double fraction_served() const {
    const std::int64_t r = resolved();
    return r == 0 ? 0.0 : static_cast<double>(served) / static_cast<double>(r);
  }

  void merge(const ClientStats& o) {
    arrivals += o.arrivals;
    started += o.started;
    served += o.served;
    denied += o.denied;
    busy_rejected += o.busy_rejected;
    retries_sent += o.retries_sent;
    payments_declined += o.payments_declined;
    payments_abandoned += o.payments_abandoned;
    payment_bytes_acked += o.payment_bytes_acked;
    response_time.merge(o.response_time);
    payment_time_client.merge(o.payment_time_client);
  }
};

}  // namespace speakup::client
