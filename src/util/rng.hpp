// Reproducible random-number streams.
//
// Every stochastic component in an experiment (each client's Poisson process,
// each server's service-time draw, ...) owns its own RngStream derived from
// (master seed, stream id). Components therefore consume randomness
// independently: adding a client or reordering events never perturbs another
// component's draws, which keeps experiments comparable across configurations.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

#include "util/assert.hpp"

namespace speakup::util {

/// FNV-1a, used to hash stream names into seed material.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// One independent stream of pseudo-random numbers.
class RngStream {
 public:
  RngStream(std::uint64_t master_seed, std::string_view stream_name)
      : engine_(mix(master_seed, fnv1a(stream_name))) {}
  RngStream(std::uint64_t master_seed, std::uint64_t stream_id)
      : engine_(mix(master_seed, stream_id)) {}

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    SPEAKUP_ASSERT(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    SPEAKUP_ASSERT(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given rate (events per unit time). Mean = 1/rate.
  double exponential(double rate) {
    SPEAKUP_ASSERT(rate > 0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  // SplitMix64 finalizer: spreads correlated (seed, id) pairs across the
  // whole 64-bit space before seeding the Mersenne Twister.
  static std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
    std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace speakup::util
