// Message framing over a TcpConnection.
//
// The sender side queues message descriptors and writes the corresponding
// byte counts into the TCP stream; the receiver side watches in-order byte
// arrival and fires callbacks as message boundaries are crossed. Because
// payment POSTs must be credited *as the bytes arrive* (a partial payment
// still counts toward an auction bid — §3.3), the stream reports incremental
// body progress as well as message completion.
//
// A MessageStream attaches itself to its connection's app_handle so the
// peer endpoint's stream can read the descriptor queue — the simulation
// shortcut that lets typed messages ride on counted bytes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "http/message.hpp"
#include "transport/tcp_connection.hpp"
#include "util/assert.hpp"

namespace speakup::http {

class MessageStream {
 public:
  struct Callbacks {
    std::function<void(const Message&)> on_message;  // fully delivered
    /// Incremental in-order arrival of a message body (after its header).
    std::function<void(const Message&, Bytes newly)> on_body_progress;
    std::function<void()> on_established;
    /// Peer reset / connection failure.
    std::function<void()> on_reset;
    /// Sender side: total stream bytes acked by the peer.
    std::function<void(Bytes total_acked)> on_acked;
  };

  explicit MessageStream(transport::TcpConnection& conn) : conn_(&conn) {
    conn.app_handle() = this;
    transport::TcpConnection::Callbacks cbs;
    cbs.on_established = [this] {
      if (cbs_.on_established) cbs_.on_established();
    };
    cbs.on_data = [this](Bytes n) { consume(n); };
    cbs.on_acked = [this](Bytes total) {
      if (cbs_.on_acked) cbs_.on_acked(total);
    };
    cbs.on_reset = [this] {
      conn_ = nullptr;
      if (cbs_.on_reset) cbs_.on_reset();
    };
    conn.set_callbacks(std::move(cbs));
  }

  MessageStream(const MessageStream&) = delete;
  MessageStream& operator=(const MessageStream&) = delete;

  ~MessageStream() {
    if (conn_ != nullptr) {
      conn_->app_handle() = static_cast<MessageStream*>(nullptr);
      conn_->set_callbacks({});
    }
  }

  void set_callbacks(Callbacks cbs) { cbs_ = std::move(cbs); }

  /// Queues a message for transmission.
  void send(Message m) {
    if (conn_ == nullptr) return;
    outbox_.emplace_back(m);
    conn_->write(m.wire_bytes());
  }

  /// Aborts the underlying connection (RST).
  void abort() {
    if (conn_ != nullptr) {
      transport::TcpConnection* c = conn_;
      conn_ = nullptr;
      c->app_handle() = static_cast<MessageStream*>(nullptr);
      c->set_callbacks({});
      c->abort();
    }
  }

  [[nodiscard]] bool alive() const { return conn_ != nullptr && !conn_->closed(); }
  [[nodiscard]] transport::TcpConnection* connection() const { return conn_; }

 private:
  /// Receiver path: `n` new in-order bytes arrived. Walk them through the
  /// peer's descriptor queue, firing progress/completion callbacks.
  void consume(Bytes n) {
    while (n > 0) {
      MessageStream* peer = peer_stream();
      if (peer == nullptr || peer->outbox_.empty()) return;  // raced with teardown
      Message& front = peer->outbox_.front();
      if (inbound_header_left_ < 0) inbound_header_left_ = kMessageHeaderBytes;
      if (inbound_header_left_ > 0) {
        const Bytes take = std::min(n, inbound_header_left_);
        inbound_header_left_ -= take;
        n -= take;
        if (inbound_header_left_ > 0) return;
        inbound_body_left_ = front.body;
      }
      if (inbound_body_left_ > 0) {
        const Bytes take = std::min(n, inbound_body_left_);
        inbound_body_left_ -= take;
        n -= take;
        if (take > 0 && cbs_.on_body_progress) cbs_.on_body_progress(front, take);
      }
      if (inbound_body_left_ == 0) {
        const Message done = front;
        peer->outbox_.pop_front();
        inbound_header_left_ = -1;  // next message starts fresh
        if (cbs_.on_message) cbs_.on_message(done);
        // Callback may have aborted us; re-check.
        if (conn_ == nullptr) return;
      }
    }
  }

  [[nodiscard]] MessageStream* peer_stream() const {
    if (conn_ == nullptr) return nullptr;
    transport::TcpConnection* p = conn_->peer();
    if (p == nullptr) return nullptr;
    auto* handle = std::any_cast<MessageStream*>(&p->app_handle());
    return handle == nullptr ? nullptr : *handle;
  }

  transport::TcpConnection* conn_;
  Callbacks cbs_;
  std::deque<Message> outbox_;       // descriptors not yet fully consumed by peer
  Bytes inbound_header_left_ = -1;   // -1: waiting for a new message
  Bytes inbound_body_left_ = 0;
};

}  // namespace speakup::http
