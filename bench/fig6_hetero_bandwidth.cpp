// Figure 6: heterogeneous client bandwidths. 50 LAN clients, all good, in
// five categories: category i (10 clients) has 0.5*i Mbit/s. c = 10
// requests/s. The fraction of the server allocated to each category should
// track the bandwidth-proportional ideal.
#include <iostream>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 6", "per-category server allocation vs client bandwidth");
  bench::print_paper_note(
      "allocation per category is close to the proportional ideal "
      "(category i with 0.5*i Mbit/s gets ~i/15 of the server)");

  exp::ScenarioConfig cfg;
  cfg.mode = exp::DefenseMode::kAuction;
  cfg.capacity_rps = 10.0;
  cfg.seed = 25;
  cfg.duration = bench::experiment_duration();
  double total_bw = 0.0;
  for (int i = 1; i <= 5; ++i) {
    exp::ClientGroupSpec g;
    g.label = "cat" + std::to_string(i);
    g.count = 10;
    g.workload = client::good_client_params();
    g.access_bw = Bandwidth::mbps(0.5 * i);
    cfg.groups.push_back(g);
    total_bw += 10 * 0.5 * i;
  }
  exp::Runner runner;
  runner.add(cfg, "hetero-bw");
  bench::run_all(runner);
  const exp::ExperimentResult& r = runner.result("hetero-bw");

  stats::Table table({"category", "bandwidth-Mbit/s", "observed-alloc", "ideal-alloc"});
  for (int i = 1; i <= 5; ++i) {
    table.row()
        .add("cat" + std::to_string(i))
        .add(0.5 * i, 1)
        .add(r.groups[static_cast<std::size_t>(i - 1)].allocation, 3)
        .add(10 * 0.5 * i / total_bw, 3);
  }
  table.print(std::cout);
  return 0;
}
