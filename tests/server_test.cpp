// Tests for the emulated servers: capacity/service-time law, completion
// callbacks, class accounting, and the §5 SUSPEND/RESUME/ABORT interface.
#include <gtest/gtest.h>

#include <vector>

#include "server/emulated_server.hpp"
#include "server/interruptible_server.hpp"
#include "sim/event_loop.hpp"
#include "util/rng.hpp"

namespace speakup::server {
namespace {

using http::ClientClass;

util::RngStream rng() { return util::RngStream(1, "server-test"); }

TEST(EmulatedServer, RejectsNonPositiveCapacity) {
  sim::EventLoop loop;
  EXPECT_THROW(EmulatedServer(loop, 0.0, rng()), std::invalid_argument);
}

TEST(EmulatedServer, BusyWhileServing) {
  sim::EventLoop loop;
  EmulatedServer s(loop, 10.0, rng());
  EXPECT_FALSE(s.busy());
  s.submit(ServiceRequest{1, ClientClass::kGood, 1});
  EXPECT_TRUE(s.busy());
  loop.run();
  EXPECT_FALSE(s.busy());
  EXPECT_EQ(s.served(), 1);
}

TEST(EmulatedServer, CompletionCallbackCarriesRequest) {
  sim::EventLoop loop;
  EmulatedServer s(loop, 10.0, rng());
  std::vector<std::uint64_t> done;
  s.set_on_complete([&](const ServiceRequest& r) { done.push_back(r.request_id); });
  s.submit(ServiceRequest{7, ClientClass::kBad, 1});
  loop.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 7u);
}

TEST(EmulatedServer, ServiceTimeWithinPaperBounds) {
  // §6: service time uniform in [0.9/c, 1.1/c].
  sim::EventLoop loop;
  EmulatedServer s(loop, 100.0, rng());
  SimTime start;
  std::vector<double> times;
  s.set_on_complete([&](const ServiceRequest&) {
    times.push_back((loop.now() - start).sec());
    if (times.size() < 200) {
      start = loop.now();
      s.submit(ServiceRequest{times.size(), ClientClass::kGood, 1});
    }
  });
  start = loop.now();
  s.submit(ServiceRequest{0, ClientClass::kGood, 1});
  loop.run();
  ASSERT_EQ(times.size(), 200u);
  double sum = 0;
  for (const double t : times) {
    EXPECT_GE(t, 0.9 / 100.0 - 1e-9);
    EXPECT_LE(t, 1.1 / 100.0 + 1e-9);
    sum += t;
  }
  EXPECT_NEAR(sum / 200.0, 1.0 / 100.0, 0.0005);  // mean 1/c
}

TEST(EmulatedServer, ThroughputMatchesCapacity) {
  sim::EventLoop loop;
  EmulatedServer s(loop, 50.0, rng());
  int completed = 0;
  s.set_on_complete([&](const ServiceRequest&) {
    ++completed;
    s.submit(ServiceRequest{static_cast<std::uint64_t>(completed), ClientClass::kGood, 1});
  });
  s.submit(ServiceRequest{0, ClientClass::kGood, 1});
  loop.run_until(SimTime::zero() + Duration::seconds(10.0));
  // Back-to-back service at c=50 for 10 s: ~500 completions.
  EXPECT_NEAR(completed, 500, 25);
}

TEST(EmulatedServer, DifficultyScalesServiceTime) {
  sim::EventLoop loop;
  EmulatedServer s(loop, 10.0, rng());
  SimTime start = loop.now();
  double easy = 0;
  double hard = 0;
  s.set_on_complete([&](const ServiceRequest& r) {
    if (r.difficulty == 1) {
      easy = (loop.now() - start).sec();
      start = loop.now();
      s.submit(ServiceRequest{2, ClientClass::kGood, 10});
    } else {
      hard = (loop.now() - start).sec();
    }
  });
  s.submit(ServiceRequest{1, ClientClass::kGood, 1});
  loop.run();
  EXPECT_GT(hard, 5 * easy);  // ~10x with U[0.9,1.1] jitter
}

TEST(EmulatedServer, BusyTimeAccountsByClass) {
  sim::EventLoop loop;
  EmulatedServer s(loop, 10.0, rng());
  s.set_on_complete([&](const ServiceRequest& r) {
    if (r.request_id == 1) s.submit(ServiceRequest{2, ClientClass::kBad, 1});
  });
  s.submit(ServiceRequest{1, ClientClass::kGood, 1});
  loop.run();
  EXPECT_GT(s.good_busy_time(), Duration::zero());
  EXPECT_GT(s.bad_busy_time(), Duration::zero());
  EXPECT_EQ((s.good_busy_time() + s.bad_busy_time()).ns(), s.busy_time().ns());
}

TEST(InterruptibleServer, CompletesLikeEmulatedServer) {
  sim::EventLoop loop;
  InterruptibleServer s(loop, 10.0, rng());
  std::uint64_t done = 0;
  s.set_on_complete([&](const ServiceRequest& r) { done = r.request_id; });
  s.submit(ServiceRequest{3, ClientClass::kGood, 1});
  EXPECT_TRUE(s.busy());
  loop.run();
  EXPECT_EQ(done, 3u);
  EXPECT_FALSE(s.busy());
  EXPECT_EQ(s.completed(), 1);
}

TEST(InterruptibleServer, SuspendPreservesProgress) {
  sim::EventLoop loop;
  InterruptibleServer s(loop, 10.0, rng());
  bool done = false;
  s.set_on_complete([&](const ServiceRequest&) { done = true; });
  s.submit(ServiceRequest{1, ClientClass::kGood, 10});  // ~1 s of work
  // Run 0.5 s, suspend, idle 5 s, resume: total server time should be ~1 s.
  loop.run_until(SimTime::zero() + Duration::seconds(0.5));
  s.suspend();
  EXPECT_FALSE(s.busy());
  EXPECT_TRUE(s.is_suspended(1));
  EXPECT_FALSE(done);
  loop.run_until(SimTime::zero() + Duration::seconds(5.5));
  EXPECT_FALSE(done);  // suspended work does not progress
  s.resume(1);
  EXPECT_TRUE(s.busy());
  loop.run_until(SimTime::zero() + Duration::seconds(7.0));
  EXPECT_TRUE(done);
  // Work conservation: ~1 s of service time total (0.9..1.1 * 10 quanta).
  EXPECT_NEAR(s.good_busy_time().sec(), 1.0, 0.11);
}

TEST(InterruptibleServer, AbortDiscardsSuspendedWork) {
  sim::EventLoop loop;
  InterruptibleServer s(loop, 10.0, rng());
  bool done = false;
  s.set_on_complete([&](const ServiceRequest&) { done = true; });
  s.submit(ServiceRequest{1, ClientClass::kBad, 10});
  loop.run_until(SimTime::zero() + Duration::seconds(0.5));
  s.suspend();
  s.abort_suspended(1);
  EXPECT_FALSE(s.is_suspended(1));
  EXPECT_EQ(s.suspended_count(), 0u);
  loop.run_until(SimTime::zero() + Duration::seconds(5.0));
  EXPECT_FALSE(done);
  // The half-second it did run is still charged to the bad class.
  EXPECT_NEAR(s.bad_busy_time().sec(), 0.5, 0.01);
}

TEST(InterruptibleServer, MultipleSuspendedRequests) {
  sim::EventLoop loop;
  InterruptibleServer s(loop, 10.0, rng());
  int completions = 0;
  s.set_on_complete([&](const ServiceRequest&) { ++completions; });
  s.submit(ServiceRequest{1, ClientClass::kGood, 20});
  loop.run_until(SimTime::zero() + Duration::seconds(0.2));
  s.suspend();
  s.submit(ServiceRequest{2, ClientClass::kGood, 20});
  loop.run_until(SimTime::zero() + Duration::seconds(0.4));
  s.suspend();
  EXPECT_EQ(s.suspended_count(), 2u);
  s.resume(1);
  loop.run_until(SimTime::zero() + Duration::seconds(30.0));
  EXPECT_EQ(completions, 1);
  s.resume(2);
  loop.run_until(SimTime::zero() + Duration::seconds(60.0));
  EXPECT_EQ(completions, 2);
}

TEST(InterruptibleServer, SuspendResumeRoundTripKeepsTotalWork) {
  // Repeatedly preempting a job must not change its total service demand.
  sim::EventLoop loop;
  InterruptibleServer s(loop, 10.0, rng());
  bool done = false;
  s.set_on_complete([&](const ServiceRequest&) { done = true; });
  s.submit(ServiceRequest{1, ClientClass::kGood, 10});  // ~1 s
  double t = 0.0;
  for (int i = 0; i < 8 && !done; ++i) {
    t += 0.1;
    loop.run_until(SimTime::zero() + Duration::seconds(t));
    if (done) break;
    s.suspend();
    t += 0.05;  // idle gap
    loop.run_until(SimTime::zero() + Duration::seconds(t));
    s.resume(1);
  }
  loop.run_until(SimTime::zero() + Duration::seconds(20.0));
  EXPECT_TRUE(done);
  EXPECT_NEAR(s.good_busy_time().sec(), 1.0, 0.11);
}

TEST(InterruptibleServer, ActiveRequestAccessor) {
  sim::EventLoop loop;
  InterruptibleServer s(loop, 10.0, rng());
  EXPECT_FALSE(s.active_request().has_value());
  s.submit(ServiceRequest{42, ClientClass::kGood, 5});
  ASSERT_TRUE(s.active_request().has_value());
  EXPECT_EQ(*s.active_request(), 42u);
}

}  // namespace
}  // namespace speakup::server
