// The undefended baseline ("without speak-up" in Figures 2 and 3): when the
// server is overloaded, excess requests are simply dropped (the client gets
// an immediate kBusy, the moral equivalent of a refused connection or a 503).
// The server therefore serves whichever request happens to arrive when it is
// free — random drops — so its attention divides in proportion to *request
// rates*, which is exactly what lets high-rate attackers crowd good clients
// out (§3, Figure 1(a)).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/front_end.hpp"
#include "core/thinner_stats.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "server/emulated_server.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {

class NoDefenseFrontEnd : public FrontEnd {
 public:
  struct Config {
    double capacity_rps = 100.0;
    Bytes response_body = 1000;
    std::uint32_t request_port = 80;
  };

  NoDefenseFrontEnd(transport::Host& host, const Config& cfg, util::RngStream server_rng);

  // --- FrontEnd ---
  [[nodiscard]] std::string_view name() const override { return "none"; }
  [[nodiscard]] const ThinnerStats& stats() const override { return stats_; }
  [[nodiscard]] std::size_t contending() const override { return serving_.size(); }
  [[nodiscard]] Duration server_busy_good() const override {
    return server_.good_busy_time();
  }
  [[nodiscard]] Duration server_busy_bad() const override {
    return server_.bad_busy_time();
  }
  [[nodiscard]] Duration server_busy_total() const override { return server_.busy_time(); }

  [[nodiscard]] const server::EmulatedServer& server() const { return server_; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    http::ClientClass cls = http::ClientClass::kNeutral;
    http::MessageStream* session = nullptr;
  };

  void on_accept(transport::TcpConnection& conn);
  void on_message(http::MessageStream& s, const http::Message& m);
  void on_reset(http::MessageStream& s);
  void on_server_complete(const server::ServiceRequest& done);

  transport::Host* host_;
  Config cfg_;
  server::EmulatedServer server_;
  http::SessionPool pool_;
  ThinnerStats stats_;
  std::unordered_map<std::uint64_t, Pending> serving_;
  std::unordered_map<http::MessageStream*, std::uint64_t> by_stream_;
};

}  // namespace speakup::core
