#include "core/auction_game.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"

namespace speakup::core {

namespace {

struct NamedAdversary {
  std::string name;
  AdversaryFn fn;
};

/// The strategy set from ablation A5: a saver, a splitter, the proof's
/// reactive worst case, and a burster. Registration order is display order.
const std::vector<NamedAdversary>& registry() {
  static const std::vector<NamedAdversary> all = {
      {"single-saver",
       [](int, AdversaryBids& b, double, double budget) { b[0] += budget; }},
      {"10-way-split",
       [](int, AdversaryBids& b, double, double budget) {
         for (int i = 0; i < 10; ++i) b[i] += budget / 10;
       }},
      {"reactive-outbidder",
       [](int, AdversaryBids& b, double victim, double budget) {
         b[1] += budget;  // bank
         const double need = victim - b[0];
         if (need > 0 && b[1] >= need) {
           b[0] += need;
           b[1] -= need;
         }
       }},
      {"bursty-hoard",
       [](int t, AdversaryBids& b, double, double budget) {
         b[1] += budget;
         if (t % 50 == 0) {  // dump the hoard into the active bid
           b[0] += b[1];
           b[1] = 0;
         }
       }},
  };
  return all;
}

[[noreturn]] void spec_error(const std::string& path, const std::string& what) {
  throw std::invalid_argument(path + ": " + what);
}

double number_field(const std::string& path, const util::json::Value& doc,
                    const char* key) {
  const util::json::Value* v = doc.find(key);
  if (v == nullptr || !v->is_number()) {
    spec_error(path, std::string("auction_game spec needs a numeric \"") + key + "\"");
  }
  return v->as_number();
}

}  // namespace

const std::vector<std::string>& adversary_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const NamedAdversary& a : registry()) out.push_back(a.name);
    return out;
  }();
  return names;
}

const AdversaryFn& adversary_fn(const std::string& name) {
  for (const NamedAdversary& a : registry()) {
    if (a.name == name) return a.fn;
  }
  std::string known;
  for (const std::string& n : adversary_names()) {
    known += known.empty() ? n : ", " + n;
  }
  throw std::invalid_argument("unknown auction-game adversary '" + name +
                              "' (known: " + known + ")");
}

AuctionGameSpec load_auction_game_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) spec_error(path, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  util::json::Value doc;
  try {
    doc = util::json::parse(buf.str());
  } catch (const std::exception& e) {
    spec_error(path, e.what());
  }
  if (!doc.is_object()) spec_error(path, "top level must be a JSON object");
  const util::json::Value* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != "auction_game") {
    spec_error(path, "auction_game spec needs \"kind\": \"auction_game\"");
  }

  AuctionGameSpec spec;
  if (const util::json::Value* d = doc.find("description")) {
    spec.description = d->as_string();
  }
  spec.seed = static_cast<std::uint64_t>(number_field(path, doc, "seed"));
  const util::json::Value* stream = doc.find("stream");
  if (stream == nullptr || !stream->is_string()) {
    spec_error(path, "auction_game spec needs a string \"stream\" (RNG label)");
  }
  spec.stream = stream->as_string();
  spec.ticks_quick = static_cast<int>(number_field(path, doc, "ticks_quick"));
  spec.ticks_full = static_cast<int>(number_field(path, doc, "ticks_full"));
  if (spec.ticks_quick <= 0 || spec.ticks_full <= 0) {
    spec_error(path, "tick counts must be positive");
  }

  const util::json::Value* grid = doc.find("grid");
  if (grid == nullptr || !grid->is_object()) {
    spec_error(path, "auction_game spec needs a \"grid\" object");
  }
  const auto number_axis = [&](const char* key, std::vector<double>& out) {
    const util::json::Value* axis = grid->find(key);
    if (axis == nullptr || !axis->is_array() || axis->as_array().empty()) {
      spec_error(path, std::string("grid needs a non-empty \"") + key + "\" array");
    }
    for (const util::json::Value& v : axis->as_array()) out.push_back(v.as_number());
  };
  number_axis("eps", spec.eps);
  number_axis("delta", spec.delta);
  for (const double e : spec.eps) {
    if (e <= 0.0 || e >= 1.0) spec_error(path, "eps values must lie in (0, 1)");
  }

  const util::json::Value* adv = grid->find("adversary");
  if (adv == nullptr || !adv->is_array() || adv->as_array().empty()) {
    spec_error(path, "grid needs a non-empty \"adversary\" array");
  }
  for (const util::json::Value& v : adv->as_array()) {
    static_cast<void>(adversary_fn(v.as_string()));  // throws on unknown names
    spec.adversaries.push_back(v.as_string());
  }
  return spec;
}

double run_auction_game(double eps, double delta, int ticks, util::RngStream& rng,
                        const AdversaryFn& adversary) {
  double victim_bid = 0.0;
  AdversaryBids adversary_bids;
  int victim_wins = 0;
  for (int t = 0; t < ticks; ++t) {
    const double interval = delta > 0 ? rng.uniform(1.0 - delta, 1.0 + delta) : 1.0;
    victim_bid += eps * interval;
    adversary(t, adversary_bids, victim_bid, (1.0 - eps) * interval);
    double best = 0.0;
    int best_id = -1;
    for (const auto& [id, bid] : adversary_bids) {
      if (bid > best) {
        best = bid;
        best_id = id;
      }
    }
    if (victim_bid > best) {
      ++victim_wins;
      victim_bid = 0.0;
    } else if (best_id >= 0) {
      adversary_bids[best_id] = 0.0;
    }
  }
  return static_cast<double>(victim_wins) / ticks;
}

}  // namespace speakup::core
