// Sanitizer canary: deliberately buggy code, one trigger per sanitizer.
//
// CI's sanitizer jobs run this binary EXPECTING a non-zero exit
// (`! ./sanitizer_canary asan` etc.). A green suite proves nothing if the
// build silently lost its instrumentation — the canary proves the
// instrumented toolchain still detects faults. Never run it without a
// sanitizer: the asan/tsan modes are real bugs.
//
// Modes:
//   asan   heap-use-after-free       (AddressSanitizer)
//   ubsan  signed integer overflow   (UndefinedBehaviorSanitizer, needs
//                                     -fno-sanitize-recover=undefined)
//   tsan   unsynchronized data race  (ThreadSanitizer)
#include <cstdio>
#include <cstring>
#include <thread>

namespace {

// The use-after-free is the whole point of this function; silence the
// compile-time diagnosis so -Werror builds still produce the runtime bug.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
int trigger_asan() {
  int* p = new int[4];
  p[0] = 41;
  delete[] p;
  // Hide the pointer's provenance: at -O3 the compiler otherwise
  // constant-folds the load through the delete and no instrumented
  // access ever executes (the canary would "survive" a working ASan).
  __asm__ volatile("" : "+r"(p) : : "memory");
  volatile int* vp = p;
  return vp[0] + 1;  // use-after-free
}
#pragma GCC diagnostic pop

int trigger_ubsan(int x) {
  int v = 0x7fffffff;
  return v + x;  // signed overflow
}

int plain = 0;

int trigger_tsan() {
  std::thread t([] { plain = 1; });  // racing unsynchronized write...
  plain = 2;                         // ...against this one
  t.join();
  return plain;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s asan|ubsan|tsan\n", argv[0]);
    return 2;
  }
  int r = 0;
  if (std::strcmp(argv[1], "asan") == 0) {
    r = trigger_asan();
  } else if (std::strcmp(argv[1], "ubsan") == 0) {
    r = trigger_ubsan(argc);
  } else if (std::strcmp(argv[1], "tsan") == 0) {
    r = trigger_tsan();
  } else {
    std::fprintf(stderr, "unknown mode %s\n", argv[1]);
    return 2;
  }
  // Reaching this line means the sanitizer did NOT fire: exit 0 so the
  // CI step's `!` inversion fails the job.
  std::printf("canary survived (%d) -- sanitizer not active?\n", r);
  return 0;
}
