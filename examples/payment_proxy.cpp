// Example: curing "bandwidth envy" with a payment proxy (§9).
//
// Speak-up divides an attacked server in proportion to bandwidth, so
// customers on thin DSL lines fare worse than cable customers. §9 proposes
// that ISPs run high-bandwidth proxies that pay the thinner on their
// customers' behalf. This example measures a mixed population — 10 DSL
// customers (0.5 Mbit/s) and 10 cable customers (2 Mbit/s) — under attack,
// with and without a 20 Mbit/s ISP proxy fronting the DSL group.
#include <cstdio>

#include "exp/runner.hpp"

namespace {

speakup::exp::ScenarioConfig scenario(bool with_proxy) {
  using namespace speakup;
  exp::ScenarioConfig cfg;
  cfg.mode = exp::DefenseMode::kAuction;
  cfg.capacity_rps = 40.0;
  cfg.seed = 12;
  cfg.duration = Duration::seconds(60.0);

  exp::ClientGroupSpec dsl;
  dsl.label = "dsl";
  dsl.count = 10;
  dsl.workload = client::good_client_params();
  dsl.access_bw = Bandwidth::mbps(0.5);
  dsl.via_proxy = with_proxy;
  cfg.groups.push_back(dsl);

  exp::ClientGroupSpec cable;
  cable.label = "cable";
  cable.count = 10;
  cable.workload = client::good_client_params();
  cable.access_bw = Bandwidth::mbps(2.0);
  cfg.groups.push_back(cable);

  exp::ClientGroupSpec bots;
  bots.label = "bots";
  bots.count = 10;
  bots.workload = client::bad_client_params();
  cfg.groups.push_back(bots);

  if (with_proxy) cfg.proxy = exp::ProxySpec{Bandwidth::mbps(20.0)};
  return cfg;
}

}  // namespace

int main() {
  using namespace speakup;
  std::printf("bandwidth envy (§9): 10 DSL (0.5 Mbit/s) + 10 cable (2 Mbit/s)\n"
              "customers vs 10 bots (2 Mbit/s), c = 40 req/s\n\n");
  exp::Runner runner;
  runner.add(scenario(false), "no-proxy").add(scenario(true), "proxy");
  runner.run_all();

  for (const bool with_proxy : {false, true}) {
    const exp::ExperimentResult& r = runner.result(with_proxy ? "proxy" : "no-proxy");
    std::printf("%s:\n", with_proxy ? "with a 20 Mbit/s ISP payment proxy for DSL"
                                    : "no proxy (DSL customers pay for themselves)");
    for (const auto& g : r.groups) {
      std::printf("  %-6s allocation=%.2f  fraction-served=%.2f\n", g.label.c_str(),
                  g.allocation, g.totals.fraction_served());
    }
    if (with_proxy) {
      std::printf("  proxy: relayed %lld requests, paid for %lld\n",
                  static_cast<long long>(r.proxy_relayed_requests),
                  static_cast<long long>(r.proxy_payments_started));
    }
    std::printf("\n");
  }
  std::printf("the proxy pays from its fat uplink, so the DSL group's share no\n"
              "longer depends on its own thin access links.\n");
  return 0;
}
