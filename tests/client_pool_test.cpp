// Unit tests for the struct-of-arrays client engine (client::ClientPool):
// member-for-member equivalence with WorkloadClient, dense request-slot
// reuse and generation safety in the pool-wide request slab, pause
// semantics, and the zero-steady-state-allocation guarantee at 10^5
// clients.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "client/client_pool.hpp"
#include "client/workload_client.hpp"
#include "core/auction_thinner.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

// Zero-allocation assertions use util::AllocGuard (the counting operator
// new lives in the speakup_counted_new object library): only the delta
// inside a measured region matters. SPEAKUP_TRAP_ALLOC=1 plus
// AllocGuard::set_trap aborts with a backtrace on the first allocation.
#include "util/alloc_guard.hpp"

namespace speakup::client {
namespace {

struct Rig {
  Rig() : net(loop) {
    sw = &net.add_switch("sw");
    thinner_host = &net.add_node<transport::Host>("thinner");
    net.connect(*thinner_host, *sw,
                net::LinkSpec{Bandwidth::gbps(1.0), Duration::micros(500), 4'000'000});
  }
  transport::Host& add_host(const std::string& name) {
    auto& h = net.add_node<transport::Host>(name);
    net.connect(h, *sw, net::LinkSpec{Bandwidth::mbps(2.0), Duration::micros(500), 48'000});
    return h;
  }
  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }
  sim::EventLoop loop;
  net::Network net;
  net::Switch* sw = nullptr;
  transport::Host* thinner_host = nullptr;
};

// The pooled engine must match the object engine member for member, not
// just in aggregate: identical rigs, one per engine, same seeds.
TEST(ClientPool, MatchesObjectEngineMemberForMember) {
  constexpr int kClients = 3;
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 20.0;

  Rig obj_rig;
  core::AuctionThinner obj_thinner(*obj_rig.thinner_host, tc, util::RngStream(9, "srv"));
  std::vector<std::unique_ptr<WorkloadClient>> objs;
  for (int i = 0; i < kClients; ++i) {
    objs.push_back(std::make_unique<WorkloadClient>(
        obj_rig.add_host("c" + std::to_string(i)), obj_rig.thinner_host->id(),
        good_client_params(), static_cast<std::uint32_t>(i),
        util::RngStream(9, "client." + std::to_string(i))));
  }
  for (auto& c : objs) c->start();
  obj_rig.run_for(30.0);

  Rig pool_rig;
  core::AuctionThinner pool_thinner(*pool_rig.thinner_host, tc, util::RngStream(9, "srv"));
  ClientPool pool(pool_rig.loop, pool_rig.thinner_host->id(), good_client_params(), 0);
  for (int i = 0; i < kClients; ++i) {
    pool.add_member(pool_rig.add_host("c" + std::to_string(i)),
                    util::RngStream(9, "client." + std::to_string(i)));
  }
  pool.start_all();
  pool_rig.run_for(30.0);

  for (std::uint32_t i = 0; i < kClients; ++i) {
    const ClientStats& a = objs[i]->stats();
    const ClientStats& b = pool.stats(i);
    EXPECT_EQ(a.arrivals, b.arrivals) << "member " << i;
    EXPECT_EQ(a.started, b.started) << "member " << i;
    EXPECT_EQ(a.served, b.served) << "member " << i;
    EXPECT_EQ(a.denied, b.denied) << "member " << i;
    EXPECT_EQ(a.busy_rejected, b.busy_rejected) << "member " << i;
    EXPECT_EQ(a.payments_declined, b.payments_declined) << "member " << i;
    EXPECT_EQ(a.payment_bytes_acked, b.payment_bytes_acked) << "member " << i;
    EXPECT_EQ(a.response_time.count(), b.response_time.count()) << "member " << i;
    EXPECT_EQ(a.response_time.sum(), b.response_time.sum()) << "member " << i;
  }
}

// A thinner host with NO listener answers every SYN with RST, so each
// request runs the full arrival -> connect -> reset -> denial -> slot
// release cycle. The slab must recycle a handful of dense slots through
// thousands of requests, bumping generations, never leaking live records.
TEST(ClientPool, RequestSlabRecyclesDenseSlots) {
  Rig rig;  // nothing listening on the thinner host
  constexpr int kClients = 4;
  WorkloadParams p = good_client_params();
  p.lambda = 50.0;
  ClientPool pool(rig.loop, rig.thinner_host->id(), p, 0);
  for (int i = 0; i < kClients; ++i) {
    pool.add_member(rig.add_host("c" + std::to_string(i)),
                    util::RngStream(3, "client." + std::to_string(i)));
  }
  pool.start_all();
  rig.run_for(20.0);

  std::int64_t started = 0, denied = 0;
  for (std::uint32_t i = 0; i < kClients; ++i) {
    started += pool.stats(i).started;
    denied += pool.stats(i).denied;
  }
  ASSERT_GT(started, 1000);  // the slab really churned
  EXPECT_EQ(denied, started);  // every request RST -> denied, none lost

  // Dense reuse: the high-water slot count is the peak concurrency
  // (window=1 per member plus requests awaiting their deferred teardown
  // tick), not the request count.
  EXPECT_LE(pool.request_slots(), 4u * kClients);
  std::uint64_t generations = 0;
  for (std::uint32_t s = 0; s < pool.request_slots(); ++s) {
    generations += pool.request_generation(s);
  }
  // Every started request acquired exactly one slot incarnation.
  EXPECT_EQ(generations, static_cast<std::uint64_t>(started));
  EXPECT_EQ(pool.live_requests(), 0u);  // denial released every slot
}

TEST(ClientPool, PauseStopsNewArrivals) {
  Rig rig;
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 100.0;
  core::AuctionThinner thinner(*rig.thinner_host, tc, util::RngStream(1, "srv"));
  ClientPool pool(rig.loop, rig.thinner_host->id(), good_client_params(), 0);
  pool.add_member(rig.add_host("c"), util::RngStream(1, "c"));
  pool.start_all();
  rig.run_for(5.0);
  const auto arrivals_at_pause = pool.stats(0).arrivals;
  EXPECT_GT(arrivals_at_pause, 0);
  pool.pause(0);
  rig.run_for(5.0);
  // At most one in-flight arrival event lands after pause().
  EXPECT_LE(pool.stats(0).arrivals, arrivals_at_pause + 1);
}

// The million-client contract: once warm, the pooled engine's request
// cycle — arrival, slot acquire, connect, RST denial, stream retirement,
// slot release, next arrival draw — touches the allocator zero times, at
// 10^5 clients. (The RST-denial rig keeps the cycle client-side: the
// thinner host has no listener, so no server-side state grows.)
TEST(ClientPool, SteadyStateZeroAllocationsAt100kClients) {
  constexpr int kClients = 100'000;
  Rig rig;  // nothing listening: every request is denied by RST
  WorkloadParams p = good_client_params();  // lambda = 2.0
  ClientPool pool(rig.loop, rig.thinner_host->id(), p, 0);
  for (int i = 0; i < kClients; ++i) {
    pool.add_member(rig.add_host("c" + std::to_string(i)),
                    util::RngStream(5, "client." + std::to_string(i)));
  }
  pool.start_all();
  // Warm-up: every member's one-time state (host conn chunk + table, link
  // queue) is built on its first request; at lambda*T = 16 the expected
  // number of still-cold members is 1e5 * e^-16 ~ 0.01, and the run is
  // seed-deterministic.
  rig.run_for(8.0);

  const std::int64_t before_arr = [&] {
    std::int64_t a = 0;
    for (std::uint32_t i = 0; i < kClients; ++i) a += pool.stats(i).arrivals;
    return a;
  }();
#if SPEAKUP_AUDIT_ENABLED
  // Audit checkpoints may allocate scratch inside the measured region.
  GTEST_SKIP() << "zero-alloc guarantees are not measured in SPEAKUP_AUDIT builds";
#endif
  ASSERT_TRUE(util::AllocGuard::counting()) << "speakup_counted_new not linked";
  const util::AllocGuard guard;
  util::AllocGuard::set_trap(true);
  rig.run_for(0.25);
  util::AllocGuard::set_trap(false);
  std::int64_t arrivals = 0;
  for (std::uint32_t i = 0; i < kClients; ++i) arrivals += pool.stats(i).arrivals;
  ASSERT_GT(arrivals - before_arr, 10'000);  // the measured window did real work
  EXPECT_EQ(guard.delta(), 0) << "steady-state request cycle allocated";
}

}  // namespace
}  // namespace speakup::client
