// Tests for the discrete-event loop: ordering, determinism, cancellation,
// timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.hpp"
#include "sim/timer.hpp"

namespace speakup::sim {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now().ns(), 0);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(30), [&] { order.push_back(3); });
  loop.schedule(Duration::millis(10), [&] { order.push_back(1); });
  loop.schedule(Duration::millis(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, ClockAdvancesToEventTime) {
  EventLoop loop;
  SimTime seen;
  loop.schedule(Duration::seconds(2.5), [&] { seen = loop.now(); });
  loop.run();
  EXPECT_DOUBLE_EQ(seen.sec(), 2.5);
}

TEST(EventLoop, RunUntilStopsAtDeadlineAndAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(Duration::seconds(1.0), [&] { ++fired; });
  loop.schedule(Duration::seconds(5.0), [&] { ++fired; });
  loop.run_until(SimTime::zero() + Duration::seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now().sec(), 2.0);
  // The 5 s event is still pending and fires on a later run.
  loop.run_until(SimTime::zero() + Duration::seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, EventExactlyAtDeadlineRuns) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(Duration::seconds(2.0), [&] { ++fired; });
  loop.run_until(SimTime::zero() + Duration::seconds(2.0));
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  int fired = 0;
  EventId id = loop.schedule(Duration::millis(10), [&] { ++fired; });
  EXPECT_TRUE(id.pending());
  loop.cancel(id);
  EXPECT_FALSE(id.pending());
  loop.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventLoop, CancelAfterFireIsNoop) {
  EventLoop loop;
  int fired = 0;
  EventId id = loop.schedule(Duration::millis(10), [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(id.pending());
  loop.cancel(id);  // must not crash or double-count
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, EventsScheduledDuringEventsRun) {
  EventLoop loop;
  std::vector<double> times;
  loop.schedule(Duration::millis(10), [&] {
    times.push_back(loop.now().sec());
    loop.schedule(Duration::millis(10), [&] { times.push_back(loop.now().sec()); });
  });
  loop.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.010);
  EXPECT_DOUBLE_EQ(times[1], 0.020);
}

TEST(EventLoop, ZeroDelayRunsAtSameTime) {
  EventLoop loop;
  double t = -1;
  loop.schedule(Duration::millis(7), [&] {
    loop.schedule(Duration::zero(), [&] { t = loop.now().sec(); });
  });
  loop.run();
  EXPECT_DOUBLE_EQ(t, 0.007);
}

TEST(EventLoop, PendingCountTracksLifecycle) {
  EventLoop loop;
  EventId a = loop.schedule(Duration::millis(1), [] {});
  EventId b = loop.schedule(Duration::millis(2), [] {});
  EXPECT_EQ(loop.pending_events(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.run();
  EXPECT_EQ(loop.pending_events(), 0u);
  (void)b;
}

TEST(EventLoop, ExecutedEventsCountsOnlyFired) {
  EventLoop loop;
  loop.schedule(Duration::millis(1), [] {});
  EventId c = loop.schedule(Duration::millis(2), [] {});
  loop.cancel(c);
  loop.run();
  EXPECT_EQ(loop.executed_events(), 1u);
}

TEST(Timer, FiresAfterDelay) {
  EventLoop loop;
  int fired = 0;
  Timer t(loop, [&] { ++fired; });
  t.restart(Duration::millis(5));
  EXPECT_TRUE(t.pending());
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RestartSupersedesPreviousArming) {
  EventLoop loop;
  std::vector<double> at;
  Timer t(loop, [&] { at.push_back(loop.now().sec()); });
  t.restart(Duration::millis(5));
  t.restart(Duration::millis(20));
  loop.run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_DOUBLE_EQ(at[0], 0.020);
}

TEST(Timer, CancelStopsFiring) {
  EventLoop loop;
  int fired = 0;
  Timer t(loop, [&] { ++fired; });
  t.restart(Duration::millis(5));
  t.cancel();
  loop.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, DestructionCancels) {
  EventLoop loop;
  int fired = 0;
  {
    Timer t(loop, [&] { ++fired; });
    t.restart(Duration::millis(5));
  }
  loop.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CallbackMayDestroyOwnTimer) {
  // Protocol code routinely tears down the state that owns the timer from
  // inside the timeout handler; this must not crash.
  EventLoop loop;
  auto owner = std::make_unique<Timer>(loop, [] {});
  auto* raw = owner.get();
  Timer* leaked = nullptr;
  auto holder = std::make_unique<Timer>(loop, [&] {
    owner.reset();  // destroys the other timer
  });
  (void)raw;
  (void)leaked;
  holder->restart(Duration::millis(1));
  owner->restart(Duration::millis(10));
  loop.run();
  EXPECT_EQ(owner, nullptr);
}

TEST(Timer, SelfDestructionInsideOwnCallback) {
  EventLoop loop;
  std::unique_ptr<Timer> t;
  int fired = 0;
  t = std::make_unique<Timer>(loop, [&] {
    ++fired;
    t.reset();  // destroy the timer from within its own callback
  });
  t->restart(Duration::millis(1));
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(t, nullptr);
}

TEST(Timer, PeriodicRestartPattern) {
  EventLoop loop;
  int fired = 0;
  Timer t(loop, [&] {
    if (++fired < 5) t.restart(Duration::millis(10));
  });
  t.restart(Duration::millis(10));
  loop.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(loop.now().sec(), 0.050);
}

}  // namespace
}  // namespace speakup::sim
