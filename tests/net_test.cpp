// Tests for the network substrate: queues, links, switches, routing.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/event_loop.hpp"

namespace speakup::net {
namespace {

/// A terminal node that records everything it receives.
class SinkNode : public Node {
 public:
  SinkNode(Network& net, NodeId id, std::string name) : Node(net, id, std::move(name)) {}
  void on_packet(Packet p) override {
    arrival_times.push_back(network().loop().now());
    packets.push_back(p);
  }
  std::vector<SimTime> arrival_times;
  std::vector<Packet> packets;
};

Packet test_packet(NodeId src, NodeId dst, Bytes wire) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.wire_size = wire;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10'000);
  for (int i = 0; i < 3; ++i) {
    Packet p = test_packet(0, 1, 100);
    p.seq = i;
    ASSERT_TRUE(q.push(p));
  }
  for (int i = 0; i < 3; ++i) {
    auto p = q.pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(250);
  EXPECT_TRUE(q.push(test_packet(0, 1, 100)));
  EXPECT_TRUE(q.push(test_packet(0, 1, 100)));
  EXPECT_FALSE(q.push(test_packet(0, 1, 100)));  // 300 > 250
  EXPECT_EQ(q.drops(), 1);
  EXPECT_EQ(q.dropped_bytes(), 100);
  EXPECT_EQ(q.size_bytes(), 200);
}

TEST(DropTailQueue, PopFreesCapacity) {
  DropTailQueue q(200);
  EXPECT_TRUE(q.push(test_packet(0, 1, 150)));
  EXPECT_FALSE(q.push(test_packet(0, 1, 100)));
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.push(test_packet(0, 1, 100)));
}

TEST(DropTailQueue, CountsEnqueued) {
  DropTailQueue q(1000);
  q.push(test_packet(0, 1, 100));
  q.push(test_packet(0, 1, 100));
  EXPECT_EQ(q.enqueued(), 2);
  EXPECT_EQ(q.size_packets(), 2u);
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  // 1500 B at 2 Mbit/s = 6 ms serialization; +10 ms propagation = 16 ms.
  net.connect(a, b, LinkSpec{Bandwidth::mbps(2.0), Duration::millis(10), 96'000});
  net.build_routes();
  net.forward(a.id(), test_packet(a.id(), b.id(), 1500));
  loop.run();
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(b.arrival_times[0].ns(), Duration::millis(16).ns());
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  net.connect(a, b, LinkSpec{Bandwidth::mbps(2.0), Duration::zero(), 96'000});
  net.build_routes();
  for (int i = 0; i < 3; ++i) net.forward(a.id(), test_packet(a.id(), b.id(), 1500));
  loop.run();
  ASSERT_EQ(b.packets.size(), 3u);
  // 6 ms per packet: arrivals at 6, 12, 18 ms.
  EXPECT_EQ(b.arrival_times[0].ns(), Duration::millis(6).ns());
  EXPECT_EQ(b.arrival_times[1].ns(), Duration::millis(12).ns());
  EXPECT_EQ(b.arrival_times[2].ns(), Duration::millis(18).ns());
}

TEST(Link, PropagationDoesNotBlockNextTransmission) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  // Large propagation delay; serialization 6 ms.
  net.connect(a, b, LinkSpec{Bandwidth::mbps(2.0), Duration::millis(100), 96'000});
  net.build_routes();
  net.forward(a.id(), test_packet(a.id(), b.id(), 1500));
  net.forward(a.id(), test_packet(a.id(), b.id(), 1500));
  loop.run();
  ASSERT_EQ(b.packets.size(), 2u);
  EXPECT_EQ(b.arrival_times[0].ns(), Duration::millis(106).ns());
  EXPECT_EQ(b.arrival_times[1].ns(), Duration::millis(112).ns());  // pipelined
}

TEST(Link, OverflowDropsAreCounted) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  // Queue fits exactly one additional 1500-byte packet.
  Link& link = net.connect(a, b, LinkSpec{Bandwidth::mbps(2.0), Duration::zero(), 1500});
  net.build_routes();
  for (int i = 0; i < 4; ++i) net.forward(a.id(), test_packet(a.id(), b.id(), 1500));
  loop.run();
  EXPECT_EQ(b.packets.size(), 2u);  // 1 in flight + 1 queued
  EXPECT_EQ(link.queue_from(a.id()).drops(), 2);
}

TEST(Link, DirectionsAreIndependent) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  net.connect(a, b, LinkSpec{Bandwidth::mbps(2.0), Duration::zero(), 96'000});
  net.build_routes();
  net.forward(a.id(), test_packet(a.id(), b.id(), 1500));
  net.forward(b.id(), test_packet(b.id(), a.id(), 1500));
  loop.run();
  ASSERT_EQ(a.packets.size(), 1u);
  ASSERT_EQ(b.packets.size(), 1u);
  // Both serialize concurrently (full duplex): both arrive at 6 ms.
  EXPECT_EQ(a.arrival_times[0].ns(), b.arrival_times[0].ns());
}

TEST(Link, AsymmetricSpecs) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  net.connect(a, b, LinkSpec{Bandwidth::mbps(2.0), Duration::zero(), 96'000},
              LinkSpec{Bandwidth::mbps(1.0), Duration::zero(), 96'000});
  net.build_routes();
  net.forward(a.id(), test_packet(a.id(), b.id(), 1500));  // a->b at 2 Mbit/s
  net.forward(b.id(), test_packet(b.id(), a.id(), 1500));  // b->a at 1 Mbit/s
  loop.run();
  EXPECT_EQ(b.arrival_times[0].ns(), Duration::millis(6).ns());
  EXPECT_EQ(a.arrival_times[0].ns(), Duration::millis(12).ns());
}

TEST(Network, RoutesThroughSwitches) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  Switch& s1 = net.add_switch("s1");
  Switch& s2 = net.add_switch("s2");
  auto& b = net.add_node<SinkNode>("b");
  const LinkSpec fast{Bandwidth::gbps(1.0), Duration::millis(1), 1'000'000};
  net.connect(a, s1, fast);
  net.connect(s1, s2, fast);
  net.connect(s2, b, fast);
  net.build_routes();
  net.forward(a.id(), test_packet(a.id(), b.id(), 1000));
  loop.run();
  ASSERT_EQ(b.packets.size(), 1u);
  // Three hops, each 1 ms propagation + 8 us serialization.
  EXPECT_EQ(b.arrival_times[0].ns(), 3 * (Duration::millis(1).ns() + 8000));
}

TEST(Network, ShortestPathChosen) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  Switch& s1 = net.add_switch("s1");
  Switch& s2 = net.add_switch("s2");
  const LinkSpec fast{Bandwidth::gbps(1.0), Duration::millis(1), 1'000'000};
  // Short path a-s1-b; long path a-s2-s1-b irrelevant.
  net.connect(a, s1, fast);
  net.connect(s1, b, fast);
  net.connect(a, s2, fast);
  net.connect(s2, s1, fast);
  net.build_routes();
  net.forward(a.id(), test_packet(a.id(), b.id(), 1000));
  loop.run();
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(b.arrival_times[0].ns(), 2 * (Duration::millis(1).ns() + 8000));
}

TEST(Network, UnroutableIsDroppedAndCounted) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");  // never connected
  net.build_routes();
  net.forward(a.id(), test_packet(a.id(), b.id(), 1000));
  loop.run();
  EXPECT_TRUE(b.packets.empty());
  EXPECT_EQ(net.unroutable_drops(), 1);
}

TEST(Network, LinkBetweenLookup) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  auto& c = net.add_node<SinkNode>("c");
  Link& ab = net.connect(a, b, LinkSpec{Bandwidth::mbps(1.0), Duration::zero(), 1000});
  EXPECT_EQ(net.link_between(a.id(), b.id()), &ab);
  EXPECT_EQ(net.link_between(b.id(), a.id()), &ab);
  EXPECT_EQ(net.link_between(a.id(), c.id()), nullptr);
}

TEST(Network, NodeAccessors) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("alpha");
  EXPECT_EQ(net.node_count(), 1u);
  EXPECT_EQ(&net.node(a.id()), &a);
  EXPECT_EQ(a.name(), "alpha");
}

TEST(Network, DeliveredBytesCounter) {
  sim::EventLoop loop;
  Network net(loop);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  Link& l = net.connect(a, b, LinkSpec{Bandwidth::mbps(2.0), Duration::zero(), 96'000});
  net.build_routes();
  net.forward(a.id(), test_packet(a.id(), b.id(), 1500));
  net.forward(a.id(), test_packet(a.id(), b.id(), 500));
  loop.run();
  EXPECT_EQ(l.bytes_delivered_from(a.id()), 2000);
  EXPECT_EQ(l.bytes_delivered_from(b.id()), 0);
}

}  // namespace
}  // namespace speakup::net
