// Quickstart: defend a server with speak-up and watch the allocation change.
//
// 25 good clients (Poisson 2 req/s, window 1) and 25 bad clients (Poisson
// 40 req/s, window 20) share a LAN; every client has a 2 Mbit/s uplink; the
// server handles 100 requests/s. We run the same attack twice — undefended,
// then behind the speak-up thinner — and print who got the server. Both
// runs execute in parallel on the exp::Runner pool.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/theory.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace speakup;

  const int kGood = 25;
  const int kBad = 25;
  const double kCapacity = 100.0;  // requests/s

  std::printf("speak-up quickstart: %d good vs %d bad clients, c = %.0f req/s\n\n",
              kGood, kBad, kCapacity);

  const exp::DefenseMode kModes[] = {exp::DefenseMode::kNone, exp::DefenseMode::kAuction};
  exp::Runner runner;
  for (const exp::DefenseMode mode : kModes) {
    exp::ScenarioConfig cfg = exp::lan_scenario(kGood, kBad, kCapacity, mode, /*seed=*/7);
    cfg.duration = Duration::seconds(30.0);
    runner.add(cfg, to_string(mode));
  }
  runner.run_all();

  for (const exp::DefenseMode mode : kModes) {
    const exp::ExperimentResult& r = runner.result(to_string(mode));
    std::printf("defense=%-8s served(good)=%-5lld served(bad)=%-5lld "
                "alloc(good)=%.2f frac-good-served=%.2f\n",
                exp::to_string(mode), static_cast<long long>(r.served_good),
                static_cast<long long>(r.served_bad), r.allocation_good,
                r.fraction_good_served);
  }

  // Both populations have equal aggregate bandwidth, so the ideal
  // bandwidth-proportional allocation for the good clients is 1/2.
  std::printf("\nideal allocation under speak-up (G=B): %.2f\n",
              core::theory::ideal_good_allocation(1.0, 1.0));
  return 0;
}
