// Tests for the §9 payment proxy: relaying, paying on behalf of clients,
// and the bandwidth-envy cure end to end.
#include <gtest/gtest.h>

#include "client/payment_proxy.hpp"
#include "core/auction_thinner.hpp"
#include "exp/experiment.hpp"
#include "net/network.hpp"
#include "transport/host.hpp"

namespace speakup::client {
namespace {

struct ProxyRig {
  ProxyRig() : net(loop) {
    sw = &net.add_switch("sw");
    thinner_host = &net.add_node<transport::Host>("thinner");
    net.connect(*thinner_host, *sw,
                net::LinkSpec{Bandwidth::gbps(1.0), Duration::micros(500), 4'000'000});
    proxy_host = &net.add_node<transport::Host>("proxy");
    net.connect(*proxy_host, *sw,
                net::LinkSpec{Bandwidth::mbps(20.0), Duration::micros(500), 96'000});
  }
  void run_for(double sec) { loop.run_until(loop.now() + Duration::seconds(sec)); }

  sim::EventLoop loop;
  net::Network net;
  net::Switch* sw = nullptr;
  transport::Host* thinner_host = nullptr;
  transport::Host* proxy_host = nullptr;
};

TEST(PaymentProxy, RelaysRequestAndResponseOnIdleServer) {
  ProxyRig rig;
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 50.0;
  core::AuctionThinner thinner(*rig.thinner_host, tc, util::RngStream(1, "srv"));
  PaymentProxy::Config pc;
  pc.thinner = rig.thinner_host->id();
  PaymentProxy proxy(*rig.proxy_host, pc);

  auto& ch = rig.net.add_node<transport::Host>("client");
  rig.net.connect(ch, *rig.sw,
                  net::LinkSpec{Bandwidth::mbps(0.5), Duration::micros(500), 48'000});
  WorkloadClient c(ch, rig.proxy_host->id(), good_client_params(), 0,
                   util::RngStream(1, "c"));
  c.start();
  rig.run_for(10.0);
  EXPECT_GT(c.stats().served, 5);
  EXPECT_EQ(c.stats().denied, 0);
  EXPECT_EQ(proxy.relayed_requests(), c.stats().started);
  EXPECT_EQ(proxy.relayed_responses(), c.stats().served);
  // Idle server: nobody was asked to pay.
  EXPECT_EQ(proxy.payments_started(), 0);
}

TEST(PaymentProxy, PaysOnBehalfOfClientsUnderLoad) {
  ProxyRig rig;
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 1.0;  // slow server forces payment
  core::AuctionThinner thinner(*rig.thinner_host, tc, util::RngStream(1, "srv"));
  PaymentProxy::Config pc;
  pc.thinner = rig.thinner_host->id();
  PaymentProxy proxy(*rig.proxy_host, pc);

  // Two proxied clients with negligible bandwidth of their own.
  std::vector<std::unique_ptr<WorkloadClient>> clients;
  for (int i = 0; i < 2; ++i) {
    auto& ch = rig.net.add_node<transport::Host>("client" + std::to_string(i));
    rig.net.connect(ch, *rig.sw,
                    net::LinkSpec{Bandwidth::kbps(128), Duration::micros(500), 48'000});
    WorkloadParams p = good_client_params();
    p.lambda = 0.5;
    clients.push_back(std::make_unique<WorkloadClient>(
        ch, rig.proxy_host->id(), p, static_cast<std::uint32_t>(i),
        util::RngStream(1, "c" + std::to_string(i))));
    clients.back()->start();
  }
  rig.run_for(30.0);
  EXPECT_GT(proxy.payments_started(), 0);
  std::int64_t served = 0;
  for (const auto& c : clients) served += c->stats().served;
  EXPECT_GT(served, 5);
  // The proxy paid real bytes into the thinner.
  EXPECT_GT(thinner.stats().payment_bytes_total, kilobytes(100));
}

TEST(PaymentProxy, ExperimentValidatesConfig) {
  exp::ScenarioConfig cfg = exp::lan_scenario(2, 0, 10.0, exp::DefenseMode::kAuction, 1);
  cfg.duration = Duration::seconds(5.0);
  cfg.groups[0].via_proxy = true;  // no proxy configured
  EXPECT_THROW(exp::Experiment{cfg}, std::invalid_argument);
}

TEST(PaymentProxy, CuresBandwidthEnvyEndToEnd) {
  // Thin clients vs bots: without the proxy they starve; with it they are
  // served at the proxy's bandwidth, not their own.
  auto build = [](bool with_proxy) {
    exp::ScenarioConfig cfg;
    cfg.mode = exp::DefenseMode::kAuction;
    cfg.capacity_rps = 20.0;
    cfg.seed = 17;
    cfg.duration = Duration::seconds(30.0);
    exp::ClientGroupSpec thin;
    thin.label = "thin";
    thin.count = 5;
    thin.workload = good_client_params();
    thin.access_bw = Bandwidth::mbps(0.25);
    thin.via_proxy = with_proxy;
    cfg.groups.push_back(thin);
    exp::ClientGroupSpec bots;
    bots.label = "bots";
    bots.count = 5;
    bots.workload = bad_client_params();
    cfg.groups.push_back(bots);
    if (with_proxy) cfg.proxy = exp::ProxySpec{Bandwidth::mbps(20.0)};
    return cfg;
  };
  const exp::ExperimentResult without = exp::run_scenario(build(false));
  const exp::ExperimentResult with = exp::run_scenario(build(true));
  EXPECT_GT(with.fraction_good_served, without.fraction_good_served * 1.5);
  EXPECT_GT(with.fraction_good_served, 0.8);
}

TEST(PaymentProxy, ClientAbandonmentCleansUpRelay) {
  ProxyRig rig;
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 0.1;  // nobody gets served quickly
  core::AuctionThinner thinner(*rig.thinner_host, tc, util::RngStream(1, "srv"));
  PaymentProxy::Config pc;
  pc.thinner = rig.thinner_host->id();
  PaymentProxy proxy(*rig.proxy_host, pc);

  auto& ch = rig.net.add_node<transport::Host>("client");
  rig.net.connect(ch, *rig.sw,
                  net::LinkSpec{Bandwidth::mbps(1.0), Duration::micros(500), 48'000});
  WorkloadParams p = good_client_params();
  p.lambda = 0.2;
  p.request_timeout = Duration::seconds(3.0);  // impatient client
  WorkloadClient c(ch, rig.proxy_host->id(), p, 0, util::RngStream(1, "c"));
  c.start();
  rig.run_for(30.0);
  EXPECT_GT(c.stats().denied, 0);       // client gave up on some requests
  EXPECT_LE(proxy.pending(), 2u);       // relays were torn down, not leaked
}

}  // namespace
}  // namespace speakup::client
