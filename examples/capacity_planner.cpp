// Example: capacity planning for a speak-up deployment (§2.1, §3.1).
//
// Usage: capacity_planner [good_demand_rps] [good_bandwidth_mbps]
//                         [attack_bandwidth_mbps]
//
// Prints the §3.1 provisioning rule for the given population, the §2.1
// botnet-size worked examples, and then validates one configuration by
// simulation.
#include <cstdio>
#include <cstdlib>

#include "core/theory.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace speakup;

  const double g = argc > 1 ? std::atof(argv[1]) : 50.0;     // good demand, req/s
  const double G = argc > 2 ? std::atof(argv[2]) : 50.0;     // good bandwidth, Mbit/s
  const double B = argc > 3 ? std::atof(argv[3]) : 100.0;    // attack bandwidth, Mbit/s
  util::require(g > 0 && G > 0 && B >= 0, "usage: capacity_planner g G B (positive)");

  std::printf("speak-up capacity planner\n");
  std::printf("  good demand g = %.0f req/s, good bandwidth G = %.0f Mbit/s, "
              "attack B = %.0f Mbit/s\n\n", g, G, B);

  const double cid = core::theory::ideal_provisioning(g, G, B);
  std::printf("§3.1 ideal provisioning:  c_id = g(1 + B/G) = %.0f req/s\n", cid);
  std::printf("   (the paper measured ~15%% above this in practice: %.0f req/s)\n\n",
              cid * 1.15);

  std::printf("what a capacity c buys you (good service rate = min(g, c*G/(G+B))):\n");
  for (const double factor : {0.5, 1.0, 1.5, 2.0}) {
    const double c = cid * factor;
    std::printf("  c = %6.0f req/s (%3.0f%% of c_id): good clients served at "
                "%5.1f req/s of their %.0f\n",
                c, factor * 100, core::theory::ideal_good_service_rate(g, G, B, c), g);
  }

  // §2.1 worked example, scaled to the configured attack.
  std::printf("\n§2.1 lens: a bot has ~100 Kbit/s; your attack equals ~%.0f bots;\n"
              "matching it needs ~%.0f good clients of the same class.\n",
              B * 1e6 / 100e3, G * 1e6 / 100e3);

  // Validate by simulation at a laptop-friendly scale: preserve the B/G
  // ratio with 2 Mbit/s clients.
  const int good_clients = 25;
  const int bad_clients = static_cast<int>(good_clients * (B / G) + 0.5);
  const double sim_g = good_clients * 2.0;
  const double sim_cid =
      core::theory::ideal_provisioning(sim_g, good_clients * 2.0, bad_clients * 2.0);
  std::printf("\nvalidating by simulation (%d good vs %d bad clients, c = c_id = %.0f):\n",
              good_clients, bad_clients, sim_cid);
  exp::ScenarioConfig cfg =
      exp::lan_scenario(good_clients, bad_clients, sim_cid, exp::DefenseMode::kAuction, 9);
  cfg.duration = Duration::seconds(60.0);
  exp::Runner runner;
  runner.add(cfg, "validation");
  runner.run_all();
  std::printf("  fraction of good requests served at c_id: %.2f (ideal 1.0; the gap\n"
              "  is the §7.4 adversarial advantage — add ~15-40%% headroom)\n",
              runner.result("validation").fraction_good_served);
  return 0;
}
