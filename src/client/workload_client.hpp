// The request-generating client of §7.1, used for every population:
//
//   - requests arrive by the workload strategy's arrival process (the
//     default "poisson" strategy is §7.1's Poisson process of rate lambda);
//   - at most `window` requests are outstanding (the strategy may vary the
//     window over time); excess arrivals wait in a backlog queue and become
//     service denials after 10 s;
//   - an outstanding request that gets no response within 10 s is a denial.
//
// Good clients run lambda = 2, window = 1; bad clients lambda = 40,
// window = 20 (requests sent concurrently) — §7.1. The client is purely
// reactive to the thinner: kPleasePay consults the strategy and (normally)
// starts a payment channel (§3.3 mode), kRetry starts an aggressive
// congestion-controlled retry stream (§3.2 mode), kBusy is an immediate
// failure (no-defense baseline). Hence the same client code runs under
// every defense mode, like the paper's single custom client — and every
// behavioral decision (arrival timing, window, paying, defecting) is
// delegated to a pluggable client::Strategy from the adversary library
// (strategy.hpp), so new attacker behaviors need no client edits.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "client/client_stats.hpp"
#include "client/payment_channel.hpp"
#include "client/strategy.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "sim/timer.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::client {

struct WorkloadParams {
  double lambda = 2.0;
  int window = 1;
  http::ClientClass cls = http::ClientClass::kGood;
  int difficulty = 1;
  Bytes post_size = megabytes(1);
  /// Outstanding requests wait a long time (like a browser); the paper's
  /// 10 s denial rule (§7.1) applies to the *backlog queue* below.
  Duration request_timeout = Duration::seconds(300);
  Duration backlog_timeout = Duration::seconds(10);
  /// §3.2 mode: target number of unacked retry messages kept in flight.
  int retry_pipeline = 64;
  std::uint32_t request_port = 80;
  std::uint32_t payment_port = 81;
  /// Behavior strategy: a client::StrategyFactory registry key. The default
  /// "poisson" reproduces the pre-strategy client bit for bit.
  std::string strategy = "poisson";
  /// Named per-strategy knobs (scenario files: the `strategy_params` block).
  std::vector<std::pair<std::string, double>> strategy_knobs;
};

/// The strategy-construction view of a WorkloadParams: base knobs every
/// strategy shares, plus the free-form named knobs.
[[nodiscard]] inline StrategyParams strategy_params(const WorkloadParams& p) {
  StrategyParams sp;
  sp.lambda = p.lambda;
  sp.window = p.window;
  sp.retry_pipeline = p.retry_pipeline;
  sp.knobs = p.strategy_knobs;
  return sp;
}

/// Paper defaults (§7.1).
[[nodiscard]] inline WorkloadParams good_client_params() {
  WorkloadParams p;
  p.lambda = 2.0;
  p.window = 1;
  p.cls = http::ClientClass::kGood;
  return p;
}

[[nodiscard]] inline WorkloadParams bad_client_params() {
  WorkloadParams p;
  p.lambda = 40.0;
  p.window = 20;
  p.cls = http::ClientClass::kBad;
  return p;
}

class WorkloadClient {
 public:
  /// `client_index` namespaces this client's request ids; `rng` drives its
  /// Poisson process.
  WorkloadClient(transport::Host& host, net::NodeId thinner, const WorkloadParams& params,
                 std::uint32_t client_index, util::RngStream rng);

  WorkloadClient(const WorkloadClient&) = delete;
  WorkloadClient& operator=(const WorkloadClient&) = delete;
  ~WorkloadClient();

  /// Starts the arrival process.
  void start();

  /// Stops issuing new requests (outstanding ones keep running).
  void pause() { paused_ = true; }

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t outstanding() const { return outstanding_.size(); }
  [[nodiscard]] std::size_t backlog() const { return backlog_.size(); }
  [[nodiscard]] const Strategy& strategy() const { return *strategy_; }

 private:
  struct PendingRequest {
    std::uint64_t id = 0;
    SimTime sent;
    http::MessageStream* stream = nullptr;
    std::unique_ptr<PaymentChannelClient> payment;
    std::unique_ptr<sim::Timer> timer;
    std::unique_ptr<sim::Timer> defect_timer;  // strategy payment_patience
    bool paying = false;
    SimTime pay_started;
    bool retry_pumping = false;
    std::int64_t retries_sent = 0;
  };

  enum class Disposition { kServed, kDenied, kBusyRejected };

  [[nodiscard]] StrategyView view() const;
  [[nodiscard]] int current_window();
  void on_arrival();
  void start_request();
  void on_message(PendingRequest& pr, const http::Message& m);
  void abandon_payment(std::uint64_t id);
  void pump_retries(PendingRequest& pr);
  void finish(std::uint64_t id, Disposition d);
  /// The client_index this client was constructed with (trace track id).
  [[nodiscard]] std::uint32_t index() const {
    return static_cast<std::uint32_t>((id_base_ >> 32) - 1);
  }
  void purge_backlog();
  void drain_backlog();

  transport::Host* host_;
  net::NodeId thinner_;
  WorkloadParams params_;
  std::uint64_t id_base_;
  std::uint32_t next_seq_ = 0;
  util::RngStream rng_;
  std::unique_ptr<Strategy> strategy_;
  http::SessionPool pool_;
  ClientStats stats_;
  std::unordered_map<std::uint64_t, std::unique_ptr<PendingRequest>> outstanding_;
  std::deque<SimTime> backlog_;  // arrival timestamps of queued requests
  sim::EventId arrival_event_;
  bool paused_ = false;
};

}  // namespace speakup::client
