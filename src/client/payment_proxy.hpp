// The §9 "bandwidth envy" remedy: a high-bandwidth payment proxy.
//
// Speak-up allocates the server in proportion to bandwidth, so
// low-bandwidth customers are worse off than high-bandwidth ones during an
// attack. The paper's proposed solution: "ISPs with low-bandwidth customers
// [can] offer access to high-bandwidth proxies whose purpose is to pay
// bandwidth to the thinner ... perhaps by implementing speak-up
// recursively."
//
// PaymentProxy implements that box. Clients talk ordinary speak-up HTTP to
// the proxy (they can stay completely unmodified — they simply never get
// asked to pay); the proxy relays each request to the real thinner and,
// when the thinner demands payment, pays from its own fat uplink. Multiple
// pending requests pay concurrently and share the proxy's uplink via TCP —
// the recursive-fairness the paper suggests.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "client/payment_channel.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "transport/host.hpp"

namespace speakup::client {

class PaymentProxy {
 public:
  struct Config {
    net::NodeId thinner = net::kInvalidNode;
    std::uint32_t thinner_request_port = 80;
    std::uint32_t thinner_payment_port = 81;
    std::uint32_t listen_port = 80;         // where clients connect
    Bytes post_size = megabytes(1);
  };

  PaymentProxy(transport::Host& host, const Config& cfg)
      : host_(&host), cfg_(cfg), pool_(host.loop()) {
    host.listen(cfg.listen_port,
                [this](transport::TcpConnection& c) { on_client_accept(c); });
  }

  PaymentProxy(const PaymentProxy&) = delete;
  PaymentProxy& operator=(const PaymentProxy&) = delete;

  [[nodiscard]] std::int64_t relayed_requests() const { return relayed_; }
  [[nodiscard]] std::int64_t relayed_responses() const { return responses_; }
  [[nodiscard]] std::int64_t payments_started() const { return payments_; }
  [[nodiscard]] std::size_t pending() const { return by_id_.size(); }

 private:
  struct Relay {
    std::uint64_t id = 0;
    http::MessageStream* client_side = nullptr;   // proxy <-> client
    http::MessageStream* thinner_side = nullptr;  // proxy <-> thinner
    std::unique_ptr<PaymentChannelClient> payment;
  };

  void on_client_accept(transport::TcpConnection& conn) {
    http::MessageStream& s = pool_.adopt(conn);
    http::MessageStream::Callbacks cbs;
    cbs.on_message = [this, &s](const http::Message& m) { on_client_message(s, m); };
    cbs.on_reset = [this, &s] { on_side_reset(s); };
    s.set_callbacks(std::move(cbs));
  }

  void on_client_message(http::MessageStream& client_side, const http::Message& m) {
    if (m.type != http::MessageType::kRequest) return;
    if (by_id_.find(m.request_id) != by_id_.end()) return;  // duplicate
    ++relayed_;
    auto relay = std::make_unique<Relay>();
    Relay& r = *relay;
    r.id = m.request_id;
    r.client_side = &client_side;
    transport::TcpConnection& out =
        host_->connect(cfg_.thinner, cfg_.thinner_request_port);
    r.thinner_side = &pool_.adopt(out);
    http::MessageStream::Callbacks cbs;
    cbs.on_established = [this, &r, m] {
      if (r.thinner_side != nullptr) r.thinner_side->send(m);  // forward verbatim
    };
    cbs.on_message = [this, &r](const http::Message& reply) {
      on_thinner_message(r, reply);
    };
    cbs.on_reset = [this, s = r.thinner_side] { on_side_reset(*s); };
    r.thinner_side->set_callbacks(std::move(cbs));
    by_stream_[r.client_side] = r.id;
    by_stream_[r.thinner_side] = r.id;
    by_id_[r.id] = std::move(relay);
  }

  void on_thinner_message(Relay& r, const http::Message& m) {
    switch (m.type) {
      case http::MessageType::kPleasePay: {
        // The proxy's purpose: pay on the client's behalf. The client never
        // sees the payment protocol.
        if (r.payment != nullptr) break;
        ++payments_;
        PaymentChannelClient::Config pc;
        pc.thinner = cfg_.thinner;
        pc.payment_port = cfg_.thinner_payment_port;
        pc.post_size = cfg_.post_size;
        r.payment = std::make_unique<PaymentChannelClient>(*host_, pool_, pc, r.id,
                                                           m.cls);
        r.payment->start();
        break;
      }
      case http::MessageType::kResponse:
      case http::MessageType::kBusy:
      case http::MessageType::kAborted:
      case http::MessageType::kRetry: {
        if (m.type == http::MessageType::kResponse) ++responses_;
        if (r.client_side != nullptr) r.client_side->send(m);
        if (m.type != http::MessageType::kRetry) finish(r.id);
        break;
      }
      default:
        break;
    }
  }

  /// Either side dying tears the whole relay down (and aborts the other
  /// side so the peer learns promptly).
  void on_side_reset(http::MessageStream& s) {
    const auto it = by_stream_.find(&s);
    if (it == by_stream_.end()) {
      pool_.retire(&s);
      return;
    }
    const std::uint64_t id = it->second;
    pool_.retire(&s);
    const auto rit = by_id_.find(id);
    if (rit != by_id_.end()) {
      Relay& r = *rit->second;
      if (r.client_side == &s) r.client_side = nullptr;
      if (r.thinner_side == &s) r.thinner_side = nullptr;
      finish(id);
    }
  }

  void finish(std::uint64_t id) {
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return;
    Relay& r = *it->second;
    if (r.payment != nullptr) r.payment->stop();
    if (r.client_side != nullptr) {
      by_stream_.erase(r.client_side);
      // Leave the client-side stream open: the client closes it after
      // consuming the relayed response; the reset path retires it.
    }
    if (r.thinner_side != nullptr) {
      by_stream_.erase(r.thinner_side);
      pool_.retire(r.thinner_side);
    }
    by_id_.erase(it);
  }

  transport::Host* host_;
  Config cfg_;
  http::SessionPool pool_;
  std::int64_t relayed_ = 0;
  std::int64_t responses_ = 0;
  std::int64_t payments_ = 0;
  std::unordered_map<std::uint64_t, std::unique_ptr<Relay>> by_id_;
  std::unordered_map<http::MessageStream*, std::uint64_t> by_stream_;
};

}  // namespace speakup::client
