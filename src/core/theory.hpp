// Closed-form results from the paper (§2.1, §3.1, §3.3, §3.4). The
// benchmark harnesses print these as the "ideal" series next to measured
// values, and the tests check the implementation against them.
#pragma once

#include <algorithm>

#include "util/assert.hpp"

namespace speakup::core::theory {

/// §3.1 design goal: good clients with demand `g` req/s and aggregate
/// bandwidth `G` facing attackers with aggregate bandwidth `B` should be
/// served at min(g, c * G/(G+B)) req/s by a server of capacity `c`.
/// G and B may be in any common unit (req/s or bytes/s).
inline double ideal_good_service_rate(double g, double G, double B, double c) {
  SPEAKUP_ASSERT(g >= 0 && G >= 0 && B >= 0 && c > 0);
  if (G + B <= 0) return std::min(g, c);
  return std::min(g, c * G / (G + B));
}

/// Fraction of the server the good clients should capture when overloaded:
/// G/(G+B) (Figure 1(b); the "Ideal" series of Figures 2, 3 and 6).
inline double ideal_good_allocation(double G, double B) {
  SPEAKUP_ASSERT(G >= 0 && B >= 0);
  if (G + B <= 0) return 0.0;
  return G / (G + B);
}

/// §3.1 idealized provisioning requirement: c_id = g * (1 + B/G) is the
/// minimum capacity at which *all* good demand is satisfied under exact
/// bandwidth-proportional allocation.
inline double ideal_provisioning(double g, double G, double B) {
  SPEAKUP_ASSERT(g >= 0 && G > 0 && B >= 0);
  return g * (1.0 + B / G);
}

/// §3.3 average price: with the thinner receiving G+B bytes/s and auctions
/// every 1/c seconds on average, the going rate is (G+B)/c bytes/request
/// (the "Upper Bound" series of Figure 5).
inline double average_price_bytes(double G_bytes_per_s, double B_bytes_per_s, double c) {
  SPEAKUP_ASSERT(c > 0);
  return (G_bytes_per_s + B_bytes_per_s) / c;
}

/// Theorem 3.1: with perfectly regular service intervals, a client that
/// continuously delivers an `eps` fraction of the thinner's average inbound
/// bandwidth receives at least eps/(2-eps) >= eps/2 of the service,
/// regardless of adversary timing. This returns the tight bound from the
/// proof, eps/(2-eps) — note k/t >= eps/(2-eps) is what the algebra gives
/// ("It follows that k/t >= eps/(2-eps) >= eps/2").
inline double theorem31_service_fraction(double eps) {
  SPEAKUP_ASSERT(eps >= 0.0 && eps <= 1.0);
  return eps / (2.0 - eps);
}

/// The looser headline form of Theorem 3.1: eps/2.
inline double theorem31_service_fraction_loose(double eps) {
  SPEAKUP_ASSERT(eps >= 0.0 && eps <= 1.0);
  return eps / 2.0;
}

/// §3.4 extension of Theorem 3.1 to service times that fluctuate within
/// [(1-delta)/c, (1+delta)/c]: the guarantee weakens to (1-2*delta)*eps/2.
inline double theorem31_service_fraction_jitter(double eps, double delta) {
  SPEAKUP_ASSERT(delta >= 0.0 && delta <= 0.5);
  return (1.0 - 2.0 * delta) * theorem31_service_fraction_loose(eps);
}

/// §2.1 worked example: fraction of the server good clients get *without*
/// speak-up when they demand g req/s against an attack of B req/s hitting a
/// server of capacity c with random drops: g/(g+B) of the server (when
/// g + B > c), i.e. service rate c*g/(g+B).
inline double no_defense_good_allocation(double g_rps, double attack_rps) {
  SPEAKUP_ASSERT(g_rps >= 0 && attack_rps >= 0);
  if (g_rps + attack_rps <= 0) return 0.0;
  return g_rps / (g_rps + attack_rps);
}

}  // namespace speakup::core::theory
