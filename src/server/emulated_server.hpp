// The protected server, emulated exactly as in the paper's prototype (§6):
// it runs in the thinner's address space, processes one request at a time,
// and each request's service time is drawn uniformly from
// [0.9/c, 1.1/c] where c is the capacity in requests/second.
#pragma once

#include <cstdint>
#include <functional>

#include "http/message.hpp"
#include "sim/event_loop.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace speakup::server {

/// What the thinner hands to the server when admitting a request.
struct ServiceRequest {
  std::uint64_t request_id = 0;
  http::ClientClass cls = http::ClientClass::kNeutral;
  /// §5: difficulty multiplier; a request of difficulty d consumes d times
  /// the base service time. Homogeneous workloads use d = 1.
  int difficulty = 1;
};

/// Single-request-at-a-time server with stochastic service times.
class EmulatedServer {
 public:
  /// `capacity_rps` is c, in requests per second (of difficulty 1).
  EmulatedServer(sim::EventLoop& loop, double capacity_rps, util::RngStream rng)
      : loop_(&loop), capacity_rps_(capacity_rps), rng_(std::move(rng)) {
    util::require(capacity_rps > 0, "server capacity must be positive");
  }

  EmulatedServer(const EmulatedServer&) = delete;
  EmulatedServer& operator=(const EmulatedServer&) = delete;

  /// Invoked when the active request completes. The thinner typically runs
  /// the next auction from here.
  void set_on_complete(std::function<void(const ServiceRequest&)> cb) {
    on_complete_ = std::move(cb);
  }

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] double capacity_rps() const { return capacity_rps_; }

  /// Re-provisions the server mid-run (Bohatei-style elastic capacity).
  /// Only future service-time draws use the new rate; the active request,
  /// if any, completes at the rate it was admitted under.
  void set_capacity_rps(double capacity_rps) {
    util::require(capacity_rps > 0, "server capacity must be positive");
    capacity_rps_ = capacity_rps;
  }

  /// Admits a request; precondition: the server is free.
  void submit(const ServiceRequest& req) {
    SPEAKUP_ASSERT(!busy_);
    busy_ = true;
    active_ = req;
    const Duration service = draw_service_time(req.difficulty);
    busy_time_ += service;
    if (req.cls == http::ClientClass::kGood) {
      good_busy_time_ += service;
    } else if (req.cls == http::ClientClass::kBad) {
      bad_busy_time_ += service;
    }
    ++served_;
    loop_->schedule(service, [this] {
      busy_ = false;
      const ServiceRequest done = active_;
      if (on_complete_) on_complete_(done);
    });
  }

  // --- accounting ---
  [[nodiscard]] std::int64_t served() const { return served_; }
  [[nodiscard]] Duration busy_time() const { return busy_time_; }
  [[nodiscard]] Duration good_busy_time() const { return good_busy_time_; }
  [[nodiscard]] Duration bad_busy_time() const { return bad_busy_time_; }

 private:
  [[nodiscard]] Duration draw_service_time(int difficulty) {
    SPEAKUP_ASSERT(difficulty >= 1);
    // U[0.9/c, 1.1/c], scaled by difficulty (§6).
    const double base = rng_.uniform(0.9 / capacity_rps_, 1.1 / capacity_rps_);
    return Duration::seconds(base * difficulty);
  }

  sim::EventLoop* loop_;
  double capacity_rps_;
  util::RngStream rng_;
  std::function<void(const ServiceRequest&)> on_complete_;
  bool busy_ = false;
  ServiceRequest active_;
  std::int64_t served_ = 0;
  Duration busy_time_ = Duration::zero();
  Duration good_busy_time_ = Duration::zero();
  Duration bad_busy_time_ = Duration::zero();
};

}  // namespace speakup::server
