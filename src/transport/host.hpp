// An end host: a network node that owns TCP connections and demultiplexes
// arriving packets to them. Hosts initiate connections (connect) and accept
// them (listen). A packet that matches no connection and no listener is
// answered with RST, which lets half-dead connections clean themselves up.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "net/network.hpp"
#include "net/node.hpp"
#include "transport/tcp_connection.hpp"

namespace speakup::transport {

class Host : public net::Node {
 public:
  Host(net::Network& net, net::NodeId id, std::string name)
      : Node(net, id, std::move(name)) {}

  void set_tcp_config(const TcpConfig& cfg) { tcp_cfg_ = cfg; }
  [[nodiscard]] const TcpConfig& tcp_config() const { return tcp_cfg_; }

  /// Opens a connection to (dst, dst_port). The returned reference stays
  /// valid until the connection closes (teardown destroys it on the next
  /// event-loop tick).
  TcpConnection& connect(net::NodeId dst, std::uint32_t dst_port);

  /// Registers an accept callback for a port.
  void listen(std::uint32_t port, std::function<void(TcpConnection&)> on_accept);

  void on_packet(net::Packet p) override;

  void send_packet(net::Packet p) { network().forward(id(), std::move(p)); }

  [[nodiscard]] TcpConnection* find_connection(std::uint32_t local_port, net::NodeId remote,
                                               std::uint32_t remote_port) const;

  /// Schedules destruction of a closed connection (deferred so callers on
  /// the current stack stay valid).
  void release(TcpConnection* conn);

  [[nodiscard]] sim::EventLoop& loop() const { return network().loop(); }
  [[nodiscard]] std::int64_t connections_created() const { return connections_created_; }
  [[nodiscard]] std::size_t live_connections() const { return conns_.size(); }

 private:
  using ConnKey = std::tuple<std::uint32_t, net::NodeId, std::uint32_t>;

  TcpConnection& emplace_connection(std::uint32_t local_port, net::NodeId remote,
                                    std::uint32_t remote_port, bool initiator);
  std::uint32_t alloc_port() { return next_port_++; }

  TcpConfig tcp_cfg_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> conns_;
  std::map<std::uint32_t, std::function<void(TcpConnection&)>> listeners_;
  std::uint32_t next_port_ = 1024;
  std::int64_t connections_created_ = 0;
};

}  // namespace speakup::transport
