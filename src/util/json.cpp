#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace speakup::util::json {

const char* type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void type_error(const char* wanted, Type got) {
  throw Error(std::string("expected ") + wanted + ", got " + type_name(got));
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

std::int64_t Value::as_int() const {
  const double d = as_number();
  const double r = std::floor(d);
  if (r != d) throw Error("expected integer, got " + number_to_string(d));
  // int64 range check before the cast (out-of-range conversion is UB).
  if (r < -9223372036854775808.0 || r >= 9223372036854775808.0) {
    throw Error("integer out of range: " + number_to_string(d));
  }
  return static_cast<std::int64_t>(r);
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Value::Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const Value::Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Value::set(std::string_view key, Value v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
  return *this;
}

bool Value::erase(std::string_view key) {
  if (type_ != Type::kObject) return false;
  for (auto it = obj_.begin(); it != obj_.end(); ++it) {
    if (it->first == key) {
      obj_.erase(it);
      return true;
    }
  }
  return false;
}

Value& Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
  return *this;
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number_to_string(double v) {
  // JSON has no inf/nan; a non-finite value here is a caller bug, and
  // emitting 'inf' would silently corrupt result files downstream.
  if (!std::isfinite(v)) throw Error("cannot serialize non-finite number");
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  // Shortest form that round-trips: try increasing precision.
  char buf[32];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += number_to_string(num_); break;
    case Type::kString: out += quote(str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        out += quote(obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    // Recompute line/column from the byte offset; error paths are cold.
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error("line " + std::to_string(line) + ", column " + std::to_string(col) +
                ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal (did you mean true?)");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal (did you mean false?)");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal (did you mean null?)");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected '\"' to start an object key");
      std::string key = parse_string();
      for (const auto& [k, v] : members) {
        if (k == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array elems;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(elems));
    }
    while (true) {
      elems.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(elems));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape sequence");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // scenario files are ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      pos_ = start;
      fail("invalid number \"" + token + "\"");
    }
    if (!std::isfinite(v)) {
      pos_ = start;
      fail("number out of range \"" + token + "\"");
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace speakup::util::json
