// Name-keyed registry of defense front ends.
//
// Every defense registers a builder under its canonical name (the same name
// exp::to_string(DefenseMode) produces for the built-ins); the experiment
// harness constructs whatever the scenario asks for by name. Adding a new
// defense therefore touches no harness code: register it — statically via
// SPEAKUP_REGISTER_FRONT_END or imperatively from a test — and every
// scenario, bench, and sweep can run it.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/front_end.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {

class FrontEndFactory {
 public:
  /// Builds a defense on `host` (the thinner host). `server_rng` seeds the
  /// emulated server's service-time draws.
  using Builder = std::function<std::unique_ptr<FrontEnd>(
      transport::Host& host, const FrontEndConfig& cfg, util::RngStream server_rng)>;

  /// The process-wide registry, with the built-in defenses pre-registered.
  static FrontEndFactory& instance();

  /// Registers a defense; throws std::invalid_argument on a duplicate name.
  void register_defense(const std::string& name, Builder builder);

  /// Removes a registration (used by tests to clean up after themselves).
  void unregister_defense(const std::string& name);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Constructs the named defense; throws std::invalid_argument for an
  /// unknown name. Thread-safe: Runner workers build concurrently.
  [[nodiscard]] std::unique_ptr<FrontEnd> create(std::string_view name,
                                                 transport::Host& host,
                                                 const FrontEndConfig& cfg,
                                                 util::RngStream server_rng) const;

 private:
  FrontEndFactory();

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Builder>> builders_;
};

/// Static self-registration helper: at namespace scope,
///   SPEAKUP_REGISTER_FRONT_END(my_defense, "mydefense",
///       [](transport::Host& h, const FrontEndConfig& c, util::RngStream r) {
///         return std::make_unique<MyDefense>(h, c, std::move(r));
///       });
struct FrontEndRegistrar {
  FrontEndRegistrar(const std::string& name, FrontEndFactory::Builder builder) {
    FrontEndFactory::instance().register_defense(name, std::move(builder));
  }
};

#define SPEAKUP_REGISTER_FRONT_END(tag, name, ...) \
  static const ::speakup::core::FrontEndRegistrar speakup_front_end_registrar_##tag{ \
      name, __VA_ARGS__}

}  // namespace speakup::core
