// Figure 4: mean and 90th-percentile time that served good requests spent
// uploading dummy bytes, for c = 50, 100, 200 requests/s (G = B = 50
// Mbit/s). With a lightly loaded server (c = 200) speak-up introduces
// almost no latency.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 4", "payment time of served good requests vs capacity");
  bench::print_paper_note(
      "mean payment time shrinks as capacity grows; at c = 200 it is near zero "
      "(paper: ~1 s mean at c = 50, ~0.6 s at c = 100, ~0 at c = 200)");

  const double kCapacities[] = {50.0, 100.0, 200.0};
  exp::Runner runner;
  for (const double c : kCapacities) {
    exp::ScenarioConfig cfg =
        exp::lan_scenario(25, 25, c, exp::DefenseMode::kAuction, /*seed=*/23);
    cfg.duration = bench::experiment_duration();
    runner.add(cfg, "c" + std::to_string(int(c)));
  }
  bench::run_all(runner);

  stats::Table table({"capacity", "mean-payment-s", "p90-payment-s", "samples"});
  for (const double c : kCapacities) {
    const exp::ExperimentResult& r = runner.result("c" + std::to_string(int(c)));
    table.row()
        .add(static_cast<std::int64_t>(c))
        .add(r.thinner.payment_time_good.mean(), 3)
        .add(r.thinner.payment_time_good.percentile(0.9), 3)
        .add(static_cast<std::int64_t>(r.thinner.payment_time_good.count()));
  }
  table.print(std::cout);
  return 0;
}
