// An end host: a network node that owns TCP connections and demultiplexes
// arriving packets to them. Hosts initiate connections (connect) and accept
// them (listen). A packet that matches no connection and no listener is
// answered with RST, which lets half-dead connections clean themselves up.
//
// Connections live in a chunked in-place slab addressed by dense slot ids
// (stable addresses — the rest of the stack holds TcpConnection&), with an
// open-addressing (local_port, remote, remote_port) -> slot table doing the
// demux. Steady-state connect/teardown churn — one connection per request
// and per payment POST at 10^5-client scale — reuses slots and probes a
// flat array: no allocator traffic, no tree walks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/event_loop.hpp"
#include "transport/tcp_connection.hpp"
#include "util/audit.hpp"

namespace speakup::transport {

class Host : public net::Node {
 public:
  Host(net::Network& net, net::NodeId id, std::string name)
      : Node(net, id, std::move(name)) {}

  ~Host() override;

  void set_tcp_config(const TcpConfig& cfg) { tcp_cfg_ = cfg; }
  [[nodiscard]] const TcpConfig& tcp_config() const { return tcp_cfg_; }

  /// Opens a connection to (dst, dst_port). The returned reference stays
  /// valid until the connection closes (teardown destroys it on the next
  /// event-loop tick).
  TcpConnection& connect(net::NodeId dst, std::uint32_t dst_port);

  /// Registers an accept callback for a port.
  void listen(std::uint32_t port, std::function<void(TcpConnection&)> on_accept);

  void on_packet(net::Packet p) override;

  void send_packet(net::Packet p) { network().forward(id(), std::move(p)); }

  [[nodiscard]] TcpConnection* find_connection(std::uint32_t local_port, net::NodeId remote,
                                               std::uint32_t remote_port) const;

  /// Schedules destruction of a closed connection (deferred so callers on
  /// the current stack stay valid).
  void release(TcpConnection* conn);

  [[nodiscard]] sim::EventLoop& loop() const { return network().loop(); }
  [[nodiscard]] std::int64_t connections_created() const { return connections_created_; }
  [[nodiscard]] std::size_t live_connections() const { return table_size_; }

#if SPEAKUP_AUDIT_ENABLED
  /// Structural audit (SPEAKUP_AUDIT builds only): demux-table vs slot-state
  /// agreement — every table entry reachable from its home probe and backed
  /// by a constructed connection, every non-empty slot tabled exactly once,
  /// free list covering exactly the empty slots, releasing slots holding a
  /// pending destroy event. Runs every kAuditPeriod table mutations.
  void audit() const;
  /// Deliberate corruption for tests/audit_test.cpp: drops one live table
  /// entry without releasing its slot — the signature of a lost erase.
  void corrupt_table_for_test();
#endif

 private:
  enum class SlotState : std::uint8_t { kEmpty, kLive, kReleasing };

  /// Slab chunk size: client hosts hold a handful of live connections
  /// (window + one payment channel), so chunks stay small to keep 10^5
  /// hosts cheap; server-side hosts just grow more chunks.
  static constexpr std::size_t kChunk = 8;
  static constexpr std::uint32_t kNilSlot = UINT32_MAX;

  struct alignas(TcpConnection) RawSlot {
    std::byte bytes[sizeof(TcpConnection)];
  };

  /// One open-addressing table entry; slot == kNilSlot marks it empty.
  struct TableEntry {
    std::uint32_t local_port = 0;
    net::NodeId remote = 0;
    std::uint32_t remote_port = 0;
    std::uint32_t slot = kNilSlot;
  };

  TcpConnection& emplace_connection(std::uint32_t local_port, net::NodeId remote,
                                    std::uint32_t remote_port, bool initiator);
  std::uint32_t alloc_port() { return next_port_++; }

  [[nodiscard]] TcpConnection* conn_at(std::uint32_t slot) const {
    return std::launder(reinterpret_cast<TcpConnection*>(
        const_cast<std::byte*>(chunks_[slot / kChunk][slot % kChunk].bytes)));
  }

  static std::uint64_t key_hash(std::uint32_t local_port, net::NodeId remote,
                                std::uint32_t remote_port) {
    std::uint64_t z = (static_cast<std::uint64_t>(local_port) << 32) ^
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(remote)) << 16) ^
                      remote_port;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  [[nodiscard]] std::size_t probe_of(const TableEntry& e) const {
    return key_hash(e.local_port, e.remote, e.remote_port) & (table_.size() - 1);
  }

  /// Index of the entry for the key, or of the empty slot where it would
  /// insert. Table must be non-empty.
  [[nodiscard]] std::size_t find_index(std::uint32_t local_port, net::NodeId remote,
                                       std::uint32_t remote_port) const;

  void table_insert(std::uint32_t local_port, net::NodeId remote,
                    std::uint32_t remote_port, std::uint32_t slot);
  void table_erase(std::uint32_t local_port, net::NodeId remote,
                   std::uint32_t remote_port);
  void table_grow();

  std::uint32_t acquire_slot();

  TcpConfig tcp_cfg_;
  std::vector<std::unique_ptr<RawSlot[]>> chunks_;
  std::vector<SlotState> states_;      // indexed by slot
  std::vector<sim::EventId> release_ev_;  // pending destroy event per slot
  std::vector<std::uint32_t> free_;
  std::vector<TableEntry> table_;      // power-of-two open addressing
  std::size_t table_size_ = 0;
  std::map<std::uint32_t, std::function<void(TcpConnection&)>> listeners_;
  std::uint32_t next_port_ = 1024;
  std::int64_t connections_created_ = 0;
#if SPEAKUP_AUDIT_ENABLED
  static constexpr std::uint64_t kAuditPeriod = 64;
  std::uint64_t audit_countdown_ = kAuditPeriod;
  void maybe_audit() {
    if (--audit_countdown_ == 0) {
      audit_countdown_ = kAuditPeriod;
      audit();
    }
  }
#endif
};

}  // namespace speakup::transport
