#include "core/quantum_thinner.hpp"

#include "obs/observer.hpp"

namespace {
// obs::Cls mirrors http::ClientClass value for value.
speakup::obs::Cls obs_cls(speakup::http::ClientClass c) {
  return static_cast<speakup::obs::Cls>(c);
}
}  // namespace

namespace speakup::core {

using http::ClientClass;
using http::Message;
using http::MessageStream;
using http::MessageType;

QuantumAuctionThinner::QuantumAuctionThinner(transport::Host& host, const Config& cfg,
                                             util::RngStream server_rng)
    : host_(&host),
      cfg_(cfg),
      quantum_(cfg.quantum > Duration::zero() ? cfg.quantum
                                              : Duration::seconds(1.0 / cfg.capacity_rps)),
      server_(host.loop(), cfg.capacity_rps, std::move(server_rng)),
      pool_(host.loop()),
      quantum_timer_(host.loop(), [this] { quantum_tick(); }) {
  server_.set_on_complete([this](const server::ServiceRequest& r) { on_server_complete(r); });
  host.listen(cfg_.request_port,
              [this](transport::TcpConnection& c) { on_request_accept(c); });
  host.listen(cfg_.payment_port,
              [this](transport::TcpConnection& c) { on_payment_accept(c); });
  quantum_timer_.restart(quantum_);
}

void QuantumAuctionThinner::on_request_accept(transport::TcpConnection& conn) {
  MessageStream& s = pool_.adopt(conn);
  MessageStream::Callbacks cbs;
  cbs.on_message = [this, &s](const Message& m) { on_request_message(s, m); };
  cbs.on_reset = [this, &s] { on_stream_reset(s); };
  s.set_callbacks(std::move(cbs));
}

void QuantumAuctionThinner::on_payment_accept(transport::TcpConnection& conn) {
  MessageStream& s = pool_.adopt(conn);
  MessageStream::Callbacks cbs;
  cbs.on_message = [this, &s](const Message& m) { on_payment_message(s, m); };
  cbs.on_body_progress = [this, &s](const Message& m, Bytes n) {
    on_payment_progress(s, m, n);
  };
  cbs.on_reset = [this, &s] { on_stream_reset(s); };
  s.set_callbacks(std::move(cbs));
}

void QuantumAuctionThinner::on_request_message(MessageStream& s, const Message& m) {
  if (m.type != MessageType::kRequest) return;
  ++stats_.requests_received;
  RequestState& st = get_or_create(m.request_id, m.cls);
  if (st.has_request) return;
  st.cls = m.cls;
  st.difficulty = m.difficulty;
  st.has_request = true;
  st.request_session = &s;
  by_stream_[&s] = st.id;
  st.expiry->cancel();  // request present: only §5 step 4 can evict it now
  if (!server_.busy()) {
    give_server_to(st);
  } else {
    s.send(Message{.type = MessageType::kPleasePay, .request_id = st.id});
  }
}

void QuantumAuctionThinner::on_payment_message(MessageStream& s, const Message& m) {
  switch (m.type) {
    case MessageType::kPayOpen: {
      RequestState& st = get_or_create(m.request_id, m.cls);
      st.payment_session = &s;
      by_stream_[&s] = st.id;
      if (!st.started_paying) {
        st.started_paying = true;
        st.first_payment = host_->loop().now();
      }
      break;
    }
    case MessageType::kPostData:
      s.send(Message{.type = MessageType::kPostContinue, .request_id = m.request_id});
      break;
    default:
      break;
  }
}

void QuantumAuctionThinner::on_payment_progress(MessageStream& s, const Message& m,
                                                Bytes newly) {
  if (m.type != MessageType::kPostData) return;
  stats_.payment_bytes_total += newly;
  stats_.payment_rate.add(host_->loop().now(), static_cast<double>(newly));
  if (RequestState* st = state_for(s)) st->paid += newly;
}

void QuantumAuctionThinner::on_stream_reset(MessageStream& s) {
  const auto it = by_stream_.find(&s);
  if (it == by_stream_.end()) {
    pool_.retire(&s);
    return;
  }
  const std::uint64_t id = it->second;
  by_stream_.erase(it);
  const auto sit = states_.find(id);
  if (sit != states_.end()) {
    RequestState& st = *sit->second;
    if (st.request_session == &s) {
      st.request_session = nullptr;
      pool_.retire(&s);
      // Request abandoned by the client: abort it wherever it is.
      abort_request(id);
      return;
    }
    if (st.payment_session == &s) st.payment_session = nullptr;
  }
  pool_.retire(&s);
}

QuantumAuctionThinner::RequestState& QuantumAuctionThinner::get_or_create(std::uint64_t id,
                                                                          ClientClass cls) {
  const auto it = states_.find(id);
  if (it != states_.end()) return *it->second;
  auto st = std::make_unique<RequestState>();
  st->id = id;
  st->cls = cls;
  st->created = host_->loop().now();
  st->expiry = std::make_unique<sim::Timer>(host_->loop(), [this, id] { expire(id); });
  st->expiry->restart(cfg_.payment_window);
  RequestState& ref = *st;
  states_[id] = std::move(st);
  return ref;
}

QuantumAuctionThinner::RequestState* QuantumAuctionThinner::state_for(MessageStream& s) {
  const auto it = by_stream_.find(&s);
  if (it == by_stream_.end()) return nullptr;
  const auto sit = states_.find(it->second);
  return sit == states_.end() ? nullptr : sit->second.get();
}

QuantumAuctionThinner::RequestState* QuantumAuctionThinner::active_state() {
  for (auto& [id, st] : states_) {
    if (st->active) return st.get();
  }
  return nullptr;
}

QuantumAuctionThinner::RequestState* QuantumAuctionThinner::top_contender() {
  RequestState* best = nullptr;
  for (auto& [id, st] : states_) {
    if (!st->has_request || st->active) continue;
    if (best == nullptr || st->paid > best->paid ||
        (st->paid == best->paid && st->created < best->created)) {
      best = st.get();
    }
  }
  return best;
}

void QuantumAuctionThinner::give_server_to(RequestState& st) {
  SPEAKUP_ASSERT(!server_.busy());
  SPEAKUP_ASSERT(st.has_request && !st.active);
  st.expiry->cancel();
  if (auto* o = host_->loop().observer()) {
    // A fresh grant is the admission (price = the bid being zeroed); a
    // resume after suspension is not a new admission.
    if (!st.suspended) {
      o->on_admission(obs_cls(st.cls), static_cast<double>(st.paid),
                      /*direct=*/!st.started_paying);
    }
    o->on_auction_clear(static_cast<double>(st.paid));
  }
  st.paid = 0;  // §5 step 2: "set u's payment to zero"
  st.active = true;
  if (st.suspended) {
    st.suspended = false;
    server_.resume(st.id);
  } else {
    st.started = true;
    server_.submit(server::ServiceRequest{st.id, st.cls, st.difficulty});
  }
}

void QuantumAuctionThinner::quantum_tick() {
  quantum_timer_.restart(quantum_);
  ++stats_.auctions_held;
  RequestState* v = active_state();
  RequestState* u = top_contender();
  if (v == nullptr) {
    if (u != nullptr && !server_.busy()) give_server_to(*u);
  } else if (u != nullptr && u->paid > v->paid) {
    // §5 step 2: SUSPEND v, admit/RESUME u.
    server_.suspend();
    v->active = false;
    v->suspended = true;
    v->suspended_at = host_->loop().now();
    stats_.counters.inc("suspensions");
    if (auto* o = host_->loop().observer()) o->on_quantum_suspension();
    give_server_to(*u);
  } else {
    // §5 step 3: v continues but has not yet paid for the next quantum.
    v->paid = 0;
  }
  // §5 step 4: ABORT requests suspended too long.
  std::vector<std::uint64_t> to_abort;
  for (auto& [id, st] : states_) {
    if (st->suspended &&
        host_->loop().now() - st->suspended_at > cfg_.suspension_limit) {
      to_abort.push_back(id);
    }
  }
  for (const std::uint64_t id : to_abort) abort_request(id);
}

void QuantumAuctionThinner::on_server_complete(const server::ServiceRequest& done) {
  const auto it = states_.find(done.request_id);
  if (it != states_.end()) {
    RequestState& st = *it->second;
    st.active = false;
    if (st.payment_session != nullptr) {
      // Terminate the on-going payment: the client stops paying now.
      st.payment_session->send(Message{.type = MessageType::kWin, .request_id = st.id});
    }
    if (st.request_session != nullptr) {
      st.request_session->send(Message{.type = MessageType::kResponse,
                                       .request_id = st.id,
                                       .body = cfg_.response_body,
                                       .cls = st.cls});
    }
    const double pay_time =
        st.started_paying ? (host_->loop().now() - st.first_payment).sec() : 0.0;
    if (st.cls == ClientClass::kGood) {
      ++stats_.served_good;
      stats_.payment_time_good.add(pay_time);
    } else if (st.cls == ClientClass::kBad) {
      ++stats_.served_bad;
      stats_.payment_time_bad.add(pay_time);
    } else {
      ++stats_.served_other;
    }
    destroy_state(done.request_id, /*abort_sessions=*/false);
  }
  // Hand the free server to the best contender right away (the next
  // quantum tick would do it too; this avoids idling a full quantum).
  if (RequestState* u = top_contender()) give_server_to(*u);
}

void QuantumAuctionThinner::abort_request(std::uint64_t id) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  RequestState& st = *it->second;
  if (st.active) {
    // Abandoned while holding the server: suspend then discard.
    server_.suspend();
    st.active = false;
    st.suspended = true;
  }
  if (st.suspended) server_.abort_suspended(id);
  stats_.counters.inc("aborts");
  if (auto* o = host_->loop().observer()) o->on_abort();
  // If the client is still there, kAborted tells it to stop paying and it
  // closes both channels itself; aborting here would kill the unsent
  // notification. If the client already abandoned the request, force-close.
  const bool client_gone = st.request_session == nullptr;
  if (!client_gone) {
    st.request_session->send(Message{.type = MessageType::kAborted, .request_id = id});
  }
  destroy_state(id, /*abort_sessions=*/client_gone);
  if (!server_.busy()) {
    if (RequestState* u = top_contender()) give_server_to(*u);
  }
}

void QuantumAuctionThinner::expire(std::uint64_t id) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  RequestState& st = *it->second;
  if (st.active || st.suspended) return;  // admitted at least once; step 4 governs
  ++stats_.channels_expired;
  stats_.payment_bytes_wasted += st.paid;
  if (auto* o = host_->loop().observer()) {
    o->on_channel_expired(static_cast<double>(st.paid));
  }
  destroy_state(id, /*abort_sessions=*/true);
}

void QuantumAuctionThinner::destroy_state(std::uint64_t id, bool abort_sessions) {
  const auto it = states_.find(id);
  if (it == states_.end()) return;
  RequestState& st = *it->second;
  if (st.request_session != nullptr) {
    by_stream_.erase(st.request_session);
    if (abort_sessions) pool_.retire(st.request_session);
  }
  if (st.payment_session != nullptr) {
    by_stream_.erase(st.payment_session);
    if (abort_sessions) pool_.retire(st.payment_session);
  }
  states_.erase(it);
}

}  // namespace speakup::core
