// Shared helpers for the per-figure benchmark harnesses.
//
// Every harness runs the paper's experiment at reduced duration by default
// (60 s instead of §7.1's 600 s) so the whole bench/ directory executes in
// minutes. Set SPEAKUP_FULL=1 to run the paper-length experiments.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/units.hpp"

namespace speakup::bench {

inline bool full_mode() {
  const char* env = std::getenv("SPEAKUP_FULL");
  return env != nullptr && env[0] == '1';
}

/// Experiment duration: the paper's 600 s in full mode, else `quick_sec`.
inline Duration experiment_duration(double quick_sec = 60.0) {
  return Duration::seconds(full_mode() ? 600.0 : quick_sec);
}

inline void print_banner(const char* figure, const char* description) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("mode: %s (set SPEAKUP_FULL=1 for the paper's 600 s runs)\n",
              full_mode() ? "FULL (600 s)" : "QUICK");
  std::printf("==============================================================================\n");
}

inline void print_paper_note(const char* note) { std::printf("paper: %s\n\n", note); }

}  // namespace speakup::bench
