// Figure 9: effect of speak-up traffic on an innocent bystander.
//
// Topology (§7.7): 10 good speak-up clients and one HTTP downloader H share
// a bottleneck m (1 Mbit/s, 100 ms one-way delay); on the other side sit
// the thinner (c = 2 requests/s) and a separate web server. H downloads a
// file repeatedly; we report mean and standard deviation of the end-to-end
// latency with and without the speak-up clients running, across file sizes.
#include <iostream>

#include "bench/bench_common.hpp"
#include "exp/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 9", "HTTP download latency across a shared bottleneck");
  bench::print_paper_note(
      "download times inflate by ~6x for a 1 KB transfer and ~4.5x for 64 KB "
      "when speak-up traffic shares the bottleneck (a deliberately pessimistic "
      "configuration)");

  const int kDownloads = bench::full_mode() ? 100 : 40;
  stats::Table table({"size-KB", "no-speakup-mean-s", "no-speakup-sd", "speakup-mean-s",
                      "speakup-sd", "inflation"});

  for (const std::int64_t kb : {1, 2, 4, 8, 16, 32, 64, 100}) {
    double mean[2] = {0.0, 0.0};
    double sd[2] = {0.0, 0.0};
    for (const bool with_speakup : {false, true}) {
      exp::ScenarioConfig cfg;
      cfg.mode = exp::DefenseMode::kAuction;
      cfg.capacity_rps = 2.0;
      cfg.seed = 28;
      cfg.bottleneck =
          exp::BottleneckSpec{Bandwidth::mbps(1.0), Duration::millis(100), 200'000};
      if (with_speakup) {
        exp::ClientGroupSpec g;
        g.label = "speakup-clients";
        g.count = 10;
        g.workload = client::good_client_params();
        g.behind_bottleneck = true;
        cfg.groups.push_back(g);
      }
      exp::CollateralSpec col;
      col.file_size = kilobytes(kb);
      col.downloads = kDownloads;
      cfg.collateral = col;
      // Give the downloads time to finish even when heavily delayed.
      cfg.duration = Duration::seconds(std::max(120.0, kDownloads * 6.0));
      const exp::ExperimentResult r = exp::run_scenario(cfg);
      mean[with_speakup ? 1 : 0] = r.collateral_latencies.mean();
      sd[with_speakup ? 1 : 0] = r.collateral_latencies.stddev();
    }
    table.row()
        .add(kb)
        .add(mean[0], 3)
        .add(sd[0], 3)
        .add(mean[1], 3)
        .add(sd[1], 3)
        .add(mean[0] > 0 ? mean[1] / mean[0] : 0.0, 2);
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
