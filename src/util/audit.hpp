// SPEAKUP_AUDIT: debug-only structural self-checks for the hand-rolled
// data structures (slab event loop, timer wheel, OOO tracker, ClientPool
// cohort heap, Host connection slab). A silent corruption in any of them
// would not crash — it would change event order, and with it every
// downstream number, while all fingerprint pins happily pin the wrong
// bytes. Audit mode re-verifies the invariants the structures rely on at
// amortized checkpoints while real scenarios run.
//
// Activation: configure with -DSPEAKUP_AUDIT=ON (CMake adds the macro).
// The checks are compiled in ONLY when the build is also a debug build
// (!NDEBUG): in a Release build the macro is ignored and every audit hook
// preprocesses away to nothing — zero residue, byte-identical binaries
// (CI's audit job proves this with cmp over two Release builds). That makes
// it safe to leave -DSPEAKUP_AUDIT=ON in a developer cache permanently.
//
// Usage inside a structure:
//   - declare audit-only members/methods with SPEAKUP_AUDIT_ONLY(...)
//   - assert invariants inside audit() bodies with
//     SPEAKUP_AUDIT_CHECK(expr, "what this invariant means")
//   - call the audit at amortized checkpoints via SPEAKUP_AUDIT_ONLY(...)
//
// A failed check prints "SPEAKUP_AUDIT invariant violated" with the
// expression, message and location, then aborts — tests/audit_test.cpp
// pins the detection with death tests against deliberately corrupted
// structures.
#pragma once

#if defined(SPEAKUP_AUDIT) && SPEAKUP_AUDIT && !defined(NDEBUG)
#define SPEAKUP_AUDIT_ENABLED 1
#else
#define SPEAKUP_AUDIT_ENABLED 0
#endif

#if SPEAKUP_AUDIT_ENABLED

#include <cstdio>
#include <cstdlib>

namespace speakup::util {

[[noreturn]] inline void audit_fail(const char* expr, const char* what, const char* file,
                                    int line) {
  std::fprintf(stderr, "speakup: SPEAKUP_AUDIT invariant violated: %s (%s) at %s:%d\n",
               what, expr, file, line);
  std::abort();
}

}  // namespace speakup::util

#define SPEAKUP_AUDIT_ONLY(...) __VA_ARGS__
#define SPEAKUP_AUDIT_CHECK(expr, what)                               \
  ((expr) ? static_cast<void>(0)                                      \
          : ::speakup::util::audit_fail(#expr, what, __FILE__, __LINE__))

#else

#define SPEAKUP_AUDIT_ONLY(...)
#define SPEAKUP_AUDIT_CHECK(expr, what) static_cast<void>(0)

#endif
