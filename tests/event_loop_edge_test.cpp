// Edge-case tests for the slab-based event loop: horizon/overflow handling,
// generation-counted cancellation (including via copied handles), tombstone
// compaction bounds, in-callback schedule/cancel semantics, and the
// zero-steady-state-allocation guarantee of schedule and the Link packet
// pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/network.hpp"
#include "sim/event_fn.hpp"
#include "sim/event_loop.hpp"

// Zero-allocation assertions use util::AllocGuard; the counting operator
// new lives in the speakup_counted_new object library (see
// src/util/alloc_guard.hpp). Only the *delta* inside a measured region
// matters; gtest and the warm-up phases may allocate freely.
#include "util/alloc_guard.hpp"

namespace speakup::sim {
namespace {

// --- horizon & overflow ----------------------------------------------------

TEST(EventLoopEdge, RunDrainsEventsNearTheHorizon) {
  // The old loop silently capped run() at INT64_MAX / 8 ns; events at or
  // past that never fired and the caller got no signal.
  EventLoop loop;
  std::vector<int> fired;
  loop.schedule_at(SimTime::from_ns(INT64_MAX / 8), [&] { fired.push_back(1); });
  loop.schedule_at(SimTime::from_ns(INT64_MAX / 2), [&] { fired.push_back(2); });
  loop.schedule_at(EventLoop::max_time(), [&] { fired.push_back(3); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.now().ns(), EventLoop::max_time().ns());
}

TEST(EventLoopEdge, OverflowingDelaySaturatesToHorizon) {
  // now + delay would wrap negative; the loop must saturate, not trip an
  // assert with a misleading message (or worse, pass a negative time).
  EventLoop loop;
  loop.schedule(Duration::millis(1), [] {});
  loop.run();  // advance the clock so now_ > 0
  int fired = 0;
  EventId id = loop.schedule(Duration::nanos(INT64_MAX), [&] { ++fired; });
  EXPECT_TRUE(id.pending());
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now().ns(), EventLoop::max_time().ns());
}

TEST(EventLoopEdge, InfiniteDurationIsSchedulableAndOrdered) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::infinite(), [&] { order.push_back(1); });
  loop.schedule(Duration::nanos(INT64_MAX), [&] { order.push_back(2); });  // saturates later
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopEdge, ScheduleAtRejectsPastTimesWithDiagnostic) {
  EventLoop loop;
  loop.schedule(Duration::millis(5), [] {});
  loop.run();
  // A wrapped-negative SimTime (the classic overflow symptom) is rejected
  // with an explanation instead of an opaque assert.
  EXPECT_THROW((void)loop.schedule_at(SimTime::from_ns(-1), [] {}), std::invalid_argument);
  EXPECT_THROW((void)loop.schedule_at(SimTime::from_ns(1), [] {}), std::invalid_argument);
}

// --- cancellation via copies & generations ---------------------------------

TEST(EventLoopEdge, CancelViaCopiedEventId) {
  EventLoop loop;
  int fired = 0;
  EventId original = loop.schedule(Duration::millis(10), [&] { ++fired; });
  EventId copy = original;
  loop.cancel(copy);
  EXPECT_FALSE(copy.valid());       // the handle passed to cancel is reset
  EXPECT_TRUE(original.valid());    // the sibling copy is untouched...
  EXPECT_FALSE(original.pending()); // ...but sees the event as gone
  loop.run();
  EXPECT_EQ(fired, 0);
  // Cancelling again through the stale sibling is a harmless no-op.
  loop.cancel(original);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopEdge, StaleIdDoesNotCancelSlotReuse) {
  // After an event fires, its slab slot is recycled. A stale handle to the
  // fired event must not be able to cancel the new occupant.
  EventLoop loop;
  EventId first = loop.schedule(Duration::millis(1), [] {});
  loop.run();
  int fired = 0;
  EventId second = loop.schedule(Duration::millis(1), [&] { ++fired; });
  loop.cancel(first);  // stale generation: must not touch `second`
  EXPECT_TRUE(second.pending());
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopEdge, CancelAndScheduleFromInsideFiringCallback) {
  EventLoop loop;
  std::vector<int> fired;
  EventId doomed;
  loop.schedule(Duration::millis(1), [&] {
    fired.push_back(1);
    loop.cancel(doomed);                                        // cancel a later event
    loop.schedule(Duration::millis(1), [&] { fired.push_back(3); });  // and add a new one
  });
  doomed = loop.schedule(Duration::millis(2), [&] { fired.push_back(2); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventLoopEdge, OwnEventIsNotPendingInsideItsCallback) {
  EventLoop loop;
  EventId self;
  bool pending_inside = true;
  self = loop.schedule(Duration::millis(1), [&] {
    pending_inside = self.pending();
    loop.cancel(self);  // cancelling yourself mid-flight is a no-op
  });
  loop.run();
  EXPECT_FALSE(pending_inside);
  EXPECT_EQ(loop.executed_events(), 1u);
}

TEST(EventLoopEdge, ZeroDelaySelfReschedulingOrder) {
  // Zero-delay events run at the same instant but strictly after anything
  // already queued for that instant (sequence order), and a zero-delay
  // chain makes progress in insertion order.
  EventLoop loop;
  std::vector<char> order;
  loop.schedule(Duration::millis(1), [&] {
    order.push_back('a');
    loop.schedule(Duration::zero(), [&] {
      order.push_back('c');
      loop.schedule(Duration::zero(), [&] { order.push_back('d'); });
    });
  });
  loop.schedule(Duration::millis(1), [&] { order.push_back('b'); });
  loop.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c', 'd'}));
  EXPECT_DOUBLE_EQ(loop.now().sec(), 0.001);
}

// --- reschedule (in-place re-arm) ------------------------------------------

TEST(EventLoopEdge, RescheduleMovesDeadlineAndInvalidatesOldHandles) {
  EventLoop loop;
  int fired = 0;
  EventId original = loop.schedule(Duration::millis(10), [&] { ++fired; });
  EventId copy = original;
  EventId moved = loop.reschedule(original, Duration::millis(50));
  EXPECT_FALSE(copy.pending());  // pre-move handles are stale...
  EXPECT_TRUE(moved.pending());  // ...the replacement is live
  loop.cancel(copy);             // stale cancel must not touch the moved event
  EXPECT_TRUE(moved.pending());
  loop.run_until(SimTime::zero() + Duration::millis(20));
  EXPECT_EQ(fired, 0);  // the old deadline no longer exists
  loop.run();
  EXPECT_EQ(fired, 1);  // the callback survived the move and fired once
  EXPECT_DOUBLE_EQ(loop.now().sec(), 0.050);
}

TEST(EventLoopEdge, RescheduleOrdersAsIfFreshlyScheduled) {
  // reschedule is documented as cancel + schedule with the same callback:
  // on a deadline tie, a rescheduled event must fire AFTER an event that
  // was scheduled for that instant before the move.
  EventLoop loop;
  std::vector<int> order;
  EventId moved = loop.schedule(Duration::millis(1), [&] { order.push_back(1); });
  loop.schedule(Duration::millis(30), [&] { order.push_back(2); });
  (void)loop.reschedule(moved, Duration::millis(30));  // tie with event 2, later seq
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventLoopEdge, RescheduleAcrossStoresKeepsOrderAndCounts) {
  // Move an event back and forth between heap residency (sub-tick delays)
  // and wheel residency (tens of ms) — counts and firing must be exact.
  EventLoop loop;
  int fired = 0;
  EventId id = loop.schedule(Duration::micros(5), [&] { ++fired; });  // heap
  id = loop.reschedule(id, Duration::millis(20));                     // wheel
  id = loop.reschedule(id, Duration::micros(5));                      // heap again
  id = loop.reschedule(id, Duration::millis(40));                     // wheel again
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now().sec(), 0.040);
  EXPECT_EQ(loop.pending_events(), 0u);
}

// --- tombstones & compaction -----------------------------------------------

TEST(EventLoopEdge, PendingCountIsAccurateUnderTombstones) {
  EventLoop loop;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(loop.schedule(Duration::millis(10 + i), [] {}));
  }
  for (int i = 0; i < 60; ++i) loop.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(loop.pending_events(), 40u);
  loop.run();
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.executed_events(), 40u);
}

TEST(EventLoopEdge, CancelHeavyWorkloadKeepsHeapBounded) {
  // The retry-timer pattern: every tick arms timeouts far in the future and
  // cancels the previous tick's. Before compaction existed, the heap grew
  // by ~8 tombstones per tick for the whole timeout window.
  EventLoop loop;
  std::vector<EventId> armed;
  armed.reserve(8);
  int ticks = 0;
  std::size_t max_heap = 0;
  struct Driver {
    EventLoop* loop;
    std::vector<EventId>* armed;
    int* ticks;
    std::size_t* max_heap;
    void operator()() const {
      for (EventId& id : *armed) loop->cancel(id);
      armed->clear();
      for (int i = 0; i < 8; ++i) {
        armed->push_back(loop->schedule(Duration::millis(10), [] {}));
      }
      *max_heap = std::max(*max_heap, loop->heap_size());
      if (++*ticks < 5000) loop->schedule(Duration::micros(1), Driver{*this});
    }
  };
  loop.schedule(Duration::micros(1), Driver{&loop, &armed, &ticks, &max_heap});
  loop.run();
  EXPECT_EQ(ticks, 5000);
  // Live events never exceed 9 (8 timers + driver); the compaction policy
  // bounds the heap at 2x live + the no-compact floor. Without compaction
  // this workload peaks at tens of thousands of entries.
  EXPECT_LE(max_heap, 2u * 9u + 64u);
}

TEST(EventLoopEdge, MassCancellationLeavesNoResidue) {
  // Timer-range deadlines (100 ms – 1.1 s) are wheel-resident; mass
  // cancellation must unlink them eagerly — no tombstones anywhere.
  EventLoop loop;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(loop.schedule(Duration::millis(100 + i), [] {}));
  }
  EXPECT_EQ(loop.wheel_size(), 1000u);
  EXPECT_EQ(loop.heap_size(), 0u);
  for (EventId& id : ids) loop.cancel(id);
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.wheel_size(), 0u);
  EXPECT_EQ(loop.heap_size(), 0u);
  loop.run();
  EXPECT_EQ(loop.executed_events(), 0u);
}

TEST(EventLoopEdge, MassCancellationCompactsTheHeap) {
  // Sub-tick deadlines stay heap-resident, so this is the compaction path:
  // everything is dead after the cancels, and the heap must have shrunk
  // below the no-compact floor instead of holding 1000 tombstones.
  EventLoop loop;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(loop.schedule(Duration::micros(1 + i % 16), [] {}));
  }
  EXPECT_EQ(loop.heap_size(), 1000u);
  for (EventId& id : ids) loop.cancel(id);
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_LT(loop.heap_size(), 64u);
  loop.run();
  EXPECT_EQ(loop.executed_events(), 0u);
}

TEST(EventLoopEdge, CompactionPreservesFiringOrder) {
  EventLoop loop;
  std::vector<int> fired;
  std::vector<EventId> doomed;
  // Interleave survivors and victims at identical times so the rebuilt heap
  // must preserve (time, seq) ordering exactly.
  for (int i = 0; i < 200; ++i) {
    const int tag = i;
    loop.schedule(Duration::millis(5 + (i % 3)), [&fired, tag] { fired.push_back(tag); });
    doomed.push_back(loop.schedule(Duration::millis(5 + (i % 3)), [] {}));
  }
  for (EventId& id : doomed) loop.cancel(id);  // triggers compaction mid-way
  loop.run();
  ASSERT_EQ(fired.size(), 200u);
  // Expected order: by (time, insertion seq) — i.e. all i%3==0 first in
  // insertion order, then i%3==1, then i%3==2.
  std::vector<int> expected;
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = phase; i < 200; i += 3) expected.push_back(i);
  }
  EXPECT_EQ(fired, expected);
}

// --- EventFn ---------------------------------------------------------------

TEST(EventFnTest, MoveTransfersAndEmptiesSource) {
  int calls = 0;
  EventFn a = [&calls] { ++calls; };
  EXPECT_TRUE(static_cast<bool>(a));
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): testing the contract
  b();
  EXPECT_EQ(calls, 1);
  b.reset();
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(EventFnTest, DestroysCapturesExactlyOnce) {
  struct Probe {
    int* dtors;
    Probe(int* d) : dtors(d) {}
    Probe(Probe&& o) noexcept : dtors(o.dtors) { o.dtors = nullptr; }
    Probe(const Probe&) = delete;
    ~Probe() {
      if (dtors != nullptr) ++*dtors;
    }
    void operator()() const {}
  };
  int dtors = 0;
  {
    EventFn f{Probe{&dtors}};
    EventFn g = std::move(f);
    (void)g;
  }
  EXPECT_EQ(dtors, 1);
}

// --- zero steady-state allocations -----------------------------------------

TEST(EventLoopEdge, SteadyStateScheduleCancelFireIsAllocationFree) {
  EventLoop loop;
  std::vector<EventId> ids;
  ids.reserve(64);
  long fired = 0;
  // Warm-up: grow the slab, heap, and this test's own vectors.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      ids.push_back(loop.schedule(Duration::millis(10), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 25; ++i) loop.cancel(ids[static_cast<std::size_t>(i)]);
    ids.clear();
    loop.run();
  }
  // Measured region: the same churn must not allocate at all.
#if SPEAKUP_AUDIT_ENABLED
  // Audit checkpoints may allocate scratch inside the measured region.
  GTEST_SKIP() << "zero-alloc guarantees are not measured in SPEAKUP_AUDIT builds";
#endif
  ASSERT_TRUE(util::AllocGuard::counting()) << "speakup_counted_new not linked";
  const util::AllocGuard guard;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 50; ++i) {
      ids.push_back(loop.schedule(Duration::millis(10), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 25; ++i) loop.cancel(ids[static_cast<std::size_t>(i)]);
    ids.clear();
    loop.run();
  }
  EXPECT_EQ(guard.delta(), 0) << "EventLoop schedule/cancel/fire allocated in steady state";
}

class Reflector : public net::Node {
 public:
  Reflector(net::Network& net, net::NodeId id, std::string name)
      : net::Node(net, id, std::move(name)) {}
  void on_packet(net::Packet p) override {
    if (!reply_) return;
    network().forward(id(), net::make_data_packet(id(), 1, p.src, 1, 0, 500));
  }
  void stop() { reply_ = false; }

 private:
  bool reply_ = true;
};

TEST(LinkHotPath, SteadyStatePacketPipelineIsAllocationFree) {
  EventLoop loop;
  net::Network net(loop);
  auto& a = net.add_node<Reflector>("a");
  auto& b = net.add_node<Reflector>("b");
  net.connect(a, b, net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(100), 1'000'000});
  net.build_routes();
  for (int i = 0; i < 8; ++i) {
    net.forward(a.id(), net::make_data_packet(a.id(), 1, b.id(), 1, 0, 500));
  }
  // Warm-up: let the link pool, queue ring, and heap reach steady state.
  loop.run_until(loop.now() + Duration::seconds(1.0));
  const std::uint64_t warm_events = loop.executed_events();
  // Measured region: a long steady-state stretch of the packet pipeline.
#if SPEAKUP_AUDIT_ENABLED
  // Audit checkpoints may allocate scratch inside the measured region.
  GTEST_SKIP() << "zero-alloc guarantees are not measured in SPEAKUP_AUDIT builds";
#endif
  ASSERT_TRUE(util::AllocGuard::counting()) << "speakup_counted_new not linked";
  const util::AllocGuard guard;
  loop.run_until(loop.now() + Duration::seconds(10.0));
  EXPECT_EQ(guard.delta(), 0) << "Link::transmit pipeline allocated in steady state";
  EXPECT_GT(loop.executed_events(), warm_events + 1000u);  // the region really ran traffic
  a.stop();
  b.stop();
  loop.run();
}

}  // namespace
}  // namespace speakup::sim
