// Figure 8: good and bad clients sharing a bottleneck link l.
//
// Topology (§7.6): 30 clients (mix varies) behind l (40 Mbit/s — they could
// generate 60), plus 10 good and 10 bad clients connected directly; every
// client has 2 Mbit/s; c = 50 requests/s. Metrics per mix:
//   - how the "bottleneck service" (the server share captured by clients
//     behind l) splits between the good and bad clients behind l, vs the
//     client-count-proportional ideal;
//   - the fraction of bottlenecked good requests served, vs an ideal that
//     scales each bottlenecked client to 2*(40/60) Mbit/s.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

namespace {

struct Mix {
  int good;
  int bad;
  [[nodiscard]] std::string label() const {
    return std::to_string(good) + "/" + std::to_string(bad);
  }
};

speakup::exp::ScenarioConfig scenario(const Mix& mix) {
  using namespace speakup;
  exp::ScenarioConfig cfg;
  cfg.mode = exp::DefenseMode::kAuction;
  cfg.capacity_rps = 50.0;
  cfg.seed = 27;
  cfg.duration = bench::experiment_duration();
  cfg.bottleneck =
      exp::BottleneckSpec{Bandwidth::mbps(40.0), Duration::micros(500), 100'000};

  exp::ClientGroupSpec direct_good;
  direct_good.label = "direct-good";
  direct_good.count = 10;
  direct_good.workload = client::good_client_params();
  cfg.groups.push_back(direct_good);

  exp::ClientGroupSpec direct_bad = direct_good;
  direct_bad.label = "direct-bad";
  direct_bad.workload = client::bad_client_params();
  cfg.groups.push_back(direct_bad);

  exp::ClientGroupSpec bn_good;
  bn_good.label = "bn-good";
  bn_good.count = mix.good;
  bn_good.workload = client::good_client_params();
  bn_good.behind_bottleneck = true;
  cfg.groups.push_back(bn_good);

  exp::ClientGroupSpec bn_bad;
  bn_bad.label = "bn-bad";
  bn_bad.count = mix.bad;
  bn_bad.workload = client::bad_client_params();
  bn_bad.behind_bottleneck = true;
  cfg.groups.push_back(bn_bad);
  return cfg;
}

}  // namespace

int main() {
  using namespace speakup;
  bench::print_banner("Figure 8", "good and bad clients sharing a bottleneck link");
  bench::print_paper_note(
      "the actual split of the bottleneck service is worse for good clients "
      "than the proportional ideal because bad clients 'hog' l with many "
      "concurrent connections");

  const Mix mixes[] = {{25, 5}, {15, 15}, {5, 25}};
  exp::Runner runner;
  for (const Mix& mix : mixes) runner.add(scenario(mix), mix.label());
  bench::run_all(runner);

  stats::Table table({"mix(bn-good/bn-bad)", "bn-share-good", "bn-share-bad",
                      "ideal-good", "ideal-bad", "frac-bn-good-served"});
  for (const Mix& mix : mixes) {
    const exp::ExperimentResult& r = runner.result(mix.label());
    const double bn_good_alloc = r.groups[2].allocation;
    const double bn_bad_alloc = r.groups[3].allocation;
    const double bn_total = bn_good_alloc + bn_bad_alloc;

    table.row()
        .add(mix.label())
        .add(bn_total > 0 ? bn_good_alloc / bn_total : 0.0, 3)
        .add(bn_total > 0 ? bn_bad_alloc / bn_total : 0.0, 3)
        .add(static_cast<double>(mix.good) / 30.0, 3)
        .add(static_cast<double>(mix.bad) / 30.0, 3)
        .add(r.groups[2].totals.fraction_served(), 3);
  }
  table.print(std::cout);
  return 0;
}
