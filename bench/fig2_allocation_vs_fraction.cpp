// Figure 2: server allocation to good clients as a function of their
// fraction f of the total client bandwidth. 50 clients x 2 Mbit/s on a LAN,
// c = 100 requests/s. Series: with speak-up, without speak-up, ideal (f).
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 2", "server allocation vs good clients' bandwidth fraction");
  bench::print_paper_note(
      "the speak-up series hugs the ideal line (good clients capture ~f of the "
      "server); without speak-up, bad clients at lambda=40, w=20 capture far more");

  const int kClients = 50;
  const double kCapacity = 100.0;
  std::vector<int> goods;
  for (int good = 5; good <= 45; good += 5) goods.push_back(good);

  exp::Runner runner;
  runner
      .sweep_good_fraction(kClients, goods, kCapacity, exp::DefenseMode::kNone,
                           bench::experiment_duration(), /*seed=*/21)
      .sweep_good_fraction(kClients, goods, kCapacity, exp::DefenseMode::kAuction,
                           bench::experiment_duration(), /*seed=*/21);
  bench::run_all(runner);

  stats::Table table({"f=G/(G+B)", "without-speakup", "with-speakup", "ideal"});
  for (const int good : goods) {
    const double f = static_cast<double>(good) / kClients;
    const std::string g = "/g" + std::to_string(good);
    table.row()
        .add(f, 2)
        .add(runner.result("none" + g).allocation_good, 3)
        .add(runner.result("auction" + g).allocation_good, 3)
        .add(core::theory::ideal_good_allocation(f, 1.0 - f), 3);
  }
  table.print(std::cout);
  return 0;
}
