// The flight recorder and metrics registry, unit and end to end:
//
//   - ring semantics: bounded capacity, oldest-first retention, wraparound
//     keeps the *latest* window;
//   - export: Chrome trace-event JSON that util::json parses back — 'X'
//     complete events for spans (they survive wraparound; B/E pairs would
//     not), 'i' instants, microsecond timestamps, per-track tids;
//   - registry: counters/gauges/histograms, interval sampling, duplicate
//     names rejected;
//   - a traced + metered smoke run produces a valid non-empty trace;
//   - end to end against the real binary (SPEAKUP_CLI_BIN): `speakup run
//     --trace --metrics` emits byte-identical artifacts at --jobs 1 and
//     --jobs 3 — telemetry is rendered inside each worker and assembled in
//     job-index order, so thread scheduling cannot reorder it.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/experiment.hpp"
#include "exp/scenario_io.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/tracer.hpp"
#include "util/json.hpp"

namespace speakup::obs {
namespace {

using util::json::Value;

// --- ring semantics --------------------------------------------------------

TEST(Tracer, RetainsEverythingBeforeWraparound) {
  Tracer t(8);
  for (int i = 0; i < 5; ++i) {
    t.instant("e", "test", SimTime::from_ns(i), 0);
  }
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.recorded(), 5u);
  EXPECT_FALSE(t.wrapped());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t.event(i).ts_ns, static_cast<std::int64_t>(i));
  }
}

TEST(Tracer, WraparoundKeepsTheLatestWindowOldestFirst) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i) {
    t.instant("e", "test", SimTime::from_ns(i), 0);
  }
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_TRUE(t.wrapped());
  // The four retained events are 6, 7, 8, 9 — the flight-recorder window.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.event(i).ts_ns, static_cast<std::int64_t>(6 + i));
  }
}

// --- export ----------------------------------------------------------------

TEST(Tracer, ExportsSpansAndInstantsAsValidChromeJson) {
  Tracer t;
  // An outer request span with a nested payment span on the same track
  // (Perfetto nests 'X' events by containment), plus an instant with an arg.
  t.span("request", "client", SimTime::from_ns(1'000'000), Duration::millis(30), 3,
         "disposition", 0.0);
  t.span("payment", "client", SimTime::from_ns(5'000'000), Duration::millis(10), 3);
  t.instant("auction_clear", "core", SimTime::from_ns(2'000'000), 0, "price", 42.5);

  const std::string doc_text = t.chrome_trace_json(/*pid=*/7);
  Value doc = util::json::parse(doc_text);
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 3u);

  const Value& request = events->as_array()[0];
  EXPECT_EQ(request.find("name")->as_string(), "request");
  EXPECT_EQ(request.find("cat")->as_string(), "client");
  EXPECT_EQ(request.find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(request.find("ts")->as_number(), 1000.0);   // us
  EXPECT_DOUBLE_EQ(request.find("dur")->as_number(), 30000.0);  // us
  EXPECT_DOUBLE_EQ(request.find("pid")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(request.find("tid")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(request.find("args")->find("disposition")->as_number(), 0.0);

  const Value& payment = events->as_array()[1];
  EXPECT_EQ(payment.find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(payment.find("ts")->as_number(), 5000.0);
  EXPECT_DOUBLE_EQ(payment.find("tid")->as_number(), 3.0);

  const Value& clear = events->as_array()[2];
  EXPECT_EQ(clear.find("ph")->as_string(), "i");
  EXPECT_EQ(clear.find("s")->as_string(), "t");
  EXPECT_EQ(clear.find("dur"), nullptr);
  EXPECT_DOUBLE_EQ(clear.find("args")->find("price")->as_number(), 42.5);
}

// --- registry --------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistogramsAndSampling) {
  MetricsRegistry reg;
  const MetricId c = reg.add_counter("test.count");
  double level = 1.5;
  reg.add_gauge("test.level", [&level] { return level; });
  const MetricId h = reg.add_histogram("test.size");
  reg.enable_sampling(Duration::seconds(1.0));

  reg.inc(c);
  reg.inc(c, 4);
  EXPECT_EQ(reg.counter_value(c), 5);
  reg.observe(h, 3.0);
  reg.observe(h, 100.0);
  reg.sample(SimTime::from_ns(1'000'000'000));
  level = 9.0;
  reg.inc(c, 2);
  reg.sample(SimTime::from_ns(2'000'000'000));

  const Value summary = reg.summary_json();
  EXPECT_DOUBLE_EQ(summary.find("test.count")->find("value")->as_number(), 7.0);
  EXPECT_EQ(summary.find("test.count")->find("type")->as_string(), "counter");
  EXPECT_DOUBLE_EQ(summary.find("test.level")->find("value")->as_number(), 9.0);
  const Value* hist = summary.find("test.size");
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_number(), 103.0);
  EXPECT_DOUBLE_EQ(hist->find("min")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(hist->find("max")->as_number(), 100.0);

  // Counter samples are deltas per interval: 5 then 2.
  std::string csv;
  reg.append_timeseries_csv(csv, "p,");
  EXPECT_NE(csv.find("p,test.count,1,5\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("p,test.count,2,2\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("p,test.level,2,9\n"), std::string::npos) << csv;
}

TEST(MetricsRegistry, DuplicateNamesAreRejected) {
  MetricsRegistry reg;
  reg.add_counter("dup");
  EXPECT_THROW(reg.add_histogram("dup"), std::invalid_argument);
}

// --- a traced smoke run ----------------------------------------------------

TEST(Tracer, SmokeRunProducesValidNonEmptyTrace) {
  const exp::ScenarioFile file = exp::load_scenario_file(
      std::string(SPEAKUP_SCENARIO_DIR) + "/smoke.json");
  Observer::Options opts;
  opts.metrics = true;
  opts.trace = true;
  exp::Experiment e(file.scenarios[2].config);  // smoke/auction
  Observer ob(e.loop(), opts);
  (void)e.run();
  ob.finish();

  ASSERT_GT(ob.tracer().size(), 0u);
  Value doc = util::json::parse(ob.tracer().chrome_trace_json());
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->as_array().empty());
  for (const Value& ev : events->as_array()) {
    ASSERT_NE(ev.find("name"), nullptr);
    const std::string ph = ev.find("ph")->as_string();
    ASSERT_TRUE(ph == "X" || ph == "i") << ph;
    if (ph == "X") {
      ASSERT_NE(ev.find("dur"), nullptr);
    }
    ASSERT_GE(ev.find("ts")->as_number(), 0.0);
  }
  // The auction run must have recorded admissions and request spans.
  const Value summary = ob.metrics().summary_json();
  EXPECT_GT(summary.find("core.auctions")->find("value")->as_number(), 0.0);
  EXPECT_GT(summary.find("client.requests_served")->find("value")->as_number(), 0.0);
}

// --- end to end: --jobs invariance of every telemetry artifact --------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TracerE2E, TelemetryArtifactsAreByteIdenticalAcrossJobs) {
  char tmpl[] = "/tmp/speakup_obs_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string scenario = std::string(SPEAKUP_SCENARIO_DIR) + "/smoke.json";

  for (const int jobs : {1, 3}) {
    const std::string tag = dir + "/j" + std::to_string(jobs);
    const std::string cmd = std::string(SPEAKUP_CLI_BIN) + " run " + scenario +
                            " --out " + tag + ".csv --metrics " + tag +
                            ".json --trace " + tag + ".trace.json --jobs " +
                            std::to_string(jobs) + " --quiet";
    const int status = std::system(cmd.c_str());
    ASSERT_TRUE(status != -1 && WIFEXITED(status) && WEXITSTATUS(status) == 0) << cmd;
  }

  const std::string trace1 = read_file(dir + "/j1.trace.json");
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, read_file(dir + "/j3.trace.json"));
  EXPECT_EQ(read_file(dir + "/j1.json"), read_file(dir + "/j3.json"));
  EXPECT_EQ(read_file(dir + "/j1.timeseries.csv"), read_file(dir + "/j3.timeseries.csv"));
  EXPECT_EQ(read_file(dir + "/j1.csv"), read_file(dir + "/j3.csv"));

  // The trace and metrics documents parse, and metrics.json covers all six
  // smoke scenarios.
  Value trace = util::json::parse(trace1);
  ASSERT_NE(trace.find("traceEvents"), nullptr);
  EXPECT_FALSE(trace.find("traceEvents")->as_array().empty());
  Value metrics = util::json::parse(read_file(dir + "/j1.json"));
  ASSERT_NE(metrics.find("runs"), nullptr);
  EXPECT_EQ(metrics.find("runs")->as_array().size(), 6u);

  const std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
}

}  // namespace
}  // namespace speakup::obs
