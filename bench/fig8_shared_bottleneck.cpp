// Figure 8: good and bad clients sharing a bottleneck link l.
//
// Topology (§7.6): 30 clients (mix varies) behind l (40 Mbit/s — they could
// generate 60), plus 10 good and 10 bad clients connected directly; every
// client has 2 Mbit/s; c = 50 requests/s. Metrics per mix:
//   - how the "bottleneck service" (the server share captured by clients
//     behind l) splits between the good and bad clients behind l, vs the
//     client-count-proportional ideal;
//   - the fraction of bottlenecked good requests served, vs an ideal that
//     scales each bottlenecked client to 2*(40/60) Mbit/s.
//
// The grid lives in scenarios/shared_bottleneck.json (one scenario per
// mix, labeled "good/bad"); `speakup run` on that file reproduces these
// numbers exactly.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

namespace {

struct Mix {
  int good;
  int bad;
  [[nodiscard]] std::string label() const {
    return std::to_string(good) + "/" + std::to_string(bad);
  }
};

}  // namespace

int main() {
  using namespace speakup;
  bench::print_banner("Figure 8", "good and bad clients sharing a bottleneck link");
  bench::print_paper_note(
      "the actual split of the bottleneck service is worse for good clients "
      "than the proportional ideal because bad clients 'hog' l with many "
      "concurrent connections");

  exp::ScenarioFile file = bench::load_scenarios("shared_bottleneck.json");
  bench::apply_full_duration(file);
  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  const Mix mixes[] = {{25, 5}, {15, 15}, {5, 25}};
  stats::Table table({"mix(bn-good/bn-bad)", "bn-share-good", "bn-share-bad",
                      "ideal-good", "ideal-bad", "frac-bn-good-served"});
  for (const Mix& mix : mixes) {
    const exp::ExperimentResult& r = runner.result(mix.label());
    const double bn_good_alloc = r.groups[2].allocation;
    const double bn_bad_alloc = r.groups[3].allocation;
    const double bn_total = bn_good_alloc + bn_bad_alloc;

    table.row()
        .add(mix.label())
        .add(bn_total > 0 ? bn_good_alloc / bn_total : 0.0, 3)
        .add(bn_total > 0 ? bn_bad_alloc / bn_total : 0.0, 3)
        .add(static_cast<double>(mix.good) / 30.0, 3)
        .add(static_cast<double>(mix.bad) / 30.0, 3)
        .add(r.groups[2].totals.fraction_served(), 3);
  }
  table.print(std::cout);
  return 0;
}
