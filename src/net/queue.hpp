// Drop-tail FIFO queue attached to each link direction.
//
// Capacity is in bytes (wire size). An arriving packet that does not fit is
// dropped — the only loss mechanism in the simulator, as in a real drop-tail
// router. Drop and occupancy counters feed the experiment reports.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.hpp"
#include "util/assert.hpp"

namespace speakup::net {

class DropTailQueue {
 public:
  explicit DropTailQueue(Bytes capacity_bytes) : capacity_(capacity_bytes) {
    SPEAKUP_ASSERT(capacity_bytes > 0);
  }

  /// Attempts to enqueue; returns false (and counts a drop) on overflow.
  bool push(Packet p) {
    if (occupancy_ + p.wire_size > capacity_) {
      ++drops_;
      dropped_bytes_ += p.wire_size;
      return false;
    }
    occupancy_ += p.wire_size;
    ++enqueued_;
    q_.push_back(std::move(p));
    return true;
  }

  /// Removes and returns the head packet; empty queue yields nullopt.
  std::optional<Packet> pop() {
    if (q_.empty()) return std::nullopt;
    Packet p = std::move(q_.front());
    q_.pop_front();
    occupancy_ -= p.wire_size;
    SPEAKUP_ASSERT(occupancy_ >= 0);
    return p;
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size_packets() const { return q_.size(); }
  [[nodiscard]] Bytes size_bytes() const { return occupancy_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t drops() const { return drops_; }
  [[nodiscard]] Bytes dropped_bytes() const { return dropped_bytes_; }
  [[nodiscard]] std::int64_t enqueued() const { return enqueued_; }

 private:
  Bytes capacity_;
  Bytes occupancy_ = 0;
  std::int64_t drops_ = 0;
  Bytes dropped_bytes_ = 0;
  std::int64_t enqueued_ = 0;
  std::deque<Packet> q_;
};

}  // namespace speakup::net
