// Owns MessageStreams and destroys them safely.
//
// A MessageStream must not be torn down while one of its callbacks is on
// the stack (the callback object lives in the TcpConnection). The pool
// therefore defers retirement to the next event-loop tick. Both the thinner
// and the clients use a pool for every stream they create or accept.
//
// Storage is a chunked slab of in-place streams with stable addresses:
// adopt() rebinds a parked stream from the free list (keeping its outbox
// ring capacity) instead of heap-allocating, and retire() parks the slot on
// the deferred tick instead of destroying it. After warm-up, stream churn —
// the dominant per-request cost at 10^5-client scale — touches the
// allocator not at all.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "http/message_stream.hpp"
#include "sim/event_loop.hpp"

namespace speakup::http {

class SessionPool {
 public:
  explicit SessionPool(sim::EventLoop& loop) : loop_(&loop) {}

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  ~SessionPool() {
    for (std::uint32_t id = 0; id < states_.size(); ++id) {
      // A park event left pending would fire into a dead pool.
      if (states_[id] == State::kRetiring) loop_->cancel(park_ev_[id]);
      if (states_[id] != State::kEmpty) stream_at(id)->~MessageStream();
    }
  }

  /// Wraps `conn` in a MessageStream owned by this pool. The reference is
  /// stable until retire().
  MessageStream& adopt(transport::TcpConnection& conn) {
    if (!free_.empty()) {
      const std::uint32_t id = free_.back();
      free_.pop_back();
      states_[id] = State::kLive;
      ++live_;
      MessageStream* s = stream_at(id);
      s->rebind(conn);
      return *s;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(states_.size());
    if (id % kChunk == 0) add_chunk();
    states_.push_back(State::kLive);
    park_ev_.emplace_back();
    ++live_;
    return *::new (static_cast<void*>(stream_at(id))) MessageStream(conn);
  }

  /// Aborts the stream's connection (if alive) and parks the slot for reuse
  /// on the next tick (the caller may be inside one of s's callbacks).
  void retire(MessageStream* s) {
    if (s == nullptr) return;
    const std::uint32_t id = slot_of(s);
    if (id == kNoSlot || states_[id] != State::kLive) return;  // already retired
    s->abort();
    states_[id] = State::kRetiring;
    --live_;
    park_ev_[id] = loop_->schedule(Duration::zero(), [this, id] {
      states_[id] = State::kParked;
      free_.push_back(id);
    });
  }

  [[nodiscard]] std::size_t live() const { return live_; }

 private:
  enum class State : std::uint8_t { kEmpty, kLive, kRetiring, kParked };

  static constexpr std::size_t kChunk = 64;
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  struct alignas(MessageStream) RawSlot {
    std::byte bytes[sizeof(MessageStream)];
  };

  [[nodiscard]] MessageStream* stream_at(std::uint32_t id) {
    return std::launder(reinterpret_cast<MessageStream*>(
        &chunks_[id / kChunk][id % kChunk]));
  }

  void add_chunk() {
    chunks_.push_back(std::make_unique<RawSlot[]>(kChunk));
    const auto idx = static_cast<std::uint32_t>(chunks_.size() - 1);
    const RawSlot* base = chunks_.back().get();
    const auto at = std::upper_bound(
        bases_.begin(), bases_.end(), base,
        [](const RawSlot* b, const auto& e) { return b < e.first; });
    bases_.insert(at, {base, idx});
  }

  /// Maps a stream pointer back to its slot id (kNoSlot for foreign
  /// pointers): binary search over the sorted chunk base addresses.
  [[nodiscard]] std::uint32_t slot_of(const MessageStream* s) const {
    const auto* p = reinterpret_cast<const RawSlot*>(s);
    auto it = std::upper_bound(bases_.begin(), bases_.end(), p,
                               [](const RawSlot* b, const auto& e) { return b < e.first; });
    if (it == bases_.begin()) return kNoSlot;
    --it;
    const std::ptrdiff_t off = p - it->first;
    if (off < 0 || off >= static_cast<std::ptrdiff_t>(kChunk)) return kNoSlot;
    return it->second * static_cast<std::uint32_t>(kChunk) +
           static_cast<std::uint32_t>(off);
  }

  sim::EventLoop* loop_;
  std::vector<std::unique_ptr<RawSlot[]>> chunks_;
  std::vector<std::pair<const RawSlot*, std::uint32_t>> bases_;  // sorted by address
  std::vector<State> states_;       // indexed by slot id
  std::vector<sim::EventId> park_ev_;  // pending park event per retiring slot
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

}  // namespace speakup::http
