// Client side of the payment channel (§3.3, §6).
//
// Mirrors the paper's JavaScript: each POST is a fresh connection carrying
// kPayOpen + a post_size body of dummy bytes. When the thinner consumes a
// full POST it replies kPostContinue and the client starts the next POST on
// a new connection — reproducing the two artifacts the paper analyzes in
// §3.4/§7.5: a ~2-RTT quiescent gap between POSTs, and TCP slow start for
// every POST.
#pragma once

#include <cstdint>
#include <functional>

#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "transport/host.hpp"

namespace speakup::client {

class PaymentChannelClient {
 public:
  struct Config {
    net::NodeId thinner = net::kInvalidNode;
    std::uint32_t payment_port = 81;
    Bytes post_size = megabytes(1);
  };

  PaymentChannelClient(transport::Host& host, http::SessionPool& pool, const Config& cfg,
                       std::uint64_t request_id, http::ClientClass cls)
      : host_(&host), pool_(&pool), cfg_(cfg), request_id_(request_id), cls_(cls) {}

  PaymentChannelClient(const PaymentChannelClient&) = delete;
  PaymentChannelClient& operator=(const PaymentChannelClient&) = delete;
  ~PaymentChannelClient() { stop(); }

  /// Fired when the thinner terminates the channel with kWin.
  void set_on_win(std::function<void()> cb) { on_win_ = std::move(cb); }

  void start() {
    if (!stopped_ && stream_ == nullptr) open_channel();
  }

  /// Stops paying and closes the current channel.
  void stop() {
    stopped_ = true;
    close_current();
  }

  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] std::int64_t posts_completed() const { return posts_completed_; }

  /// Dummy bytes delivered end-to-end (acked), summed over all channels.
  [[nodiscard]] Bytes bytes_acked() const {
    Bytes total = acked_previous_;
    if (stream_ != nullptr && stream_->connection() != nullptr) {
      total += stream_->connection()->bytes_acked();
    }
    return total;
  }

 private:
  void open_channel() {
    transport::TcpConnection& conn = host_->connect(cfg_.thinner, cfg_.payment_port);
    stream_ = &pool_->adopt(conn);
    http::MessageStream::Callbacks cbs;
    cbs.on_established = [this] {
      if (stream_ == nullptr) return;
      stream_->send(http::Message{.type = http::MessageType::kPayOpen,
                                  .request_id = request_id_,
                                  .cls = cls_});
      stream_->send(http::Message{.type = http::MessageType::kPostData,
                                  .request_id = request_id_,
                                  .body = cfg_.post_size,
                                  .cls = cls_});
    };
    cbs.on_message = [this](const http::Message& m) { on_message(m); };
    cbs.on_reset = [this] {
      // Channel killed by the thinner (eviction) or the network. The owning
      // request's timeout decides what happens next; we just stop.
      stream_ = nullptr;
      stopped_ = true;
    };
    stream_->set_callbacks(std::move(cbs));
  }

  void on_message(const http::Message& m) {
    switch (m.type) {
      case http::MessageType::kPostContinue:
        ++posts_completed_;
        // Next POST on a fresh connection (fresh slow start, ~2 RTT gap).
        close_current();
        if (!stopped_) open_channel();
        break;
      case http::MessageType::kWin: {
        stopped_ = true;
        close_current();
        if (on_win_) on_win_();
        break;
      }
      default:
        break;
    }
  }

  void close_current() {
    if (stream_ != nullptr) {
      if (stream_->connection() != nullptr) {
        acked_previous_ += stream_->connection()->bytes_acked();
      }
      http::MessageStream* s = stream_;
      stream_ = nullptr;
      pool_->retire(s);
    }
  }

  transport::Host* host_;
  http::SessionPool* pool_;
  Config cfg_;
  std::uint64_t request_id_;
  http::ClientClass cls_;
  std::function<void()> on_win_;
  http::MessageStream* stream_ = nullptr;
  bool stopped_ = false;
  std::int64_t posts_completed_ = 0;
  Bytes acked_previous_ = 0;
};

}  // namespace speakup::client
