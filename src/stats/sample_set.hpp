// Stores raw samples for exact percentile queries (payment times, download
// latencies). Experiments here produce at most a few hundred thousand
// samples, so exact storage beats a sketch in both simplicity and fidelity.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "stats/online_stats.hpp"
#include "util/assert.hpp"

namespace speakup::stats {

class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    summary_.add(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const { return summary_.sum(); }
  [[nodiscard]] double mean() const { return summary_.mean(); }
  [[nodiscard]] double stddev() const { return summary_.stddev(); }
  [[nodiscard]] double min() const { return summary_.min(); }
  [[nodiscard]] double max() const { return summary_.max(); }
  [[nodiscard]] const OnlineStats& summary() const { return summary_; }

  /// Exact percentile (nearest-rank). q in [0, 1]. Empty set -> 0.
  [[nodiscard]] double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    SPEAKUP_ASSERT(q >= 0.0 && q <= 1.0);
    sort_if_needed();
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(rank, samples_.size() - 1)];
  }

  [[nodiscard]] double median() const { return percentile(0.5); }

  void merge(const SampleSet& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
    summary_.merge(o.summary_);
    sorted_ = false;
  }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  OnlineStats summary_;
};

}  // namespace speakup::stats
