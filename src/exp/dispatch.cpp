#include "exp/dispatch.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exp/result_writer.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "exp/work_queue.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace speakup::exp {

namespace json = util::json;

namespace {

using Clock = std::chrono::steady_clock;

std::string flatten(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string slice_csv_path(const std::string& work_dir, int slice) {
  return work_dir + "/slice_" + std::to_string(slice) + ".csv";
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Durable file write: tmp file + fsync + atomic rename, so a kill -9 at
/// any instant leaves either the old file or the complete new one — never
/// a truncated slice CSV for a resumed dispatcher to trip over.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp." + std::to_string(getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot write '" + tmp + "'");
  const bool wrote =
      content.empty() || std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool flushed = std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!wrote || !flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot write '" + path + "'");
  }
}

// ---------------------------------------------------------------------------
// Fault injection (tests/dispatch_test.cpp and CI only).
//
// SPEAKUP_WORKER_FAULT="kill:<slice>:<token>" makes the first worker that
// is assigned <slice> SIGKILL itself mid-assignment; "stall:..." makes it
// accept the slice and then go silent (no heartbeats) forever. The token
// file is claimed with O_EXCL so exactly one worker triggers the fault —
// the retry then runs clean. SPEAKUP_DISPATCH_FAULT="exit-after-done:<k>"
// makes the dispatcher _Exit(32) right after journaling its k-th completed
// slice, simulating a kill -9 of the coordinator for the --resume tests.
// ---------------------------------------------------------------------------

struct WorkerFault {
  std::string action;  // "kill" | "stall"
  int slice = -1;
  std::string token;
};

std::optional<WorkerFault> worker_fault_from_env() {
  const char* env = std::getenv("SPEAKUP_WORKER_FAULT");
  if (env == nullptr || *env == '\0') return std::nullopt;
  const std::string spec(env);
  const std::size_t c1 = spec.find(':');
  const std::size_t c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
  if (c2 == std::string::npos) return std::nullopt;
  WorkerFault f;
  f.action = spec.substr(0, c1);
  try {
    f.slice = std::stoi(spec.substr(c1 + 1, c2 - c1 - 1));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  f.token = spec.substr(c2 + 1);
  return f;
}

/// Claims the fault token; true for exactly one process across the sweep.
bool claim_fault_token(const std::string& token) {
  const int fd = ::open(token.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

int dispatch_fault_after_done() {
  const char* env = std::getenv("SPEAKUP_DISPATCH_FAULT");
  if (env == nullptr) return -1;
  const std::string spec(env);
  const std::string prefix = "exit-after-done:";
  if (spec.rfind(prefix, 0) != 0) return -1;
  try {
    return std::stoi(spec.substr(prefix.size()));
  } catch (const std::exception&) {
    return -1;
  }
}

// ---------------------------------------------------------------------------
// Worker side: `speakup worker SCENARIO WORKDIR HEARTBEAT_MS`.
// ---------------------------------------------------------------------------

/// All worker->dispatcher traffic is whole lines on stdout; the heartbeat
/// thread and the slice loop share this writer.
class LineOut {
 public:
  void emit(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

 private:
  std::mutex mu_;
};

void worker_run_slice(const ScenarioFile& file, int slice_id, int slice_count,
                      const std::string& work_dir, int heartbeat_ms, LineOut& out) {
  try {
    const std::vector<LabeledScenario> slice = file.shard(slice_id, slice_count);
    out.emit("start " + std::to_string(slice_id));

    std::atomic<std::size_t> rows_done{0};
    std::atomic<std::uint64_t> events{0};
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    const auto interval = std::chrono::milliseconds(std::max(10, heartbeat_ms / 3));
    std::thread heartbeat([&] {
      std::unique_lock<std::mutex> lock(mu);
      while (!cv.wait_for(lock, interval, [&] { return stop; })) {
        out.emit("hb " + std::to_string(slice_id) + " " +
                 std::to_string(rows_done.load()) + " " + std::to_string(slice.size()) +
                 " " + std::to_string(events.load()));
      }
    });

    // One scenario at a time: parallelism comes from sibling workers, and
    // per-scenario granularity is what heartbeats report progress in.
    // Scenario-level failures become error rows in the CSV — exactly what
    // a single-process `speakup run` would persist — so a deterministic
    // bad scenario never burns the slice's retry budget.
    ResultWriter writer;
    for (const LabeledScenario& s : slice) {
      Runner runner;
      runner.add(s.config, s.label);
      runner.run_all(1);
      const RunOutcome& o = runner.outcomes()[0];
      writer.add(s.index, o);
      if (o.ok()) events += o.result.events_executed;
      ++rows_done;
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    heartbeat.join();

    std::ostringstream os;
    writer.write_csv(os);
    write_file_atomic(slice_csv_path(work_dir, slice_id), os.str());
    out.emit("done " + std::to_string(slice_id) + " " + std::to_string(slice.size()) +
             " " + std::to_string(events.load()));
  } catch (const std::exception& e) {
    out.emit("fail " + std::to_string(slice_id) + " " + flatten(e.what()));
  }
}

}  // namespace

int run_worker(const std::string& scenario_path, const std::string& work_dir,
               int heartbeat_ms) {
  // The dispatcher may die first; a write to the closed pipe should end
  // this worker quietly via EOF handling, not SIGPIPE noise... except that
  // SIGPIPE death *is* the quiet exit here: default disposition is fine.
  LineOut out;
  ScenarioFile file;
  try {
    file = load_scenario_file(scenario_path);
  } catch (const std::exception& e) {
    out.emit("fail -1 " + flatten(e.what()));
    return 2;
  }
  out.emit("ready");

  const std::optional<WorkerFault> fault = worker_fault_from_env();
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "exit") break;
    int slice_id = -1;
    int slice_count = 0;
    if (std::sscanf(line.c_str(), "slice %d %d", &slice_id, &slice_count) != 2) {
      out.emit("fail -1 unknown command: " + flatten(line));
      return 2;
    }
    if (fault.has_value() && fault->slice == slice_id && claim_fault_token(fault->token)) {
      if (fault->action == "kill") {
        ::raise(SIGKILL);
      } else if (fault->action == "stall") {
        // Accept the slice, then never speak again: the dispatcher's
        // heartbeat timeout has to notice and requeue.
        out.emit("start " + std::to_string(slice_id));
        for (;;) ::pause();
      }
    }
    worker_run_slice(file, slice_id, slice_count, work_dir, heartbeat_ms, out);
  }
  return 0;
}

std::string dispatch_work_dir(const std::string& out_csv) { return out_csv + ".work"; }

// ---------------------------------------------------------------------------
// Dispatcher side.
// ---------------------------------------------------------------------------

namespace {

struct WorkerProc {
  int id = -1;
  pid_t pid = -1;
  int to_fd = -1;    // commands to the worker's stdin
  int from_fd = -1;  // protocol from the worker's stdout
  std::string buf;   // partial-line accumulator
  bool alive = false;
  bool ready = false;
  bool exiting = false;  // `exit` sent; EOF is expected, not a death
  int slice = -1;
  Clock::time_point last_seen;
  // Throughput tracking for the per-worker `metrics` status events: the
  // event/row counts at the last emitted metrics event, and when that was.
  std::uint64_t metric_events = 0;
  std::size_t metric_rows = 0;
  Clock::time_point metric_at;
  bool metric_primed = false;
};

class Dispatcher {
 public:
  explicit Dispatcher(const DispatchOptions& opts) : opts_(opts) {}

  DispatchReport run();

 private:
  enum class View { kTty, kPlain, kJson };

  void prepare_work_dir();
  void validate_resumable_slices();
  void spawn_worker();
  void ensure_workers();
  void pump_assignments();
  void handle_line(WorkerProc& w, const std::string& line);
  void worker_metrics(WorkerProc& w, int slice, std::size_t rows_done,
                      std::size_t rows, std::uint64_t events);
  void worker_gone(WorkerProc& w, const std::string& reason);
  void kill_worker(WorkerProc& w, const std::string& reason);
  void requeue_slice(WorkerProc& w, const std::string& reason);
  void absorb_slice_csv(int slice, const std::string& csv);
  void shutdown_workers();
  void finalize();

  // Status plumbing.
  [[nodiscard]] View view() const;
  void event(const std::string& plain_text, json::Value json_event);
  void progress(bool force);
  [[nodiscard]] json::Value progress_json() const;
  [[nodiscard]] std::string progress_tty() const;

  DispatchOptions opts_;
  DispatchReport report_;
  ScenarioFile file_;
  int slice_count_ = 0;
  std::string work_dir_;
  // Expected (index, label) pairs per slice, for --resume validation.
  std::vector<std::vector<std::pair<std::size_t, std::string>>> expected_;
  std::optional<WorkQueue> queue_;
  SliceJournal journal_;
  std::vector<WorkerProc> workers_;
  std::string merged_csv_;  // incrementally merged completed slices
  int spawn_budget_ = 0;
  int fault_after_done_ = -1;
  int done_count_ = 0;
  Clock::time_point started_;
  Clock::time_point last_progress_;
  mutable std::size_t tty_width_ = 0;  // widest \r line yet, for clearing
};

DispatchReport Dispatcher::run() {
  ::signal(SIGPIPE, SIG_IGN);  // dead worker stdin writes return EPIPE instead
  if (opts_.out_csv.empty()) {
    throw std::runtime_error("dispatch needs --out FILE (slice CSVs and the journal "
                             "live next to it)");
  }
  if (opts_.exe.empty()) throw std::runtime_error("dispatch: no worker binary path");
  started_ = Clock::now();
  last_progress_ = started_ - std::chrono::hours(1);
  fault_after_done_ = dispatch_fault_after_done();

  file_ = load_scenario_file(opts_.scenario_path);
  const std::size_t total = file_.scenarios.size();
  report_.rows_total = total;

  slice_count_ = opts_.slices > 0 ? opts_.slices
                                  : 4 * std::max(1, opts_.workers);
  slice_count_ = std::clamp(slice_count_, 1, static_cast<int>(total));
  work_dir_ = dispatch_work_dir(opts_.out_csv);
  prepare_work_dir();
  report_.slices_total = slice_count_;

  expected_.assign(static_cast<std::size_t>(slice_count_), {});
  std::vector<std::size_t> rows_per_slice(static_cast<std::size_t>(slice_count_), 0);
  for (const LabeledScenario& s : file_.scenarios) {
    const std::size_t slice = s.index % static_cast<std::size_t>(slice_count_);
    expected_[slice].emplace_back(s.index, s.label);
    ++rows_per_slice[slice];
  }
  queue_.emplace(std::move(rows_per_slice), 1 + std::max(0, opts_.retries));

  if (opts_.resume) validate_resumable_slices();
  json::Value start;
  start.set("type", "start");
  start.set("scenario", opts_.scenario_path);
  start.set("rows", static_cast<double>(total));
  start.set("slices", slice_count_);
  start.set("workers", opts_.workers);
  start.set("resume", opts_.resume);
  start.set("resumed_slices", report_.slices_resumed);
  event("dispatch: " + opts_.scenario_path + ": " + std::to_string(total) +
            " row(s) in " + std::to_string(slice_count_) + " slice(s), " +
            std::to_string(opts_.workers) + " worker(s)" +
            (report_.slices_resumed > 0
                 ? ", " + std::to_string(report_.slices_resumed) + " slice(s) resumed"
                 : ""),
        std::move(start));

  spawn_budget_ = std::max(1, opts_.workers) +
                  slice_count_ * (1 + std::max(0, opts_.retries));
  ensure_workers();
  pump_assignments();

  const auto heartbeat_timeout = std::chrono::milliseconds(opts_.heartbeat_ms);
  while (!queue_->settled()) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      fds.push_back(pollfd{workers_[i].from_fd, POLLIN, 0});
      owner.push_back(i);
    }
    if (fds.empty()) {
      // No live workers but unsettled work: the spawn budget must be
      // spent. Surface every remaining slice as failed so we terminate.
      queue_->fail_pending("no workers left (spawn budget exhausted)");
      for (const Slice& s : queue_->slices()) {
        if (s.state == Slice::State::kFailed && !s.error.empty()) {
          report_.failures.push_back("slice " + std::to_string(s.id) + ": " + s.error);
        }
      }
      break;
    }
    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (n > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        WorkerProc& w = workers_[owner[i]];
        char chunk[4096];
        const ssize_t got = ::read(w.from_fd, chunk, sizeof chunk);
        if (got > 0) {
          w.buf.append(chunk, static_cast<std::size_t>(got));
          std::size_t nl;
          while ((nl = w.buf.find('\n')) != std::string::npos) {
            const std::string line = w.buf.substr(0, nl);
            w.buf.erase(0, nl + 1);
            handle_line(w, line);
          }
        } else {
          worker_gone(w, "worker exited");
        }
      }
    }
    const Clock::time_point now = Clock::now();
    for (WorkerProc& w : workers_) {
      if (w.alive && w.slice >= 0 && now - w.last_seen > heartbeat_timeout) {
        kill_worker(w, "heartbeat timeout (" + std::to_string(opts_.heartbeat_ms) +
                           " ms of silence)");
      }
    }
    ensure_workers();
    pump_assignments();
    progress(false);
  }

  shutdown_workers();
  finalize();
  return report_;
}

void Dispatcher::prepare_work_dir() {
  if (::mkdir(work_dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    throw std::runtime_error("dispatch: cannot create work directory '" + work_dir_ +
                             "'");
  }
  const std::string journal_path = work_dir_ + "/journal";
  if (opts_.resume) {
    const SliceJournal::Header h = SliceJournal::read_header(journal_path);
    if (h.scenario_count != file_.scenarios.size()) {
      throw std::runtime_error(
          "dispatch --resume: journal in '" + work_dir_ + "' was written for " +
          std::to_string(h.scenario_count) + " scenario(s), but '" +
          opts_.scenario_path + "' expands to " +
          std::to_string(file_.scenarios.size()) +
          " — it belongs to a different sweep");
    }
    if (opts_.slices > 0 && opts_.slices != h.slices) {
      throw std::runtime_error("dispatch --resume: journal used --slices " +
                               std::to_string(h.slices) + ", cannot resume with --slices " +
                               std::to_string(opts_.slices));
    }
    slice_count_ = h.slices;
    journal_ = SliceJournal::append_to(journal_path);
    journal_.note("resume");
    return;
  }
  // Fresh dispatch: clear any artifacts from a previous run of this --out.
  if (DIR* dir = ::opendir(work_dir_.c_str())) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "journal" || name.rfind("slice_", 0) == 0) {
        ::unlink((work_dir_ + "/" + name).c_str());
      }
    }
    ::closedir(dir);
  }
  SliceJournal::Header h;
  h.scenario_path = opts_.scenario_path;
  h.scenario_count = file_.scenarios.size();
  h.slices = slice_count_;
  journal_ = SliceJournal::create(journal_path, h);
}

void Dispatcher::validate_resumable_slices() {
  for (int i = 0; i < slice_count_; ++i) {
    const std::string csv = read_file_or_empty(slice_csv_path(work_dir_, i));
    if (csv.empty()) continue;
    ResultWriter::ResumeInfo info;
    try {
      info = ResultWriter::resume_info(csv);
    } catch (const std::exception&) {
      continue;  // not a valid slice CSV: re-run the slice
    }
    // Only a byte-complete artifact counts: every expected (index, label)
    // present, every row finished without error. Anything else re-runs.
    if (info.completed != expected_[static_cast<std::size_t>(i)]) continue;
    absorb_slice_csv(i, info.completed_csv);
    queue_->complete_resumed(i, 0);
    ++report_.slices_resumed;
  }
}

void Dispatcher::spawn_worker() {
  int to_pipe[2];
  int from_pipe[2];
  // O_CLOEXEC keeps one worker's pipe ends out of its siblings, so a
  // worker's stdin sees EOF as soon as this process exits — orphaned
  // workers terminate themselves instead of lingering.
  if (::pipe2(to_pipe, O_CLOEXEC) != 0 || ::pipe2(from_pipe, O_CLOEXEC) != 0) {
    throw std::runtime_error("dispatch: pipe() failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("dispatch: fork() failed");
  if (pid == 0) {
    ::dup2(to_pipe[0], STDIN_FILENO);    // dup2 clears O_CLOEXEC on the copy
    ::dup2(from_pipe[1], STDOUT_FILENO);
    const std::string hb = std::to_string(opts_.heartbeat_ms);
    ::execl(opts_.exe.c_str(), opts_.exe.c_str(), "worker", opts_.scenario_path.c_str(),
            work_dir_.c_str(), hb.c_str(), static_cast<char*>(nullptr));
    SPEAKUP_LOG_ERROR("dispatch: exec '%s' failed: %s", opts_.exe.c_str(),
                      std::strerror(errno));
    ::_exit(127);
  }
  ::close(to_pipe[0]);
  ::close(from_pipe[1]);
  WorkerProc w;
  w.id = static_cast<int>(workers_.size());
  w.pid = pid;
  w.to_fd = to_pipe[1];
  w.from_fd = from_pipe[0];
  w.alive = true;
  w.last_seen = Clock::now();
  workers_.push_back(w);
  ++report_.workers_spawned;
}

void Dispatcher::ensure_workers() {
  const int target = std::min(std::max(1, opts_.workers),
                              queue_->pending() + queue_->running());
  int alive = 0;
  for (const WorkerProc& w : workers_) alive += (w.alive && !w.exiting) ? 1 : 0;
  while (alive < target && report_.workers_spawned < spawn_budget_) {
    spawn_worker();
    ++alive;
  }
}

void Dispatcher::pump_assignments() {
  for (WorkerProc& w : workers_) {
    if (!w.alive || !w.ready || w.exiting || w.slice >= 0) continue;
    const int slice = queue_->claim(w.id);
    if (slice < 0) {
      if (queue_->settled()) {
        const std::string cmd = "exit\n";
        (void)!::write(w.to_fd, cmd.data(), cmd.size());
        w.exiting = true;
      }
      continue;  // idle standby: a running slice may yet be requeued
    }
    journal_.claim(slice, queue_->slice(slice).attempts, static_cast<int>(w.pid));
    const std::string cmd = "slice " + std::to_string(slice) + " " +
                            std::to_string(slice_count_) + "\n";
    w.slice = slice;
    w.last_seen = Clock::now();  // the heartbeat clock starts at assignment
    w.metric_primed = false;     // per-slice event counts restart at zero
    SPEAKUP_LOG_DEBUG("dispatch: slice %d -> worker %d", slice, w.id);
    if (::write(w.to_fd, cmd.data(), cmd.size()) != static_cast<ssize_t>(cmd.size())) {
      // The worker died between spawn and first assignment.
      worker_gone(w, "worker pipe closed");
    }
  }
}

void Dispatcher::handle_line(WorkerProc& w, const std::string& line) {
  w.last_seen = Clock::now();
  std::istringstream in(line);
  std::string kind;
  in >> kind;
  if (kind == "ready") {
    w.ready = true;
  } else if (kind == "start") {
    // informational; liveness already refreshed above
  } else if (kind == "hb") {
    int slice = -1;
    std::size_t rows_done = 0, rows = 0;
    std::uint64_t events = 0;
    in >> slice >> rows_done >> rows >> events;
    if (slice == w.slice && slice >= 0) {
      queue_->heartbeat(slice, rows_done, events);
      worker_metrics(w, slice, rows_done, rows, events);
    }
  } else if (kind == "done") {
    int slice = -1;
    std::size_t rows = 0;
    std::uint64_t events = 0;
    in >> slice >> rows >> events;
    if (slice != w.slice || slice < 0) return;  // stale line after a requeue race
    const std::string csv = read_file_or_empty(slice_csv_path(work_dir_, slice));
    w.slice = -1;
    if (csv.empty()) {
      // The worker claims completion but the artifact is missing: treat
      // like a failure so the slice is retried.
      ++report_.requeues;
      journal_.fail(slice, queue_->slice(slice).attempts, "slice CSV missing after done");
      if (!queue_->requeue(slice, "slice CSV missing after done")) {
        report_.failures.push_back("slice " + std::to_string(slice) +
                                   ": CSV missing after done");
      }
      return;
    }
    absorb_slice_csv(slice, csv);
    queue_->complete(slice, events);
    journal_.done(slice, rows, events);
    json::Value ev;
    ev.set("type", "slice_done");
    ev.set("slice", slice);
    ev.set("worker", w.id);
    ev.set("rows", static_cast<double>(rows));
    ev.set("attempt", queue_->slice(slice).attempts);
    event("dispatch: slice " + std::to_string(slice) + " done (" +
              std::to_string(queue_->rows_done()) + "/" +
              std::to_string(queue_->rows_total()) + " rows)",
          std::move(ev));
    ++done_count_;
    if (fault_after_done_ >= 0 && done_count_ >= fault_after_done_) {
      // Injected coordinator kill (see fault-injection note above).
      std::_Exit(32);
    }
  } else if (kind == "fail") {
    int slice = -1;
    in >> slice;
    std::string reason;
    std::getline(in, reason);
    if (!reason.empty() && reason.front() == ' ') reason.erase(0, 1);
    if (slice >= 0 && slice == w.slice) {
      requeue_slice(w, reason.empty() ? "worker reported failure" : reason);
    }
    // `fail -1 ...` is a worker-level defect; it exits right after, and the
    // EOF path accounts for it.
  } else {
    SPEAKUP_LOG_DEBUG("dispatch: worker %d sent unrecognized line '%s'", w.id,
                      line.c_str());
  }
}

// Per-worker throughput events for --status json consumers: every heartbeat
// carries the worker's cumulative sim-event count, so the dispatcher can
// report each worker's live rate, not just its liveness. Rate-limited to
// one event per worker per second; only the JSON view emits them (the tty
// progress line already shows per-worker rows, and plain mode stays quiet).
void Dispatcher::worker_metrics(WorkerProc& w, int slice, std::size_t rows_done,
                                std::size_t rows, std::uint64_t events) {
  if (view() != View::kJson) return;
  const Clock::time_point now = Clock::now();
  if (!w.metric_primed) {
    // First heartbeat on this slice: prime the baseline, nothing to rate yet.
    w.metric_primed = true;
    w.metric_events = events;
    w.metric_rows = rows_done;
    w.metric_at = now;
    return;
  }
  const double secs = std::chrono::duration<double>(now - w.metric_at).count();
  if (secs < 1.0) return;
  json::Value ev;
  ev.set("type", "metrics");
  ev.set("worker", w.id);
  ev.set("slice", slice);
  ev.set("rows_done", static_cast<double>(rows_done));
  ev.set("rows", static_cast<double>(rows));
  ev.set("events", static_cast<double>(events));
  ev.set("events_per_s",
         static_cast<double>(events - w.metric_events) / secs);
  ev.set("rows_per_s",
         static_cast<double>(rows_done - w.metric_rows) / secs);
  event("", std::move(ev));  // json-only: plain text unused
  w.metric_events = events;
  w.metric_rows = rows_done;
  w.metric_at = now;
}

void Dispatcher::requeue_slice(WorkerProc& w, const std::string& reason) {
  const int slice = w.slice;
  w.slice = -1;
  if (slice < 0) return;
  journal_.fail(slice, queue_->slice(slice).attempts, reason);
  if (queue_->requeue(slice, reason)) {
    ++report_.requeues;
    json::Value ev;
    ev.set("type", "requeue");
    ev.set("slice", slice);
    ev.set("reason", reason);
    ev.set("attempt", queue_->slice(slice).attempts);
    event("dispatch: slice " + std::to_string(slice) + " requeued: " + reason,
          std::move(ev));
  } else {
    report_.failures.push_back("slice " + std::to_string(slice) + ": " + reason +
                               " (after " +
                               std::to_string(queue_->slice(slice).attempts) +
                               " attempt(s))");
    json::Value ev;
    ev.set("type", "slice_failed");
    ev.set("slice", slice);
    ev.set("reason", reason);
    event("dispatch: slice " + std::to_string(slice) + " FAILED: " + reason,
          std::move(ev));
  }
}

void Dispatcher::worker_gone(WorkerProc& w, const std::string& reason) {
  if (!w.alive) return;
  // Drain anything the worker said before dying — a `done` that is already
  // in the pipe must count, not burn a retry.
  for (;;) {
    char chunk[4096];
    const ssize_t got = ::read(w.from_fd, chunk, sizeof chunk);
    if (got <= 0) break;
    w.buf.append(chunk, static_cast<std::size_t>(got));
  }
  std::size_t nl;
  while ((nl = w.buf.find('\n')) != std::string::npos) {
    const std::string line = w.buf.substr(0, nl);
    w.buf.erase(0, nl + 1);
    handle_line(w, line);
  }
  w.alive = false;
  ::close(w.to_fd);
  ::close(w.from_fd);
  int status = 0;
  ::waitpid(w.pid, &status, 0);
  if (!w.exiting) {
    ++report_.worker_deaths;
    json::Value ev;
    ev.set("type", "worker_dead");
    ev.set("worker", w.id);
    ev.set("pid", static_cast<double>(w.pid));
    ev.set("reason", reason);
    ev.set("slice", w.slice);
    event("dispatch: worker " + std::to_string(w.id) + " (pid " +
              std::to_string(w.pid) + ") died: " + reason,
          std::move(ev));
  }
  if (w.slice >= 0) requeue_slice(w, reason);
}

void Dispatcher::kill_worker(WorkerProc& w, const std::string& reason) {
  SPEAKUP_LOG_DEBUG("dispatch: killing worker %d (pid %d): %s", w.id,
                    static_cast<int>(w.pid), reason.c_str());
  ::kill(w.pid, SIGKILL);
  worker_gone(w, reason);
}

void Dispatcher::absorb_slice_csv(int slice, const std::string& csv) {
  (void)slice;
  merged_csv_ = merged_csv_.empty() ? csv
                                    : ResultWriter::merge_csv({merged_csv_, csv});
}

void Dispatcher::shutdown_workers() {
  for (WorkerProc& w : workers_) {
    if (!w.alive || w.exiting) continue;
    const std::string cmd = "exit\n";
    (void)!::write(w.to_fd, cmd.data(), cmd.size());
    w.exiting = true;
  }
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(3);
  for (WorkerProc& w : workers_) {
    if (!w.alive) continue;
    if (Clock::now() > deadline) ::kill(w.pid, SIGKILL);
    worker_gone(w, "shutdown");
  }
}

void Dispatcher::finalize() {
  const double wall =
      std::chrono::duration<double>(Clock::now() - started_).count();
  progress(true);
  if (view() == View::kTty && tty_width_ > 0) std::fputc('\n', stderr);
  if (queue_->complete_ok()) {
    const std::vector<std::size_t> indices = ResultWriter::csv_indices(merged_csv_);
    if (indices.size() != file_.scenarios.size()) {
      report_.failures.push_back("internal: merged output holds " +
                                 std::to_string(indices.size()) + " of " +
                                 std::to_string(file_.scenarios.size()) + " rows");
    } else {
      write_file_atomic(opts_.out_csv, merged_csv_);
      report_.ok = true;
      report_.rows_failed = file_.scenarios.size() -
                            ResultWriter::resume_info(merged_csv_).completed.size();
      // The sweep is merged and durable: retire the work directory.
      if (DIR* dir = ::opendir(work_dir_.c_str())) {
        while (dirent* entry = ::readdir(dir)) {
          const std::string name = entry->d_name;
          if (name == "." || name == "..") continue;
          ::unlink((work_dir_ + "/" + name).c_str());
        }
        ::closedir(dir);
        journal_ = SliceJournal();  // close before the directory goes away
        ::rmdir(work_dir_.c_str());
      }
    }
  }
  json::Value ev;
  ev.set("type", "done");
  ev.set("ok", report_.ok);
  ev.set("rows", static_cast<double>(report_.rows_total));
  ev.set("rows_failed", static_cast<double>(report_.rows_failed));
  ev.set("slices_resumed", report_.slices_resumed);
  ev.set("worker_deaths", report_.worker_deaths);
  ev.set("requeues", report_.requeues);
  ev.set("wall_s", wall);
  json::Value failures{json::Value::Array{}};
  for (const std::string& f : report_.failures) failures.push_back(f);
  ev.set("failures", std::move(failures));
  event("dispatch: " + std::string(report_.ok ? "complete" : "FAILED") + ", " +
            std::to_string(report_.rows_total) + " row(s), " +
            std::to_string(report_.worker_deaths) + " worker death(s), " +
            std::to_string(report_.requeues) + " requeue(s)",
        std::move(ev));
}

Dispatcher::View Dispatcher::view() const {
  switch (opts_.status) {
    case DispatchOptions::Status::kJson: return View::kJson;
    case DispatchOptions::Status::kTty: return View::kTty;
    case DispatchOptions::Status::kAuto:
      return ::isatty(STDERR_FILENO) != 0 ? View::kTty : View::kPlain;
  }
  return View::kPlain;
}

void Dispatcher::event(const std::string& plain_text, json::Value json_event) {
  switch (view()) {
    case View::kJson:
      std::fputs((json_event.dump(0) + "\n").c_str(), stdout);
      std::fflush(stdout);
      break;
    case View::kTty:
      if (tty_width_ > 0) {
        std::fprintf(stderr, "\r%*s\r", static_cast<int>(tty_width_), "");
        tty_width_ = 0;
      }
      std::fprintf(stderr, "%s\n", plain_text.c_str());
      break;
    case View::kPlain:
      std::fprintf(stderr, "%s\n", plain_text.c_str());
      break;
  }
}

json::Value Dispatcher::progress_json() const {
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - started_).count();
  const std::size_t done = queue_->rows_done();
  const std::size_t total = queue_->rows_total();
  json::Value v;
  v.set("type", "progress");
  v.set("rows_done", static_cast<double>(done));
  v.set("rows_total", static_cast<double>(total));
  v.set("slices_done", queue_->done());
  v.set("slices_total", queue_->size());
  v.set("events", static_cast<double>(queue_->events_total()));
  v.set("events_per_sec",
        elapsed > 0 ? static_cast<double>(queue_->events_total()) / elapsed : 0.0);
  v.set("eta_s", done > 0 && done < total
                     ? elapsed / static_cast<double>(done) *
                           static_cast<double>(total - done)
                     : 0.0);
  json::Value ws{json::Value::Array{}};
  for (const WorkerProc& w : workers_) {
    if (!w.alive) continue;
    json::Value wv;
    wv.set("worker", w.id);
    wv.set("pid", static_cast<double>(w.pid));
    wv.set("state", w.slice >= 0 ? "running" : (w.exiting ? "exiting" : "idle"));
    if (w.slice >= 0) {
      const Slice& s = queue_->slice(w.slice);
      wv.set("slice", w.slice);
      wv.set("rows_done", static_cast<double>(s.rows_done));
      wv.set("rows", static_cast<double>(s.rows));
    }
    ws.push_back(std::move(wv));
  }
  v.set("workers", std::move(ws));
  return v;
}

std::string Dispatcher::progress_tty() const {
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - started_).count();
  const std::size_t done = queue_->rows_done();
  const std::size_t total = queue_->rows_total();
  const double evps =
      elapsed > 0 ? static_cast<double>(queue_->events_total()) / elapsed : 0.0;
  char head[160];
  std::snprintf(head, sizeof head, "dispatch: %zu/%zu rows  %d/%d slices  %.2gM ev/s",
                done, total, queue_->done(), queue_->size(), evps / 1e6);
  std::string line = head;
  if (done > 0 && done < total) {
    const double eta = elapsed / static_cast<double>(done) *
                       static_cast<double>(total - done);
    char buf[48];
    std::snprintf(buf, sizeof buf, "  ETA %d:%02d", static_cast<int>(eta) / 60,
                  static_cast<int>(eta) % 60);
    line += buf;
  }
  for (const WorkerProc& w : workers_) {
    if (!w.alive || w.exiting) continue;
    if (w.slice >= 0) {
      const Slice& s = queue_->slice(w.slice);
      line += "  w" + std::to_string(w.id) + ":s" + std::to_string(w.slice) + "(" +
              std::to_string(s.rows_done) + "/" + std::to_string(s.rows) + ")";
    } else {
      line += "  w" + std::to_string(w.id) + ":idle";
    }
  }
  return line;
}

void Dispatcher::progress(bool force) {
  const View v = view();
  const auto interval =
      std::chrono::milliseconds(v == View::kTty ? 200 : 1000);
  const Clock::time_point now = Clock::now();
  if (!force && now - last_progress_ < interval) return;
  last_progress_ = now;
  switch (v) {
    case View::kJson: {
      json::Value p = progress_json();
      std::fputs((p.dump(0) + "\n").c_str(), stdout);
      std::fflush(stdout);
      break;
    }
    case View::kTty: {
      const std::string line = progress_tty();
      std::fprintf(stderr, "\r%s", line.c_str());
      if (line.size() < tty_width_) {
        std::fprintf(stderr, "%*s", static_cast<int>(tty_width_ - line.size()), "");
      }
      std::fflush(stderr);
      tty_width_ = std::max(tty_width_, line.size());
      break;
    }
    case View::kPlain:
      break;  // per-event lines only; no periodic spam in CI logs
  }
}

}  // namespace

DispatchReport dispatch_sweep(const DispatchOptions& opts) {
  Dispatcher d(opts);
  return d.run();
}

}  // namespace speakup::exp
