#include "transport/tcp_connection.hpp"

#include <algorithm>

#include "obs/observer.hpp"
#include "transport/host.hpp"
#include "util/log.hpp"

namespace speakup::transport {

namespace {
constexpr std::int64_t kNoTimedSegment = -1;
}

TcpConnection::TcpConnection(Host& host, std::uint32_t local_port, net::NodeId remote,
                             std::uint32_t remote_port, const TcpConfig& cfg, bool initiator)
    : host_(&host),
      cfg_(cfg),
      local_port_(local_port),
      remote_(remote),
      remote_port_(remote_port),
      state_(initiator ? State::kSynSent : State::kSynReceived),
      cwnd_(static_cast<double>(cfg.mss * cfg.initial_cwnd_segments)),
      ssthresh_(static_cast<double>(cfg.initial_ssthresh)),
      rto_(cfg.initial_rto),
      rto_timer_(host.loop(), [this] { on_rto(); }) {}

TcpConnection::~TcpConnection() {
  if (peer_ != nullptr) peer_->peer_ = nullptr;
}

void TcpConnection::start_handshake() {
  SPEAKUP_ASSERT(state_ == State::kSynSent);
  syn_sent_at_ = host_->loop().now();
  host_->send_packet(net::make_control_packet(host_->id(), local_port_, remote_, remote_port_,
                                              net::PacketKind::kSyn));
  rto_timer_.restart(rto_);
}

void TcpConnection::start_passive() {
  SPEAKUP_ASSERT(state_ == State::kSynReceived);
  host_->send_packet(net::make_control_packet(host_->id(), local_port_, remote_, remote_port_,
                                              net::PacketKind::kSynAck));
  rto_timer_.restart(rto_);
}

void TcpConnection::write(Bytes n) {
  SPEAKUP_ASSERT(n >= 0);
  if (state_ == State::kClosed) return;
  app_limit_ += n;
  try_send();
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  host_->send_packet(net::make_control_packet(host_->id(), local_port_, remote_, remote_port_,
                                              net::PacketKind::kRst));
  teardown(/*notify_app=*/false);
}

void TcpConnection::on_packet(const net::Packet& p) {
  if (state_ == State::kClosed) return;
  switch (p.kind) {
    case net::PacketKind::kSyn:
      // Duplicate SYN: our SYN-ACK was lost. Resend it.
      if (state_ == State::kSynReceived || state_ == State::kEstablished) {
        host_->send_packet(net::make_control_packet(host_->id(), local_port_, remote_,
                                                    remote_port_, net::PacketKind::kSynAck));
      }
      break;
    case net::PacketKind::kSynAck:
      if (state_ == State::kSynSent) {
        if (!syn_retransmitted_) take_rtt_sample(host_->loop().now() - syn_sent_at_);
        rto_timer_.cancel();
        establish();
        // Completes the handshake so the passive side leaves kSynReceived.
        send_ack();
        try_send();
      }
      break;
    case net::PacketKind::kData:
      if (state_ == State::kSynReceived) {
        rto_timer_.cancel();
        establish();
      }
      handle_data(p.seq, p.payload);
      break;
    case net::PacketKind::kAck:
      if (state_ == State::kSynReceived) {
        rto_timer_.cancel();
        establish();
      }
      handle_ack(p.seq);
      break;
    case net::PacketKind::kRst:
      teardown(/*notify_app=*/true);
      break;
  }
}

void TcpConnection::establish() {
  state_ = State::kEstablished;
  if (cbs_.on_established) cbs_.on_established();
}

void TcpConnection::try_send() {
  if (state_ != State::kEstablished) return;
  const auto window = std::min<std::int64_t>(static_cast<std::int64_t>(cwnd_),
                                             cfg_.max_inflight);
  while (snd_nxt_ < app_limit_ && inflight() < window) {
    const Bytes len = std::min<Bytes>(cfg_.mss, app_limit_ - snd_nxt_);
    send_segment(snd_nxt_, len, /*retransmission=*/false);
    snd_nxt_ += len;
  }
}

void TcpConnection::send_segment(std::int64_t seq, Bytes len, bool retransmission) {
  SPEAKUP_ASSERT(len > 0);
  host_->send_packet(
      net::make_data_packet(host_->id(), local_port_, remote_, remote_port_, seq, len));
  if (retransmission) {
    ++retransmits_;
    if (auto* o = host_->loop().observer()) o->on_tcp_retransmit(cwnd_);
    // Karn's rule: a retransmitted range must not produce an RTT sample.
    if (timed_seq_ != kNoTimedSegment && timed_seq_ >= seq) timed_seq_ = kNoTimedSegment;
  } else if (timed_seq_ == kNoTimedSegment) {
    timed_seq_ = seq;
    timed_sent_ = host_->loop().now();
  }
  if (!rto_timer_.pending()) arm_rto();
}

void TcpConnection::send_ack() {
  host_->send_packet(net::make_control_packet(host_->id(), local_port_, remote_, remote_port_,
                                              net::PacketKind::kAck, rcv_nxt_));
}

void TcpConnection::handle_ack(std::int64_t ack) {
  if (ack > snd_una_) {
    const Bytes newly = ack - snd_una_;
    snd_una_ = ack;
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    dupacks_ = 0;
    // RTT sample (only if the timed segment was fully acked and never resent).
    if (timed_seq_ != kNoTimedSegment && ack > timed_seq_) {
      take_rtt_sample(host_->loop().now() - timed_sent_);
      timed_seq_ = kNoTimedSegment;
    }
    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;  // deflate
      } else {
        // NewReno partial ack: the next hole is lost too; retransmit it and
        // keep the recovery window partially deflated.
        const Bytes len = std::min<Bytes>(cfg_.mss, snd_nxt_ - snd_una_);
        if (len > 0) send_segment(snd_una_, len, /*retransmission=*/true);
        cwnd_ = std::max(cwnd_ - static_cast<double>(newly) + static_cast<double>(cfg_.mss),
                         static_cast<double>(cfg_.mss));
      }
    } else {
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(cfg_.mss);  // slow start
      } else {
        cwnd_ += static_cast<double>(cfg_.mss) * static_cast<double>(cfg_.mss) / cwnd_;
      }
    }
    if (inflight() > 0) {
      arm_rto();
    } else {
      rto_timer_.cancel();
      rto_ = std::clamp(have_rtt_ ? srtt_ + 4 * rttvar_ : cfg_.initial_rto, cfg_.min_rto,
                        cfg_.max_rto);
    }
    if (cbs_.on_acked) cbs_.on_acked(snd_una_);
    try_send();
    return;
  }
  // Duplicate ACK (only meaningful while data is outstanding).
  if (ack == snd_una_ && inflight() > 0) {
    if (in_recovery_) {
      cwnd_ += static_cast<double>(cfg_.mss);  // inflation
      try_send();
      return;
    }
    ++dupacks_;
    if (dupacks_ == cfg_.dupack_threshold) enter_fast_recovery();
  }
}

void TcpConnection::enter_fast_recovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  ssthresh_ = std::max(static_cast<double>(inflight()) / 2.0,
                       2.0 * static_cast<double>(cfg_.mss));
  cwnd_ = ssthresh_ + 3.0 * static_cast<double>(cfg_.mss);
  const Bytes len = std::min<Bytes>(cfg_.mss, snd_nxt_ - snd_una_);
  if (len > 0) send_segment(snd_una_, len, /*retransmission=*/true);
}

void TcpConnection::handle_data(std::int64_t seq, Bytes len) {
  SPEAKUP_ASSERT(len > 0);
  const std::int64_t old_rcv_nxt = rcv_nxt_;
  // Clip the already-delivered prefix; a wholly stale segment (a
  // retransmission of delivered data) still draws the duplicate ack below.
  const std::int64_t begin = std::max(seq, rcv_nxt_);
  const std::int64_t end = seq + len;
  if (begin < end) ooo_.insert(begin, end);
  // Advance rcv_nxt_ over any now-contiguous prefix. Because insert()
  // merges overlapping *and touching* ranges, the contiguous prefix is a
  // single interval — pop_prefix consumes it (and would consume any
  // stragglers a non-merging tracker left behind).
  rcv_nxt_ = ooo_.pop_prefix(rcv_nxt_);
  send_ack();
  if (rcv_nxt_ > old_rcv_nxt && cbs_.on_data) cbs_.on_data(rcv_nxt_ - old_rcv_nxt);
}

void TcpConnection::on_rto() {
  if (state_ == State::kClosed) return;
  ++timeouts_;
  // Every retransmitting path below backs the RTO off through backoff_rto()
  // — exactly once per expiry. Karn's rule keeps the backed-off value
  // sticky: a retransmitted range never produces an RTT sample (see
  // send_segment), so only an ack of fresh data can recompute the RTO from
  // the estimator. In particular a retransmitted SYN does not double-apply
  // backoff — the SYN-ACK handler skips the RTT sample (syn_retransmitted_)
  // and leaves rto_ at its single-backoff value. The two non-retransmitting
  // exits (handshake give-up, spurious expiry with nothing in flight) do
  // not back off: the first tears the connection down, and the second must
  // leave rto_ untouched for the next fresh flight.
  if (state_ == State::kSynSent) {
    if (++syn_retries_ > cfg_.max_syn_retries) {
      teardown(/*notify_app=*/true);
      return;
    }
    syn_retransmitted_ = true;
    backoff_rto();
    host_->send_packet(net::make_control_packet(host_->id(), local_port_, remote_, remote_port_,
                                                net::PacketKind::kSyn));
    rto_timer_.restart(rto_);
    return;
  }
  if (state_ == State::kSynReceived) {
    backoff_rto();
    host_->send_packet(net::make_control_packet(host_->id(), local_port_, remote_, remote_port_,
                                                net::PacketKind::kSynAck));
    rto_timer_.restart(rto_);
    return;
  }
  if (inflight() <= 0) return;
  // Retransmission timeout: multiplicative backoff, window collapse,
  // go-back-N from the last cumulative ack.
  backoff_rto();
  ssthresh_ = std::max(static_cast<double>(inflight()) / 2.0,
                       2.0 * static_cast<double>(cfg_.mss));
  cwnd_ = static_cast<double>(cfg_.mss);
  snd_nxt_ = snd_una_;
  in_recovery_ = false;
  dupacks_ = 0;
  timed_seq_ = kNoTimedSegment;
  const Bytes len = std::min<Bytes>(cfg_.mss, app_limit_ - snd_una_);
  if (len > 0) {
    send_segment(snd_una_, len, /*retransmission=*/true);
    snd_nxt_ = snd_una_ + len;
  }
  rto_timer_.restart(rto_);
}

void TcpConnection::arm_rto() { rto_timer_.restart(rto_); }

void TcpConnection::backoff_rto() {
  rto_ = std::min(rto_ * 2, cfg_.max_rto);
  if (auto* o = host_->loop().observer()) o->on_tcp_rto_backoff(rto_);
}

void TcpConnection::take_rtt_sample(Duration sample) {
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_ = true;
  } else {
    // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - sample|; srtt = 7/8 srtt + 1/8 sample.
    const Duration err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = Duration::nanos((3 * rttvar_.ns() + err.ns()) / 4);
    srtt_ = Duration::nanos((7 * srtt_.ns() + sample.ns()) / 8);
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, cfg_.min_rto, cfg_.max_rto);
}

void TcpConnection::teardown(bool notify_app) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  rto_timer_.cancel();
  if (peer_ != nullptr) {
    peer_->peer_ = nullptr;
    peer_ = nullptr;
  }
  if (notify_app && cbs_.on_reset) cbs_.on_reset();
  host_->release(this);
}

}  // namespace speakup::transport
