// Pins the ExperimentResult fingerprints of the checked-in smoke sweep.
//
// The hot-path refactor contract is behavior-invisibility: rewriting the
// event representation, the Link packet pipeline, or the queue storage must
// not change a single simulated outcome. fingerprint() hashes every counter
// in the result INCLUDING events_executed, so even an extra or re-ordered
// event trips this test. The constants below were captured from the
// pre-refactor (PR 3) tree; if a future change legitimately alters
// simulation behavior, re-pin them in the same commit that explains why.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/scenario_io.hpp"

namespace speakup::exp {
namespace {

std::string hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

TEST(HotPathFingerprint, SmokeSweepMatchesPreRefactorPins) {
  const ScenarioFile file = load_scenario_file(std::string(SPEAKUP_SCENARIO_DIR) + "/smoke.json");
  // label -> fingerprint, captured at PR 3 (seed event loop, pre-slab).
  const std::vector<std::pair<std::string, std::string>> pins = {
      {"smoke/none", "5926ff42af7d304f"},
      {"smoke/retry", "6f503a28a37defd5"},
      {"smoke/auction", "058ae2081de114a0"},
      {"smoke/quantum", "785972ef788a9750"},
      {"smoke/auction-seeds/seed7", "058ae2081de114a0"},
      {"smoke/auction-seeds/seed8", "9bf42045de308896"},
  };
  ASSERT_EQ(file.scenarios.size(), pins.size());
  for (std::size_t i = 0; i < pins.size(); ++i) {
    const LabeledScenario& s = file.scenarios[i];
    ASSERT_EQ(s.label, pins[i].first) << "scenario order changed; re-check pins";
    const ExperimentResult r = run_scenario(s.config);
    EXPECT_EQ(hex(r.fingerprint()), pins[i].second)
        << "behavior drift in '" << s.label << "' (events_executed=" << r.events_executed << ")";
  }
}

}  // namespace
}  // namespace speakup::exp
