// Allocation accounting for zero-allocation guarantees.
//
// The hot-path tests (event loop churn, the Link packet pipeline, TCP loss
// recovery, the pooled client engine) all assert that a measured region
// performs ZERO heap allocations. Each of them used to carry its own copy
// of a counting global operator new; this header is the shared version.
//
// Two pieces:
//   - util::AllocGuard — an RAII scope that snapshots the global allocation
//     counter; delta() is the number of operator-new calls since
//     construction. Only deltas are meaningful (gtest, warm-up phases and
//     the harness allocate freely outside measured regions).
//   - src/util/counted_new.cpp — the replacement global operator new /
//     delete that actually bumps the counter. It is a SEPARATE translation
//     unit built as the `speakup_counted_new` static library and linked
//     into the test binaries only, so the speakup library itself never
//     changes the allocation behavior of programs that link it.
//
// AllocGuard::counting() reports whether the counting allocator is linked
// into this binary; guards in binaries without it see a delta of 0, so a
// test that forgets to link `speakup_counted_new` must check counting()
// rather than silently passing (expect_zero() does this for you).
//
// Debugging an unexpected allocation: run the test with SPEAKUP_TRAP_ALLOC=1
// in the environment and arm the trap around the measured region with
// AllocGuard::set_trap(true). The first allocation inside the region dumps
// a raw backtrace to stderr and aborts; resolve the +0x offsets with
// `addr2line -f -C -e <test binary>`.
#pragma once

#include <atomic>
#include <cstdint>

namespace speakup::util {

namespace alloc_detail {
// Inline variables (C++17) so the counter exists exactly once per binary
// with no .cpp in the core library and no static-library ordering hazards.
// Relaxed atomics: the counter is also bumped from Runner worker threads,
// and a plain int64 here would be a genuine data race under TSan.
inline std::atomic<std::int64_t> g_allocations{0};
inline std::atomic<bool> g_counting_linked{false};
inline std::atomic<bool> g_trap_armed{false};
}  // namespace alloc_detail

class AllocGuard {
 public:
  AllocGuard() : start_(count()) {}

  /// operator-new calls since this guard was constructed.
  [[nodiscard]] std::int64_t delta() const { return count() - start_; }

  /// Whether the counting operator new (speakup_counted_new) is linked into
  /// this binary. When false, delta() is always 0 and proves nothing.
  [[nodiscard]] static bool counting() {
    return alloc_detail::g_counting_linked.load(std::memory_order_relaxed);
  }

  /// delta() == 0, guarding against the vacuous-pass failure mode: a binary
  /// without the counting allocator reports NOT ok, never a silent zero.
  [[nodiscard]] bool expect_zero() const { return counting() && delta() == 0; }

  /// Arms/disarms the SPEAKUP_TRAP_ALLOC abort-on-allocate trap (honored by
  /// counted_new.cpp only when that env var is set; see the header comment).
  static void set_trap(bool armed) {
    alloc_detail::g_trap_armed.store(armed, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::int64_t count() {
    return alloc_detail::g_allocations.load(std::memory_order_relaxed);
  }

 private:
  std::int64_t start_;
};

}  // namespace speakup::util
