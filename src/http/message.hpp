// Application-layer messages exchanged between clients, thinner and servers.
//
// A message occupies (kMessageHeaderBytes + body) bytes on the TCP stream;
// the header models HTTP request/status lines and headers. Bodies are dummy
// bytes (payment POSTs, file contents) — only their size matters.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace speakup::http {

/// Modeled size of an HTTP request line + headers.
inline constexpr Bytes kMessageHeaderBytes = 100;

enum class MessageType : std::uint8_t {
  // Client -> thinner (request channel)
  kRequest,       // the actual service request (paper: HTTP request (1))
  // Thinner -> client (request channel)
  kPleasePay,     // server busy: open a payment channel (paper: JavaScript reply)
  kRetry,         // §3.2 variant: synchronous please-retry signal
  kBusy,          // no-defense baseline: request dropped
  kResponse,      // served; body carries the response payload
  kAborted,       // §5: request aborted after prolonged suspension
  // Client -> thinner (payment channel)
  kPayOpen,       // binds the payment channel to a request id
  kPostData,      // one dummy-byte POST (paper: 1-MByte HTTP POST (2))
  // Thinner -> client (payment channel)
  kPostContinue,  // POST consumed; client should send the next one
  kWin,           // auction won; payment channel terminated
  // File-transfer workload (§7.7 collateral-damage experiment)
  kFileRequest,
  kFileResponse,
};

/// Which population a client belongs to. Carried in messages for
/// *accounting only* — the thinner never reads it to make decisions
/// (speak-up is identity-free; see §2.2 on spoofing).
enum class ClientClass : std::uint8_t { kGood, kBad, kNeutral };

struct Message {
  MessageType type = MessageType::kRequest;
  std::uint64_t request_id = 0;
  Bytes body = 0;
  ClientClass cls = ClientClass::kNeutral;  // accounting only
  /// §5: number of service quanta this request will consume (known to the
  /// sender; the server discovers it by doing the work; the thinner never
  /// sees it).
  int difficulty = 1;
  /// Free-form parameter (e.g. requested file size in kFileRequest).
  Bytes aux = 0;

  [[nodiscard]] Bytes wire_bytes() const { return kMessageHeaderBytes + body; }
};

}  // namespace speakup::http
