// §7.4: empirical adversarial advantage.
//
// Two questions from the paper:
//  (1) What is the minimum capacity c at which all of the good demand is
//      satisfied? (Paper: c = 115, i.e. 15% above the ideal c_id = 100.)
//  (2) How does the bad clients' window w affect their capture of the
//      server? (Paper: w = 20 is pessimistic; other w in 1..60 capture
//      less.)
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Section 7.4", "empirical adversarial advantage");
  bench::print_paper_note(
      "all good demand is satisfied at c ~ 15% above the ideal c_id; "
      "bad-client window w = 20 is the (near-)pessimal choice");

  const double kCapacities[] = {100.0, 110.0, 120.0, 130.0, 140.0, 150.0, 160.0};
  const int kWindows[] = {1, 5, 10, 20, 40, 60};

  // Both sweeps share one thread pool: capacity sweep + window sweep.
  exp::Runner runner;
  for (const double c : kCapacities) {
    exp::ScenarioConfig cfg =
        exp::lan_scenario(25, 25, c, exp::DefenseMode::kAuction, /*seed=*/29);
    cfg.duration = bench::experiment_duration(120.0);
    runner.add(cfg, "c" + std::to_string(int(c)));
  }
  for (const int w : kWindows) {
    exp::ScenarioConfig cfg =
        exp::lan_scenario(25, 25, 100.0, exp::DefenseMode::kAuction, /*seed=*/29);
    cfg.duration = bench::experiment_duration(120.0);
    cfg.groups[1].workload.window = w;
    runner.add(cfg, "w" + std::to_string(w));
  }
  bench::run_all(runner);

  // (1) Sweep c upward from c_id until the good clients are fully served.
  // "Fully served" tolerates a sliver of backlog-expiry noise.
  std::printf("c_id (ideal provisioning, G=B, g=50/s): %.0f req/s\n\n",
              core::theory::ideal_provisioning(50.0, 50.0, 50.0));
  stats::Table sweep({"capacity", "frac-good-served", "alloc(good)", "verdict"});
  double satisfied_at = -1.0;
  for (const double c : kCapacities) {
    const exp::ExperimentResult& r = runner.result("c" + std::to_string(int(c)));
    const bool ok = r.fraction_good_served >= 0.99;
    if (ok && satisfied_at < 0) satisfied_at = c;
    sweep.row()
        .add(static_cast<std::int64_t>(c))
        .add(r.fraction_good_served, 3)
        .add(r.allocation_good, 3)
        .add(ok ? "all good demand served" : "good demand NOT met");
  }
  sweep.print(std::cout);
  if (satisfied_at > 0) {
    std::printf("\n-> all good demand served at c = %.0f (%.0f%% above c_id; paper: +15%%)\n\n",
                satisfied_at, (satisfied_at / 100.0 - 1.0) * 100.0);
  } else {
    std::printf("\n-> good demand not fully served in the swept range\n\n");
  }

  // (2) Bad window sweep at c = 100.
  stats::Table wsweep({"bad-window-w", "alloc(bad)", "alloc(good)"});
  for (const int w : kWindows) {
    const exp::ExperimentResult& r = runner.result("w" + std::to_string(w));
    wsweep.row().add(w).add(r.allocation_bad, 3).add(r.allocation_good, 3);
  }
  wsweep.print(std::cout);
  return 0;
}
