// The innocent bystander of §7.7: a host running sequential HTTP downloads
// (the paper used wget) from a separate web server, sharing a bottleneck
// link with speak-up clients. End-to-end download latency — connection
// setup through last byte — is the collateral-damage metric of Figure 9.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "stats/sample_set.hpp"
#include "transport/host.hpp"

namespace speakup::client {

/// Serves kFileRequest with a body of the requested size.
class StaticFileServer {
 public:
  StaticFileServer(transport::Host& host, std::uint32_t port = 8080)
      : pool_(host.loop()) {
    host.listen(port, [this](transport::TcpConnection& conn) {
      http::MessageStream& s = pool_.adopt(conn);
      http::MessageStream::Callbacks cbs;
      cbs.on_message = [this, &s](const http::Message& m) {
        if (m.type == http::MessageType::kFileRequest) {
          ++requests_;
          s.send(http::Message{.type = http::MessageType::kFileResponse,
                               .request_id = m.request_id,
                               .body = m.aux});
        }
      };
      cbs.on_reset = [this, &s] { pool_.retire(&s); };
      s.set_callbacks(std::move(cbs));
    });
  }

  [[nodiscard]] std::int64_t requests() const { return requests_; }

 private:
  http::SessionPool pool_;
  std::int64_t requests_ = 0;
};

/// Downloads `count` copies of an n-byte file, back to back, recording
/// end-to-end latency per download.
class FileTransferClient {
 public:
  struct Config {
    net::NodeId server = net::kInvalidNode;
    std::uint32_t port = 8080;
    Bytes file_size = kilobytes(1);
    int count = 100;
    Duration inter_download_gap = Duration::millis(10);
  };

  FileTransferClient(transport::Host& host, const Config& cfg)
      : host_(&host), cfg_(cfg), pool_(host.loop()) {}

  FileTransferClient(const FileTransferClient&) = delete;
  FileTransferClient& operator=(const FileTransferClient&) = delete;

  void set_on_done(std::function<void()> cb) { on_done_ = std::move(cb); }

  void start() { begin_download(); }

  [[nodiscard]] const stats::SampleSet& latencies() const { return latencies_; }
  [[nodiscard]] int completed() const { return completed_; }
  [[nodiscard]] int failures() const { return failures_; }
  [[nodiscard]] bool done() const { return done_; }

 private:
  void begin_download() {
    started_at_ = host_->loop().now();
    transport::TcpConnection& conn = host_->connect(cfg_.server, cfg_.port);
    stream_ = &pool_.adopt(conn);
    http::MessageStream::Callbacks cbs;
    cbs.on_established = [this] {
      if (stream_ == nullptr) return;
      stream_->send(http::Message{.type = http::MessageType::kFileRequest,
                                  .request_id = static_cast<std::uint64_t>(completed_),
                                  .aux = cfg_.file_size});
    };
    cbs.on_message = [this](const http::Message& m) {
      if (m.type != http::MessageType::kFileResponse) return;
      latencies_.add((host_->loop().now() - started_at_).sec());
      ++completed_;
      next();
    };
    cbs.on_reset = [this] {
      ++failures_;
      stream_ = nullptr;
      next();
    };
    stream_->set_callbacks(std::move(cbs));
  }

  void next() {
    if (stream_ != nullptr) {
      http::MessageStream* s = stream_;
      stream_ = nullptr;
      pool_.retire(s);
    }
    if (completed_ + failures_ >= cfg_.count) {
      done_ = true;
      if (on_done_) on_done_();
      return;
    }
    host_->loop().schedule(cfg_.inter_download_gap, [this] { begin_download(); });
  }

  transport::Host* host_;
  Config cfg_;
  http::SessionPool pool_;
  std::function<void()> on_done_;
  http::MessageStream* stream_ = nullptr;
  SimTime started_at_;
  stats::SampleSet latencies_;
  int completed_ = 0;
  int failures_ = 0;
  bool done_ = false;
};

}  // namespace speakup::client
