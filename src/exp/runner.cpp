#include "exp/runner.hpp"

#include <atomic>
#include <thread>

#include "util/assert.hpp"

namespace speakup::exp {

Runner& Runner::add(ScenarioConfig cfg, std::string label) {
  util::require(!ran_, "Runner: cannot add scenarios after run_all");
  if (label.empty()) {
    label = cfg.defense_name() + "/" + std::to_string(jobs_.size());
  }
  for (const Job& j : jobs_) {
    util::require(j.label != label, "Runner: duplicate label '" + label + "'");
  }
  jobs_.push_back(Job{std::move(label), std::move(cfg)});
  return *this;
}

Runner& Runner::add_seed_sweep(ScenarioConfig base, int n_seeds, const std::string& label) {
  util::require(n_seeds > 0, "Runner: seed sweep needs at least one seed");
  const std::string stem = label.empty() ? base.defense_name() : label;
  for (int k = 0; k < n_seeds; ++k) {
    ScenarioConfig cfg = base;
    cfg.seed = base.seed + static_cast<std::uint64_t>(k);
    add(std::move(cfg), stem + "/seed" + std::to_string(cfg.seed));
  }
  return *this;
}

Runner& Runner::sweep_good_fraction(int total_clients, const std::vector<int>& good_counts,
                                    double capacity_rps, DefenseMode mode,
                                    Duration duration, std::uint64_t seed,
                                    const std::string& label) {
  const std::string stem = label.empty() ? to_string(mode) : label;
  for (const int good : good_counts) {
    util::require(good >= 0 && good <= total_clients,
                  "Runner: good count outside [0, total_clients]");
    ScenarioConfig cfg =
        lan_scenario(good, total_clients - good, capacity_rps, mode, seed);
    cfg.duration = duration;
    add(std::move(cfg), stem + "/g" + std::to_string(good));
  }
  return *this;
}

Runner& Runner::set_observability(const obs::Observer::Options& opts) {
  util::require(!ran_, "Runner: set_observability before run_all");
  obs_opts_ = opts;
  obs_enabled_ = opts.metrics || opts.trace;
  return *this;
}

Runner& Runner::set_telemetry_indices(std::vector<std::size_t> indices) {
  util::require(!ran_, "Runner: set_telemetry_indices before run_all");
  telemetry_indices_ = std::move(indices);
  return *this;
}

const std::vector<RunOutcome>& Runner::run_all(int n_threads) {
  util::require(!ran_, "Runner::run_all is callable once");
  util::require(telemetry_indices_.empty() || telemetry_indices_.size() == jobs_.size(),
                "Runner: telemetry indices must cover every job");
  ran_ = true;
  if (n_threads <= 0) {
    n_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (n_threads <= 0) n_threads = 1;
  }
  n_threads = std::min<int>(n_threads, static_cast<int>(jobs_.size()));
  outcomes_.resize(jobs_.size());

  // Scenarios are independent (own event loop, seed-derived RNG streams),
  // so a shared work queue is enough; outcomes land at their job's index,
  // which keeps result order — and results themselves — identical to a
  // serial run.
  std::atomic<std::size_t> next{0};
  auto worker = [this, &next] {
    for (std::size_t i = next.fetch_add(1); i < jobs_.size(); i = next.fetch_add(1)) {
      RunOutcome& out = outcomes_[i];
      out.label = jobs_[i].label;
      out.config = jobs_[i].config;
      try {
        if (obs_enabled_) {
          const std::size_t ext =
              telemetry_indices_.empty() ? i : telemetry_indices_[i];
          Experiment e(jobs_[i].config);
          obs::Observer ob(e.loop(), obs_opts_);
          out.result = e.run();
          ob.finish();
          if (ob.metrics_enabled()) {
            out.telemetry.metrics_json = ob.metrics().summary_json().dump();
            ob.metrics().append_timeseries_csv(
                out.telemetry.timeseries_csv,
                std::to_string(ext) + ',' + out.label + ',');
          }
          if (ob.trace_enabled()) {
            bool first = true;
            ob.tracer().append_chrome_events(out.telemetry.trace_json,
                                             static_cast<int>(ext), first);
          }
        } else {
          out.result = run_scenario(jobs_[i].config);
        }
      } catch (const std::exception& e) {
        out.error = e.what();
      } catch (...) {
        out.error = "unknown exception";
      }
    }
  };

  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(n_threads));
    for (int t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return outcomes_;
}

const std::vector<RunOutcome>& Runner::outcomes() const {
  util::require(ran_, "Runner: call run_all first");
  return outcomes_;
}

const RunOutcome& Runner::outcome(std::string_view label) const {
  util::require(ran_, "Runner: call run_all first");
  for (const RunOutcome& o : outcomes_) {
    if (o.label == label) return o;
  }
  throw std::invalid_argument("Runner: no scenario labeled '" + std::string(label) + "'");
}

const ExperimentResult& Runner::result(std::string_view label) const {
  const RunOutcome& o = outcome(label);
  util::require(o.ok(), "Runner: scenario '" + o.label + "' failed: " + o.error);
  return o.result;
}

stats::Table Runner::summary_table() const {
  util::require(ran_, "Runner: call run_all first");
  stats::Table table({"label", "defense", "served", "alloc(good)", "alloc(bad)",
                      "frac-good-served", "sim-s", "wall-s"});
  for (const RunOutcome& o : outcomes_) {
    table.row().add(o.label).add(o.config.defense_name());
    if (o.ok()) {
      table.add(o.result.served_total)
          .add(o.result.allocation_good, 3)
          .add(o.result.allocation_bad, 3)
          .add(o.result.fraction_good_served, 3)
          .add(o.result.sim_duration.sec(), 1)
          .add(o.result.wall_seconds, 2);
    } else {
      table.add("FAILED: " + o.error);
    }
  }
  return table;
}

}  // namespace speakup::exp
