// Ablation A4: the §5 generalization under a hard-request attack.
//
// The threat (§5): if the thinner charges a flat per-request price,
// attackers who send only the hardest requests get a disproportionate share
// of the server's *time*. The quantum auction makes every quantum of
// attention cost a fresh bid. Attackers here are "smart": difficulty-10
// requests, bandwidth concentrated on one payment at a time.
//
// The grid lives in scenarios/abl4.json (difficulty × mechanism, labeled
// "<defense>/d<difficulty>"); `speakup run` on that file reproduces these
// numbers exactly.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Ablation A4", "flat auction (§3.3) vs quantum auction (§5)");
  bench::print_paper_note(
      "under a hard-request-only attack the flat auction cedes most server "
      "time to attackers; the quantum auction restores the bandwidth-"
      "proportional time split (~0.5 here)");

  const int kDifficulties[] = {1, 5, 10};
  const char* const kMechanisms[] = {"auction", "quantum"};

  exp::ScenarioFile file = bench::load_scenarios("abl4.json");
  bench::apply_full_duration(file);
  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  stats::Table table({"bad-difficulty", "mechanism", "server-time-good", "server-time-bad",
                      "suspensions"});
  for (const int difficulty : kDifficulties) {
    for (const char* const mechanism : kMechanisms) {
      const exp::ExperimentResult& r =
          runner.result(std::string(mechanism) + "/d" + std::to_string(difficulty));
      const bool quantum = std::string(mechanism) == "quantum";
      table.row()
          .add(difficulty)
          .add(quantum ? "quantum (5)" : "flat (3.3)")
          .add(r.server_time_good, 3)
          .add(r.server_time_bad, 3)
          .add(quantum ? r.thinner.counters.get("suspensions") : 0);
    }
  }
  table.print(std::cout);
  return 0;
}
