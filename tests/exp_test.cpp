// Tests for the experiment harness: scenario construction, validation,
// determinism, and basic sanity of every defense mode end to end.
#include <gtest/gtest.h>

#include "core/theory.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

namespace speakup::exp {
namespace {

ScenarioConfig small_lan(DefenseMode mode, double c = 50.0) {
  ScenarioConfig cfg = lan_scenario(/*good=*/5, /*bad=*/5, c, mode, /*seed=*/3);
  cfg.duration = Duration::seconds(20.0);
  return cfg;
}

TEST(Scenario, LanScenarioBuildsPaperGroups) {
  const ScenarioConfig cfg = lan_scenario(25, 25, 100.0, DefenseMode::kAuction);
  ASSERT_EQ(cfg.groups.size(), 2u);
  EXPECT_EQ(cfg.groups[0].label, "good");
  EXPECT_EQ(cfg.groups[0].count, 25);
  EXPECT_DOUBLE_EQ(cfg.groups[0].workload.lambda, 2.0);
  EXPECT_EQ(cfg.groups[1].label, "bad");
  EXPECT_EQ(cfg.groups[1].workload.window, 20);
  EXPECT_EQ(cfg.groups[0].access_bw.bits_per_sec(), 2'000'000);
}

TEST(Scenario, ModeNames) {
  EXPECT_STREQ(to_string(DefenseMode::kNone), "none");
  EXPECT_STREQ(to_string(DefenseMode::kAuction), "auction");
  EXPECT_STREQ(to_string(DefenseMode::kRetry), "retry");
  EXPECT_STREQ(to_string(DefenseMode::kQuantumAuction), "quantum");
  // Round trip, exhaustively (parse_defense_mode is the factory/CLI path).
  for (const DefenseMode m : kAllDefenseModes) {
    ASSERT_EQ(parse_defense_mode(to_string(m)), m);
  }
}

TEST(Scenario, DefenseNameDefaultsToModeAndCanBeOverridden) {
  ScenarioConfig cfg;
  cfg.mode = DefenseMode::kRetry;
  EXPECT_EQ(cfg.defense_name(), "retry");
  cfg.defense = "custom";
  EXPECT_EQ(cfg.defense_name(), "custom");
}

TEST(Experiment, RejectsInvalidConfig) {
  ScenarioConfig cfg = small_lan(DefenseMode::kAuction);
  cfg.capacity_rps = 0;
  EXPECT_THROW(Experiment{cfg}, std::invalid_argument);
  cfg = small_lan(DefenseMode::kAuction);
  cfg.duration = Duration::zero();
  EXPECT_THROW(Experiment{cfg}, std::invalid_argument);
  cfg = small_lan(DefenseMode::kAuction);
  cfg.groups[0].behind_bottleneck = true;  // no bottleneck configured
  EXPECT_THROW(Experiment{cfg}, std::invalid_argument);
}

TEST(Experiment, RunIsCallableOnce) {
  Experiment e(small_lan(DefenseMode::kNone));
  (void)e.run();
  EXPECT_THROW((void)e.run(), std::invalid_argument);
}

TEST(Experiment, ExposesSelectedThinner) {
  // One polymorphic front end per experiment; the typed accessors are
  // dynamic_cast views of it.
  Experiment a(small_lan(DefenseMode::kAuction));
  ASSERT_NE(a.front_end(), nullptr);
  EXPECT_EQ(a.front_end()->name(), "auction");
  EXPECT_NE(a.auction_thinner(), nullptr);
  EXPECT_EQ(static_cast<core::FrontEnd*>(a.auction_thinner()), a.front_end());
  EXPECT_EQ(a.retry_thinner(), nullptr);
  Experiment r(small_lan(DefenseMode::kRetry));
  EXPECT_NE(r.retry_thinner(), nullptr);
  EXPECT_EQ(r.front_end()->name(), "retry");
  Experiment n(small_lan(DefenseMode::kNone));
  EXPECT_NE(n.no_defense(), nullptr);
  EXPECT_EQ(n.front_end()->name(), "none");
  Experiment q(small_lan(DefenseMode::kQuantumAuction));
  EXPECT_NE(q.quantum_thinner(), nullptr);
  EXPECT_EQ(q.front_end()->name(), "quantum");
}

TEST(Experiment, DeterministicAcrossRuns) {
  const ExperimentResult a = run_scenario(small_lan(DefenseMode::kAuction));
  const ExperimentResult b = run_scenario(small_lan(DefenseMode::kAuction));
  EXPECT_EQ(a.served_total, b.served_total);
  EXPECT_EQ(a.served_good, b.served_good);
  EXPECT_EQ(a.served_bad, b.served_bad);
  EXPECT_EQ(a.thinner.payment_bytes_total, b.thinner.payment_bytes_total);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Experiment, SeedChangesOutcomeDetails) {
  ScenarioConfig cfg = small_lan(DefenseMode::kAuction);
  const ExperimentResult a = run_scenario(cfg);
  cfg.seed = 999;
  const ExperimentResult b = run_scenario(cfg);
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(Experiment, NoDefenseMatchesRequestRateTheory) {
  // Good demand 5*2 = 10 req/s, bad demand ~5*40 = 200 req/s; the random
  // drop baseline gives good clients about g/(g+B) of the server.
  const ExperimentResult r = run_scenario(small_lan(DefenseMode::kNone));
  EXPECT_GT(r.served_total, 0);
  const double ideal = core::theory::no_defense_good_allocation(10.0, 200.0);
  EXPECT_NEAR(r.allocation_good, ideal, 0.05);
  // The server is near-saturated (idle gaps between completion and the next
  // arrival keep it slightly below 1 at this small scale: ~20 ms service vs
  // ~5 ms mean arrival gap -> ~0.8).
  EXPECT_GT(r.server_busy_fraction, 0.7);
}

TEST(Experiment, AuctionBeatsNoDefenseForGoodClients) {
  // With 5 good clients the good population is demand-limited: g = 10 req/s
  // against c = 50, so the §3.1 goal min(g, c*G/(G+B)) = g — i.e. the good
  // clients should be fully satisfied (allocation 10/50 = 0.2) rather than
  // capture the bandwidth-proportional 0.5.
  const ExperimentResult off = run_scenario(small_lan(DefenseMode::kNone));
  const ExperimentResult on = run_scenario(small_lan(DefenseMode::kAuction));
  EXPECT_GT(on.allocation_good, off.allocation_good * 3);
  EXPECT_NEAR(on.allocation_good, 0.2, 0.05);
  EXPECT_GT(on.fraction_good_served, 0.9);
}

TEST(Experiment, RetryModeAlsoProtectsGoodClients) {
  const ExperimentResult off = run_scenario(small_lan(DefenseMode::kNone));
  const ExperimentResult on = run_scenario(small_lan(DefenseMode::kRetry));
  EXPECT_GT(on.allocation_good, off.allocation_good * 2);
}

TEST(Experiment, QuantumModeServesBothClasses) {
  const ExperimentResult r = run_scenario(small_lan(DefenseMode::kQuantumAuction));
  EXPECT_GT(r.served_good, 0);
  EXPECT_GT(r.served_bad, 0);
  EXPECT_GT(r.server_time_good, 0.15);
}

TEST(Experiment, OverProvisionedServerSatisfiesEveryone) {
  // c far above demand: all good requests served, prices ~ 0.
  const ExperimentResult r = run_scenario(small_lan(DefenseMode::kAuction, /*c=*/500.0));
  EXPECT_GT(r.fraction_good_served, 0.99);
  EXPECT_LT(r.thinner.price_good.mean(), 20'000.0);
}

TEST(Experiment, GroupResultsSumToTotals) {
  const ExperimentResult r = run_scenario(small_lan(DefenseMode::kAuction));
  std::int64_t sum = 0;
  double alloc = 0.0;
  for (const GroupResult& g : r.groups) {
    sum += g.totals.served;
    alloc += g.allocation;
    EXPECT_EQ(g.served_per_client.size(), static_cast<std::size_t>(g.count));
  }
  // Thinner-side and client-side counts may differ by in-flight responses
  // at the end of the run.
  EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(r.served_total), 10.0);
  EXPECT_NEAR(alloc, 1.0, 0.02);
}

TEST(Experiment, BottleneckTopologyRuns) {
  ScenarioConfig cfg = small_lan(DefenseMode::kAuction);
  cfg.bottleneck = BottleneckSpec{Bandwidth::mbps(4.0), Duration::micros(500), 50'000};
  cfg.groups[1].behind_bottleneck = true;  // bad clients behind the bottleneck
  const ExperimentResult r = run_scenario(cfg);
  EXPECT_GT(r.served_total, 0);
  // 5 bad clients could deliver 10 Mbit/s but the bottleneck caps them at
  // 4 Mbit/s, so the (demand-limited) good clients stay fully served.
  EXPECT_GT(r.fraction_good_served, 0.9);
  EXPECT_NEAR(r.allocation_good, 0.2, 0.05);
}

TEST(Experiment, CollateralDownloaderMeasuresLatency) {
  ScenarioConfig cfg;
  cfg.mode = DefenseMode::kAuction;
  cfg.capacity_rps = 2.0;
  cfg.seed = 11;
  cfg.duration = Duration::seconds(40.0);
  ClientGroupSpec g;
  g.label = "good";
  g.count = 3;
  g.workload = client::good_client_params();
  g.behind_bottleneck = true;
  cfg.groups.push_back(g);
  cfg.bottleneck = BottleneckSpec{Bandwidth::mbps(1.0), Duration::millis(100), 100'000};
  CollateralSpec col;
  col.file_size = kilobytes(4);
  col.downloads = 20;
  cfg.collateral = col;
  const ExperimentResult r = run_scenario(cfg);
  EXPECT_GT(r.collateral_latencies.count(), 5u);
  EXPECT_GT(r.collateral_latencies.mean(), 0.0);
}

TEST(Experiment, ReportsRunMetadata) {
  const ExperimentResult r = run_scenario(small_lan(DefenseMode::kAuction));
  EXPECT_GT(r.events_executed, 1000u);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_EQ(r.sim_duration.sec(), 20.0);
}

}  // namespace
}  // namespace speakup::exp
