// Figure 4: mean and 90th-percentile time that served good requests spent
// uploading dummy bytes, for c = 50, 100, 200 requests/s (G = B = 50
// Mbit/s). With a lightly loaded server (c = 200) speak-up introduces
// almost no latency.
//
// The grid lives in scenarios/fig4.json — the same file `speakup run`
// executes — so the bench and the CLI reproduce identical numbers.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 4", "payment time of served good requests vs capacity");
  bench::print_paper_note(
      "mean payment time shrinks as capacity grows; at c = 200 it is near zero "
      "(paper: ~1 s mean at c = 50, ~0.6 s at c = 100, ~0 at c = 200)");

  exp::ScenarioFile file = bench::load_scenarios("fig4.json");
  bench::apply_full_duration(file);

  // The x-axis comes from the file itself, so editing the JSON grid never
  // leaves this report stale.
  std::vector<std::string> labels;
  for (const exp::LabeledScenario& s : file.scenarios) labels.push_back(s.label);

  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  stats::Table table({"capacity", "mean-payment-s", "p90-payment-s", "samples"});
  for (const std::string& label : labels) {
    const exp::ExperimentResult& r = runner.result(label);
    table.row()
        .add(static_cast<std::int64_t>(runner.outcome(label).config.capacity_rps))
        .add(r.thinner.payment_time_good.mean(), 3)
        .add(r.thinner.payment_time_good.percentile(0.9), 3)
        .add(static_cast<std::int64_t>(r.thinner.payment_time_good.count()));
  }
  table.print(std::cout);
  return 0;
}
