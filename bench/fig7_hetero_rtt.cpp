// Figure 7: heterogeneous RTTs. 50 LAN clients in five categories:
// category i (10 clients) has RTT ~= 100*i ms to the thinner; everyone has
// 2 Mbit/s; c = 10 requests/s. Run twice: all clients good, then all bad.
// Good clients with long RTTs get a smaller share (slow start + the 2-RTT
// quiescence between POSTs); bad clients' RTTs matter little because they
// keep many concurrent connections.
#include <iostream>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

namespace {

speakup::exp::ScenarioConfig scenario(bool bad) {
  using namespace speakup;
  exp::ScenarioConfig cfg;
  cfg.mode = exp::DefenseMode::kAuction;
  cfg.capacity_rps = 10.0;
  cfg.seed = 26;
  cfg.duration = bench::experiment_duration();
  for (int i = 1; i <= 5; ++i) {
    exp::ClientGroupSpec g;
    g.label = (bad ? "bad-rtt" : "good-rtt") + std::to_string(100 * i);
    g.count = 10;
    g.workload = bad ? client::bad_client_params() : client::good_client_params();
    // Path RTT = 2 * (client one-way + thinner one-way); thinner side is
    // 0.5 ms, so aim the client link at (50*i - 0.5) ms.
    g.access_delay = Duration::micros(50'000 * i - 500);
    cfg.groups.push_back(g);
  }
  return cfg;
}

}  // namespace

int main() {
  using namespace speakup;
  bench::print_banner("Figure 7", "per-category server allocation vs client RTT");
  bench::print_paper_note(
      "all-good: long-RTT categories fall below the 0.2 ideal (no category "
      "below ~half or above ~double); all-bad: allocation stays ~flat");

  exp::Runner runner;
  runner.add(scenario(false), "all-good").add(scenario(true), "all-bad");
  bench::run_all(runner);
  const exp::ExperimentResult& good = runner.result("all-good");
  const exp::ExperimentResult& bad = runner.result("all-bad");

  stats::Table table({"RTT-ms", "all-good-alloc", "all-bad-alloc", "ideal"});
  for (int i = 1; i <= 5; ++i) {
    table.row()
        .add(static_cast<std::int64_t>(100 * i))
        .add(good.groups[static_cast<std::size_t>(i - 1)].allocation, 3)
        .add(bad.groups[static_cast<std::size_t>(i - 1)].allocation, 3)
        .add(0.2, 3);
  }
  table.print(std::cout);
  return 0;
}
