// Figure 9: effect of speak-up traffic on an innocent bystander.
//
// Topology (§7.7): 10 good speak-up clients and one HTTP downloader H share
// a bottleneck m (1 Mbit/s, 100 ms one-way delay); on the other side sit
// the thinner (c = 2 requests/s) and a separate web server. H downloads a
// file repeatedly; we report mean and standard deviation of the end-to-end
// latency with and without the speak-up clients running, across file sizes.
// 16 independent scenarios — the flagship parallel sweep.
//
// The grid lives in scenarios/lossy.json ("off/<size>KB" and "on/<size>KB"
// rows); `speakup run` on that file reproduces these numbers exactly. Full
// mode stretches every download count and duration to the paper's scale.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 9", "HTTP download latency across a shared bottleneck");
  bench::print_paper_note(
      "download times inflate by ~6x for a 1 KB transfer and ~4.5x for 64 KB "
      "when speak-up traffic shares the bottleneck (a deliberately pessimistic "
      "configuration)");

  exp::ScenarioFile file = bench::load_scenarios("lossy.json");
  if (bench::full_mode()) {
    // The checked-in file carries the quick sizes (40 downloads, 240 s);
    // full mode restores the paper's 100 downloads and the matching window.
    for (exp::LabeledScenario& s : file.scenarios) {
      s.config.collateral->downloads = 100;
      s.config.duration = Duration::seconds(600.0);
    }
  }
  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  const std::int64_t kSizesKb[] = {1, 2, 4, 8, 16, 32, 64, 100};
  stats::Table table({"size-KB", "no-speakup-mean-s", "no-speakup-sd", "speakup-mean-s",
                      "speakup-sd", "inflation"});
  for (const std::int64_t kb : kSizesKb) {
    const exp::ExperimentResult& off = runner.result("off/" + std::to_string(kb) + "KB");
    const exp::ExperimentResult& on = runner.result("on/" + std::to_string(kb) + "KB");
    const double mean_off = off.collateral_latencies.mean();
    const double mean_on = on.collateral_latencies.mean();
    table.row()
        .add(kb)
        .add(mean_off, 3)
        .add(off.collateral_latencies.stddev(), 3)
        .add(mean_on, 3)
        .add(on.collateral_latencies.stddev(), 3)
        .add(mean_off > 0 ? mean_on / mean_off : 0.0, 2);
  }
  table.print(std::cout);
  return 0;
}
