// Drop-tail FIFO queue attached to each link direction.
//
// Capacity is in bytes (wire size). An arriving packet that does not fit is
// dropped — the only loss mechanism in the simulator, as in a real drop-tail
// router. Drop and occupancy counters feed the experiment reports.
//
// Storage is a growable ring buffer rather than std::deque: a deque
// allocates and frees chunk blocks continuously while traffic streams
// through it, whereas the ring doubles a few times early on and then stays
// allocation-free for the rest of the run.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "util/assert.hpp"

namespace speakup::net {

class DropTailQueue {
 public:
  explicit DropTailQueue(Bytes capacity_bytes) : capacity_(capacity_bytes) {
    SPEAKUP_ASSERT(capacity_bytes > 0);
  }

  /// Attempts to enqueue; returns false (and counts a drop) on overflow.
  bool push(Packet p) {
    if (occupancy_ + p.wire_size > capacity_) {
      ++drops_;
      dropped_bytes_ += p.wire_size;
      return false;
    }
    occupancy_ += p.wire_size;
    ++enqueued_;
    if (count_ == ring_.size()) grow();
    ring_[(head_ + count_) % ring_.size()] = std::move(p);
    ++count_;
    return true;
  }

  /// Removes and returns the head packet; empty queue yields nullopt.
  std::optional<Packet> pop() {
    if (count_ == 0) return std::nullopt;
    Packet p = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    occupancy_ -= p.wire_size;
    SPEAKUP_ASSERT(occupancy_ >= 0);
    return p;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size_packets() const { return count_; }
  [[nodiscard]] Bytes size_bytes() const { return occupancy_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t drops() const { return drops_; }
  [[nodiscard]] Bytes dropped_bytes() const { return dropped_bytes_; }
  [[nodiscard]] std::int64_t enqueued() const { return enqueued_; }

 private:
  void grow() {
    std::vector<Packet> bigger(ring_.empty() ? 8 : ring_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(ring_[(head_ + i) % ring_.size()]);
    }
    ring_ = std::move(bigger);
    head_ = 0;
  }

  Bytes capacity_;
  Bytes occupancy_ = 0;
  std::int64_t drops_ = 0;
  Bytes dropped_bytes_ = 0;
  std::int64_t enqueued_ = 0;
  std::vector<Packet> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace speakup::net
