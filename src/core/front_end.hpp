// The polymorphic defense interface.
//
// The paper's argument is a *comparison between defenses* — no defense vs.
// random-drops/retries (§3.2) vs. the virtual auction (§3.3) vs. the
// quantum auction (§5). Every defense is a "front end": it sits on the
// thinner host, accepts the request (and possibly payment) channels, and
// decides which request the protected server works on next. FrontEnd is the
// common surface the experiment harness, the Runner, and the benches
// program against; concrete defenses register themselves with
// FrontEndFactory (front_end_factory.hpp) so new ones plug in without
// touching the harness.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/thinner_stats.hpp"
#include "util/units.hpp"

namespace speakup::core {

/// Construction-time knobs, a superset over all built-in defenses; each
/// defense reads the fields it understands and ignores the rest. Mirrors
/// the thinner section of exp::ScenarioConfig.
struct FrontEndConfig {
  double capacity_rps = 100.0;
  Bytes response_body = 1000;
  Duration payment_window = Duration::seconds(10);
  Duration quantum = Duration::zero();  // 0 -> 1/c (quantum auction only)
  Duration suspension_limit = Duration::seconds(30);
  // "elastic" (Bohatei-style scale-up): capacity may grow to
  // elastic_max_scale x the base rate, doubling after each monitoring
  // interval whose busy fraction reaches elastic_threshold. A max scale of
  // 1.0 arms no monitor at all (event-identical to "none").
  double elastic_max_scale = 4.0;
  Duration elastic_interval = Duration::seconds(5);
  double elastic_threshold = 0.9;
  // "puzzle" (proof-of-work currency): seconds of client compute per unit
  // of request difficulty before a held request becomes admissible.
  Duration puzzle_cost = Duration::seconds(2);
  std::uint32_t request_port = 80;
  std::uint32_t payment_port = 81;
};

class FrontEnd {
 public:
  FrontEnd() = default;
  virtual ~FrontEnd() = default;

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Registry name of this defense ("auction", "retry", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// The statistics every defense variant exposes.
  [[nodiscard]] virtual const ThinnerStats& stats() const = 0;

  /// Requests currently tracked (contending, paying, or being served).
  [[nodiscard]] virtual std::size_t contending() const = 0;

  /// Served request count, all classes.
  [[nodiscard]] std::int64_t served() const { return stats().served_total(); }

  // Server-attention accounting, by client class (§5 measures *time*, not
  // counts, because heterogeneous requests make the two differ).
  [[nodiscard]] virtual Duration server_busy_good() const = 0;
  [[nodiscard]] virtual Duration server_busy_bad() const = 0;
  /// Total busy time, all classes (>= good + bad when neutral traffic ran).
  [[nodiscard]] virtual Duration server_busy_total() const = 0;

  // Lifecycle hooks: the experiment harness calls these around the
  // simulation. Defenses that need to warm caches, arm timers, or flush
  // final accounting override them; the built-ins need neither.
  virtual void on_run_start() {}
  virtual void on_run_end() {}
};

}  // namespace speakup::core
