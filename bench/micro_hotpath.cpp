// Hot-path microbenchmarks: events/sec through sim::EventLoop and the
// net::Link packet pipeline, plus wall-seconds per simulated-second on the
// checked-in smoke scenario. This is the harness behind BENCH_hotpath.json —
// the repo's perf trajectory for the ROADMAP's "Faster hot path" item.
//
// Usage:
//   micro_hotpath                         # human-readable table
//   micro_hotpath --json out.json         # also write machine-readable JSON
//   micro_hotpath --check BENCH_hotpath.json [--tolerance 0.25]
//                                         # exit 1 if any bench regresses
//                                         # >tolerance vs the baseline file
//   micro_hotpath --repeat N              # best-of-N (default 3)
//
// Benches:
//   timer_churn      self-rescheduling timer chains (pure schedule+fire)
//   cancel_heavy     retry-timer pattern: schedule timeouts that are almost
//                    always cancelled before firing (tombstone pressure)
//   packet_pipeline  packets ping-ponging across a Link (serialize +
//                    propagate + deliver per hop)
//   loss_recovery    2048 TCP bulk transfers crushing an oversubscribed
//                    bottleneck: sustained queue loss, fast recovery, RTO
//                    backoff, and a per-ack RTO re-arm on every flight
//   million_clients  scenarios/million_clients.json: 10^5 pooled clients
//                    (client::ClientPool engine), simulation only
//   smoke_scenario   full scenarios/smoke.json sweep, serial (end to end)
//
// ops_per_sec means executed events/sec except for cancel_heavy, where it
// counts schedule+cancel operations (the events mostly never fire).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario_io.hpp"
#include "net/network.hpp"
#include "sim/event_loop.hpp"
#include "transport/host.hpp"
#include "util/json.hpp"

namespace speakup {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchResult {
  std::string name;
  std::string ops_kind;      // what one "op" is
  double ops = 0;            // per run
  double wall_seconds = 0;   // best (fastest) run
  double sim_seconds = 0;    // simulated time covered (0 when meaningless)
  [[nodiscard]] double ops_per_sec() const { return ops / wall_seconds; }
};

/// Runs `body` `repeat` times and keeps the fastest wall time (standard
/// microbench practice: the minimum is the least noisy estimator).
template <typename F>
BenchResult best_of(const std::string& name, const std::string& ops_kind, int repeat, F body) {
  BenchResult best;
  best.name = name;
  best.ops_kind = ops_kind;
  for (int r = 0; r < repeat; ++r) {
    BenchResult cur;
    cur.name = name;
    cur.ops_kind = ops_kind;
    const auto t0 = Clock::now();
    body(cur);
    cur.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r == 0 || cur.wall_seconds < best.wall_seconds) best = cur;
  }
  return best;
}

// --- timer_churn: K chains, each firing and rescheduling itself ----------

BenchResult bench_timer_churn(int repeat) {
  constexpr int kChains = 64;
  constexpr std::int64_t kTotalEvents = 2'000'000;
  return best_of("timer_churn", "events_fired", repeat, [](BenchResult& out) {
    sim::EventLoop loop;
    std::int64_t fired = 0;
    for (int c = 0; c < kChains; ++c) {
      // Each chain reschedules itself 1 us out until the quota is met.
      auto self = std::make_shared<std::function<void()>>();
      *self = [&loop, &fired, self] {
        if (++fired >= kTotalEvents) return;
        loop.schedule(Duration::micros(1), *self);
      };
      loop.schedule(Duration::micros(1), *self);
    }
    loop.run();
    out.ops = static_cast<double>(fired);
    out.sim_seconds = loop.now().sec();
  });
}

// --- cancel_heavy: retry timers that almost never fire -------------------

BenchResult bench_cancel_heavy(int repeat) {
  constexpr int kTimersPerTick = 8;
  constexpr std::int64_t kTicks = 120'000;
  return best_of("cancel_heavy", "schedule_or_cancel_ops", repeat, [](BenchResult& out) {
    sim::EventLoop loop;
    std::int64_t ops = 0;
    std::int64_t ticks = 0;
    std::vector<sim::EventId> armed;
    auto driver = std::make_shared<std::function<void()>>();
    *driver = [&loop, &ops, &ticks, &armed, driver] {
      // Cancel the previous tick's timeouts (the request "completed")...
      for (sim::EventId& id : armed) {
        loop.cancel(id);
        ++ops;
      }
      armed.clear();
      // ...and arm fresh ones 10 ms out, as a request pipeline would.
      for (int i = 0; i < kTimersPerTick; ++i) {
        armed.push_back(loop.schedule(Duration::millis(10), [] {}));
        ++ops;
      }
      if (++ticks < kTicks) {
        loop.schedule(Duration::micros(1), *driver);
        ++ops;
      }
    };
    loop.schedule(Duration::micros(1), *driver);
    loop.run();
    out.ops = static_cast<double>(ops);
    out.sim_seconds = loop.now().sec();
  });
}

// --- packet_pipeline: ping-pong across one link --------------------------

class PingPong : public net::Node {
 public:
  PingPong(net::Network& net, net::NodeId id, std::string name)
      : net::Node(net, id, std::move(name)) {}

  void on_packet(net::Packet p) override {
    ++received_;
    if (stop_) return;
    network().forward(id(), net::make_data_packet(id(), 1, p.src, 1, 0, 1000));
  }

  void stop() { stop_ = true; }
  [[nodiscard]] std::int64_t received() const { return received_; }

 private:
  std::int64_t received_ = 0;
  bool stop_ = false;
};

BenchResult bench_packet_pipeline(int repeat) {
  constexpr int kInFlight = 16;
  constexpr double kSimSeconds = 30.0;
  return best_of("packet_pipeline", "events_fired", repeat, [](BenchResult& out) {
    sim::EventLoop loop;
    net::Network net(loop);
    auto& a = net.add_node<PingPong>("a");
    auto& b = net.add_node<PingPong>("b");
    net.connect(a, b, net::LinkSpec{Bandwidth::gbps(10.0), Duration::micros(50), 10'000'000});
    net.build_routes();
    for (int i = 0; i < kInFlight; ++i) {
      net.forward(a.id(), net::make_data_packet(a.id(), 1, b.id(), 1, 0, 1000));
    }
    loop.run_until(SimTime::zero() + Duration::seconds(kSimSeconds));
    a.stop();
    b.stop();
    loop.run();  // drain in-flight packets so the loop ends empty
    out.ops = static_cast<double>(loop.executed_events());
    out.sim_seconds = kSimSeconds;
  });
}

// --- loss_recovery: TCP under sustained loss -----------------------------
//
// Exercises the paths the other benches miss: the out-of-order interval
// tracker (every drop leaves a hole at the receiver), fast retransmit /
// recovery, RTO firing with exponential backoff, and — on every single
// ack — an RTO timer re-arm (cancel + schedule ~200 ms out). 2048
// connections keep a large pending-RTO population alive the whole run,
// which is what separates an O(1) timer structure from an O(log n) one:
// a heap pays for that population on every push, the wheel does not.

BenchResult bench_loss_recovery(int repeat) {
  constexpr int kConns = 2048;
  constexpr double kSimSeconds = 20.0;
  BenchResult best;
  best.name = "loss_recovery";
  best.ops_kind = "events_fired";
  // Unlike the other benches, topology construction here is material
  // (2048 hosts and links) and is not what this bench measures, so each
  // run builds first and times only the simulation.
  for (int r = 0; r < repeat; ++r) {
    sim::EventLoop loop;
    net::Network net(loop);
    auto& server = net.add_node<transport::Host>("server");
    auto& sw = net.add_switch("core");
    // Heavily oversubscribed bottleneck with a shallow queue: the senders
    // could generate >1 Gbit/s against 100 Mbit/s of service.
    net.connect(sw, server,
                net::LinkSpec{Bandwidth::mbps(100.0), Duration::millis(5), 30'000});
    std::vector<transport::Host*> clients;
    clients.reserve(kConns);
    for (int i = 0; i < kConns; ++i) {
      auto& c = net.add_node<transport::Host>("c" + std::to_string(i));
      net.connect(c, sw, net::LinkSpec{Bandwidth::mbps(10.0), Duration::millis(1), 48'000});
      clients.push_back(&c);
    }
    net.build_routes();
    server.listen(80, [](transport::TcpConnection&) {});
    for (auto* c : clients) c->connect(server.id(), 80).write(megabytes(1000));
    const auto t0 = Clock::now();
    loop.run_until(SimTime::zero() + Duration::seconds(kSimSeconds));
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r == 0 || wall < best.wall_seconds) {
      best.wall_seconds = wall;
      best.ops = static_cast<double>(loop.executed_events());
      best.sim_seconds = kSimSeconds;
    }
  }
  return best;
}

// --- million_clients: the pooled client engine at 10^5 clients -----------
//
// Runs scenarios/million_clients.json (10^5 struct-of-arrays clients on
// client::ClientPool — flash-crowd good + botnet bad, defense none).
// Topology construction (10^5 hosts and access links) is material and not
// what the client engine is being measured on, so each run builds the
// Experiment untimed and times only the simulation, like loss_recovery.

BenchResult bench_million_clients(int repeat) {
  const exp::ScenarioFile file = bench::load_scenarios("million_clients.json");
  BenchResult best;
  best.name = "million_clients";
  best.ops_kind = "events_fired";
  for (int r = 0; r < repeat; ++r) {
    double wall = 0;
    std::uint64_t events = 0;
    double sim = 0;
    for (const exp::LabeledScenario& s : file.scenarios) {
      exp::Experiment e(s.config);
      const auto t0 = Clock::now();
      const exp::ExperimentResult res = e.run();
      wall += std::chrono::duration<double>(Clock::now() - t0).count();
      events += res.events_executed;
      sim += res.sim_duration.sec();
    }
    if (r == 0 || wall < best.wall_seconds) {
      best.wall_seconds = wall;
      best.ops = static_cast<double>(events);
      best.sim_seconds = sim;
    }
  }
  return best;
}

// --- smoke_scenario: the checked-in CI sweep, serial ---------------------

BenchResult bench_smoke_scenario(int repeat) {
  const exp::ScenarioFile file = bench::load_scenarios("smoke.json");
  return best_of("smoke_scenario", "events_fired", repeat, [&file](BenchResult& out) {
    std::uint64_t events = 0;
    double sim = 0;
    for (const exp::LabeledScenario& s : file.scenarios) {
      const exp::ExperimentResult r = exp::run_scenario(s.config);
      events += r.events_executed;
      sim += r.sim_duration.sec();
    }
    out.ops = static_cast<double>(events);
    out.sim_seconds = sim;
  });
}

// --- output --------------------------------------------------------------

util::json::Value to_json(const std::vector<BenchResult>& results) {
  util::json::Value::Array benches;
  for (const BenchResult& r : results) {
    util::json::Value b(util::json::Value::Object{});
    b.set("name", r.name);
    b.set("ops_kind", r.ops_kind);
    b.set("ops", r.ops);
    b.set("wall_seconds", r.wall_seconds);
    b.set("sim_seconds", r.sim_seconds);
    b.set("ops_per_sec", r.ops_per_sec());
    if (r.sim_seconds > 0) {
      b.set("wall_sec_per_sim_sec", r.wall_seconds / r.sim_seconds);
    }
    benches.push_back(std::move(b));
  }
  util::json::Value doc(util::json::Value::Object{});
  doc.set("schema", "speakup-hotpath-bench-v1");
  doc.set("benches", util::json::Value(std::move(benches)));
  return doc;
}

void print_table(const std::vector<BenchResult>& results) {
  std::printf("%-18s %14s %12s %14s %12s\n", "bench", "ops", "wall_s", "ops/sec",
              "wall/sim_s");
  for (const BenchResult& r : results) {
    std::printf("%-18s %14.0f %12.4f %14.0f %12s\n", r.name.c_str(), r.ops, r.wall_seconds,
                r.ops_per_sec(),
                r.sim_seconds > 0
                    ? util::json::number_to_string(r.wall_seconds / r.sim_seconds).c_str()
                    : "-");
  }
}

/// Compares against a baseline JSON (the checked-in BENCH_hotpath.json).
/// Returns the number of benches whose ops_per_sec regressed by more than
/// `tolerance` (fractional). Benches present on only one side are skipped
/// with a warning so adding a bench doesn't break the gate retroactively.
int check_against(const std::vector<BenchResult>& results, const std::string& baseline_path,
                  double tolerance) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", baseline_path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const util::json::Value doc = util::json::parse(ss.str());
  const util::json::Value* benches = doc.find("benches");
  if (benches == nullptr || !benches->is_array()) {
    std::fprintf(stderr, "%s: no \"benches\" array\n", baseline_path.c_str());
    return 1;
  }
  int regressions = 0;
  for (const BenchResult& r : results) {
    const util::json::Value* base = nullptr;
    for (const util::json::Value& b : benches->as_array()) {
      const util::json::Value* name = b.find("name");
      if (name != nullptr && name->is_string() && name->as_string() == r.name) {
        base = &b;
        break;
      }
    }
    if (base == nullptr) {
      std::fprintf(stderr, "note: bench %s has no baseline entry; skipped\n", r.name.c_str());
      continue;
    }
    const util::json::Value* base_ops_v = base->find("ops_per_sec");
    if (base_ops_v == nullptr || !base_ops_v->is_number()) {
      std::fprintf(stderr, "%s: entry %s has no numeric \"ops_per_sec\"\n",
                   baseline_path.c_str(), r.name.c_str());
      ++regressions;
      continue;
    }
    const double base_ops = base_ops_v->as_number();
    const double floor = base_ops * (1.0 - tolerance);
    const bool ok = r.ops_per_sec() >= floor;
    std::printf("check %-18s baseline %14.0f current %14.0f (floor %14.0f) %s\n",
                r.name.c_str(), base_ops, r.ops_per_sec(), floor, ok ? "ok" : "REGRESSED");
    if (!ok) ++regressions;
  }
  return regressions;
}

int run(int argc, char** argv) {
  std::string json_out;
  std::string check_path;
  double tolerance = 0.25;
  int repeat = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_out = next("--json");
    } else if (arg == "--check") {
      check_path = next("--check");
    } else if (arg == "--tolerance") {
      tolerance = std::atof(next("--tolerance").c_str());
    } else if (arg == "--repeat") {
      repeat = std::atoi(next("--repeat").c_str());
    } else {
      std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (repeat < 1) repeat = 1;

  std::vector<BenchResult> results;
  results.push_back(bench_timer_churn(repeat));
  results.push_back(bench_cancel_heavy(repeat));
  results.push_back(bench_packet_pipeline(repeat));
  results.push_back(bench_loss_recovery(repeat));
  results.push_back(bench_million_clients(repeat));
  results.push_back(bench_smoke_scenario(repeat));
  print_table(results);

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << to_json(results).dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  if (!check_path.empty()) {
    const int regressions = check_against(results, check_path, tolerance);
    if (regressions > 0) {
      std::fprintf(stderr, "%d bench(es) regressed more than %.0f%%\n", regressions,
                   tolerance * 100.0);
      return 1;
    }
    std::printf("all benches within %.0f%% of baseline\n", tolerance * 100.0);
  }
  return 0;
}

}  // namespace
}  // namespace speakup

int main(int argc, char** argv) { return speakup::run(argc, argv); }
