#include "exp/experiment.hpp"

#include <chrono>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace speakup::exp {

Experiment::Experiment(ScenarioConfig cfg) : cfg_(std::move(cfg)) {
  util::require(cfg_.capacity_rps > 0, "capacity must be positive");
  util::require(cfg_.duration > Duration::zero(), "duration must be positive");
  build();
}

Experiment::~Experiment() = default;

void Experiment::build() {
  net_ = std::make_unique<net::Network>(loop_);

  // LAN core and the thinner behind a fat access link (condition C1).
  net::Switch& core = net_->add_switch("core");
  thinner_host_ = &net_->add_node<transport::Host>("thinner");
  net_->connect(*thinner_host_, core,
                net::LinkSpec{cfg_.thinner_bw, cfg_.thinner_delay, cfg_.thinner_queue});

  // Optional shared bottleneck subtree (§7.6 link l / §7.7 link m).
  net::Switch* bn_switch = nullptr;
  if (cfg_.bottleneck.has_value()) {
    bn_switch = &net_->add_switch("bottleneck-sw");
    net_->connect(*bn_switch, core,
                  net::LinkSpec{cfg_.bottleneck->rate, cfg_.bottleneck->delay,
                                cfg_.bottleneck->queue});
  }

  // §9 payment proxy (optional): pays the thinner on behalf of the groups
  // flagged via_proxy.
  transport::Host* proxy_host = nullptr;
  if (cfg_.proxy.has_value()) {
    proxy_host = &net_->add_node<transport::Host>("payment-proxy");
    net_->connect(*proxy_host, core,
                  net::LinkSpec{cfg_.proxy->uplink, cfg_.proxy->delay, cfg_.proxy->queue});
  }

  // Client populations.
  std::uint32_t client_index = 0;
  for (std::size_t gi = 0; gi < cfg_.groups.size(); ++gi) {
    const ClientGroupSpec& g = cfg_.groups[gi];
    util::require(!g.behind_bottleneck || bn_switch != nullptr,
                  "group '" + g.label + "' is behind a bottleneck but none is configured");
    util::require(!g.via_proxy || proxy_host != nullptr,
                  "group '" + g.label + "' uses the proxy but none is configured");
    const net::NodeId front_end =
        g.via_proxy ? proxy_host->id() : thinner_host_->id();
    for (int i = 0; i < g.count; ++i) {
      auto& host = net_->add_node<transport::Host>(g.label + "-" + std::to_string(i));
      net_->connect(host, g.behind_bottleneck ? static_cast<net::Node&>(*bn_switch)
                                              : static_cast<net::Node&>(core),
                    net::LinkSpec{g.access_bw, g.access_delay, g.access_queue});
      clients_.push_back(std::make_unique<client::WorkloadClient>(
          host, front_end, g.workload, client_index,
          util::RngStream(cfg_.seed, "client." + std::to_string(client_index))));
      group_of_client_.push_back(gi);
      ++client_index;
    }
  }

  // §7.7 bystander: web server S on the fast side, downloader H wherever
  // the spec puts it (behind the bottleneck, in the paper).
  if (cfg_.collateral.has_value()) {
    const CollateralSpec& c = *cfg_.collateral;
    auto& web = net_->add_node<transport::Host>("webserver");
    net_->connect(web, core,
                  net::LinkSpec{Bandwidth::mbps(100.0), Duration::micros(500), 1'000'000});
    file_server_ = std::make_unique<client::StaticFileServer>(web);
    auto& h = net_->add_node<transport::Host>("downloader");
    util::require(!c.behind_bottleneck || bn_switch != nullptr,
                  "collateral downloader needs a configured bottleneck");
    net_->connect(h, c.behind_bottleneck ? static_cast<net::Node&>(*bn_switch)
                                         : static_cast<net::Node&>(core),
                  net::LinkSpec{c.access_bw, c.access_delay, 96'000});
    client::FileTransferClient::Config fc;
    fc.server = web.id();
    fc.file_size = c.file_size;
    fc.count = c.downloads;
    downloader_ = std::make_unique<client::FileTransferClient>(h, fc);
  }

  net_->build_routes();

  if (proxy_host != nullptr) {
    client::PaymentProxy::Config pc;
    pc.thinner = thinner_host_->id();
    proxy_ = std::make_unique<client::PaymentProxy>(*proxy_host, pc);
  }

  // Front end.
  util::RngStream server_rng(cfg_.seed, "server");
  switch (cfg_.mode) {
    case DefenseMode::kAuction: {
      core::AuctionThinner::Config tc;
      tc.capacity_rps = cfg_.capacity_rps;
      tc.payment_window = cfg_.payment_window;
      tc.response_body = cfg_.response_body;
      auction_ = std::make_unique<core::AuctionThinner>(*thinner_host_, tc,
                                                        std::move(server_rng));
      break;
    }
    case DefenseMode::kRetry: {
      core::RetryThinner::Config tc;
      tc.capacity_rps = cfg_.capacity_rps;
      tc.response_body = cfg_.response_body;
      retry_ = std::make_unique<core::RetryThinner>(*thinner_host_, tc, std::move(server_rng));
      break;
    }
    case DefenseMode::kNone: {
      core::NoDefenseFrontEnd::Config tc;
      tc.capacity_rps = cfg_.capacity_rps;
      tc.response_body = cfg_.response_body;
      none_ = std::make_unique<core::NoDefenseFrontEnd>(*thinner_host_, tc,
                                                        std::move(server_rng));
      break;
    }
    case DefenseMode::kQuantumAuction: {
      core::QuantumAuctionThinner::Config tc;
      tc.capacity_rps = cfg_.capacity_rps;
      tc.payment_window = cfg_.payment_window;
      tc.quantum = cfg_.quantum;
      tc.suspension_limit = cfg_.suspension_limit;
      tc.response_body = cfg_.response_body;
      quantum_ = std::make_unique<core::QuantumAuctionThinner>(*thinner_host_, tc,
                                                               std::move(server_rng));
      break;
    }
  }
}

const core::ThinnerStats& Experiment::thinner_stats() const {
  if (auction_) return auction_->stats();
  if (retry_) return retry_->stats();
  if (none_) return none_->stats();
  SPEAKUP_ASSERT(quantum_ != nullptr);
  return quantum_->stats();
}

ExperimentResult Experiment::run() {
  util::require(!ran_, "Experiment::run is callable once");
  ran_ = true;

  const auto wall_start = std::chrono::steady_clock::now();
  for (auto& c : clients_) c->start();
  if (downloader_ != nullptr) {
    loop_.schedule(cfg_.collateral->start_delay, [this] { downloader_->start(); });
  }
  loop_.run_until(SimTime::zero() + cfg_.duration);
  const auto wall_end = std::chrono::steady_clock::now();

  ExperimentResult r;
  r.sim_duration = cfg_.duration;
  r.events_executed = loop_.executed_events();
  r.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  r.thinner = thinner_stats();
  r.served_good = r.thinner.served_good;
  r.served_bad = r.thinner.served_bad;
  r.served_total = r.thinner.served_total();
  r.allocation_good = r.thinner.allocation_good();
  r.allocation_bad = r.thinner.allocation_bad();

  // Server-time split.
  Duration good_busy = Duration::zero();
  Duration bad_busy = Duration::zero();
  Duration all_busy = Duration::zero();
  if (quantum_) {
    good_busy = quantum_->server().good_busy_time();
    bad_busy = quantum_->server().bad_busy_time();
    all_busy = good_busy + bad_busy;
  } else {
    const server::EmulatedServer& srv = auction_ ? auction_->server()
                                      : retry_   ? retry_->server()
                                                 : none_->server();
    good_busy = srv.good_busy_time();
    bad_busy = srv.bad_busy_time();
    all_busy = srv.busy_time();
  }
  if (all_busy > Duration::zero()) {
    r.server_time_good = good_busy.sec() / all_busy.sec();
    r.server_time_bad = bad_busy.sec() / all_busy.sec();
  }
  r.server_busy_fraction = all_busy.sec() / cfg_.duration.sec();

  // Per-group results.
  r.groups.resize(cfg_.groups.size());
  for (std::size_t gi = 0; gi < cfg_.groups.size(); ++gi) {
    r.groups[gi].label = cfg_.groups[gi].label;
    r.groups[gi].count = cfg_.groups[gi].count;
    r.groups[gi].cls = cfg_.groups[gi].workload.cls;
  }
  for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
    GroupResult& g = r.groups[group_of_client_[ci]];
    g.totals.merge(clients_[ci]->stats());
    g.served_per_client.push_back(clients_[ci]->stats().served);
  }
  client::ClientStats good_totals;
  for (auto& g : r.groups) {
    if (r.served_total > 0) {
      g.allocation = static_cast<double>(g.totals.served) /
                     static_cast<double>(r.served_total);
    }
    if (g.cls == http::ClientClass::kGood) good_totals.merge(g.totals);
  }
  r.fraction_good_served = good_totals.fraction_served();

  if (downloader_ != nullptr) {
    r.collateral_latencies = downloader_->latencies();
    r.collateral_failures = downloader_->failures();
  }
  return r;
}

ExperimentResult run_scenario(const ScenarioConfig& cfg) {
  Experiment e(cfg);
  return e.run();
}

}  // namespace speakup::exp
