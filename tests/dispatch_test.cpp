// Tests for the `speakup dispatch` sweep fabric.
//
// Unit level: the WorkQueue slice state machine (claim / heartbeat /
// requeue / attempt budget) and the SliceJournal header round-trip.
//
// End to end, against the real `speakup` binary (SPEAKUP_CLI_BIN): a
// dispatched sweep must produce output byte-identical to a single-process
// `speakup run` — on the happy path, under an injected worker SIGKILL
// mid-slice, under a stalled heartbeat, and across a dispatcher kill +
// `--resume` restart. Fault injection uses the SPEAKUP_WORKER_FAULT /
// SPEAKUP_DISPATCH_FAULT hooks documented in docs/cli.md; each fault
// carries a token file so it fires exactly once per test.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/dispatch.hpp"
#include "exp/result_writer.hpp"
#include "exp/work_queue.hpp"

namespace speakup {
namespace {

using exp::Slice;
using exp::SliceJournal;
using exp::WorkQueue;

// ---------------------------------------------------------------------------
// WorkQueue unit tests.
// ---------------------------------------------------------------------------

TEST(WorkQueue, ClaimsLowestPendingAndCountsAttempts) {
  WorkQueue q({2, 1, 3}, /*max_attempts=*/2);
  EXPECT_EQ(q.size(), 3);
  EXPECT_EQ(q.rows_total(), 6u);
  EXPECT_EQ(q.claim(7), 0);
  EXPECT_EQ(q.slice(0).state, Slice::State::kRunning);
  EXPECT_EQ(q.slice(0).worker, 7);
  EXPECT_EQ(q.slice(0).attempts, 1);
  EXPECT_EQ(q.claim(8), 1);
  EXPECT_EQ(q.claim(9), 2);
  EXPECT_EQ(q.claim(10), -1);  // nothing pending
  EXPECT_FALSE(q.settled());

  q.complete(0, 100);
  q.complete(1, 50);
  q.complete(2, 25);
  EXPECT_TRUE(q.settled());
  EXPECT_TRUE(q.complete_ok());
  EXPECT_EQ(q.events_total(), 175u);
}

TEST(WorkQueue, RequeueReturnsSliceUntilAttemptBudgetRunsOut) {
  WorkQueue q({1}, /*max_attempts=*/2);
  EXPECT_EQ(q.claim(0), 0);
  // First loss: back to pending (attempt 2 still available).
  EXPECT_TRUE(q.requeue(0, "worker exited"));
  EXPECT_EQ(q.slice(0).state, Slice::State::kPending);
  EXPECT_EQ(q.slice(0).error, "worker exited");
  EXPECT_EQ(q.claim(1), 0);
  EXPECT_EQ(q.slice(0).attempts, 2);
  // Second loss: budget spent, permanently failed.
  EXPECT_FALSE(q.requeue(0, "worker exited again"));
  EXPECT_EQ(q.slice(0).state, Slice::State::kFailed);
  EXPECT_TRUE(q.settled());
  EXPECT_FALSE(q.complete_ok());
}

TEST(WorkQueue, HeartbeatsDriveRowsDoneAccounting) {
  WorkQueue q({4, 4}, /*max_attempts=*/1);
  EXPECT_EQ(q.claim(0), 0);
  q.heartbeat(0, 3, 900);
  EXPECT_EQ(q.rows_done(), 3u);
  q.complete(0, 1200);
  EXPECT_EQ(q.rows_done(), 4u);  // a done slice counts all its rows
  EXPECT_EQ(q.claim(1), 1);
  q.heartbeat(1, 1, 10);
  EXPECT_EQ(q.rows_done(), 5u);
  EXPECT_EQ(q.events_total(), 1210u);
}

TEST(WorkQueue, FailPendingLeavesRunningSlicesAlone) {
  WorkQueue q({1, 1, 1}, /*max_attempts=*/1);
  EXPECT_EQ(q.claim(0), 0);
  q.fail_pending("no workers left");
  EXPECT_EQ(q.slice(0).state, Slice::State::kRunning);
  EXPECT_EQ(q.slice(1).state, Slice::State::kFailed);
  EXPECT_EQ(q.slice(2).state, Slice::State::kFailed);
  EXPECT_EQ(q.failed(), 2);
}

TEST(WorkQueue, CompleteResumedMarksAnUnclaimedSliceDone) {
  WorkQueue q({1, 1}, /*max_attempts=*/1);
  q.complete_resumed(1, 777);
  EXPECT_EQ(q.slice(1).state, Slice::State::kDone);
  EXPECT_EQ(q.pending(), 1);
  EXPECT_EQ(q.done(), 1);
}

// ---------------------------------------------------------------------------
// SliceJournal.
// ---------------------------------------------------------------------------

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/speakup_dispatch_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    // Best-effort recursive cleanup (paths are our own temp files).
    const std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }
  std::string dir_;
};

class SliceJournalTest : public TempDir {};

TEST_F(SliceJournalTest, HeaderRoundTripsAndEventsAppend) {
  const std::string path = dir_ + "/journal";
  {
    SliceJournal j = SliceJournal::create(
        path, SliceJournal::Header{"scenarios/smoke.json", 6, 4});
    j.claim(0, 1, 1234);
    j.done(0, 2, 999);
  }
  {
    SliceJournal j = SliceJournal::append_to(path);
    j.fail(1, 2, "worker\nexited");  // newlines must flatten
  }
  const SliceJournal::Header h = SliceJournal::read_header(path);
  EXPECT_EQ(h.scenario_path, "scenarios/smoke.json");
  EXPECT_EQ(h.scenario_count, 6u);
  EXPECT_EQ(h.slices, 4);

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[1], "claim 0 attempt 1 pid 1234");
  EXPECT_EQ(lines[2], "done 0 rows 2 events 999");
  EXPECT_EQ(lines[3], "fail 1 attempt 2 reason worker exited");
}

TEST_F(SliceJournalTest, ReadHeaderRejectsNonJournals) {
  EXPECT_THROW((void)SliceJournal::read_header(dir_ + "/missing"),
               std::runtime_error);
  const std::string path = dir_ + "/not_a_journal";
  std::ofstream(path) << "index,label\n0,x\n";
  EXPECT_THROW((void)SliceJournal::read_header(path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// End-to-end: the real binary, real subprocess workers, real faults.
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

struct CmdResult {
  int exit_code = -1;  // -1: killed by a signal / system() failure
  std::string out;
  std::string err;
};

class DispatchE2E : public TempDir {
 protected:
  /// Runs `speakup <args>` through the shell, capturing exit code, stdout,
  /// and stderr. `env_prefix` may carry VAR=value fault injections.
  CmdResult cli(const std::string& args, const std::string& env_prefix = "") {
    const std::string out_path = dir_ + "/.cmd_out";
    const std::string err_path = dir_ + "/.cmd_err";
    const std::string cmd = env_prefix + (env_prefix.empty() ? "" : " ") +
                            std::string(SPEAKUP_CLI_BIN) + " " + args + " > '" +
                            out_path + "' 2> '" + err_path + "'";
    const int status = std::system(cmd.c_str());
    CmdResult r;
    if (status != -1 && WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
    r.out = read_file(out_path);
    r.err = read_file(err_path);
    return r;
  }

  std::string scenario() {
    return std::string(SPEAKUP_SCENARIO_DIR) + "/smoke.json";
  }

  /// The single-process baseline every dispatch variant must match.
  std::string baseline() {
    const std::string path = dir_ + "/single.csv";
    const CmdResult r = cli("run " + scenario() + " --out " + path + " --quiet --jobs 2");
    EXPECT_EQ(r.exit_code, 0) << r.err;
    return read_file(path);
  }
};

TEST_F(DispatchE2E, MatchesSingleProcessRunByteForByte) {
  const std::string single = baseline();
  const std::string out = dir_ + "/disp.csv";
  const CmdResult r =
      cli("dispatch " + scenario() + " --workers 4 --out " + out + " --status json");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(read_file(out), single);
  // The work directory is removed after a fully successful sweep.
  EXPECT_FALSE(file_exists(out + ".work/journal"));
  EXPECT_NE(r.out.find("\"type\":\"done\",\"ok\":true"), std::string::npos) << r.out;
}

TEST_F(DispatchE2E, SurvivesWorkerSigkillMidSlice) {
  const std::string single = baseline();
  const std::string out = dir_ + "/kill.csv";
  const CmdResult r = cli(
      "dispatch " + scenario() + " --workers 2 --out " + out +
          " --status json --heartbeat-ms 500",
      "SPEAKUP_WORKER_FAULT='kill:1:" + dir_ + "/kill_token'");
  ASSERT_EQ(r.exit_code, 0) << r.err << r.out;
  EXPECT_EQ(read_file(out), single);
  // The fault must actually have fired and been handled.
  EXPECT_NE(r.out.find("\"type\":\"worker_dead\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"type\":\"requeue\",\"slice\":1"), std::string::npos) << r.out;
}

TEST_F(DispatchE2E, SurvivesStalledHeartbeat) {
  const std::string single = baseline();
  const std::string out = dir_ + "/stall.csv";
  const CmdResult r = cli(
      "dispatch " + scenario() + " --workers 2 --out " + out +
          " --status json --heartbeat-ms 400",
      "SPEAKUP_WORKER_FAULT='stall:2:" + dir_ + "/stall_token'");
  ASSERT_EQ(r.exit_code, 0) << r.err << r.out;
  EXPECT_EQ(read_file(out), single);
  EXPECT_NE(r.out.find("heartbeat timeout"), std::string::npos) << r.out;
}

TEST_F(DispatchE2E, EmitsPerWorkerMetricsEventsInJsonView) {
  // The dispatcher derives per-worker throughput from heartbeat deltas and
  // emits at most one {"type":"metrics"} event per worker per second, so a
  // slice must run well past 1 s of wall time for one to fire: a single
  // 720 s simulated scenario takes several wall seconds on any hardware.
  // The heartbeat stays at a full second so a scheduler stall under a
  // loaded parallel ctest run can't trip the worker-kill threshold.
  const std::string file = dir_ + "/long.json";
  std::ofstream(file) << "{\n"
                      << "  \"defaults\": {\"defense\": \"auction\", \"capacity_rps\": 20,\n"
                      << "    \"duration_s\": 720, \"seed\": 5, \"lan\": {\"good\": 10, \"bad\": 10}},\n"
                      << "  \"scenarios\": [{\"label\": \"long\"}]\n"
                      << "}\n";
  const std::string out = dir_ + "/metrics.csv";
  const CmdResult r = cli("dispatch " + file + " --workers 1 --slices 1 --out " +
                          out + " --status json --heartbeat-ms 1000");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  const std::size_t pos = r.out.find("\"type\":\"metrics\"");
  ASSERT_NE(pos, std::string::npos) << r.out;
  const std::string line = r.out.substr(pos, r.out.find('\n', pos) - pos);
  EXPECT_NE(line.find("\"worker\":0"), std::string::npos) << line;
  EXPECT_NE(line.find("\"slice\":0"), std::string::npos) << line;
  EXPECT_NE(line.find("\"rows\":1"), std::string::npos) << line;
  EXPECT_NE(line.find("\"events_per_s\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"rows_per_s\":"), std::string::npos) << line;
}

TEST_F(DispatchE2E, ResumesAfterDispatcherKill) {
  const std::string single = baseline();
  const std::string out = dir_ + "/resumed.csv";
  // First dispatcher "crashes" (deterministic _Exit(32)) after two slices.
  const CmdResult first = cli(
      "dispatch " + scenario() + " --workers 2 --out " + out + " --status json",
      "SPEAKUP_DISPATCH_FAULT='exit-after-done:2'");
  ASSERT_EQ(first.exit_code, 32) << first.err << first.out;
  EXPECT_FALSE(file_exists(out));  // nothing merged yet
  ASSERT_TRUE(file_exists(out + ".work/journal"));

  const CmdResult second = cli("dispatch " + scenario() + " --workers 2 --out " +
                               out + " --status json --resume");
  ASSERT_EQ(second.exit_code, 0) << second.err << second.out;
  EXPECT_EQ(read_file(out), single);
  // At least the two pre-kill slices came back from disk, unrun.
  EXPECT_NE(second.out.find("\"resume\":true"), std::string::npos) << second.out;
  EXPECT_EQ(second.out.find("\"slices_resumed\":0,"), std::string::npos) << second.out;
  EXPECT_FALSE(file_exists(out + ".work/journal"));
}

TEST_F(DispatchE2E, ResumeReRunsASliceWithATruncatedCsv) {
  const std::string single = baseline();
  const std::string out = dir_ + "/trunc.csv";
  const CmdResult first = cli(
      "dispatch " + scenario() + " --workers 2 --out " + out + " --status json",
      "SPEAKUP_DISPATCH_FAULT='exit-after-done:2'");
  ASSERT_EQ(first.exit_code, 32) << first.err;

  // Corrupt one completed slice artifact the way a dying worker would:
  // chop the file mid-row, right after a comma, no trailing newline.
  std::string corrupted_slice;
  for (int s = 0; s < 16; ++s) {
    const std::string path = out + ".work/slice_" + std::to_string(s) + ".csv";
    if (!file_exists(path)) continue;
    const std::string full = read_file(path);
    const std::size_t cut = full.find_last_of(',');
    ASSERT_NE(cut, std::string::npos);
    std::ofstream(path, std::ios::binary) << full.substr(0, cut + 1);
    corrupted_slice = path;
    break;
  }
  ASSERT_FALSE(corrupted_slice.empty()) << "no slice CSV survived the kill";

  const CmdResult second = cli("dispatch " + scenario() + " --workers 2 --out " +
                               out + " --status json --resume");
  ASSERT_EQ(second.exit_code, 0) << second.err << second.out;
  // The truncated slice was re-run, not merged: output is still perfect.
  EXPECT_EQ(read_file(out), single);
}

TEST_F(DispatchE2E, ExhaustedRetriesFailTheSweep) {
  const std::string out = dir_ + "/failed.csv";
  // kill fault fires once; with --retries 0 that one loss is permanent.
  const CmdResult r = cli(
      "dispatch " + scenario() + " --workers 2 --out " + out +
          " --status json --retries 0 --heartbeat-ms 500",
      "SPEAKUP_WORKER_FAULT='kill:1:" + dir_ + "/kill_once'");
  EXPECT_EQ(r.exit_code, 1) << r.err << r.out;
  // No merged output for an incomplete sweep; the work dir stays for
  // inspection / resume.
  EXPECT_FALSE(file_exists(out));
  EXPECT_TRUE(file_exists(out + ".work/journal"));
  EXPECT_NE(r.out.find("\"type\":\"slice_failed\""), std::string::npos) << r.out;
  EXPECT_NE(r.err.find("slice 1"), std::string::npos) << r.err;
}

TEST_F(DispatchE2E, RunListPrintsTheExpansionWithoutRunning) {
  const CmdResult r = cli("run " + scenario() + " --list");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(r.out,
            "index\tlabel\tdefense\tstrategies\tseed\tcapacity_rps\tduration_s\n"
            "0\tsmoke/none\tnone\tpoisson\t7\t50\t3\n"
            "1\tsmoke/retry\tretry\tpoisson\t7\t50\t3\n"
            "2\tsmoke/auction\tauction\tpoisson\t7\t50\t3\n"
            "3\tsmoke/quantum\tquantum\tpoisson\t7\t50\t3\n"
            "4\tsmoke/auction-seeds/seed7\tauction\tpoisson\t7\t50\t3\n"
            "5\tsmoke/auction-seeds/seed8\tauction\tpoisson\t8\t50\t3\n");

  // --shard applies the same slice math the dispatcher uses.
  const CmdResult shard = cli("run " + scenario() + " --list --shard 1/3");
  ASSERT_EQ(shard.exit_code, 0) << shard.err;
  EXPECT_NE(shard.out.find("\n1\tsmoke/retry"), std::string::npos) << shard.out;
  EXPECT_NE(shard.out.find("\n4\tsmoke/auction-seeds/seed7"), std::string::npos)
      << shard.out;
  EXPECT_EQ(shard.out.find("\n2\tsmoke/auction"), std::string::npos) << shard.out;
}

TEST_F(DispatchE2E, MergeRejectsDuplicateIndicesWithFileNames) {
  const std::string single = baseline();
  std::ofstream(dir_ + "/a.csv", std::ios::binary) << single;
  std::ofstream(dir_ + "/b.csv", std::ios::binary) << single;
  const CmdResult r = cli("merge --out " + dir_ + "/m.csv " + dir_ + "/a.csv " +
                          dir_ + "/b.csv");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("a.csv"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("b.csv"), std::string::npos) << r.err;
  EXPECT_FALSE(file_exists(dir_ + "/m.csv"));
}

TEST_F(DispatchE2E, RunResumeIgnoresATruncatedTrailingRow) {
  const std::string single = baseline();
  const std::string out = dir_ + "/resume_run.csv";
  // Simulate a `run` killed mid-write: the first rows are intact, the last
  // one is chopped right after a comma with no trailing newline.
  const std::size_t cut = single.find_last_of(',');
  ASSERT_NE(cut, std::string::npos);
  std::ofstream(out, std::ios::binary) << single.substr(0, cut + 1);

  const CmdResult r =
      cli("run " + scenario() + " --out " + out + " --resume --quiet --jobs 2");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(read_file(out), single);
}

}  // namespace
}  // namespace speakup
