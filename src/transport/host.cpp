#include "transport/host.hpp"

#include "util/log.hpp"

namespace speakup::transport {

TcpConnection& Host::connect(net::NodeId dst, std::uint32_t dst_port) {
  TcpConnection& conn = emplace_connection(alloc_port(), dst, dst_port, /*initiator=*/true);
  conn.start_handshake();
  return conn;
}

void Host::listen(std::uint32_t port, std::function<void(TcpConnection&)> on_accept) {
  util::require(listeners_.find(port) == listeners_.end(),
                "port already has a listener on host " + name());
  listeners_[port] = std::move(on_accept);
}

TcpConnection& Host::emplace_connection(std::uint32_t local_port, net::NodeId remote,
                                        std::uint32_t remote_port, bool initiator) {
  auto conn = std::make_unique<TcpConnection>(*this, local_port, remote, remote_port, tcp_cfg_,
                                              initiator);
  TcpConnection& ref = *conn;
  const ConnKey key{local_port, remote, remote_port};
  SPEAKUP_ASSERT(conns_.find(key) == conns_.end());
  conns_[key] = std::move(conn);
  ++connections_created_;
  return ref;
}

TcpConnection* Host::find_connection(std::uint32_t local_port, net::NodeId remote,
                                     std::uint32_t remote_port) const {
  const auto it = conns_.find(ConnKey{local_port, remote, remote_port});
  return it == conns_.end() ? nullptr : it->second.get();
}

void Host::on_packet(net::Packet p) {
  SPEAKUP_ASSERT(p.dst == id());
  if (TcpConnection* conn = find_connection(p.dst_port, p.src, p.src_port)) {
    conn->on_packet(p);
    return;
  }
  // No matching connection. A SYN to a listening port spawns one.
  if (p.kind == net::PacketKind::kSyn) {
    const auto lit = listeners_.find(p.dst_port);
    if (lit != listeners_.end()) {
      TcpConnection& conn =
          emplace_connection(p.dst_port, p.src, p.src_port, /*initiator=*/false);
      // Link the two endpoints so the message layer can pass descriptors.
      auto& src_host = dynamic_cast<Host&>(network().node(p.src));
      if (TcpConnection* initiator = src_host.find_connection(p.src_port, id(), p.dst_port)) {
        conn.link_peer(initiator);
        initiator->link_peer(&conn);
      }
      lit->second(conn);  // accept callback may set callbacks / write
      conn.start_passive();
      return;
    }
  }
  // Anything else aimed at nothing gets an abortive reply, so stale
  // retransmissions from half-closed peers clean themselves up.
  if (p.kind != net::PacketKind::kRst) {
    send_packet(net::make_control_packet(id(), p.dst_port, p.src, p.src_port,
                                         net::PacketKind::kRst));
  }
}

void Host::release(TcpConnection* conn) {
  SPEAKUP_ASSERT(conn != nullptr && conn->closed());
  const ConnKey key{conn->local_port(), conn->remote_node(), conn->remote_port()};
  // Deferred: the connection may be deep in its own call stack right now.
  loop().schedule(Duration::zero(), [this, key] { conns_.erase(key); });
}

}  // namespace speakup::transport
