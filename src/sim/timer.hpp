// A restartable one-shot timer on top of EventLoop, used for protocol
// timeouts (TCP RTO, payment-channel expiry, client request timeouts).
// Restarting implicitly cancels the previous arming.
//
// Hot-path note: arming schedules an 8-byte `[this]` closure, which lands
// in the event slab's inline buffer — restart/cancel churn (every TCP
// segment re-arms the RTO) performs no heap allocation. The fire path
// copies the stored std::function before invoking (see restart()); that
// copy is also allocation-free for captures within std::function's SBO,
// which covers every timer in the tree (`[this]`-sized).
#pragma once

#include <functional>
#include <utility>

#include "sim/event_loop.hpp"

namespace speakup::sim {

class Timer {
 public:
  Timer(EventLoop& loop, std::function<void()> on_fire)
      : loop_(&loop), on_fire_(std::move(on_fire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  /// (Re)arms the timer to fire `delay` from now. A still-pending timer is
  /// rescheduled in place — the stored closure is reused, so the dominant
  /// protocol pattern (every TCP ack re-arms the RTO) costs two O(1) wheel
  /// link operations and nothing else.
  void restart(Duration delay) {
    if (id_.pending()) {
      id_ = loop_->reschedule(id_, delay);
      return;
    }
    // Invoke through a by-value copy: the callback is allowed to destroy
    // this Timer (protocol handlers routinely tear down the state that owns
    // their timeout), which would otherwise destroy the std::function
    // mid-execution.
    id_ = loop_->schedule(delay, [this] {
      auto fn = on_fire_;
      fn();
    });
  }

  void cancel() {
    if (id_.pending()) loop_->cancel(id_);
  }

  [[nodiscard]] bool pending() const { return id_.pending(); }

 private:
  EventLoop* loop_;
  std::function<void()> on_fire_;
  EventId id_;
};

}  // namespace speakup::sim
