// Heap-layout / hash-state perturbation determinism.
//
// The repo's contract is that result bytes depend only on the scenario
// (config + seed) — never on process state. The classic way that contract
// rots is through unordered containers: libstdc++ iteration order for
// pointer keys follows heap addresses, and for integer keys it follows the
// insertion/rehash history. Code that range-iterates such a container into
// anything observable works fine until allocator state shifts underneath
// it (a different test ran first, jemalloc vs glibc, ASLR) — at which
// point fingerprints move and every pin looks "flaky".
//
// These tests force that shift inside one process: run a sweep, then
// deliberately perturb the heap (leaked odd-sized blocks, churned free
// lists, a rehashed scratch table) and the thread count, run the identical
// sweep again, and require the output BYTES — sweep CSV, tournament payoff
// CSV and JSON — to be unchanged. Together with tools/determinism_lint.py
// (which bans new unordered iteration statically) this closes the gap the
// engine-differential tests cannot see: they compare two engines inside
// ONE process state, so a shared order-sensitivity cancels out.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/result_writer.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "exp/tournament.hpp"

namespace speakup {
namespace {

/// Shifts allocator state without any nondeterminism of its own: leaks a
/// batch of odd-sized blocks (so every later allocation of those size
/// classes lands elsewhere), churns the free lists with transient blocks,
/// and drives a scratch unordered_map through its growth/rehash schedule.
void perturb_heap_and_hash_state() {
  static std::vector<std::unique_ptr<char[]>> leaks;  // deliberate: lives to exit
  std::uint64_t x = 0x9e3779b97f4a7c15ull + leaks.size();
  for (int i = 0; i < 257; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    leaks.push_back(std::make_unique<char[]>(17 + (x >> 33) % 4093));
  }
  std::vector<std::unique_ptr<char[]>> transient;
  for (int i = 0; i < 999; ++i) {
    transient.push_back(std::make_unique<char[]>(33 + (i * 61) % 2048));
  }
  std::unordered_map<std::uint64_t, std::uint64_t> scratch;
  for (std::uint64_t k = 0; k < 10'000; ++k) scratch[k * 0x9e3779b9u] = k;
}

/// The smoke sweep as ResultWriter CSV bytes.
std::string smoke_csv(int jobs) {
  const exp::ScenarioFile file =
      exp::load_scenario_file(std::string(SPEAKUP_SCENARIO_DIR) + "/smoke.json");
  exp::Runner runner;
  exp::ScenarioFile::queue_on(runner, file.scenarios);
  runner.run_all(jobs);
  exp::ResultWriter writer;
  for (std::size_t i = 0; i < runner.outcomes().size(); ++i) {
    writer.add(file.scenarios[i].index, runner.outcomes()[i]);
  }
  std::ostringstream os;
  writer.write_csv(os);
  return os.str();
}

TEST(DeterminismRehash, SmokeSweepCsvBytesSurviveHeapPerturbation) {
  const std::string first = smoke_csv(/*jobs=*/1);
  perturb_heap_and_hash_state();
  const std::string second = smoke_csv(/*jobs=*/3);  // and a thread-count change
  EXPECT_EQ(first, second)
      << "sweep CSV bytes changed with heap layout / thread count: some "
         "result path depends on allocator or hash-iteration state";
}

TEST(DeterminismRehash, TournamentPayoffBytesSurviveHeapPerturbation) {
  const exp::TournamentSpec spec = exp::load_tournament_spec(
      std::string(SPEAKUP_SCENARIO_DIR) + "/tournament_small.json");

  const auto payoff = [&spec](int jobs) {
    const exp::ScenarioFile file =
        exp::parse_scenario_file(exp::tournament_scenarios_json(spec));
    exp::Runner runner;
    exp::ScenarioFile::queue_on(runner, file.scenarios);
    runner.run_all(jobs);
    exp::ResultWriter writer;
    for (std::size_t i = 0; i < runner.outcomes().size(); ++i) {
      writer.add(file.scenarios[i].index, runner.outcomes()[i]);
    }
    std::ostringstream os;
    writer.write_csv(os);
    const exp::PayoffMatrix m = exp::score_tournament(spec, os.str());
    return std::pair<std::string, std::string>{exp::payoff_csv(m), exp::payoff_json(m)};
  };

  const auto first = payoff(/*jobs=*/2);
  perturb_heap_and_hash_state();
  const auto second = payoff(/*jobs=*/4);
  EXPECT_EQ(first.first, second.first) << "payoff CSV bytes moved with process state";
  EXPECT_EQ(first.second, second.second) << "payoff JSON bytes moved with process state";
}

}  // namespace
}  // namespace speakup
