#include "obs/observer.hpp"

namespace speakup::obs {

Observer::Observer(sim::EventLoop& loop, const Options& opts)
    : loop_(&loop), opts_(opts), tracer_(opts.trace_capacity) {
  if (opts_.metrics) {
    register_catalog();
    metrics_.enable_sampling(opts_.sample_interval);
    next_sample_ns_ = opts_.sample_interval.ns();
    loop_->set_sample_hook(&Observer::sample_hook, this, next_sample_ns_);
  }
  loop_->set_observer(this);
}

Observer::~Observer() {
  loop_->set_observer(nullptr);
  loop_->clear_sample_hook();
}

std::int64_t Observer::sample_hook(void* ctx, std::int64_t now_ns) {
  auto* self = static_cast<Observer*>(ctx);
  const std::int64_t step = self->opts_.sample_interval.ns();
  // The hook fires on the first event at or past the boundary, so sampling
  // at the boundary time captures state as of the boundary: every earlier
  // event has run, no later one has. Catch up over idle stretches that
  // skipped several boundaries.
  while (self->next_sample_ns_ <= now_ns) {
    self->metrics_.sample(SimTime::from_ns(self->next_sample_ns_));
    self->next_sample_ns_ += step;
  }
  return self->next_sample_ns_;
}

void Observer::finish() {
  if (finished_) return;
  finished_ = true;
  if (opts_.metrics) {
    // Close out the final partial interval (run_until advances the clock to
    // the horizon without firing the hook). Skip when the last boundary
    // sampled coincides with now — no time has elapsed since.
    const std::int64_t step = opts_.sample_interval.ns();
    if (loop_->now().ns() > next_sample_ns_ - step) {
      metrics_.sample(loop_->now());
    }
  }
  loop_->clear_sample_hook();
}

void Observer::register_catalog() {
  c_link_enqueued_ = metrics_.add_counter("net.link_enqueues");
  c_link_drops_ = metrics_.add_counter("net.link_drops");
  c_tcp_retransmits_ = metrics_.add_counter("tcp.retransmits");
  c_tcp_rto_backoffs_ = metrics_.add_counter("tcp.rto_backoffs");
  c_admitted_good_ = metrics_.add_counter("core.admitted_good");
  c_admitted_bad_ = metrics_.add_counter("core.admitted_bad");
  c_admitted_other_ = metrics_.add_counter("core.admitted_other");
  c_admitted_direct_ = metrics_.add_counter("core.admitted_direct");
  c_rejections_ = metrics_.add_counter("core.rejections");
  c_auctions_ = metrics_.add_counter("core.auctions");
  c_expirations_ = metrics_.add_counter("core.channels_expired");
  c_suspensions_ = metrics_.add_counter("core.suspensions");
  c_aborts_ = metrics_.add_counter("core.aborts");
  c_elastic_scale_ups_ = metrics_.add_counter("core.elastic_scale_ups");
  c_puzzles_admitted_ = metrics_.add_counter("core.puzzles_admitted");
  c_puzzles_solved_ = metrics_.add_counter("core.puzzles_solved");
  c_payments_started_ = metrics_.add_counter("client.payments_started");
  c_payments_declined_ = metrics_.add_counter("client.payments_declined");
  c_defections_ = metrics_.add_counter("client.defections");
  c_requests_served_ = metrics_.add_counter("client.requests_served");
  c_requests_denied_ = metrics_.add_counter("client.requests_denied");
  c_requests_busy_ = metrics_.add_counter("client.requests_busy_rejected");

  h_tcp_cwnd_ = metrics_.add_histogram("tcp.cwnd_at_retransmit");
  h_admission_price_ = metrics_.add_histogram("core.admission_price");
  h_clearing_price_ = metrics_.add_histogram("core.clearing_price");
  h_wasted_payment_ = metrics_.add_histogram("core.wasted_payment_bytes");
  h_puzzle_wait_ = metrics_.add_histogram("core.puzzle_wait_s");

  sim::EventLoop* loop = loop_;
  metrics_.add_gauge("sim.heap_size",
                     [loop] { return static_cast<double>(loop->heap_size()); });
  metrics_.add_gauge("sim.wheel_size",
                     [loop] { return static_cast<double>(loop->wheel_size()); });
  metrics_.add_gauge("sim.pending_events",
                     [loop] { return static_cast<double>(loop->pending_events()); });
  metrics_.add_gauge("sim.executed_events",
                     [loop] { return static_cast<double>(loop->executed_events()); });
  metrics_.add_gauge("net.link_queue_bytes",
                     [this] { return static_cast<double>(link_queue_bytes_); });
  metrics_.add_gauge("core.elastic_scale", [this] { return elastic_scale_; });
}

}  // namespace speakup::obs
