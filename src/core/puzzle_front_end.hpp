// Proof-of-work currency, the classic alternative (Aura et al., Juels &
// Brainard) the paper's §8 contrasts speak-up's bandwidth currency against.
// While the server is busy, incoming requests are held (no reply — the
// client's request simply waits) and the client is charged compute: each
// request must "solve a puzzle" costing puzzle_cost seconds per unit of
// request difficulty, and a client solves its puzzles one at a time. When
// the server frees up, the held request whose solve finished earliest is
// admitted (ties broken by request id, so admission order is
// deterministic).
//
// The contrast with the auction is the resource being priced: a client's
// admission rate here is capped at 1/puzzle_cost by its (serial) CPU no
// matter how many requests or how much bandwidth it throws at the front
// end, whereas the payment channel prices bandwidth. An attacker with lots
// of bandwidth but one CPU per bot gains nothing by flooding — but neither
// can a good client with a fat pipe buy more than 1/puzzle_cost of the
// server.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/front_end.hpp"
#include "core/thinner_stats.hpp"
#include "http/message.hpp"
#include "http/message_stream.hpp"
#include "http/session_pool.hpp"
#include "server/emulated_server.hpp"
#include "transport/host.hpp"
#include "util/rng.hpp"

namespace speakup::core {

class PuzzleFrontEnd : public FrontEnd {
 public:
  struct Config {
    double capacity_rps = 100.0;
    Bytes response_body = 1000;
    /// Client compute per unit of request difficulty.
    Duration puzzle_cost = Duration::seconds(2);
    std::uint32_t request_port = 80;
  };

  PuzzleFrontEnd(transport::Host& host, const Config& cfg, util::RngStream server_rng);

  // --- FrontEnd ---
  [[nodiscard]] std::string_view name() const override { return "puzzle"; }
  [[nodiscard]] const ThinnerStats& stats() const override { return stats_; }
  [[nodiscard]] std::size_t contending() const override { return requests_.size(); }
  [[nodiscard]] Duration server_busy_good() const override {
    return server_.good_busy_time();
  }
  [[nodiscard]] Duration server_busy_bad() const override {
    return server_.bad_busy_time();
  }
  [[nodiscard]] Duration server_busy_total() const override { return server_.busy_time(); }

  /// Held requests whose puzzle is solved but not yet admitted.
  [[nodiscard]] std::size_t ready() const { return ready_.size(); }
  [[nodiscard]] const server::EmulatedServer& server() const { return server_; }

 private:
  enum class State { kSolving, kReady, kServing };

  struct Tracked {
    std::uint64_t id = 0;
    http::ClientClass cls = http::ClientClass::kNeutral;
    int difficulty = 1;
    http::MessageStream* session = nullptr;
    State state = State::kSolving;
    SimTime arrived;
    SimTime solve_done;
  };

  void on_accept(transport::TcpConnection& conn);
  void on_message(http::MessageStream& s, const http::Message& m);
  void on_reset(http::MessageStream& s);
  void on_server_complete(const server::ServiceRequest& done);
  void on_solved(std::uint64_t id);
  void admit_next();
  void count_served(http::ClientClass cls);

  transport::Host* host_;
  Config cfg_;
  server::EmulatedServer server_;
  http::SessionPool pool_;
  ThinnerStats stats_;
  std::unordered_map<std::uint64_t, Tracked> requests_;
  std::unordered_map<http::MessageStream*, std::uint64_t> by_stream_;
  /// Solved requests awaiting admission, ordered (solve completion, id).
  std::set<std::pair<std::int64_t, std::uint64_t>> ready_;
  /// When each client's (serial) CPU frees up; key is request_id >> 32.
  std::unordered_map<std::uint32_t, SimTime> client_cpu_free_;
};

}  // namespace speakup::core
