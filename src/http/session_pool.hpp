// Owns MessageStreams and destroys them safely.
//
// A MessageStream must not be destroyed while one of its callbacks is on the
// stack (the callback object lives in the TcpConnection). The pool therefore
// defers destruction to the next event-loop tick. Both the thinner and the
// clients use a pool for every stream they create or accept.
#pragma once

#include <memory>
#include <unordered_map>

#include "http/message_stream.hpp"
#include "sim/event_loop.hpp"

namespace speakup::http {

class SessionPool {
 public:
  explicit SessionPool(sim::EventLoop& loop) : loop_(&loop) {}

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Wraps `conn` in a MessageStream owned by this pool.
  MessageStream& adopt(transport::TcpConnection& conn) {
    auto stream = std::make_unique<MessageStream>(conn);
    MessageStream& ref = *stream;
    streams_[&ref] = std::move(stream);
    return ref;
  }

  /// Aborts the stream's connection (if alive) and schedules destruction.
  void retire(MessageStream* s) {
    if (s == nullptr) return;
    const auto it = streams_.find(s);
    if (it == streams_.end()) return;  // already retired
    s->abort();
    // Defer: the caller may be inside one of s's callbacks.
    auto victim = std::shared_ptr<MessageStream>(std::move(it->second));
    streams_.erase(it);
    loop_->schedule(Duration::zero(), [victim] {});
  }

  [[nodiscard]] std::size_t live() const { return streams_.size(); }

 private:
  sim::EventLoop* loop_;
  std::unordered_map<MessageStream*, std::unique_ptr<MessageStream>> streams_;
};

}  // namespace speakup::http
