#include "core/puzzle_front_end.hpp"

#include <algorithm>

#include "obs/observer.hpp"
#include "util/assert.hpp"

namespace {
// obs::Cls mirrors http::ClientClass value for value.
speakup::obs::Cls obs_cls(speakup::http::ClientClass c) {
  return static_cast<speakup::obs::Cls>(c);
}
}  // namespace

namespace speakup::core {

using http::ClientClass;
using http::Message;
using http::MessageStream;
using http::MessageType;

PuzzleFrontEnd::PuzzleFrontEnd(transport::Host& host, const Config& cfg,
                               util::RngStream server_rng)
    : host_(&host),
      cfg_(cfg),
      server_(host.loop(), cfg.capacity_rps, std::move(server_rng)),
      pool_(host.loop()) {
  util::require(cfg_.puzzle_cost > Duration::zero(), "puzzle cost must be positive");
  server_.set_on_complete([this](const server::ServiceRequest& r) { on_server_complete(r); });
  host.listen(cfg_.request_port, [this](transport::TcpConnection& c) { on_accept(c); });
}

void PuzzleFrontEnd::on_accept(transport::TcpConnection& conn) {
  MessageStream& s = pool_.adopt(conn);
  MessageStream::Callbacks cbs;
  cbs.on_message = [this, &s](const Message& m) { on_message(s, m); };
  cbs.on_reset = [this, &s] { on_reset(s); };
  s.set_callbacks(std::move(cbs));
}

void PuzzleFrontEnd::count_served(ClientClass cls) {
  if (cls == ClientClass::kGood) {
    ++stats_.served_good;
  } else if (cls == ClientClass::kBad) {
    ++stats_.served_bad;
  } else {
    ++stats_.served_other;
  }
}

void PuzzleFrontEnd::on_message(MessageStream& s, const Message& m) {
  if (m.type != MessageType::kRequest) return;
  ++stats_.requests_received;
  const SimTime now = host_->loop().now();
  if (!server_.busy() && ready_.empty()) {
    // Idle server, no solved work queued: admit at price 0, like the
    // auction's direct admissions.
    ++stats_.direct_admissions;
    if (auto* o = host_->loop().observer()) {
      o->on_admission(obs_cls(m.cls), 0.0, /*direct=*/true);
    }
    count_served(m.cls);
    requests_[m.request_id] =
        Tracked{m.request_id, m.cls, m.difficulty, &s, State::kServing, now, now};
    by_stream_[&s] = m.request_id;
    server_.submit(server::ServiceRequest{m.request_id, m.cls, m.difficulty});
    return;
  }
  // Hold the request and charge the client CPU time: puzzles solve one at a
  // time per client, so back-to-back requests queue behind each other.
  const std::uint32_t client = static_cast<std::uint32_t>(m.request_id >> 32);
  SimTime start = now;
  const auto it = client_cpu_free_.find(client);
  if (it != client_cpu_free_.end() && it->second > start) start = it->second;
  const Duration solve = cfg_.puzzle_cost * m.difficulty;
  const SimTime done = start + solve;
  client_cpu_free_[client] = done;
  requests_[m.request_id] =
      Tracked{m.request_id, m.cls, m.difficulty, &s, State::kSolving, now, done};
  by_stream_[&s] = m.request_id;
  const std::uint64_t id = m.request_id;
  host_->loop().schedule(done - now, [this, id] { on_solved(id); });
}

void PuzzleFrontEnd::on_solved(std::uint64_t id) {
  const auto it = requests_.find(id);
  if (it == requests_.end()) return;  // client reset and was dropped
  it->second.state = State::kReady;
  ready_.insert({it->second.solve_done.ns(), id});
  stats_.counters.inc("puzzle_solved");
  if (auto* o = host_->loop().observer()) o->on_puzzle_solved();
  if (!server_.busy()) admit_next();
}

void PuzzleFrontEnd::admit_next() {
  if (ready_.empty() || server_.busy()) return;
  const auto first = ready_.begin();
  const std::uint64_t id = first->second;
  ready_.erase(first);
  Tracked& t = requests_.at(id);
  t.state = State::kServing;
  stats_.counters.inc("puzzle_admitted");
  count_served(t.cls);
  // The "payment" here is compute: record the request's wait from arrival
  // to admission in the payment-time samples the other currencies use.
  const double waited = (host_->loop().now() - t.arrived).sec();
  if (auto* o = host_->loop().observer()) {
    // The puzzle "price" is compute time; record the wait as the price.
    o->on_admission(obs_cls(t.cls), waited, /*direct=*/false);
    o->on_puzzle_admitted(waited);
  }
  if (t.cls == ClientClass::kGood) {
    stats_.payment_time_good.add(waited);
  } else if (t.cls == ClientClass::kBad) {
    stats_.payment_time_bad.add(waited);
  }
  server_.submit(server::ServiceRequest{t.id, t.cls, t.difficulty});
}

void PuzzleFrontEnd::on_server_complete(const server::ServiceRequest& done) {
  const auto it = requests_.find(done.request_id);
  if (it != requests_.end()) {
    if (it->second.session != nullptr) {
      it->second.session->send(Message{.type = MessageType::kResponse,
                                       .request_id = done.request_id,
                                       .body = cfg_.response_body});
      by_stream_.erase(it->second.session);
    }
    requests_.erase(it);
  }
  admit_next();
}

void PuzzleFrontEnd::on_reset(MessageStream& s) {
  const auto it = by_stream_.find(&s);
  if (it != by_stream_.end()) {
    const auto rit = requests_.find(it->second);
    if (rit != requests_.end()) {
      // Keep solving/ready state (the admission queue stays deterministic);
      // only the response sink goes away.
      rit->second.session = nullptr;
    }
    by_stream_.erase(it);
  }
  pool_.retire(&s);
}

}  // namespace speakup::core
