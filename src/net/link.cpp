#include "net/link.hpp"

#include "net/network.hpp"

namespace speakup::net {

Link::Link(Network& net, NodeId a, NodeId b, const LinkSpec& ab, const LinkSpec& ba)
    : net_(&net), a_(a), b_(b), ab_(ab, b), ba_(ba, a) {
  SPEAKUP_ASSERT(a != b);
  SPEAKUP_ASSERT(ab.rate.bits_per_sec() > 0 && ba.rate.bits_per_sec() > 0);
}

void Link::send(NodeId from, Packet p) {
  SPEAKUP_ASSERT(from == a_ || from == b_);
  Direction& d = dir_for(from);
  if (d.transmitting) {
    d.queue.push(std::move(p));  // dropped silently on overflow (drop-tail)
    return;
  }
  // Transmitter idle: serialize immediately without passing through the queue.
  d.transmitting = true;
  transmit(d, std::move(p));
}

void Link::transmit(Direction& d, Packet p) {
  const Duration tx = d.rate.transmission_time(p.wire_size);
  sim::EventLoop& loop = net_->loop();
  loop.schedule(tx, [this, &d, p = std::move(p)]() mutable {
    // Serialization finished: the packet propagates (non-blocking)...
    d.delivered_bytes += p.wire_size;
    const NodeId to = d.dst;
    net_->loop().schedule(d.delay, [this, to, p = std::move(p)]() mutable {
      net_->deliver(to, std::move(p));
    });
    // ...and the transmitter picks up the next queued packet.
    if (auto next = d.queue.pop()) {
      transmit(d, std::move(*next));
    } else {
      d.transmitting = false;
    }
  });
}

}  // namespace speakup::net
