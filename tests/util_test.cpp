// Tests for util: strong units, RNG streams, assertions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <new>

#include "util/alloc_guard.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace speakup {
namespace {

TEST(Duration, FactoriesAgree) {
  EXPECT_EQ(Duration::seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::micros(1).ns(), 1'000);
  EXPECT_EQ(Duration::nanos(1).ns(), 1);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(500);
  const Duration b = Duration::millis(250);
  EXPECT_EQ((a + b).ns(), Duration::millis(750).ns());
  EXPECT_EQ((a - b).ns(), Duration::millis(250).ns());
  EXPECT_EQ((a * 3).ns(), Duration::millis(1500).ns());
  EXPECT_EQ((a / 2).ns(), Duration::millis(250).ns());
  EXPECT_LT(b, a);
  EXPECT_DOUBLE_EQ(a.sec(), 0.5);
  EXPECT_DOUBLE_EQ(a.ms(), 500.0);
}

TEST(Duration, NegativeSecondsRoundCorrectly) {
  EXPECT_EQ(Duration::seconds(-1.5).ns(), -1'500'000'000);
}

TEST(Duration, InfiniteIsHuge) {
  EXPECT_GT(Duration::infinite(), Duration::seconds(1e9));
}

TEST(SimTime, Ordering) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + Duration::seconds(1.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0).ns(), Duration::seconds(1.0).ns());
  EXPECT_DOUBLE_EQ(t1.sec(), 1.0);
}

TEST(Bandwidth, Factories) {
  EXPECT_EQ(Bandwidth::mbps(2.0).bits_per_sec(), 2'000'000);
  EXPECT_EQ(Bandwidth::kbps(100).bits_per_sec(), 100'000);
  EXPECT_EQ(Bandwidth::gbps(1.5).bits_per_sec(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(Bandwidth::mbps(2.0).bytes_per_sec(), 250'000.0);
}

TEST(Bandwidth, TransmissionTime) {
  // 1500 bytes at 2 Mbit/s = 6 ms.
  EXPECT_EQ(Bandwidth::mbps(2.0).transmission_time(1500).ns(), 6'000'000);
  // 40 bytes at 1 Gbit/s = 320 ns.
  EXPECT_EQ(Bandwidth::gbps(1.0).transmission_time(40).ns(), 320);
}

TEST(Bandwidth, TransmissionTimeScalesLinearly) {
  const Bandwidth bw = Bandwidth::mbps(10.0);
  const auto t1 = bw.transmission_time(1000).ns();
  const auto t2 = bw.transmission_time(2000).ns();
  EXPECT_EQ(t2, 2 * t1);
}

TEST(Bytes, Helpers) {
  EXPECT_EQ(kilobytes(2), 2000);
  EXPECT_EQ(megabytes(1), 1'000'000);
}

TEST(Require, ThrowsOnViolation) {
  EXPECT_NO_THROW(util::require(true, "fine"));
  EXPECT_THROW(util::require(false, "nope"), std::invalid_argument);
}

TEST(RngStream, Deterministic) {
  util::RngStream a(42, "stream");
  util::RngStream b(42, "stream");
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngStream, DistinctStreamsDiffer) {
  util::RngStream a(42, "alpha");
  util::RngStream b(42, "beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngStream, DistinctSeedsDiffer) {
  util::RngStream a(1, "s");
  util::RngStream b(2, "s");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngStream, UniformRange) {
  util::RngStream r(7, "u");
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngStream, UniformIntInclusive) {
  util::RngStream r(7, "i");
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces show up in 1000 rolls
}

TEST(RngStream, ExponentialMean) {
  util::RngStream r(7, "e");
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // mean 1/rate
}

TEST(RngStream, ChanceProbability) {
  util::RngStream r(7, "c");
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Fnv1a, StableKnownValues) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(util::fnv1a(""), 1469598103934665603ull);
  EXPECT_NE(util::fnv1a("a"), util::fnv1a("b"));
}

// Regression for an ASan alloc-dealloc-mismatch: counted_new.cpp must
// override the nothrow operator-new variants alongside the throwing ones.
// libstdc++'s stable_sort temporary buffer allocates with
// `::operator new(n, std::nothrow)` and releases with plain
// `::operator delete`; with only the plain forms replaced, ASan pairs its
// own interposed nothrow-new with our free()-based delete and aborts
// (first seen in ResultWriter::merge_csv under the ASan CI job). This
// exercises exactly that pairing — and checks the allocation is counted.
TEST(AllocGuard, CountsNothrowNew) {
  if (!util::AllocGuard::counting()) {
    GTEST_SKIP() << "speakup_counted_new not linked";
  }
  const util::AllocGuard guard;
  void* p = ::operator new(64, std::nothrow);
  ASSERT_NE(p, nullptr);
  ::operator delete(p);  // the mismatched pairing ASan flagged
  void* q = ::operator new[](64, std::nothrow);
  ASSERT_NE(q, nullptr);
  ::operator delete[](q, std::nothrow);
  EXPECT_EQ(guard.delta(), 2) << "nothrow operator new must be counted";
}

}  // namespace
}  // namespace speakup
