// The virtual-auction mechanism in isolation: per-bidder byte accounts and
// the thinner's selection rule (most bytes wins; ties go to the
// earliest-registered bidder).
//
// AuctionBook is the abstract model of §3.3's mechanism — the object that
// Theorem 3.1 reasons about. The Theorem 3.1 validation suites (tests and
// bench/abl5) drive it directly with adversarial payment schedules; it is
// also the reference for the selection logic embedded in the thinners.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace speakup::core {

class AuctionBook {
 public:
  /// Registers a bidder (idempotent). Registration order breaks ties.
  void register_bidder(std::uint64_t id) {
    if (accounts_.find(id) == accounts_.end()) {
      accounts_[id] = Account{0.0, next_rank_++, true};
    }
  }

  /// Credits payment to a bidder, registering it if needed.
  void credit(std::uint64_t id, double amount) {
    SPEAKUP_ASSERT(amount >= 0);
    register_bidder(id);
    accounts_[id].bid += amount;
  }

  /// Marks a bidder (in)eligible to win without touching its balance —
  /// the thinner's "payment arrived but the request has not" state.
  void set_eligible(std::uint64_t id, bool eligible) {
    register_bidder(id);
    accounts_[id].eligible = eligible;
  }

  /// Removes a bidder entirely (eviction / service complete).
  void remove(std::uint64_t id) { accounts_.erase(id); }

  /// Zeroes a bidder's balance (§5: payment consumed by a quantum).
  void reset_bid(std::uint64_t id) {
    const auto it = accounts_.find(id);
    if (it != accounts_.end()) it->second.bid = 0.0;
  }

  [[nodiscard]] double bid(std::uint64_t id) const {
    const auto it = accounts_.find(id);
    return it == accounts_.end() ? 0.0 : it->second.bid;
  }

  [[nodiscard]] bool contains(std::uint64_t id) const {
    return accounts_.find(id) != accounts_.end();
  }

  [[nodiscard]] std::size_t size() const { return accounts_.size(); }

  /// The §3.3 selection rule: highest bid among eligible bidders; ties go
  /// to the earliest registration. nullopt if nobody is eligible.
  [[nodiscard]] std::optional<std::uint64_t> winner() const {
    const Account* best = nullptr;
    std::uint64_t best_id = 0;
    for (const auto& [id, acct] : accounts_) {
      if (!acct.eligible) continue;
      if (best == nullptr || acct.bid > best->bid ||
          (acct.bid == best->bid && acct.rank < best->rank)) {
        best = &acct;
        best_id = id;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best_id;
  }

  /// Convenience: run one auction — pick the winner, zero its balance and
  /// return it (the flat thinner would then admit it and drop the account;
  /// the quantum thinner keeps it for the next round).
  std::optional<std::uint64_t> settle() {
    const auto w = winner();
    if (w.has_value()) reset_bid(*w);
    return w;
  }

 private:
  struct Account {
    double bid = 0.0;
    std::uint64_t rank = 0;  // registration order
    bool eligible = true;
  };

  std::unordered_map<std::uint64_t, Account> accounts_;
  std::uint64_t next_rank_ = 0;
};

}  // namespace speakup::core
