#include "obs/metrics.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace speakup::obs {

namespace json = util::json;

void MetricsRegistry::require_unique(const std::string& name) const {
  for (const Counter& c : counters_) {
    if (c.name == name) {
      throw std::invalid_argument("MetricsRegistry: duplicate metric '" + name + "'");
    }
  }
  for (const Gauge& g : gauges_) {
    if (g.name == name) {
      throw std::invalid_argument("MetricsRegistry: duplicate metric '" + name + "'");
    }
  }
  for (const Histogram& h : histograms_) {
    if (h.name == name) {
      throw std::invalid_argument("MetricsRegistry: duplicate metric '" + name + "'");
    }
  }
}

MetricId MetricsRegistry::add_counter(std::string name) {
  require_unique(name);
  util::require(samples_taken_ == 0, "MetricsRegistry: register before sampling starts");
  counters_.push_back(Counter{std::move(name), 0, 0});
  if (sampling_enabled()) {
    counter_series_.emplace_back(counters_.back().name, sample_interval_);
  }
  return static_cast<MetricId>(counters_.size() - 1);
}

MetricId MetricsRegistry::add_gauge(std::string name, std::function<double()> poll) {
  require_unique(name);
  util::require(samples_taken_ == 0, "MetricsRegistry: register before sampling starts");
  util::require(static_cast<bool>(poll), "MetricsRegistry: gauge needs a poll function");
  gauges_.push_back(Gauge{std::move(name), std::move(poll)});
  if (sampling_enabled()) {
    gauge_series_.emplace_back(gauges_.back().name, sample_interval_);
  }
  return static_cast<MetricId>(gauges_.size() - 1);
}

MetricId MetricsRegistry::add_histogram(std::string name) {
  require_unique(name);
  histograms_.push_back(Histogram{});
  histograms_.back().name = std::move(name);
  return static_cast<MetricId>(histograms_.size() - 1);
}

void MetricsRegistry::enable_sampling(Duration interval) {
  util::require(interval > Duration::zero(), "sample interval must be positive");
  util::require(samples_taken_ == 0, "MetricsRegistry: enable sampling before the run");
  sample_interval_ = interval;
  counter_series_.clear();
  gauge_series_.clear();
  for (const Counter& c : counters_) counter_series_.emplace_back(c.name, interval);
  for (const Gauge& g : gauges_) gauge_series_.emplace_back(g.name, interval);
}

void MetricsRegistry::sample(SimTime now) {
  SPEAKUP_ASSERT(sampling_enabled());
  ++samples_taken_;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    Counter& c = counters_[i];
    counter_series_[i].points.add(now, static_cast<double>(c.value - c.last_sampled));
    c.last_sampled = c.value;
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    gauge_series_[i].points.add(now, gauges_[i].poll());
  }
}

util::json::Value MetricsRegistry::summary_json() const {
  json::Value out{json::Value::Object{}};
  for (const Counter& c : counters_) {
    json::Value m{json::Value::Object{}};
    m.set("type", "counter");
    m.set("value", static_cast<double>(c.value));
    out.set(c.name, std::move(m));
  }
  for (const Gauge& g : gauges_) {
    json::Value m{json::Value::Object{}};
    m.set("type", "gauge");
    m.set("value", g.poll());
    out.set(g.name, std::move(m));
  }
  for (const Histogram& h : histograms_) {
    json::Value m{json::Value::Object{}};
    m.set("type", "histogram");
    m.set("count", static_cast<double>(h.count));
    m.set("sum", h.sum);
    if (h.count > 0) {
      m.set("min", h.min);
      m.set("max", h.max);
      m.set("mean", h.sum / static_cast<double>(h.count));
    }
    json::Value buckets{json::Value::Array{}};
    // Trailing all-zero buckets are elided; bucket i counts values in
    // [2^(i-1), 2^i).
    std::size_t last = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (h.buckets[i] != 0) last = i + 1;
    }
    for (std::size_t i = 0; i < last; ++i) {
      buckets.push_back(static_cast<double>(h.buckets[i]));
    }
    m.set("buckets_pow2", std::move(buckets));
    out.set(h.name, std::move(m));
  }
  return out;
}

void MetricsRegistry::append_timeseries_csv(std::string& out,
                                            const std::string& prefix) const {
  const auto append_series = [&](const Series& s) {
    for (std::size_t b = 0; b < s.points.bucket_count(); ++b) {
      out += prefix;
      out += s.name;
      out += ',';
      out += json::number_to_string(static_cast<double>(b) * s.points.bucket_width().sec());
      out += ',';
      out += json::number_to_string(s.points.bucket_sum(b));
      out += '\n';
    }
  };
  for (const Series& s : counter_series_) append_series(s);
  for (const Series& s : gauge_series_) append_series(s);
}

}  // namespace speakup::obs
