// Example: an extortionist's botnet vs a travel-search site.
//
// The paper's motivating attacks (§1) are extortionist application-level
// floods: bots issue expensive searches that look legitimate. This example
// walks a site operator through the question that matters: "how big a
// botnet can my clientele survive once I deploy speak-up?"
//
// We model a site whose ~40 real customers (Poisson 2 req/s each, 2 Mbit/s
// uplinks) face growing botnets, and report who gets served, with the
// §3.1 capacity planning rule printed alongside. The 3 botnet sizes x 2
// defenses = 6 scenarios run in parallel on the exp::Runner pool.
#include <cstdio>
#include <string>

#include "core/theory.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace speakup;

  const int kCustomers = 40;
  const double kCapacity = 160.0;  // 2x the legitimate demand of 80 req/s
  const int kBotnets[] = {10, 40, 120};
  const exp::DefenseMode kModes[] = {exp::DefenseMode::kNone, exp::DefenseMode::kAuction};

  std::printf("travel-search site: %d customers, server capacity %.0f req/s\n",
              kCustomers, kCapacity);
  std::printf("legitimate demand: %.0f req/s -> spare capacity %.0f%%\n\n",
              kCustomers * 2.0, (1 - kCustomers * 2.0 / kCapacity) * 100);

  exp::Runner runner;
  for (const int bots : kBotnets) {
    for (const exp::DefenseMode mode : kModes) {
      exp::ScenarioConfig cfg =
          exp::lan_scenario(kCustomers, bots, kCapacity, mode, /*seed=*/5);
      cfg.duration = Duration::seconds(60.0);
      runner.add(cfg, std::string(to_string(mode)) + "/bots" + std::to_string(bots));
    }
  }
  runner.run_all();

  std::printf("%-12s %-10s %-22s %-22s\n", "botnet", "defense", "customers served",
              "customer experience");
  for (const int bots : kBotnets) {
    for (const exp::DefenseMode mode : kModes) {
      const exp::ExperimentResult& r =
          runner.result(std::string(to_string(mode)) + "/bots" + std::to_string(bots));
      const double f = r.fraction_good_served;
      std::printf("%-12d %-10s %-22.2f %-22s\n", bots, exp::to_string(mode), f,
                  f > 0.95   ? "unharmed"
                  : f > 0.5  ? "degraded"
                  : f > 0.1  ? "mostly denied"
                             : "site effectively down");
    }
  }

  // The §3.1 planning rule: to leave customers unharmed, provision
  // c >= g * (1 + B/G).
  std::printf("\ncapacity planning (c_id = g * (1 + B/G), §3.1):\n");
  for (const int bots : {10, 40, 120, 400}) {
    const double cid = core::theory::ideal_provisioning(
        kCustomers * 2.0, kCustomers * 2.0, bots * 2.0);
    std::printf("  %4d bots: need c >= %5.0f req/s%s\n", bots, cid,
                cid <= kCapacity ? "  (current capacity suffices)" : "");
  }
  std::printf("\n(the paper's rule of thumb: equal aggregate bandwidth -> 2x "
              "over-provisioning keeps good clients unharmed)\n");
  return 0;
}
